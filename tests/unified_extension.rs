//! Integration tests for the unified-memory extension (the paper's Sec. 8
//! future work): page thrashing and page-level false sharing, end to end
//! through the simulator, collector, analyzer, and trace replay.

use drgpum::prelude::*;

const PAGE: u64 = 4096;

/// CPU and GPU alternately touch the *same* words of one managed page.
fn run_thrashing(ctx: &mut DeviceContext) -> Result<(), SimError> {
    let shared = ctx.malloc_managed(PAGE, "shared_counter")?;
    for _ in 0..4 {
        let v = ctx.managed_read_f32(shared)?;
        ctx.managed_write_f32(shared, v + 1.0)?;
        ctx.launch(
            "bump",
            LaunchConfig::cover(1, 1).unwrap(),
            StreamId::DEFAULT,
            move |t| {
                let v = t.load_f32(shared);
                t.store_f32(shared, v * 2.0);
            },
        )?;
    }
    ctx.sync_device();
    ctx.free(shared)?;
    Ok(())
}

#[test]
fn overlapping_ping_pong_is_thrashing_not_false_sharing() {
    let mut ctx = DeviceContext::new_default();
    let profiler = Profiler::attach(&mut ctx, ProfilerOptions::object_level());
    run_thrashing(&mut ctx).unwrap();
    let report = profiler.report(&ctx);
    assert!(report.has_pattern(PatternKind::PageThrashing));
    assert!(
        !report.has_pattern(PatternKind::PageFalseSharing),
        "both sides touch the same word: genuine sharing, not false sharing"
    );
}

#[test]
fn migrations_cost_simulated_time() {
    // The same program with device-resident data must be much faster than
    // the ping-ponging version — the paper's motivation for flagging
    // unified-memory traffic (up to 10x slowdowns, Sec. 1).
    let mut thrash_ctx = DeviceContext::new_default();
    run_thrashing(&mut thrash_ctx).unwrap();
    let thrash_ns = thrash_ctx.now().as_ns();

    let mut clean_ctx = DeviceContext::new_default();
    let buf = clean_ctx.malloc(PAGE, "device_only").unwrap();
    clean_ctx.memset(buf, 0, PAGE).unwrap();
    for _ in 0..4 {
        clean_ctx
            .launch(
                "bump",
                LaunchConfig::cover(1, 1).unwrap(),
                StreamId::DEFAULT,
                move |t| {
                    let v = t.load_f32(buf);
                    t.store_f32(buf, v * 2.0 + 1.0);
                },
            )
            .unwrap();
    }
    clean_ctx.sync_device();
    clean_ctx.free(buf).unwrap();
    let clean_ns = clean_ctx.now().as_ns();
    assert!(
        thrash_ns > clean_ns * 2,
        "page migrations must dominate: {thrash_ns} vs {clean_ns}"
    );
}

#[test]
fn managed_memory_computes_correct_results() {
    let mut ctx = DeviceContext::new_default();
    let n = 256u64;
    let buf = ctx.malloc_managed(n * 4, "managed").unwrap();
    let data: Vec<f32> = (0..n).map(|i| i as f32).collect();
    ctx.managed_write_f32s(buf, &data).unwrap();
    ctx.launch(
        "triple",
        LaunchConfig::cover(n, 64).unwrap(),
        StreamId::DEFAULT,
        move |t| {
            let i = t.global_x();
            if i < n {
                let v = t.load_f32(buf + i * 4);
                t.store_f32(buf + i * 4, v * 3.0);
            }
        },
    )
    .unwrap();
    let mut out = vec![0.0f32; n as usize];
    ctx.managed_read_f32s(&mut out, buf).unwrap();
    assert_eq!(out[100], 300.0);
    ctx.free(buf).unwrap();
    // Host init → device kernel → host read: one round trip per page.
    assert!(ctx.unified().total_migrations() >= 2);
}

#[test]
fn unified_findings_survive_trace_replay() {
    use drgpum::profiler::{trace_io, Thresholds};
    let mut ctx = DeviceContext::new_default();
    let profiler = Profiler::attach(&mut ctx, ProfilerOptions::object_level());
    run_thrashing(&mut ctx).unwrap();
    let live = profiler.report(&ctx);

    let collector = profiler.collector();
    let collector = collector.lock();
    let saved = trace_io::save(&collector, ctx.call_stack().table(), "rtx3090");
    let text = saved.to_text();
    let replayed = trace_io::load(&text)
        .unwrap()
        .reanalyze(&Thresholds::default());
    assert_eq!(live.patterns_present(), replayed.patterns_present());
    assert!(replayed.has_pattern(PatternKind::PageThrashing));

    // Raising the threshold offline silences the extension findings.
    let strict = Thresholds {
        thrash_min_migrations: 1000,
        ..Thresholds::default()
    };
    let silenced = saved.reanalyze(&strict);
    assert!(!silenced.has_pattern(PatternKind::PageThrashing));
}

#[test]
fn plain_device_memory_never_reports_extension_patterns() {
    let mut ctx = DeviceContext::new_default();
    let profiler = Profiler::attach(&mut ctx, ProfilerOptions::intra_object());
    let buf = ctx.malloc(PAGE, "plain").unwrap();
    for _ in 0..8 {
        ctx.memset(buf, 0, PAGE).unwrap();
        ctx.launch(
            "k",
            LaunchConfig::cover(16, 16).unwrap(),
            StreamId::DEFAULT,
            move |t| {
                let i = t.global_x();
                if i < 16 {
                    t.store_f32(buf + i * 4, 1.0);
                }
            },
        )
        .unwrap();
    }
    ctx.free(buf).unwrap();
    let report = profiler.report(&ctx);
    assert!(!report.has_pattern(PatternKind::PageThrashing));
    assert!(!report.has_pattern(PatternKind::PageFalseSharing));
    assert_eq!(ctx.unified().total_migrations(), 0);
}
