//! Integration test: the paper's Table 4 as an executable assertion —
//! peak-memory reductions within a few points of the paper's, speedups in
//! the right direction, and optimized variants preserving semantics.

use drgpum::workloads::common::{RunOutcome, Variant};
use drgpum::workloads::registry::RunConfig;
use gpu_sim::{DeviceContext, PlatformConfig};

fn run(name: &str, variant: Variant, platform: PlatformConfig) -> RunOutcome {
    let spec = drgpum::workloads::by_name(name).expect("registered");
    let mut ctx = DeviceContext::new(platform);
    (spec.run)(&mut ctx, variant, &RunConfig::default()).expect("workload runs")
}

fn peak(outcome: &RunOutcome) -> u64 {
    outcome.pool_peak_bytes.unwrap_or(outcome.peak_bytes)
}

#[test]
fn reductions_match_table4_within_3_points() {
    for spec in drgpum::workloads::all() {
        let Some(expected) = spec.expected_reduction_pct else {
            continue;
        };
        let u = run(spec.name, Variant::Unoptimized, PlatformConfig::rtx3090());
        let o = run(spec.name, Variant::Optimized, PlatformConfig::rtx3090());
        let reduction = 100.0 * (1.0 - peak(&o) as f64 / peak(&u) as f64);
        assert!(
            (reduction - expected).abs() <= 3.0,
            "{}: measured {reduction:.1}%, paper {expected}%",
            spec.name
        );
    }
}

#[test]
fn optimized_variants_preserve_semantics() {
    for spec in drgpum::workloads::all() {
        let u = run(spec.name, Variant::Unoptimized, PlatformConfig::rtx3090());
        let o = run(spec.name, Variant::Optimized, PlatformConfig::rtx3090());
        let denom = u.checksum.abs().max(1.0);
        assert!(
            ((u.checksum - o.checksum) / denom).abs() < 1e-6,
            "{}: checksums diverge ({} vs {})",
            spec.name,
            u.checksum,
            o.checksum
        );
    }
}

#[test]
fn nuaf_fixes_speed_up_on_both_platforms() {
    for name in ["GramSchmidt", "BICG"] {
        for platform in [PlatformConfig::rtx3090(), PlatformConfig::a100()] {
            let pname = platform.name.clone();
            let u = run(name, Variant::Unoptimized, platform.clone());
            let o = run(name, Variant::Optimized, platform);
            let speedup = u.elapsed.as_ns() as f64 / o.elapsed.as_ns() as f64;
            assert!(
                speedup > 1.15,
                "{name} on {pname}: expected a real speedup, got {speedup:.2}x"
            );
        }
    }
}

#[test]
fn optimizations_never_slow_anything_down() {
    for spec in drgpum::workloads::all() {
        let u = run(spec.name, Variant::Unoptimized, PlatformConfig::rtx3090());
        let o = run(spec.name, Variant::Optimized, PlatformConfig::rtx3090());
        // Memory fixes may add a few cheap APIs (e.g. 3MM's offload round
        // trip); allow 30% slack but catch pathological regressions.
        assert!(
            (o.elapsed.as_ns() as f64) < u.elapsed.as_ns() as f64 * 1.3,
            "{}: optimized variant is drastically slower",
            spec.name
        );
    }
}

#[test]
fn reductions_are_platform_independent() {
    // Table 4's footnote: the same reduction on RTX 3090 and A100.
    for name in ["2MM", "Darknet", "XSBench"] {
        let u_r = run(name, Variant::Unoptimized, PlatformConfig::rtx3090());
        let o_r = run(name, Variant::Optimized, PlatformConfig::rtx3090());
        let u_a = run(name, Variant::Unoptimized, PlatformConfig::a100());
        let o_a = run(name, Variant::Optimized, PlatformConfig::a100());
        assert_eq!(peak(&u_r), peak(&u_a), "{name}: unopt peak differs");
        assert_eq!(peak(&o_r), peak(&o_a), "{name}: opt peak differs");
    }
}
