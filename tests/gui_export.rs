//! Integration test: the Perfetto GUI export (Fig. 7) produces a
//! well-formed Chrome trace with the paper's headline content.

use drgpum::prelude::*;
use drgpum::workloads::common::Variant;
use drgpum::workloads::registry::RunConfig;
use serde_json::Value;

fn simple_multi_copy_trace() -> (Report, Value) {
    let spec = drgpum::workloads::by_name("SimpleMultiCopy").expect("registered");
    let mut ctx = DeviceContext::new_default();
    let profiler = Profiler::attach(&mut ctx, ProfilerOptions::object_level());
    (spec.run)(&mut ctx, Variant::Unoptimized, &RunConfig::default()).expect("runs");
    (profiler.report(&ctx), profiler.perfetto_trace(&ctx))
}

#[test]
fn trace_is_valid_chrome_trace_json() {
    let (_, trace) = simple_multi_copy_trace();
    let text = serde_json::to_string(&trace).expect("serializes");
    let parsed: Value = serde_json::from_str(&text).expect("round-trips");
    let events = parsed["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());
    for e in events {
        let ph = e["ph"].as_str().expect("phase");
        assert!(matches!(ph, "X" | "i" | "M"), "unexpected phase {ph}");
        if ph == "X" {
            assert!(e["ts"].is_number());
            assert!(e["dur"].is_number());
            assert!(e["pid"].is_number());
            assert!(e["tid"].is_number());
        }
    }
}

#[test]
fn trace_shows_streams_objects_and_patterns() {
    let (report, trace) = simple_multi_copy_trace();
    let events = trace["traceEvents"].as_array().expect("array");

    // Pane 1: every GPU API slice, across multiple stream tracks.
    let api_slices: Vec<&Value> = events
        .iter()
        .filter(|e| e["pid"] == 1 && e["ph"] == "X")
        .collect();
    assert_eq!(api_slices.len(), report.stats.gpu_apis as usize);
    let streams: std::collections::HashSet<u64> = api_slices
        .iter()
        .filter_map(|e| e["tid"].as_u64())
        .collect();
    assert!(streams.len() >= 2, "multi-stream program: several tracks");

    // Pane 2: object lifetimes for the peak objects with attached findings.
    let lifetimes: Vec<&Value> = events
        .iter()
        .filter(|e| e["pid"] == 2 && e["cat"] == "object")
        .collect();
    assert!(!lifetimes.is_empty());
    let out1 = lifetimes
        .iter()
        .find(|e| e["name"].as_str().unwrap_or("").contains("d_data_out1"))
        .expect("d_data_out1 lifetime slice");
    let patterns = out1["args"]["inefficiency_patterns"]
        .as_array()
        .expect("patterns");
    assert!(
        patterns.iter().any(|p| p["code"] == "EA"),
        "Fig. 7 headline: d_data_out1 matches early allocation"
    );
    // Suggestions ride along in the args.
    assert!(patterns.iter().all(|p| p["suggestion"]
        .as_str()
        .map(|s| !s.is_empty())
        .unwrap_or(false)));

    // Access instants reference topological timestamps.
    let instants: Vec<&Value> = events
        .iter()
        .filter(|e| e["pid"] == 2 && e["ph"] == "i")
        .collect();
    assert!(!instants.is_empty());
    assert!(instants
        .iter()
        .all(|e| e["args"]["topological_ts"].is_number()));
}

#[test]
fn api_slices_carry_call_paths_and_topo_order() {
    let (_, trace) = simple_multi_copy_trace();
    let events = trace["traceEvents"].as_array().expect("array");
    let with_paths = events
        .iter()
        .filter(|e| e["pid"] == 1 && e["ph"] == "X")
        .all(|e| e["args"]["call_path"].is_string() && e["args"]["topological_ts"].is_number());
    assert!(with_paths);
}
