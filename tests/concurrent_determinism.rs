//! Determinism of the low-overhead collection pipeline (Sec. 5.5) and of
//! parallel block execution: for every registered workload, sharded
//! aggregation, warp-level access coalescing, and multi-worker kernel
//! execution must produce a report and a serialized trace (format v2 text)
//! byte-identical to the serial baseline's. Anything less would make the
//! overhead knobs unusable — turning them on could change findings.
//!
//! The same contract pins the overhauled hot path (flat epoch-snapshot
//! index, resolve caches, pc-hint memo, staged sink arenas) against the
//! pre-overhaul pipeline, which stays reachable via
//! [`ProfilerOptions::with_slow_path`] precisely so this suite can hold
//! the fast paths to byte-identical output.

use drgpum::prelude::*;
use drgpum::profiler::trace_io;
use drgpum::workloads::common::Variant;
use drgpum::workloads::registry::{RunConfig, WorkloadSpec};

/// Profiles one clean run under `kernel_workers` worker threads and returns
/// the two byte-exact artifacts the determinism contract covers: rendered
/// report text and trace v2 text.
///
/// The context is built through [`DeviceContext::with_config`], which takes
/// the worker count verbatim — the sweep must not be perturbed by a
/// `DRGPUM_KERNEL_WORKERS` override in the environment.
fn profile(spec: &WorkloadSpec, mut options: ProfilerOptions, workers: usize) -> (String, String) {
    let sim = SimConfig::default().with_kernel_workers(workers);
    let mut ctx = DeviceContext::with_config(sim);
    if let Some(elem) = spec.elem_size_hint {
        options.elem_size = elem;
    }
    if spec.uses_pool {
        options.track_pool_tensors = true;
    }
    let profiler = Profiler::attach(&mut ctx, options);
    let cfg = RunConfig {
        pool_observer: spec
            .uses_pool
            .then(|| profiler.collector() as drgpum::sim::pool::SharedPoolObserver),
    };
    (spec.run)(&mut ctx, Variant::Unoptimized, &cfg)
        .unwrap_or_else(|e| panic!("workload {} failed: {e}", spec.name));
    let trace = {
        let collector = profiler.collector();
        let collector = collector.lock();
        trace_io::save(&collector, ctx.call_stack().table(), "rtx3090").to_text()
    };
    (profiler.report(&ctx).render_text(), trace)
}

#[test]
fn parallel_and_coalesced_collection_match_serial_on_every_workload() {
    // An odd shard count exercises uneven object distribution across
    // shards; 3 also differs from any machine's core count, so the result
    // cannot secretly depend on available parallelism. Worker count 8
    // exceeds most grids' block count, exercising the workers > blocks
    // clamp; 2 exercises genuine block interleaving.
    let modes = [
        ("serial-collect", ProfilerOptions::intra_object()),
        (
            "sharded",
            ProfilerOptions::intra_object().with_collector_shards(3),
        ),
        (
            "coalesced",
            ProfilerOptions::intra_object().with_coalescing(),
        ),
    ];
    for spec in drgpum::workloads::all() {
        let baseline = profile(&spec, ProfilerOptions::intra_object(), 1);
        for workers in [1usize, 2, 8] {
            for (mode, options) in &modes {
                if workers == 1 && *mode == "serial-collect" {
                    continue; // that IS the baseline
                }
                let got = profile(&spec, options.clone(), workers);
                assert_eq!(
                    got.0, baseline.0,
                    "{}: report text diverged in `{mode}` mode with {workers} workers",
                    spec.name
                );
                assert_eq!(
                    got.1, baseline.1,
                    "{}: trace v2 bytes diverged in `{mode}` mode with {workers} workers",
                    spec.name
                );
            }
        }
    }
}

/// The overhauled hot path against its own pre-overhaul implementation.
///
/// `ProfilerOptions::with_slow_path` re-enables the original pipeline —
/// per-access `BTreeMap` resolution, per-launch sink allocation, hashed
/// merge-candidate map, no resolve caches or pc-hint memo. Every fast-path
/// configuration must reproduce the slow path's report text and trace v2
/// bytes exactly, on every registered workload, under both a serial and a
/// block-parallel kernel loop. This is the contract that makes the
/// overhaul a pure optimization: byte-for-byte, not "statistically equal".
#[test]
fn fast_paths_match_slow_path_baseline_on_every_workload() {
    let modes = [
        ("serial-collect", ProfilerOptions::intra_object()),
        (
            "sharded",
            ProfilerOptions::intra_object().with_collector_shards(3),
        ),
        (
            "coalesced",
            ProfilerOptions::intra_object().with_coalescing(),
        ),
    ];
    for spec in drgpum::workloads::all() {
        let baseline = profile(&spec, ProfilerOptions::intra_object().with_slow_path(), 1);
        for workers in [1usize, 4] {
            for (mode, options) in &modes {
                let got = profile(&spec, options.clone(), workers);
                assert_eq!(
                    got.0, baseline.0,
                    "{}: report text diverged from the slow-path baseline in `{mode}` mode with {workers} workers",
                    spec.name
                );
                assert_eq!(
                    got.1, baseline.1,
                    "{}: trace v2 bytes diverged from the slow-path baseline in `{mode}` mode with {workers} workers",
                    spec.name
                );
            }
        }
    }
    // The slow path is itself worker-count independent: the baseline hook
    // must stay a valid oracle under a parallel kernel loop, too.
    let spec = drgpum::workloads::by_name("3MM").expect("registered");
    let slow1 = profile(&spec, ProfilerOptions::intra_object().with_slow_path(), 1);
    let slow4 = profile(&spec, ProfilerOptions::intra_object().with_slow_path(), 4);
    assert_eq!(slow1, slow4, "slow path diverged across worker counts");
}

/// An active fault plan must force the serial loop: mid-kill thread
/// prefixes and per-call triggers depend on the serial schedule, so a
/// faulted run under many workers has to be byte-identical to the same
/// faulted run under one.
#[test]
fn fault_plans_force_serial_fallback() {
    use drgpum::sim::{FaultKind, FaultPlan};

    let spec = drgpum::workloads::by_name("2MM").expect("registered");
    let run = |workers: usize| -> (String, String, String) {
        let sim = SimConfig::default().with_kernel_workers(workers);
        let mut ctx = DeviceContext::with_config(sim);
        let profiler = Profiler::attach(&mut ctx, ProfilerOptions::intra_object());
        // p = 1.0 kills the first kernel 2MM launches, deterministically.
        ctx.set_fault_plan(FaultPlan::new(29).probabilistic(FaultKind::KernelKill, 1.0));
        // The killed kernel legitimately fails the workload; the profiler
        // artifacts are what must stay deterministic.
        let _ = (spec.run)(&mut ctx, Variant::Unoptimized, &RunConfig::default());
        let trace = {
            let collector = profiler.collector();
            let collector = collector.lock();
            trace_io::save(&collector, ctx.call_stack().table(), "rtx3090").to_text()
        };
        let report = profiler.report(&ctx).render_text();
        let faults = format!("{:?}", ctx.fault_log());
        (report, trace, faults)
    };

    let serial = run(1);
    let parallel = run(8);
    assert!(
        serial.2.contains("KernelKill"),
        "the plan must actually deliver a kernel kill, got: {}",
        serial.2
    );
    assert_eq!(parallel.0, serial.0, "report text diverged under faults");
    assert_eq!(parallel.1, serial.1, "trace v2 bytes diverged under faults");
    assert_eq!(parallel.2, serial.2, "fault logs diverged");
}
