//! Determinism of the low-overhead collection pipeline (Sec. 5.5): for
//! every registered workload, sharded aggregation and warp-level access
//! coalescing must produce a report and a serialized trace (format v2
//! text) byte-identical to the serial baseline's. Anything less would make
//! the overhead knobs unusable — turning them on could change findings.

use drgpum::prelude::*;
use drgpum::profiler::trace_io;
use drgpum::workloads::common::Variant;
use drgpum::workloads::registry::{RunConfig, WorkloadSpec};

/// Profiles one clean run and returns the two byte-exact artifacts the
/// determinism contract covers: rendered report text and trace v2 text.
fn profile(spec: &WorkloadSpec, mut options: ProfilerOptions) -> (String, String) {
    let mut ctx = DeviceContext::new_default();
    if let Some(elem) = spec.elem_size_hint {
        options.elem_size = elem;
    }
    if spec.uses_pool {
        options.track_pool_tensors = true;
    }
    let profiler = Profiler::attach(&mut ctx, options);
    let cfg = RunConfig {
        pool_observer: spec
            .uses_pool
            .then(|| profiler.collector() as drgpum::sim::pool::SharedPoolObserver),
    };
    (spec.run)(&mut ctx, Variant::Unoptimized, &cfg)
        .unwrap_or_else(|e| panic!("workload {} failed: {e}", spec.name));
    let trace = {
        let collector = profiler.collector();
        let collector = collector.lock();
        trace_io::save(&collector, ctx.call_stack().table(), "rtx3090").to_text()
    };
    (profiler.report(&ctx).render_text(), trace)
}

#[test]
fn parallel_and_coalesced_collection_match_serial_on_every_workload() {
    for spec in drgpum::workloads::all() {
        let serial = profile(&spec, ProfilerOptions::intra_object());
        // An odd shard count exercises uneven object distribution across
        // shards; 3 also differs from any machine's core count, so the
        // result cannot secretly depend on available parallelism.
        let modes = [
            (
                "parallel",
                ProfilerOptions::intra_object().with_collector_shards(3),
            ),
            (
                "coalesced",
                ProfilerOptions::intra_object().with_coalescing(),
            ),
            (
                "parallel+coalesced",
                ProfilerOptions::intra_object()
                    .with_collector_shards(3)
                    .with_coalescing(),
            ),
        ];
        for (mode, options) in modes {
            let got = profile(&spec, options);
            assert_eq!(
                got.0, serial.0,
                "{}: report text diverged in `{mode}` mode",
                spec.name
            );
            assert_eq!(
                got.1, serial.1,
                "{}: trace v2 bytes diverged in `{mode}` mode",
                spec.name
            );
        }
    }
}
