//! Watchdog deadlines with cooperative cancellation: a wedged detector is
//! cancelled at the deadline and reported `TimedOut` while the others run
//! to completion, and a runaway kernel is stopped at a block boundary with
//! its partial results still delivered to the profiler.

use drgpum::prelude::*;
use drgpum::profiler::{DetectorOutcome, ResourceBudget};
use std::sync::Mutex;

/// Serializes the tests in this binary: the detector-stall fault is
/// injected through a process-global environment variable, which must not
/// leak into the other test's `report()` call.
static ENV_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn stalled_detector_times_out_and_the_others_are_unaffected() {
    let _guard = ENV_LOCK.lock().unwrap();
    // Wedge the redundant-allocation family for far longer than the
    // deadline; the watchdog must cancel it and only it.
    std::env::set_var("DRGPUM_FAULT_STALL_DETECTOR", "redundant:10000");

    let budget = ResourceBudget::unlimited().with_detector_deadline_ms(150);
    let mut ctx = DeviceContext::new_default();
    let profiler = Profiler::attach(
        &mut ctx,
        ProfilerOptions::intra_object().with_budget(budget),
    );
    let a = ctx.malloc(1024, "a").unwrap();
    ctx.memset(a, 0, 1024).unwrap();
    ctx.launch(
        "touch",
        LaunchConfig::cover(256, 64).unwrap(),
        StreamId::DEFAULT,
        |t| {
            let i = t.global_x();
            let v = t.load_f32(a + i * 4);
            t.store_f32(a + i * 4, v + 1.0);
        },
    )
    .unwrap();
    let report = profiler.report(&ctx);
    std::env::remove_var("DRGPUM_FAULT_STALL_DETECTOR");

    let outcome = |name: &str| {
        report
            .detectors
            .iter()
            .find(|d| d.name == name)
            .unwrap_or_else(|| panic!("detector `{name}` missing from the report"))
            .outcome
            .clone()
    };
    match outcome("redundant") {
        DetectorOutcome::TimedOut { deadline_ms } => assert_eq!(deadline_ms, 150),
        other => panic!("the stalled detector must time out, got {other:?}"),
    }
    for name in ["object_level", "intra", "unified"] {
        assert!(
            matches!(outcome(name), DetectorOutcome::Ok { .. }),
            "detector `{name}` must be unaffected by the stalled one"
        );
    }
    assert!(
        report.is_degraded(),
        "a timed-out detector marks the report degraded"
    );
}

#[test]
fn runaway_kernel_hits_the_deadline_and_partial_results_survive() {
    let _guard = ENV_LOCK.lock().unwrap();
    let cfg = SimConfig::default().with_kernel_deadline_ms(25);
    let mut ctx = DeviceContext::with_config(cfg);
    let profiler = Profiler::attach(&mut ctx, ProfilerOptions::object_level());
    let out = ctx.malloc(16 << 10, "out").unwrap();

    // Every simulated thread burns real wall-clock time, so the whole
    // grid takes far longer than the 25ms deadline.
    let err = ctx
        .launch(
            "runaway",
            LaunchConfig::cover(4096, 64).unwrap(),
            StreamId::DEFAULT,
            |t| {
                let i = t.global_x();
                let mut acc = 0u64;
                for k in 0..200_000u64 {
                    acc = std::hint::black_box(acc.wrapping_add(k));
                }
                t.store_f32(out + (i % 4096) * 4, acc as f32);
            },
        )
        .expect_err("the watchdog must fault the runaway kernel");
    match err {
        SimError::KernelFaulted { kernel, reason } => {
            assert_eq!(kernel, "runaway");
            assert!(
                reason.contains("watchdog deadline"),
                "fault names the watchdog: {reason}"
            );
        }
        other => panic!("expected KernelFaulted, got {other:?}"),
    }

    // Later kernels on the same context are unaffected ...
    ctx.launch(
        "well_behaved",
        LaunchConfig::cover(64, 64).unwrap(),
        StreamId::DEFAULT,
        |t| {
            let i = t.global_x();
            t.store_f32(out + i * 4, 1.0);
        },
    )
    .expect("a fast kernel finishes well inside the deadline");
    ctx.free(out).unwrap();

    // ... and the partial work executed before the deadline was delivered:
    // the profiler saw both launches plus the alloc/free.
    let report = profiler.report(&ctx);
    assert_eq!(report.stats.gpu_apis, 4);
    assert_eq!(report.detectors.len(), 4);
}
