//! Crash-consistency end to end: SIGKILL a real `drgpum run --stream-trace`
//! process mid-run, then recover the fsynced prefix with salvage and with
//! `drgpum run --resume`. No cooperation from the dying process — this is
//! the `kill -9` the streaming writer exists for.

use drgpum::profiler::{trace_io, Thresholds};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("drgpum-kill9-{}-{name}", std::process::id()))
}

#[test]
fn sigkill_mid_run_leaves_a_salvageable_resumable_trace() {
    let trace = temp_path("victim.trace");
    let bin = env!("CARGO_BIN_EXE_drgpum");

    // Darknet under intra-object profiling runs for seconds — plenty of
    // fsynced delta frames to kill in the middle of.
    let mut child = Command::new(bin)
        .args(["run", "Darknet", "--intra", "--stream-trace"])
        .arg(&trace)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn drgpum");

    // Wait until at least a few delta frames are on disk, then SIGKILL.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let deltas = std::fs::read_to_string(&trace)
            .map(|t| t.matches("section delta ").count())
            .unwrap_or(0);
        if deltas >= 3 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no delta frames appeared within 60s"
        );
        assert!(
            child.try_wait().expect("try_wait").is_none(),
            "the profiled run finished before it could be killed; \
             pick a longer workload"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");

    // Salvage recovers the fsynced prefix and says so.
    let text = std::fs::read_to_string(&trace).expect("trace readable");
    let (salvaged, losses) = trace_io::salvage(&text);
    assert!(
        salvaged.api_count() >= 3,
        "every fsynced API event is recovered (got {})",
        salvaged.api_count()
    );
    assert!(
        !losses.is_lossless(),
        "a killed run cannot have a clean finish"
    );
    assert!(
        losses
            .notes
            .iter()
            .any(|n| n.contains("no clean-finish marker")),
        "the missing finish marker is reported: {:?}",
        losses.notes
    );
    let report = salvaged.reanalyze_with(&Thresholds::default(), losses.to_degradations());
    assert!(report.is_degraded());
    assert_eq!(report.detectors.len(), 4);
    assert_eq!(report.stats.gpu_apis, salvaged.api_count() as u64);

    // `drgpum run --resume` agrees: same recovery, degraded exit code 3.
    let resumed = Command::new(bin)
        .args(["run", "--resume"])
        .arg(&trace)
        .stderr(Stdio::null())
        .output()
        .expect("run --resume");
    assert_eq!(
        resumed.status.code(),
        Some(3),
        "a recovered-prefix resume exits with the degraded code"
    );
    let stdout = String::from_utf8_lossy(&resumed.stdout);
    assert!(
        stdout.contains("recovered prefix"),
        "resume announces the recovery: {stdout}"
    );
    assert!(
        stdout.contains(&format!("{} GPU APIs", salvaged.api_count())),
        "resume replays exactly the salvaged events: {stdout}"
    );

    // And `--strict` escalates the same recovery to a hard failure.
    let strict = Command::new(bin)
        .args(["run", "--resume"])
        .arg(&trace)
        .arg("--strict")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run --resume --strict");
    assert_eq!(strict.code(), Some(1));

    std::fs::remove_file(&trace).ok();
}
