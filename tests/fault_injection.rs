//! Chaos matrix: every injectable fault kind crossed with every registered
//! workload, plus seeded corruption of saved traces. The contract under
//! test is the robustness pipeline's core guarantee — the profiler always
//! comes back with a report carrying per-detector status, degraded where
//! necessary, and never panics.

use drgpum::prelude::*;
use drgpum::profiler::{trace_io, ResourceBudget, Thresholds};
use drgpum::workloads::common::Variant;
use drgpum::workloads::faults;
use drgpum::workloads::registry::RunConfig;
use gpu_sim::{FaultKind, SplitMix64};

#[test]
fn every_fault_kind_on_every_workload_still_yields_a_report() {
    for kind in FaultKind::ALL {
        for spec in drgpum::workloads::all() {
            let mut ctx = DeviceContext::new_default();
            let profiler = Profiler::attach(&mut ctx, ProfilerOptions::object_level());
            let cfg = RunConfig {
                pool_observer: spec
                    .uses_pool
                    .then(|| profiler.collector() as drgpum::sim::pool::SharedPoolObserver),
            };
            let run = faults::run_under_fault(&mut ctx, &spec, kind, 0x00D0_6F00, &cfg);
            let case = format!("{kind} on {}", spec.name);

            // A failed run is acceptable under injected faults; a panic or
            // a missing report is not.
            let report = profiler.report(&ctx);
            let names: Vec<&str> = report.detectors.iter().map(|d| d.name.as_str()).collect();
            assert_eq!(
                names,
                ["object_level", "redundant", "intra", "unified"],
                "{case}: every detector family must be accounted for"
            );

            // An injected allocation failure must surface as an explicit
            // degradation record, never silence.
            let oom_injected = ctx
                .fault_log()
                .iter()
                .any(|f| f.kind == FaultKind::AllocFail);
            if oom_injected {
                assert!(
                    report.is_degraded(),
                    "{case}: injected OOM must mark the report degraded"
                );
                assert!(
                    report.degradations.iter().any(|d| d.stage == "collector"),
                    "{case}: the collector must record its CPU-side fallback"
                );
            }

            // Exports stay well-formed whatever happened.
            let json = drgpum::profiler::export::report_json(&report);
            serde_json::to_string(&json).unwrap_or_else(|e| panic!("{case}: export failed: {e}"));
            if run.is_ok() {
                assert!(
                    report.stats.gpu_apis > 0,
                    "{case}: successful run records APIs"
                );
            }
        }
    }
}

#[test]
fn faults_under_tiny_budgets_and_parallel_workers_never_panic() {
    // The full chaos cross-product: injected faults × a budget small
    // enough to walk the whole degradation ladder × serial and parallel
    // kernel execution. Whatever the combination, the outcome is a report
    // (degraded where honest) or a typed error — never a panic.
    for kind in FaultKind::ALL {
        for workload in ["BICG", "huffman", "SimpleMultiCopy"] {
            for workers in [1usize, 4] {
                let spec = drgpum::workloads::by_name(workload).expect("registered");
                let cfg_sim = SimConfig::default().with_kernel_workers(workers);
                let mut ctx = DeviceContext::with_config(cfg_sim);
                let budget = ResourceBudget::unlimited().with_resident_bytes(16 << 10);
                let profiler = Profiler::attach(
                    &mut ctx,
                    ProfilerOptions::intra_object().with_budget(budget),
                );
                let cfg = RunConfig {
                    pool_observer: spec
                        .uses_pool
                        .then(|| profiler.collector() as drgpum::sim::pool::SharedPoolObserver),
                };
                let run = faults::run_under_fault(&mut ctx, &spec, kind, 0xBAD_B0D9E7, &cfg);
                let case = format!("{kind} on {workload} with {workers} workers");
                if let Err(e) = &run {
                    // Typed simulator errors are an acceptable outcome.
                    assert!(
                        !e.to_string().is_empty(),
                        "{case}: error must describe itself"
                    );
                }
                let report = profiler.report(&ctx);
                assert_eq!(
                    report.detectors.len(),
                    4,
                    "{case}: every detector family accounted for"
                );
                // 16 KiB cannot hold BICG/huffman intra state: the ladder
                // must have been walked and reported, not silently ignored.
                if report.degradations.iter().any(|d| d.stage == "governor") {
                    assert!(report.is_degraded(), "{case}: demotions mark the report");
                }
                let json = drgpum::profiler::export::report_json(&report);
                serde_json::to_string(&json)
                    .unwrap_or_else(|e| panic!("{case}: export failed: {e}"));
            }
        }
    }
}

#[test]
fn shared_memory_overrun_is_a_device_fault_with_a_full_report() {
    let mut ctx = DeviceContext::new_default();
    let profiler = Profiler::attach(&mut ctx, ProfilerOptions::intra_object());
    let out = ctx.malloc(64, "out").expect("fits");
    // Threads 2 and 3 index past the 16-byte shared window. This used to
    // panic the host mid-kernel; it must surface as a device fault instead,
    // with the profiler still producing a complete report afterwards.
    let cfg = LaunchConfig::cover(4, 4).unwrap().with_shared_mem(16);
    let err = ctx
        .launch("oob_shared", cfg, StreamId::DEFAULT, |t| {
            let i = t.global_x();
            t.shared_store_f32(i as u32 * 8, 1.0);
            let v = t.shared_load_f32(i as u32 * 8);
            t.store_f32(out + i * 4, v);
        })
        .expect_err("shared-memory overrun must fail the launch");
    match err {
        SimError::KernelFaulted { kernel, reason } => {
            assert_eq!(kernel, "oob_shared");
            assert!(
                reason.contains("shared"),
                "fault names shared memory: {reason}"
            );
        }
        other => panic!("expected KernelFaulted, got {other:?}"),
    }
    let report = profiler.report(&ctx);
    let names: Vec<&str> = report.detectors.iter().map(|d| d.name.as_str()).collect();
    assert_eq!(
        names,
        ["object_level", "redundant", "intra", "unified"],
        "a faulted kernel must not lose any detector family"
    );
    let json = drgpum::profiler::export::report_json(&report);
    serde_json::to_string(&json).expect("report for a faulted run still exports");
}

#[test]
fn salvage_of_corrupted_traces_never_panics_and_reports_losses() {
    for name in ["2MM", "huffman", "SimpleMultiCopy"] {
        let spec = drgpum::workloads::by_name(name).expect("registered");
        let mut ctx = DeviceContext::new_default();
        let profiler = Profiler::attach(&mut ctx, ProfilerOptions::object_level());
        (spec.run)(&mut ctx, Variant::Unoptimized, &RunConfig::default()).expect("clean run");
        let collector = profiler.collector();
        let collector = collector.lock();
        let saved = trace_io::save(&collector, ctx.call_stack().table(), "rtx3090");
        drop(collector);
        let text = saved.to_text();

        let mut rng = SplitMix64::new(42);
        for round in 0..24 {
            let mut bytes = text.clone().into_bytes();
            if rng.chance(0.5) {
                let cut = rng.next_below(bytes.len() as u64) as usize;
                bytes.truncate(cut);
            } else {
                let pos = rng.next_below(bytes.len() as u64) as usize;
                let bit = rng.next_below(8) as u32;
                bytes[pos] ^= 1 << bit;
            }
            let mutated = String::from_utf8_lossy(&bytes).into_owned();
            let report = trace_io::reanalyze_salvaged(&mutated, &Thresholds::default());
            assert_eq!(
                report.detectors.len(),
                4,
                "{name} round {round}: salvage must still run every detector"
            );
            // Damage that strict loading rejects must be visible as an
            // explicit degradation, never silently absorbed.
            if trace_io::load(&mutated).is_err() {
                assert!(
                    report.is_degraded(),
                    "{name} round {round}: salvage losses must be reported"
                );
                assert!(
                    report
                        .degradations
                        .iter()
                        .any(|d| d.stage == "trace-salvage"),
                    "{name} round {round}: loss records carry the salvage stage"
                );
            }
        }
    }
}
