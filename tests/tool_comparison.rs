//! Integration test: the paper's Table 5 as an executable assertion —
//! DrGPUM detects all ten patterns across the suite; ValueExpert-lite can
//! only account for unused allocations; memcheck-lite only for leaks.

use drgpum::baselines::{MemcheckLite, ValueExpertLite};
use drgpum::prelude::*;
use drgpum::workloads::common::Variant;
use drgpum::workloads::registry::RunConfig;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::Arc;

#[test]
fn table5_matrix() {
    let mut drgpum_found: HashSet<PatternKind> = HashSet::new();
    let mut ve_found: HashSet<PatternKind> = HashSet::new();
    let mut mc_found: HashSet<PatternKind> = HashSet::new();

    for spec in drgpum::workloads::all() {
        // DrGPUM run.
        let mut ctx = DeviceContext::new_default();
        let mut options = ProfilerOptions::intra_object();
        if let Some(elem) = spec.elem_size_hint {
            options.elem_size = elem;
        }
        if spec.uses_pool {
            options.track_pool_tensors = true;
        }
        let profiler = Profiler::attach(&mut ctx, options);
        let cfg = RunConfig {
            pool_observer: spec
                .uses_pool
                .then(|| profiler.collector() as drgpum::sim::pool::SharedPoolObserver),
        };
        (spec.run)(&mut ctx, Variant::Unoptimized, &cfg).expect("runs");
        drgpum_found.extend(profiler.report(&ctx).patterns_present());

        // Baselines on a fresh, identical run.
        let ve = Arc::new(Mutex::new(ValueExpertLite::new()));
        let mc = Arc::new(Mutex::new(MemcheckLite::new()));
        let mut ctx2 = DeviceContext::new_default();
        ctx2.sanitizer_mut().register(ve.clone());
        ctx2.sanitizer_mut().register(mc.clone());
        (spec.run)(&mut ctx2, Variant::Unoptimized, &RunConfig::default()).expect("runs");
        let mut ve_tool = ve.lock();
        ve_tool.finish();
        ve_found.extend(ve_tool.detectable_patterns());
        mc_found.extend(mc.lock().detectable_patterns());
    }

    // DrGPUM: Yes on all ten.
    for p in PatternKind::ALL {
        assert!(drgpum_found.contains(&p), "DrGPUM must detect {p}");
    }
    // ValueExpert: only unused allocations (the Yes* row).
    assert_eq!(
        ve_found,
        HashSet::from([PatternKind::UnusedAllocation]),
        "ValueExpert-lite column deviates from Table 5"
    );
    // Compute Sanitizer: only memory leaks.
    assert_eq!(
        mc_found,
        HashSet::from([PatternKind::MemoryLeak]),
        "memcheck-lite column deviates from Table 5"
    );
}

#[test]
fn memcheck_agrees_with_drgpum_on_leaked_bytes() {
    // Same program, two tools, one truth.
    let spec = drgpum::workloads::by_name("XSBench").expect("registered");
    let mc = Arc::new(Mutex::new(MemcheckLite::new()));
    let mut ctx = DeviceContext::new_default();
    let profiler = Profiler::attach(&mut ctx, ProfilerOptions::object_level());
    ctx.sanitizer_mut().register(mc.clone());
    (spec.run)(&mut ctx, Variant::Unoptimized, &RunConfig::default()).expect("runs");
    let report = profiler.report(&ctx);
    let mc = mc.lock();
    assert_eq!(report.stats.leaked_bytes, mc.leaked_bytes());
    assert_eq!(report.stats.leaked_objects as usize, mc.leaks().len());
    assert_eq!(mc.leaks()[0].label, "GSD.concs");
}
