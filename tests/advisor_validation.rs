//! Integration test: the savings advisor's predictions versus the
//! reductions actually achieved by the paper's fixes (Table 4).
//!
//! The advisor models each finding as a byte reduction over an interval of
//! the recorded usage curve; its estimate is an upper bound but should land
//! near the measured reduction where the paper's fix covers the findings.

use drgpum::prelude::*;
use drgpum::workloads::common::Variant;
use drgpum::workloads::registry::{RunConfig, WorkloadSpec};
use gpu_sim::DeviceContext;

fn predicted(spec: &WorkloadSpec) -> f64 {
    let mut ctx = DeviceContext::new_default();
    let mut options = ProfilerOptions::intra_object();
    if let Some(elem) = spec.elem_size_hint {
        options.elem_size = elem;
    }
    if spec.uses_pool {
        options.track_pool_tensors = true;
    }
    let profiler = Profiler::attach(&mut ctx, options);
    let cfg = RunConfig {
        pool_observer: spec
            .uses_pool
            .then(|| profiler.collector() as drgpum::sim::pool::SharedPoolObserver),
    };
    (spec.run)(&mut ctx, Variant::Unoptimized, &cfg).expect("runs");
    profiler.estimate_savings(&ctx).reduction_pct()
}

fn achieved(spec: &WorkloadSpec) -> f64 {
    let peak = |variant| {
        let out = spec.run_fresh(variant).expect("runs");
        out.pool_peak_bytes.unwrap_or(out.peak_bytes) as f64
    };
    100.0 * (1.0 - peak(Variant::Optimized) / peak(Variant::Unoptimized))
}

#[test]
fn advisor_predictions_track_achieved_reductions() {
    // Workloads whose Table 4 fix is exactly the set of modelled findings:
    // the prediction should land within a few points of the measurement.
    for name in ["dwt2d", "2MM", "3MM", "XSBench", "GramSchmidt"] {
        let spec = drgpum::workloads::by_name(name).expect("registered");
        let predicted = predicted(&spec);
        let achieved = achieved(&spec);
        assert!(
            (predicted - achieved).abs() <= 5.0,
            "{name}: predicted {predicted:.1}% vs achieved {achieved:.1}%"
        );
    }
}

#[test]
fn advisor_upper_bounds_hold_where_fixes_compose_loosely() {
    // huffman/Darknet/Laghos/MiniMDock: the estimate is an upper bound on
    // top of the achieved reduction (all modelled fixes assumed perfectly
    // composable) but must stay in the same ballpark.
    for name in ["huffman", "Darknet", "Laghos", "MiniMDock"] {
        let spec = drgpum::workloads::by_name(name).expect("registered");
        let predicted = predicted(&spec);
        let achieved = achieved(&spec);
        assert!(
            predicted + 3.0 >= achieved,
            "{name}: prediction {predicted:.1}% must not undershoot {achieved:.1}% badly"
        );
        assert!(
            predicted - achieved <= 15.0,
            "{name}: prediction {predicted:.1}% is wildly above {achieved:.1}%"
        );
    }
}

#[test]
fn advisor_never_predicts_negative_or_impossible_savings() {
    for spec in drgpum::workloads::all() {
        let p = predicted(&spec);
        assert!(
            (0.0..=100.0).contains(&p),
            "{}: prediction {p}% out of range",
            spec.name
        );
    }
}
