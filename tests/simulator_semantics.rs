//! Integration tests on simulator-level guarantees the profiler relies on:
//! determinism, timing-model sanity, and cross-component agreement.

use drgpum::prelude::*;
use drgpum::workloads::common::Variant;
use drgpum::workloads::registry::RunConfig;
use gpu_sim::SplitMix64;

/// Uniform draw in `[lo, hi)` from the deterministic generator.
fn range(rng: &mut SplitMix64, lo: u64, hi: u64) -> u64 {
    lo + rng.next_below(hi - lo)
}

#[test]
fn identical_runs_are_bit_identical() {
    let run = || {
        let spec = drgpum::workloads::by_name("3MM").expect("registered");
        let mut ctx = DeviceContext::new_default();
        let profiler = Profiler::attach(&mut ctx, ProfilerOptions::intra_object());
        let out = (spec.run)(&mut ctx, Variant::Unoptimized, &RunConfig::default()).unwrap();
        (out, profiler.report(&ctx))
    };
    let (out1, rep1) = run();
    let (out2, rep2) = run();
    assert_eq!(out1, out2, "run outcomes must be deterministic");
    assert_eq!(rep1, rep2, "reports must be deterministic");
}

#[test]
fn a100_runs_faster_than_rtx3090_on_bandwidth_bound_work() {
    // Table 3 relationship: the A100's higher bandwidth and parallelism
    // make the same (bandwidth/latency bound) workload finish earlier in
    // simulated time.
    for name in ["2MM", "BICG", "Darknet"] {
        let spec = drgpum::workloads::by_name(name).expect("registered");
        let rtx = {
            let mut ctx = DeviceContext::new(PlatformConfig::rtx3090());
            (spec.run)(&mut ctx, Variant::Unoptimized, &RunConfig::default()).unwrap()
        };
        let a100 = {
            let mut ctx = DeviceContext::new(PlatformConfig::a100());
            (spec.run)(&mut ctx, Variant::Unoptimized, &RunConfig::default()).unwrap()
        };
        assert!(
            a100.elapsed < rtx.elapsed,
            "{name}: a100 {:?} should beat rtx3090 {:?}",
            a100.elapsed,
            rtx.elapsed
        );
    }
}

#[test]
fn multi_stream_overlap_beats_serialized_execution() {
    // Two independent kernels on two streams must finish earlier than the
    // same work on one stream.
    let build = |two_streams: bool| {
        let mut ctx = DeviceContext::new_default();
        let s1 = ctx.create_stream();
        let s2 = if two_streams { ctx.create_stream() } else { s1 };
        let n = 64 * 1024u64;
        let a = ctx.malloc(n * 4, "a").unwrap();
        let b = ctx.malloc(n * 4, "b").unwrap();
        ctx.memset(a, 0, n * 4).unwrap();
        ctx.memset(b, 0, n * 4).unwrap();
        ctx.launch("ka", LaunchConfig::cover(n, 256).unwrap(), s1, move |t| {
            let i = t.global_x();
            if i < n {
                t.store_f32(a + i * 4, 1.0);
            }
        })
        .unwrap();
        ctx.launch("kb", LaunchConfig::cover(n, 256).unwrap(), s2, move |t| {
            let i = t.global_x();
            if i < n {
                t.store_f32(b + i * 4, 2.0);
            }
        })
        .unwrap();
        ctx.sync_device().as_ns()
    };
    let serial = build(false);
    let overlapped = build(true);
    assert!(
        overlapped < serial,
        "overlap {overlapped} must beat serial {serial}"
    );
}

#[test]
fn profiler_and_allocator_agree_on_every_workload() {
    for spec in drgpum::workloads::all() {
        let mut ctx = DeviceContext::new_default();
        let profiler = Profiler::attach(&mut ctx, ProfilerOptions::object_level());
        let cfg = RunConfig {
            pool_observer: spec
                .uses_pool
                .then(|| profiler.collector() as drgpum::sim::pool::SharedPoolObserver),
        };
        (spec.run)(&mut ctx, Variant::Unoptimized, &cfg).unwrap();
        let report = profiler.report(&ctx);
        assert_eq!(
            report.stats.peak_bytes,
            ctx.allocator().stats().peak_bytes,
            "{}: collector curve peak must equal the allocator high-water mark",
            spec.name
        );
        assert_eq!(
            report.stats.gpu_apis,
            ctx.stats().gpu_api_calls,
            "{}: API counts must agree",
            spec.name
        );
    }
}

#[test]
fn oom_is_recoverable_and_invisible_to_the_profiler_trace() {
    let mut ctx = DeviceContext::new(PlatformConfig::test_tiny()); // 1 MiB
    let profiler = Profiler::attach(&mut ctx, ProfilerOptions::object_level());
    let a = ctx.malloc(512 * 1024, "a").unwrap();
    // Too big: fails cleanly, no API event, context still usable.
    assert!(matches!(
        ctx.malloc(800 * 1024, "too_big"),
        Err(SimError::OutOfMemory { .. })
    ));
    let b = ctx.malloc(256 * 1024, "b").unwrap();
    ctx.memset(a, 0, 512 * 1024).unwrap();
    ctx.memset(b, 0, 256 * 1024).unwrap();
    ctx.free(a).unwrap();
    ctx.free(b).unwrap();
    let report = profiler.report(&ctx);
    assert_eq!(
        report.stats.objects, 2,
        "the failed malloc is not an object"
    );
    assert_eq!(report.stats.leaked_objects, 0);
}

/// The unified-memory residency tracker against a naive model.
#[test]
fn unified_manager_matches_model() {
    use drgpum::sim::mem::PAGE_SIZE;
    use drgpum::sim::unified::{Side, UnifiedManager};
    for seed in 0..32u64 {
        let mut rng = SplitMix64::new(seed);
        let n_ops = range(&mut rng, 1, 60) as usize;
        let ops: Vec<(bool, u64)> = (0..n_ops)
            .map(|_| (rng.chance(0.5), range(&mut rng, 0, 16)))
            .collect();
        let base = gpu_sim::DevicePtr::new(0x7f00_0000_0000);
        let pages = 16u64;
        let mut m = UnifiedManager::new();
        m.register(base, pages * PAGE_SIZE);
        let mut model = vec![Side::Host; pages as usize];
        let mut model_migrations = 0u64;
        for (to_device, page) in ops {
            let side = if to_device { Side::Device } else { Side::Host };
            let addr = base + page * PAGE_SIZE + 8;
            let migs = m.ensure_resident(addr, 4, side);
            let expected = usize::from(model[page as usize] != side);
            assert_eq!(migs.len(), expected, "seed {seed}");
            model[page as usize] = side;
            model_migrations += expected as u64;
            assert_eq!(m.residency(addr), Some(side), "seed {seed}");
        }
        assert_eq!(m.total_migrations(), model_migrations, "seed {seed}");
    }
}

/// The caching pool against a naive free-space model.
#[test]
fn caching_pool_never_overlaps_tensors() {
    use drgpum::sim::pool::CachingPool;
    for seed in 0..32u64 {
        let mut rng = SplitMix64::new(seed);
        let n_ops = range(&mut rng, 1, 60) as usize;
        let ops: Vec<(bool, u64, usize)> = (0..n_ops)
            .map(|_| {
                (
                    rng.chance(0.5),
                    range(&mut rng, 1, 4096),
                    range(&mut rng, 0, 16) as usize,
                )
            })
            .collect();
        let mut ctx = DeviceContext::new_default();
        let mut pool = CachingPool::reserve(&mut ctx, 1 << 16).unwrap();
        let mut live: Vec<(gpu_sim::DevicePtr, u64)> = Vec::new();
        for (is_alloc, size, nth) in ops {
            if is_alloc {
                if let Ok(ptr) = pool.alloc(&mut ctx, size, "t") {
                    live.push((ptr, size));
                }
            } else if !live.is_empty() {
                let (ptr, _) = live.remove(nth % live.len());
                pool.free(ptr).unwrap();
            }
            let mut ranges: Vec<(u64, u64)> =
                live.iter().map(|(p, s)| (p.addr(), p.addr() + s)).collect();
            ranges.sort_unstable();
            for w in ranges.windows(2) {
                assert!(
                    w[0].1 <= w[1].0,
                    "seed {seed}: pool handed out overlapping tensors"
                );
            }
            let model_bytes: u64 = live.iter().map(|(_, s)| s).sum();
            assert_eq!(pool.stats().allocated_bytes, model_bytes, "seed {seed}");
        }
    }
}
