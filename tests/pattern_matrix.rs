//! Integration test: the paper's Table 1 as an executable assertion.
//!
//! For every workload, every pattern the paper reports must be detected on
//! the unoptimized run, and the detectors must stay silent on patterns that
//! cannot occur (e.g. no memory leak in programs that free everything).

use drgpum::prelude::*;
use drgpum::workloads::common::Variant;
use drgpum::workloads::registry::{RunConfig, WorkloadSpec};

fn profile(spec: &WorkloadSpec, variant: Variant) -> Report {
    let mut ctx = DeviceContext::new_default();
    let mut options = ProfilerOptions::intra_object();
    if let Some(elem) = spec.elem_size_hint {
        options.elem_size = elem;
    }
    if spec.uses_pool {
        options.track_pool_tensors = true;
    }
    let profiler = Profiler::attach(&mut ctx, options);
    let cfg = RunConfig {
        pool_observer: spec
            .uses_pool
            .then(|| profiler.collector() as drgpum::sim::pool::SharedPoolObserver),
    };
    (spec.run)(&mut ctx, variant, &cfg).expect("workload runs");
    profiler.report(&ctx)
}

#[test]
fn every_expected_pattern_is_detected() {
    for spec in drgpum::workloads::all() {
        let report = profile(&spec, Variant::Unoptimized);
        let detected = report.patterns_present();
        for expected in spec.expected_patterns {
            assert!(
                detected.contains(expected),
                "{}: paper expects {} but it was not detected; found {:?}",
                spec.name,
                expected,
                detected
            );
        }
    }
}

#[test]
fn leaks_only_where_the_paper_reports_them() {
    for spec in drgpum::workloads::all() {
        let report = profile(&spec, Variant::Unoptimized);
        let expects_leak = spec.expected_patterns.contains(&PatternKind::MemoryLeak);
        assert_eq!(
            report.has_pattern(PatternKind::MemoryLeak),
            expects_leak,
            "{}: leak detection mismatch",
            spec.name
        );
    }
}

#[test]
fn optimized_variants_fix_the_headline_patterns() {
    // The pattern the paper's fix targets must disappear (or strictly
    // shrink) in the optimized variant.
    let cases: &[(&str, PatternKind)] = &[
        ("huffman", PatternKind::UnusedAllocation),
        ("Darknet", PatternKind::DeadWrite),
        ("Darknet", PatternKind::MemoryLeak),
        ("XSBench", PatternKind::MemoryLeak),
        ("XSBench", PatternKind::Overallocation),
        ("MiniMDock", PatternKind::Overallocation),
        ("PyTorch", PatternKind::UnusedAllocation),
    ];
    for (name, pattern) in cases {
        let spec = drgpum::workloads::by_name(name).expect("registered");
        let opt = profile(&spec, Variant::Optimized);
        assert!(
            !opt.has_pattern(*pattern),
            "{name}: the paper's fix should eliminate {pattern}"
        );
    }

    // Laghos' fix targets q_dx/q_dy specifically (Sec. 7.7); other objects
    // freed at program exit legitimately keep trivial LD findings.
    let spec = drgpum::workloads::by_name("Laghos").expect("registered");
    let opt = profile(&spec, Variant::Optimized);
    for label in ["q_dx", "q_dy"] {
        assert!(
            !opt.findings_for(label)
                .iter()
                .any(|f| f.kind() == PatternKind::LateDeallocation),
            "Laghos: {label} must be freed right after UpdateQuadratureData"
        );
    }
}

#[test]
fn findings_are_prioritized_peak_first() {
    let spec = drgpum::workloads::by_name("Darknet").expect("registered");
    let report = profile(&spec, Variant::Unoptimized);
    // Findings are sorted by (at_peak, wasted_bytes) descending.
    let priorities: Vec<(bool, u64)> = report.findings.iter().map(|f| f.priority()).collect();
    let mut sorted = priorities.clone();
    sorted.sort_by(|a, b| b.cmp(a));
    assert_eq!(
        priorities, sorted,
        "findings must be ranked most-severe first"
    );
}

#[test]
fn reports_resolve_call_paths_to_source_lines() {
    let spec = drgpum::workloads::by_name("Laghos").expect("registered");
    let report = profile(&spec, Variant::Unoptimized);
    let q_dx = report.findings_for("q_dx");
    assert!(!q_dx.is_empty());
    let path = &q_dx[0].object.alloc_path;
    assert!(
        path.iter()
            .any(|frame| frame.contains("laghos_assembly.cpp")),
        "q_dx's allocation call path must point into QUpdate: {path:?}"
    );
}
