//! Randomized stress test: generate random (but valid) GPU programs, run
//! the full profiler stack over them, and check global invariants —
//! robustness beyond the hand-written workloads.

use drgpum::prelude::*;
use gpu_sim::SplitMix64;

/// Uniform draw in `[lo, hi)` from the deterministic generator.
fn range(rng: &mut SplitMix64, lo: u64, hi: u64) -> u64 {
    lo + rng.next_below(hi - lo)
}

#[derive(Debug)]
struct Program {
    ops: Vec<Op>,
}

#[derive(Debug)]
enum Op {
    Malloc {
        size: u64,
    },
    FreeNth(usize),
    MemsetNth {
        nth: usize,
        value: u8,
    },
    H2dNth(usize),
    KernelTouch {
        nth: usize,
        write: bool,
        fraction: u8,
    },
}

fn random_program(rng: &mut SplitMix64, len: usize) -> Program {
    let ops = (0..len)
        .map(|_| match range(rng, 0, 10) {
            0..=2 => Op::Malloc {
                size: range(rng, 64, 16_384),
            },
            3 => Op::FreeNth(range(rng, 0, 32) as usize),
            4..=5 => Op::MemsetNth {
                nth: range(rng, 0, 32) as usize,
                value: range(rng, 0, 256) as u8,
            },
            6 => Op::H2dNth(range(rng, 0, 32) as usize),
            _ => Op::KernelTouch {
                nth: range(rng, 0, 32) as usize,
                write: rng.chance(0.5),
                fraction: range(rng, 1, 5) as u8,
            },
        })
        .collect();
    Program { ops }
}

/// Executes the program; returns the number of GPU APIs issued and live
/// allocations left.
fn execute(ctx: &mut DeviceContext, program: &Program) -> (u64, usize) {
    let mut live: Vec<(gpu_sim::DevicePtr, u64)> = Vec::new();
    let mut api_count = 0u64;
    for op in &program.ops {
        match op {
            Op::Malloc { size } => {
                let ptr = ctx.malloc(*size, format!("obj{api_count}")).expect("fits");
                live.push((ptr, *size));
                api_count += 1;
            }
            Op::FreeNth(n) => {
                if !live.is_empty() {
                    let (ptr, _) = live.remove(n % live.len());
                    ctx.free(ptr).expect("valid");
                    api_count += 1;
                }
            }
            Op::MemsetNth { nth, value } => {
                if !live.is_empty() {
                    let (ptr, size) = live[nth % live.len()];
                    ctx.memset(ptr, *value, size).expect("valid");
                    api_count += 1;
                }
            }
            Op::H2dNth(nth) => {
                if !live.is_empty() {
                    let (ptr, size) = live[nth % live.len()];
                    ctx.memcpy_h2d(ptr, &vec![7u8; size as usize])
                        .expect("valid");
                    api_count += 1;
                }
            }
            Op::KernelTouch {
                nth,
                write,
                fraction,
            } => {
                if !live.is_empty() {
                    let (ptr, size) = live[nth % live.len()];
                    let elems = (size / 4 / u64::from(*fraction)).max(1);
                    let write = *write;
                    ctx.launch(
                        "touch",
                        LaunchConfig::cover(elems, 32).unwrap(),
                        StreamId::DEFAULT,
                        move |t| {
                            let i = t.global_x();
                            if i < elems {
                                if write {
                                    t.store_f32(ptr + i * 4, i as f32);
                                } else {
                                    let _ = t.load_f32(ptr + i * 4);
                                }
                            }
                        },
                    )
                    .expect("launches");
                    api_count += 1;
                }
            }
        }
    }
    (api_count, live.len())
}

#[test]
fn random_programs_uphold_profiler_invariants() {
    for seed in 0..40u64 {
        let mut rng = SplitMix64::new(seed);
        let len = range(&mut rng, 5, 60) as usize;
        let program = random_program(&mut rng, len);
        let mut ctx = DeviceContext::new_default();
        let profiler = Profiler::attach(&mut ctx, ProfilerOptions::intra_object());
        let (api_count, leaked) = execute(&mut ctx, &program);
        let report = profiler.report(&ctx);

        // Accounting invariants.
        assert_eq!(report.stats.gpu_apis, api_count, "seed {seed}");
        assert_eq!(report.stats.leaked_objects as usize, leaked, "seed {seed}");
        assert_eq!(
            report.stats.peak_bytes,
            ctx.allocator().stats().peak_bytes,
            "seed {seed}"
        );

        // Findings reference known objects with non-empty suggestions.
        for f in &report.findings {
            assert!(!f.object.label.is_empty(), "seed {seed}");
            assert!(!f.suggestion.is_empty(), "seed {seed}");
        }
        // Soundness spot-check: every reported leak is genuinely live.
        let leak_count = report
            .findings
            .iter()
            .filter(|f| f.kind() == PatternKind::MemoryLeak)
            .count();
        assert_eq!(leak_count, leaked, "seed {seed}");

        // Renderers never panic and exports round-trip.
        let _ = report.render_text();
        let json = drgpum::profiler::export::report_json(&report);
        let _: serde_json::Value =
            serde_json::from_str(&serde_json::to_string(&json).expect("serialize"))
                .expect("round-trip");
        let trace = profiler.perfetto_trace(&ctx);
        assert!(trace["traceEvents"].is_array(), "seed {seed}");

        // Saved-trace replay reproduces the live analysis.
        let collector = profiler.collector();
        let collector = collector.lock();
        let saved =
            drgpum::profiler::trace_io::save(&collector, ctx.call_stack().table(), "rtx3090");
        drop(collector);
        let replayed = saved.reanalyze(&Thresholds::default());
        assert_eq!(
            report.patterns_present(),
            replayed.patterns_present(),
            "seed {seed}"
        );
        assert_eq!(report.stats, replayed.stats, "seed {seed}");

        // The advisor stays in range.
        let est = profiler.estimate_savings(&ctx);
        assert!(est.estimated_peak <= est.original_peak, "seed {seed}");
    }
}
