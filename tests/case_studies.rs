//! Integration tests mirroring the paper's Sec. 7 case studies: not just
//! *that* each pattern fires, but the quantitative evidence behind it.

use drgpum::prelude::*;
use drgpum::profiler::PatternEvidence;
use drgpum::workloads::common::Variant;
use drgpum::workloads::registry::{RunConfig, WorkloadSpec};

fn profile(spec: &WorkloadSpec) -> Report {
    let mut ctx = DeviceContext::new_default();
    let mut options = ProfilerOptions::intra_object();
    if let Some(elem) = spec.elem_size_hint {
        options.elem_size = elem;
    }
    if spec.uses_pool {
        options.track_pool_tensors = true;
    }
    let profiler = Profiler::attach(&mut ctx, options);
    let cfg = RunConfig {
        pool_observer: spec
            .uses_pool
            .then(|| profiler.collector() as drgpum::sim::pool::SharedPoolObserver),
    };
    (spec.run)(&mut ctx, Variant::Unoptimized, &cfg).expect("runs");
    profiler.report(&ctx)
}

fn by_name(name: &str) -> Report {
    profile(&drgpum::workloads::by_name(name).expect("registered"))
}

/// Sec. 7.1: SimpleMultiCopy — `d_data_out1` matches early allocation with
/// several GPU APIs before its first-touch kernel.
#[test]
fn simple_multi_copy_out1_early_allocation() {
    let report = by_name("SimpleMultiCopy");
    let ea = report
        .findings_for("d_data_out1")
        .into_iter()
        .find(|f| f.kind() == PatternKind::EarlyAllocation)
        .expect("EA on d_data_out1");
    match &ea.evidence {
        PatternEvidence::EarlyAllocation {
            intervening,
            first_access,
            ..
        } => {
            // The paper counts three APIs (ALLOC, SET, ALLOC); our setup
            // phase has four. The first touch is the stream-1 kernel.
            assert!(*intervening >= 3, "got {intervening}");
            assert!(
                first_access.name.starts_with("KERL"),
                "{}",
                first_access.name
            );
        }
        other => panic!("unexpected {other:?}"),
    }
    // d_data_in1 idles through the allocations and memsets (Fig. 7 ①).
    let ti = report
        .findings_for("d_data_in1")
        .into_iter()
        .find(|f| f.kind() == PatternKind::TemporaryIdleness)
        .expect("TI on d_data_in1");
    match &ti.evidence {
        PatternEvidence::TemporaryIdleness { spans } => {
            assert!(spans.iter().any(|s| s.intervening >= 4), "{spans:?}");
        }
        other => panic!("unexpected {other:?}"),
    }
}

/// Sec. 7.2: Darknet — `l.weights_gpu` is initialized twice without an
/// intervening read; outputs are early; deltas are unused.
#[test]
fn darknet_weights_dead_write_details() {
    let report = by_name("Darknet");
    let dw = report
        .findings_for("l0.weights_gpu")
        .into_iter()
        .find(|f| f.kind() == PatternKind::DeadWrite)
        .expect("DW on l0.weights_gpu");
    match &dw.evidence {
        PatternEvidence::DeadWrite { first, second } => {
            // Both writes are host→device copies (cuda_make_array then
            // cuda_push_array).
            assert!(first.name.starts_with("CPY"), "{}", first.name);
            assert!(second.name.starts_with("CPY"), "{}", second.name);
        }
        other => panic!("unexpected {other:?}"),
    }
    // Every layer's delta buffer is an unused allocation.
    let ua_count = report
        .findings
        .iter()
        .filter(|f| {
            f.kind() == PatternKind::UnusedAllocation && f.object.label.contains("delta_gpu")
        })
        .count();
    assert_eq!(ua_count, drgpum::workloads::darknet::LAYERS);
    // The workspace leaks.
    assert!(report
        .findings_for("net.workspace")
        .iter()
        .any(|f| f.kind() == PatternKind::MemoryLeak));
}

/// Sec. 7.3: GramSchmidt — `R_gpu` is sliced by `gramschmidt_kernel3`
/// (n−1 disjoint slices) and its per-slice access frequencies are highly
/// skewed (the paper measures 58 % variance; ours lands nearby).
#[test]
fn gramschmidt_r_gpu_structured_access_and_variance() {
    let report = by_name("GramSchmidt");
    let n = drgpum::workloads::polybench::gramschmidt::N as usize;
    let sa = report
        .findings_for("R_gpu")
        .into_iter()
        .find(|f| f.kind() == PatternKind::StructuredAccess)
        .expect("SA on R_gpu");
    match &sa.evidence {
        PatternEvidence::StructuredAccess { kernel, slices, .. } => {
            assert_eq!(kernel, "gramschmidt_kernel3");
            assert_eq!(*slices, n - 1, "one slice per iteration except the last");
        }
        other => panic!("unexpected {other:?}"),
    }
    let nuaf = report
        .findings_for("R_gpu")
        .into_iter()
        .find(|f| f.kind() == PatternKind::NonUniformAccessFrequency)
        .expect("NUAF on R_gpu");
    match &nuaf.evidence {
        PatternEvidence::NonUniformAccessFrequency { cov_pct, .. } => {
            assert!(
                (40.0..75.0).contains(cov_pct),
                "paper reports 58%; measured {cov_pct:.1}%"
            );
        }
        other => panic!("unexpected {other:?}"),
    }
}

/// Sec. 7.3: BICG — `s_gpu` and `q_gpu` match non-uniform access frequency.
#[test]
fn bicg_vectors_have_skewed_access_frequencies() {
    let report = by_name("BICG");
    for label in ["s_gpu", "q_gpu"] {
        let nuaf = report
            .findings_for(label)
            .into_iter()
            .find(|f| f.kind() == PatternKind::NonUniformAccessFrequency)
            .unwrap_or_else(|| panic!("NUAF on {label}"));
        match &nuaf.evidence {
            PatternEvidence::NonUniformAccessFrequency { cov_pct, .. } => {
                assert!(*cov_pct > 20.0, "{label}: {cov_pct:.1}%");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

/// Sec. 7.4: PyTorch — the `columns` tensor of 1×1 conv layers is an
/// unused allocation (the upstreamed PR 79183 fix).
#[test]
fn pytorch_columns_unused_for_1x1_convs() {
    let report = by_name("PyTorch");
    let unused_columns: Vec<String> = report
        .findings
        .iter()
        .filter(|f| f.kind() == PatternKind::UnusedAllocation)
        .map(|f| f.object.label.clone())
        .filter(|l| l.starts_with("columns"))
        .collect();
    assert_eq!(
        unused_columns.len(),
        2,
        "layers 2 and 3 are 1x1: {unused_columns:?}"
    );
    // And their allocation call path points into slow_conv2d_forward, like
    // the paper's Listing 4.
    let f = report
        .findings
        .iter()
        .find(|f| f.object.label == "columns3")
        .expect("columns3 finding");
    assert!(f
        .object
        .alloc_path
        .iter()
        .any(|frame| frame.contains("slow_conv2d_forward")));
}

/// Sec. 7.5: XSBench — `GSD.index_grid` has ~5 % of elements accessed with
/// near-zero fragmentation (easy-win quadrant); `GSD.concs` leaks.
#[test]
fn xsbench_index_grid_overallocation_details() {
    let report = by_name("XSBench");
    let oa = report
        .findings_for("GSD.index_grid")
        .into_iter()
        .find(|f| f.kind() == PatternKind::Overallocation)
        .expect("OA on GSD.index_grid");
    match &oa.evidence {
        PatternEvidence::Overallocation {
            accessed_pct,
            fragmentation_pct,
            guidance,
            ..
        } => {
            assert!(
                (*accessed_pct - 5.0).abs() < 0.2,
                "paper: 5%; measured {accessed_pct:.2}%"
            );
            assert!(*fragmentation_pct < 1.0, "chunks are clustered");
            assert!(guidance.worth_investigating(), "easy-win quadrant");
        }
        other => panic!("unexpected {other:?}"),
    }
    assert!(report
        .findings_for("GSD.concs")
        .iter()
        .any(|f| f.kind() == PatternKind::MemoryLeak));
}

/// Sec. 7.6: MiniMDock — `pMem_conformations` is the largest object, with
/// a vanishing accessed fraction and near-zero fragmentation.
#[test]
fn minimdock_conformations_overallocation_details() {
    let report = by_name("MiniMDock");
    let oa = report
        .findings_for("pMem_conformations")
        .into_iter()
        .find(|f| f.kind() == PatternKind::Overallocation)
        .expect("OA on pMem_conformations");
    assert!(oa.at_peak, "the largest object sits at the memory peak");
    match &oa.evidence {
        PatternEvidence::Overallocation {
            accessed_pct,
            fragmentation_pct,
            ..
        } => {
            // Paper: 2.4e-3 % accessed, 4.89e-3 % fragmentation.
            assert!(*accessed_pct < 0.05, "measured {accessed_pct}%");
            assert!(*fragmentation_pct < 0.05, "measured {fragmentation_pct}%");
        }
        other => panic!("unexpected {other:?}"),
    }
    // It is also the single largest wasted-bytes finding, so it ranks first.
    assert_eq!(report.findings[0].object.label, "pMem_conformations");
}

/// Sec. 7.7: Laghos — `q_dx` and `q_dy` are last accessed in
/// UpdateQuadratureData and freed only at exit.
#[test]
fn laghos_quadrature_buffers_late_deallocation_details() {
    let report = by_name("Laghos");
    for label in ["q_dx", "q_dy"] {
        let ld = report
            .findings_for(label)
            .into_iter()
            .find(|f| f.kind() == PatternKind::LateDeallocation)
            .unwrap_or_else(|| panic!("LD on {label}"));
        match &ld.evidence {
            PatternEvidence::LateDeallocation {
                last_access,
                intervening,
                ..
            } => {
                assert!(last_access.name.starts_with("KERL"), "{}", last_access.name);
                assert!(*intervening >= 2, "the whole solver runs in between");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(ld.suggestion.contains(label), "suggestion names the object");
    }
}
