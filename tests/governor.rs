//! Resource-governed sessions: the memory budget's adaptive degradation
//! ladder, fidelity with an ample budget, and crash-consistent streaming
//! traces (including the trace-byte budget).
//!
//! The contract: a tripped budget demotes collection one honest,
//! reported rung at a time; an ample budget changes *nothing* — reports
//! and saved traces are byte-identical to an ungoverned run.

use drgpum::prelude::*;
use drgpum::profiler::{export, trace_io, CollectionRung, ResourceBudget};
use drgpum::workloads::common::Variant;
use drgpum::workloads::registry::RunConfig;
use std::path::PathBuf;

/// A per-test temp path that never collides across parallel test runs.
fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("drgpum-gov-{}-{name}", std::process::id()))
}

/// Runs `workload` under `options`, returning the profiler and context.
fn profiled_run(workload: &str, options: ProfilerOptions) -> (Profiler, DeviceContext) {
    let spec = drgpum::workloads::by_name(workload).expect("registered workload");
    let mut ctx = DeviceContext::new_default();
    let profiler = Profiler::attach(&mut ctx, options);
    (spec.run)(&mut ctx, Variant::Unoptimized, &RunConfig::default()).expect("clean run");
    (profiler, ctx)
}

#[test]
fn tiny_budget_walks_every_ladder_rung_and_names_each_demotion() {
    let budget = ResourceBudget::unlimited().with_resident_bytes(64 << 10);
    let (profiler, ctx) = profiled_run("BICG", ProfilerOptions::intra_object().with_budget(budget));
    let report = profiler.report(&ctx);
    assert!(
        report.is_degraded(),
        "a tripped budget must mark the report"
    );

    let governor_msgs: Vec<&str> = report
        .degradations
        .iter()
        .filter(|d| d.stage == "governor")
        .map(|d| d.detail.as_str())
        .collect();
    for step in [
        "full-access-maps -> coalesced-only",
        "coalesced-only -> sampled",
        "sampled -> counters-only",
    ] {
        assert!(
            governor_msgs.iter().any(|m| m.contains(step)),
            "missing ladder step `{step}` in {governor_msgs:?}"
        );
    }
    let rung = profiler.collector().lock().collection_rung();
    assert_eq!(rung, CollectionRung::CountersOnly);

    // The degraded report still accounts for every detector family and
    // still exports.
    assert_eq!(report.detectors.len(), 4);
    serde_json::to_string(&export::report_json(&report)).expect("degraded report exports");
}

#[test]
fn ample_budget_is_byte_identical_to_an_ungoverned_run() {
    for workload in ["BICG", "huffman"] {
        let (free, free_ctx) = profiled_run(workload, ProfilerOptions::intra_object());
        let governed_opts = ProfilerOptions::intra_object().with_budget(
            ResourceBudget::unlimited()
                .with_resident_bytes(1 << 30)
                .with_trace_bytes(1 << 30),
        );
        let (governed, governed_ctx) = profiled_run(workload, governed_opts);

        let (r1, r2) = (free.report(&free_ctx), governed.report(&governed_ctx));
        assert!(!r2.is_degraded(), "{workload}: ample budget never degrades");
        assert_eq!(
            r1.render_text(),
            r2.render_text(),
            "{workload}: rendered reports must be byte-identical"
        );
        assert_eq!(
            serde_json::to_string(&export::report_json(&r1)).unwrap(),
            serde_json::to_string(&export::report_json(&r2)).unwrap(),
            "{workload}: JSON exports must be byte-identical"
        );

        let save = |p: &Profiler, ctx: &DeviceContext| {
            let collector = p.collector();
            let collector = collector.lock();
            trace_io::save(&collector, ctx.call_stack().table(), "rtx3090").to_text()
        };
        assert_eq!(
            save(&free, &free_ctx),
            save(&governed, &governed_ctx),
            "{workload}: saved traces must be byte-identical"
        );
    }
}

#[test]
fn streaming_trace_round_trips_losslessly_and_matches_the_batch_report() {
    let path = temp_path("roundtrip.trace");
    let spec = drgpum::workloads::by_name("BICG").expect("registered");
    let mut ctx = DeviceContext::new_default();
    let profiler = Profiler::attach_streaming(&mut ctx, ProfilerOptions::intra_object(), &path)
        .expect("trace file creatable");
    (spec.run)(&mut ctx, Variant::Unoptimized, &RunConfig::default()).expect("clean run");
    profiler.finish_stream().expect("clean finish");

    let text = std::fs::read_to_string(&path).expect("trace readable");
    let (salvaged, losses) = trace_io::salvage(&text);
    assert!(
        losses.is_lossless(),
        "a cleanly finished stream recovers losslessly: {:?}",
        losses.notes
    );

    // The streamed recording must analyze exactly like the batch one.
    let collector = profiler.collector();
    let collector = collector.lock();
    let batch = trace_io::save(&collector, ctx.call_stack().table(), &ctx.config().name);
    drop(collector);
    assert_eq!(salvaged.api_count(), batch.api_count());
    assert_eq!(salvaged.object_count(), batch.object_count());
    assert_eq!(
        salvaged.reanalyze(&Thresholds::default()).render_text(),
        batch.reanalyze(&Thresholds::default()).render_text(),
        "streamed and batch recordings must yield identical reports"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn trace_byte_budget_stops_streaming_with_an_honest_record() {
    let path = temp_path("budget.trace");
    let options = ProfilerOptions::intra_object()
        .with_budget(ResourceBudget::unlimited().with_trace_bytes(4 << 10));
    let spec = drgpum::workloads::by_name("BICG").expect("registered");
    let mut ctx = DeviceContext::new_default();
    let profiler =
        Profiler::attach_streaming(&mut ctx, options, &path).expect("trace file creatable");
    (spec.run)(&mut ctx, Variant::Unoptimized, &RunConfig::default()).expect("clean run");
    profiler
        .finish_stream()
        .expect("idempotent on a stopped stream");

    let report = profiler.report(&ctx);
    assert!(
        report
            .degradations
            .iter()
            .any(|d| d.stage == "governor" && d.detail.contains("trace budget exceeded")),
        "the trace-budget trip must be recorded: {:?}",
        report.degradations
    );

    // Appending stopped at the trip (a single frame may overshoot the
    // budget — the check runs between frames — but nothing follows it).
    assert!(
        !profiler.collector().lock().is_streaming(),
        "the trace-budget trip must stop the stream"
    );

    // The truncated stream still salvages to a usable prefix: the final
    // checkpoint written at the trip keeps the analysis state consistent.
    let text = std::fs::read_to_string(&path).expect("trace readable");
    let (salvaged, losses) = trace_io::salvage(&text);
    assert!(
        !losses.is_lossless(),
        "a budget-stopped stream has no clean finish"
    );
    let report = salvaged.reanalyze_with(&Thresholds::default(), losses.to_degradations());
    assert_eq!(report.detectors.len(), 4);
    std::fs::remove_file(&path).ok();
}
