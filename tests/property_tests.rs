//! Property-style tests on the core data structures and detector
//! invariants, backing the paper's "DrGPUM does not incur false positives"
//! claim (Sec. 5.6): every finding's evidence is re-checked against a naive
//! oracle on randomly generated traces. Inputs come from a seeded
//! deterministic generator, so every failure is reproducible from its seed.

use drgpum::profiler::accessmap::{AccessBitmap, FreqMap, RangeSet};
use drgpum::profiler::depgraph::{DependencyGraph, VertexAccess};
use drgpum::profiler::object::ObjectId;
use drgpum::profiler::options::Thresholds;
use drgpum::profiler::patterns::{
    object_level, redundant, AccessVia, ApiRef, ObjectAccess, ObjectView, PatternEvidence,
    TraceView,
};
use gpu_sim::mem::DeviceAllocator;
use gpu_sim::{SplitMix64, StreamId};

const CASES: u64 = 64;

/// Uniform draw in `[lo, hi)` from the deterministic generator.
fn range(rng: &mut SplitMix64, lo: u64, hi: u64) -> u64 {
    lo + rng.next_below(hi - lo)
}

// ------------------------------------------------------------ allocator

#[derive(Debug, Clone)]
enum AllocOp {
    Malloc(u64),
    FreeNth(usize),
}

fn alloc_ops(rng: &mut SplitMix64) -> Vec<AllocOp> {
    let len = range(rng, 1, 120) as usize;
    (0..len)
        .map(|_| {
            if rng.chance(0.5) {
                AllocOp::Malloc(range(rng, 1, 100_000))
            } else {
                AllocOp::FreeNth(range(rng, 0, 64) as usize)
            }
        })
        .collect()
}

#[test]
fn allocator_invariants() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let ops = alloc_ops(&mut rng);
        let capacity = 4 << 20;
        let mut a = DeviceAllocator::new(capacity);
        let mut live: Vec<(gpu_sim::DevicePtr, u64)> = Vec::new();
        for op in ops {
            match op {
                AllocOp::Malloc(size) => {
                    if let Ok(info) = a.malloc(size) {
                        live.push((info.ptr, size));
                    }
                }
                AllocOp::FreeNth(n) => {
                    if !live.is_empty() {
                        let (ptr, _) = live.remove(n % live.len());
                        a.free(ptr).expect("tracked pointer frees cleanly");
                    }
                }
            }
            // Live allocations never overlap.
            let mut ranges: Vec<(u64, u64)> =
                live.iter().map(|(p, s)| (p.addr(), p.addr() + s)).collect();
            ranges.sort_unstable();
            for w in ranges.windows(2) {
                assert!(w[0].1 <= w[1].0, "seed {seed}: overlapping allocations");
            }
            // Accounting matches our model.
            let model_in_use: u64 = live.iter().map(|(_, s)| s).sum();
            assert_eq!(a.stats().in_use_bytes, model_in_use, "seed {seed}");
            assert!(
                a.stats().peak_bytes >= a.stats().in_use_bytes,
                "seed {seed}"
            );
            assert_eq!(a.stats().live_allocations, live.len(), "seed {seed}");
        }
        // Free everything: the address space coalesces back to one region.
        for (ptr, _) in live {
            a.free(ptr).expect("valid");
        }
        assert_eq!(a.largest_free(), capacity, "seed {seed}");
    }
}

// -------------------------------------------------------- access maps

#[test]
fn bitmap_matches_boolean_model() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let len = range(&mut rng, 1, 600);
        let n_ranges = range(&mut rng, 0, 40) as usize;
        let mut bm = AccessBitmap::new(len);
        let mut model = vec![false; len as usize];
        for _ in 0..n_ranges {
            let start = range(&mut rng, 0, 600);
            let width = range(&mut rng, 0, 80);
            bm.set_range(start, start + width);
            for i in start..(start + width).min(len) {
                model[i as usize] = true;
            }
        }
        assert_eq!(
            bm.count_set(),
            model.iter().filter(|&&b| b).count() as u64,
            "seed {seed}"
        );
        for (i, &m) in model.iter().enumerate() {
            assert_eq!(bm.is_set(i as u64), m, "seed {seed} index {i}");
        }
        // Largest clear run agrees with a scan of the model.
        let mut best = 0usize;
        let mut cur = 0usize;
        for &m in &model {
            if m {
                best = best.max(cur);
                cur = 0;
            } else {
                cur += 1;
            }
        }
        best = best.max(cur);
        assert_eq!(bm.largest_clear_run(), best as u64, "seed {seed}");
    }
}

#[test]
fn rangeset_matches_boolean_model() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let n_ranges = range(&mut rng, 1, 40) as usize;
        let mut rs = RangeSet::new();
        let mut model = vec![false; 600];
        for _ in 0..n_ranges {
            let s = range(&mut rng, 0, 500);
            let w = range(&mut rng, 1, 60);
            rs.insert(s, s + w);
            for i in s..(s + w) {
                model[i as usize] = true;
            }
        }
        assert_eq!(
            rs.covered(),
            model.iter().filter(|&&b| b).count() as u64,
            "seed {seed}"
        );
        // Invariant: stored ranges are sorted, disjoint, non-adjacent.
        for w in rs.ranges().windows(2) {
            assert!(
                w[0].1 < w[1].0,
                "seed {seed}: ranges must be disjoint and separated"
            );
        }
        // Membership agrees with the model at every boundary point.
        for (i, &m) in model.iter().enumerate() {
            let i = i as u64;
            let mut probe = RangeSet::new();
            probe.insert(i, i + 1);
            assert_eq!(rs.intersects(&probe), m, "seed {seed} index {i}");
        }
    }
}

#[test]
fn freqmap_total_counts_conserved() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let n_accesses = range(&mut rng, 0, 100) as usize;
        let mut fm = FreqMap::new(256, 4);
        let mut expected_total = 0u64;
        for _ in 0..n_accesses {
            let off = range(&mut rng, 0, 256).min(255);
            let size = (range(&mut rng, 1, 8) as u32).min((256 - off) as u32);
            if size == 0 {
                continue;
            }
            fm.record(off, size);
            let first = off / 4;
            let last = (off + u64::from(size) - 1) / 4;
            expected_total += last - first + 1;
        }
        let total: u64 = fm.counts().iter().map(|&c| u64::from(c)).sum();
        assert_eq!(total, expected_total, "seed {seed}");
        assert!(fm.coefficient_of_variation_pct() >= 0.0, "seed {seed}");
    }
}

// ----------------------------------------------------- dependency graph

#[test]
fn topological_timestamps_respect_all_edges() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let len = range(&mut rng, 1, 60) as usize;
        let spec: Vec<(u32, u64, u64)> = (0..len)
            .map(|_| {
                (
                    range(&mut rng, 0, 4) as u32,
                    range(&mut rng, 0, 6),
                    range(&mut rng, 0, 6),
                )
            })
            .collect();
        let vertices: Vec<VertexAccess> = spec
            .iter()
            .map(|(stream, read, write)| VertexAccess {
                stream: StreamId(*stream),
                reads: vec![ObjectId(*read)],
                writes: vec![ObjectId(*write)],
                frees: vec![],
                after: vec![],
            })
            .collect();
        let g = DependencyGraph::build(&vertices);
        for e in g.edges() {
            assert!(
                g.timestamp(e.from) < g.timestamp(e.to),
                "seed {seed}: edge {}->{} violates topological order",
                e.from,
                e.to
            );
        }
        // Single-stream degenerates to invocation order.
        let single: Vec<VertexAccess> = spec
            .iter()
            .map(|(_, read, write)| VertexAccess {
                stream: StreamId(0),
                reads: vec![ObjectId(*read)],
                writes: vec![ObjectId(*write)],
                frees: vec![],
                after: vec![],
            })
            .collect();
        let g1 = DependencyGraph::build(&single);
        let expect: Vec<u64> = (0..single.len() as u64).collect();
        assert_eq!(g1.timestamps(), &expect[..], "seed {seed}");
    }
}

// ------------------------------------------------- detector soundness

#[test]
fn object_level_findings_are_sound() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let n_objects = range(&mut rng, 1, 20) as usize;
        let n_apis = 64;
        let mut tv = TraceView::synthetic(n_apis);
        for i in 0..n_objects {
            let alloc = range(&mut rng, 0, 16) as usize;
            let first = alloc + 1 + range(&mut rng, 0, 16) as usize;
            let last = first + range(&mut rng, 0, 16) as usize;
            let free = last + 1 + range(&mut rng, 0, 16) as usize;
            let freed = rng.chance(0.5);
            let mk = |idx: usize| ObjectAccess {
                api: ApiRef {
                    idx,
                    ts: idx as u64,
                    name: format!("API({idx})"),
                },
                read: true,
                write: false,
                via: AccessVia::Kernel,
            };
            let accesses = if first == last {
                vec![mk(first)]
            } else {
                vec![mk(first), mk(last)]
            };
            tv.objects.push(ObjectView {
                id: ObjectId(i as u64),
                label: format!("o{i}"),
                size: 512,
                alloc: Some(ApiRef {
                    idx: alloc,
                    ts: alloc as u64,
                    name: format!("API({alloc})"),
                }),
                alloc_anchor: alloc,
                free: freed.then(|| ApiRef {
                    idx: free,
                    ts: free as u64,
                    name: format!("API({free})"),
                }),
                free_anchor: None,
                accesses,
                analyzable: true,
            });
        }
        let thresholds = Thresholds::default();
        for finding in object_level::detect_all(&tv, &thresholds) {
            let obj = &tv.objects[finding.object.0 as usize];
            match &finding.evidence {
                PatternEvidence::EarlyAllocation { intervening, .. } => {
                    let alloc_ts = obj.alloc.as_ref().unwrap().ts;
                    let first_ts = obj.accesses.first().unwrap().api.ts;
                    assert!(*intervening >= 1, "seed {seed}");
                    assert_eq!(*intervening, first_ts - alloc_ts - 1, "seed {seed}");
                }
                PatternEvidence::LateDeallocation { intervening, .. } => {
                    let last_ts = obj.accesses.last().unwrap().api.ts;
                    let free_ts = obj.free.as_ref().unwrap().ts;
                    assert!(*intervening >= 1, "seed {seed}");
                    assert_eq!(*intervening, free_ts - last_ts - 1, "seed {seed}");
                }
                PatternEvidence::MemoryLeak => assert!(obj.free.is_none(), "seed {seed}"),
                PatternEvidence::UnusedAllocation => {
                    assert!(obj.accesses.is_empty(), "seed {seed}")
                }
                PatternEvidence::TemporaryIdleness { spans } => {
                    for s in spans {
                        assert!(s.intervening >= thresholds.idleness_min_apis, "seed {seed}");
                        assert_eq!(s.intervening, s.to.ts - s.from.ts - 1, "seed {seed}");
                    }
                }
                other => panic!("seed {seed}: unexpected evidence {other:?}"),
            }
        }
    }
}

#[test]
fn redundant_allocation_pairs_are_valid() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let n_objects = range(&mut rng, 2, 20) as usize;
        let mut tv = TraceView::synthetic(64);
        for i in 0..n_objects {
            let first = range(&mut rng, 0, 30) as usize;
            let span = range(&mut rng, 0, 10) as usize;
            let size = range(&mut rng, 100, 2000);
            let last = (first + span).min(63);
            let mk = |idx: usize| ObjectAccess {
                api: ApiRef {
                    idx,
                    ts: idx as u64,
                    name: format!("API({idx})"),
                },
                read: true,
                write: true,
                via: AccessVia::Kernel,
            };
            let accesses = if first == last {
                vec![mk(first)]
            } else {
                vec![mk(first), mk(last)]
            };
            tv.objects.push(ObjectView {
                id: ObjectId(i as u64),
                label: format!("o{i}"),
                size,
                alloc: None,
                alloc_anchor: 0,
                free: None,
                free_anchor: None,
                accesses,
                analyzable: true,
            });
        }
        let findings = redundant::detect_redundant_allocations(&tv, 10.0);
        let pairs = redundant::reuse_pairs(&findings);
        let mut reused_sources = std::collections::HashSet::new();
        for (consumer, source) in &pairs {
            // Each source's memory handed out at most once.
            assert!(
                reused_sources.insert(*source),
                "seed {seed}: source reused twice"
            );
            let c = &tv.objects[consumer.0 as usize];
            let s = &tv.objects[source.0 as usize];
            // Disjoint lifetimes: the source's last access strictly before
            // the consumer's first (Last sorts after First on ties).
            let s_last = s.accesses.last().unwrap().api.ts;
            let c_first = c.accesses.first().unwrap().api.ts;
            assert!(
                s_last < c_first,
                "seed {seed}: lifetimes overlap: {s_last} !< {c_first}"
            );
            // Size window respected.
            assert!(
                redundant::sizes_compatible(c.size, s.size, 10.0),
                "seed {seed}"
            );
        }
    }
}

// --------------------------------------------------------------- peaks

#[test]
fn peaks_are_true_local_maxima() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let len = range(&mut rng, 1, 80) as usize;
        let curve: Vec<u64> = (0..len).map(|_| range(&mut rng, 0, 1000)).collect();
        let samples: Vec<drgpum::profiler::peaks::UsageSample> = curve
            .iter()
            .enumerate()
            .map(|(i, &b)| drgpum::profiler::peaks::UsageSample {
                api_idx: i,
                bytes_in_use: b,
            })
            .collect();
        let peaks = drgpum::profiler::peaks::find_peaks(&samples, 3);
        let global_max = curve.iter().copied().max().unwrap_or(0);
        if global_max > 0 {
            assert!(
                !peaks.is_empty(),
                "seed {seed}: a nonzero curve has at least one peak"
            );
            assert_eq!(
                peaks[0].1, global_max,
                "seed {seed}: first peak is the global maximum"
            );
        }
        for (idx, bytes) in &peaks {
            assert_eq!(
                curve[*idx], *bytes,
                "seed {seed}: peak value comes from the curve"
            );
            // No strictly larger neighbour on either side until the value
            // changes (local maximum over distinct values).
            if *idx > 0 {
                assert!(curve[idx - 1] <= *bytes, "seed {seed}");
            }
            if idx + 1 < curve.len() {
                assert!(curve[idx + 1] <= *bytes, "seed {seed}");
            }
        }
    }
}

// ------------------------------------------------------------ memory map

/// The overhauled hot-path resolvers — flat epoch-tagged snapshot index,
/// last-hit [`ResolveCache`], span splitting — against the pre-overhaul
/// `BTreeMap` walk (`resolve_slow`), which is kept in-tree as the reference
/// semantics. Randomized alloc/free/realloc sequences run through the real
/// [`DeviceAllocator`], so freed address ranges are genuinely reused
/// (first-fit + coalescing), and the persistent cache carried across
/// mutations exercises stale-window invalidation: a hit on an epoch bumped
/// by a free or a same-base realloc would surface here as a wrong id.
#[test]
fn registry_fast_resolvers_match_btreemap_oracle() {
    use drgpum::profiler::object::{ObjectRegistry, ObjectSource, ResolveCache};
    use gpu_sim::{AddrRange, CallPath, DevicePtr};

    const CAPACITY: u64 = 1 << 20;

    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0x5EED_0000 ^ seed);
        let mut reg = ObjectRegistry::new();
        let mut dev = DeviceAllocator::new(CAPACITY);
        // (base, size) of live CUDA objects; tensors tracked per parent.
        let mut slabs: Vec<(u64, u64)> = Vec::new();
        let mut tensors: Vec<(u64, u64, u64)> = Vec::new(); // (parent base, base, size)
                                                            // One persistent cache across every mutation: epoch invalidation is
                                                            // the property under test, so the cache is never reset by hand.
        let mut cache = ResolveCache::new();
        for api in 0..120usize {
            let roll = range(&mut rng, 0, 100);
            if roll < 40 || slabs.is_empty() {
                // Allocation; small sizes keep the map dense so reuse and
                // adjacency are common.
                let size = range(&mut rng, 1, 8192);
                if let Ok(info) = dev.malloc(size) {
                    reg.on_alloc(
                        "obj",
                        AddrRange::new(info.ptr, size),
                        ObjectSource::Cuda,
                        api,
                        true,
                        CallPath::empty(),
                    );
                    slabs.push((info.ptr.addr(), size));
                }
            } else if roll < 55 {
                // Carve a pool tensor inside a live slab (innermost-wins is
                // part of the resolve contract). Tensors never overlap: at
                // most one per slab, dropped when the slab goes.
                let n = range(&mut rng, 0, slabs.len() as u64) as usize;
                let (base, size) = slabs[n];
                let has = tensors.iter().any(|&(p, _, _)| p == base);
                if !has && size >= 64 {
                    let t_len = range(&mut rng, 1, size / 2);
                    let t_off = range(&mut rng, 0, size - t_len);
                    reg.on_alloc(
                        "tensor",
                        AddrRange::new(DevicePtr::new(base + t_off), t_len),
                        ObjectSource::PoolTensor,
                        api,
                        false,
                        CallPath::empty(),
                    );
                    tensors.push((base, base + t_off, t_len));
                }
            } else if roll < 85 {
                // Free a random live object; its tensor (if any) goes first,
                // as a pool would return tensors before releasing the slab.
                let n = range(&mut rng, 0, slabs.len() as u64) as usize;
                let (base, _) = slabs.swap_remove(n);
                if let Some(t) = tensors.iter().position(|&(p, _, _)| p == base) {
                    let (_, t_base, _) = tensors.swap_remove(t);
                    reg.on_pool_free(DevicePtr::new(t_base), api);
                }
                dev.free(DevicePtr::new(base)).unwrap();
                reg.on_free(DevicePtr::new(base), api);
            } else {
                // Realloc: free + immediately malloc the same size. With a
                // first-fit allocator the same base usually comes back, so
                // the old id's window now covers a different object.
                let n = range(&mut rng, 0, slabs.len() as u64) as usize;
                let (base, size) = slabs.swap_remove(n);
                if let Some(t) = tensors.iter().position(|&(p, _, _)| p == base) {
                    let (_, t_base, _) = tensors.swap_remove(t);
                    reg.on_pool_free(DevicePtr::new(t_base), api);
                }
                dev.free(DevicePtr::new(base)).unwrap();
                reg.on_free(DevicePtr::new(base), api);
                if let Ok(info) = dev.malloc(size) {
                    reg.on_alloc(
                        "realloc",
                        AddrRange::new(info.ptr, size),
                        ObjectSource::Cuda,
                        api,
                        true,
                        CallPath::empty(),
                    );
                    slabs.push((info.ptr.addr(), size));
                }
            }

            // Point probes: biased toward live ranges and their edges, with
            // a tail of uniform addresses (mostly misses).
            for _ in 0..24 {
                let addr = if !slabs.is_empty() && rng.chance(0.8) {
                    let (base, size) = slabs[range(&mut rng, 0, slabs.len() as u64) as usize];
                    // +8 past the end probes the boundary-miss case.
                    base.wrapping_add(range(&mut rng, 0, size + 8))
                } else {
                    range(&mut rng, 0, CAPACITY)
                };
                let p = DevicePtr::new(addr);
                let oracle = reg.resolve_slow(p);
                assert_eq!(reg.resolve(p), oracle, "seed {seed}: resolve @ {addr:#x}");
                let fast = reg.resolve_cached(p, &mut cache);
                assert_eq!(
                    fast.map(|(id, _)| id),
                    oracle,
                    "seed {seed}: resolve_cached @ {addr:#x}"
                );
                if let Some((id, off)) = fast {
                    let base = reg.get(id).unwrap().range.start.addr();
                    assert_eq!(off, addr - base, "seed {seed}: offset @ {addr:#x}");
                    // Re-probe: the freshly filled window must agree with
                    // itself (the pure-hit path).
                    assert_eq!(reg.resolve_cached(p, &mut cache), Some((id, off)));
                }
            }

            // Span probe: segment-by-segment against per-byte oracle calls.
            let (start, len) = if !slabs.is_empty() && rng.chance(0.8) {
                let (base, size) = slabs[range(&mut rng, 0, slabs.len() as u64) as usize];
                (
                    base.wrapping_add(range(&mut rng, 0, size)),
                    range(&mut rng, 0, 300),
                )
            } else {
                (range(&mut rng, 0, CAPACITY), range(&mut rng, 0, 300))
            };
            let segs = reg.resolve_span(DevicePtr::new(start), len);
            let mut covered = vec![None; len as usize];
            for s in &segs {
                let obj_base = reg.get(s.object).unwrap().range.start.addr();
                for b in 0..s.len {
                    let addr = obj_base + s.offset + b;
                    assert!(addr >= start && addr < start + len.max(1), "seed {seed}");
                    covered[(addr - start) as usize] = Some(s.object);
                }
            }
            for (i, got) in covered.iter().enumerate() {
                let want = reg.resolve_slow(DevicePtr::new(start + i as u64));
                assert_eq!(
                    *got, want,
                    "seed {seed}: span byte {i} of [{start:#x}; {len})"
                );
            }
        }
    }
}
