//! Property-based tests on the core data structures and detector
//! invariants, backing the paper's "DrGPUM does not incur false positives"
//! claim (Sec. 5.6): every finding's evidence is re-checked against a naive
//! oracle on randomly generated traces.

use drgpum::profiler::accessmap::{AccessBitmap, FreqMap, RangeSet};
use drgpum::profiler::depgraph::{DependencyGraph, VertexAccess};
use drgpum::profiler::object::ObjectId;
use drgpum::profiler::options::Thresholds;
use drgpum::profiler::patterns::{
    object_level, redundant, AccessVia, ApiRef, ObjectAccess, ObjectView, PatternEvidence,
    TraceView,
};
use gpu_sim::mem::DeviceAllocator;
use gpu_sim::StreamId;
use proptest::prelude::*;

// ------------------------------------------------------------ allocator

#[derive(Debug, Clone)]
enum AllocOp {
    Malloc(u64),
    FreeNth(usize),
}

fn alloc_ops() -> impl Strategy<Value = Vec<AllocOp>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..100_000).prop_map(AllocOp::Malloc),
            (0usize..64).prop_map(AllocOp::FreeNth),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn allocator_invariants(ops in alloc_ops()) {
        let capacity = 4 << 20;
        let mut a = DeviceAllocator::new(capacity);
        let mut live: Vec<(gpu_sim::DevicePtr, u64)> = Vec::new();
        for op in ops {
            match op {
                AllocOp::Malloc(size) => {
                    if let Ok(info) = a.malloc(size) {
                        live.push((info.ptr, size));
                    }
                }
                AllocOp::FreeNth(n) => {
                    if !live.is_empty() {
                        let (ptr, _) = live.remove(n % live.len());
                        a.free(ptr).expect("tracked pointer frees cleanly");
                    }
                }
            }
            // Live allocations never overlap.
            let mut ranges: Vec<(u64, u64)> = live
                .iter()
                .map(|(p, s)| (p.addr(), p.addr() + s))
                .collect();
            ranges.sort_unstable();
            for w in ranges.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "overlapping allocations");
            }
            // Accounting matches our model.
            let model_in_use: u64 = live.iter().map(|(_, s)| s).sum();
            prop_assert_eq!(a.stats().in_use_bytes, model_in_use);
            prop_assert!(a.stats().peak_bytes >= a.stats().in_use_bytes);
            prop_assert_eq!(a.stats().live_allocations, live.len());
        }
        // Free everything: the address space coalesces back to one region.
        for (ptr, _) in live {
            a.free(ptr).expect("valid");
        }
        prop_assert_eq!(a.largest_free(), capacity);
    }

    // -------------------------------------------------------- access maps

    #[test]
    fn bitmap_matches_boolean_model(
        ranges in prop::collection::vec((0u64..600, 0u64..80), 0..40),
        len in 1u64..600,
    ) {
        let mut bm = AccessBitmap::new(len);
        let mut model = vec![false; len as usize];
        for (start, width) in ranges {
            bm.set_range(start, start + width);
            for i in start..(start + width).min(len) {
                model[i as usize] = true;
            }
        }
        prop_assert_eq!(bm.count_set(), model.iter().filter(|&&b| b).count() as u64);
        for (i, &m) in model.iter().enumerate() {
            prop_assert_eq!(bm.is_set(i as u64), m);
        }
        // Largest clear run agrees with a scan of the model.
        let mut best = 0usize;
        let mut cur = 0usize;
        for &m in &model {
            if m { best = best.max(cur); cur = 0; } else { cur += 1; }
        }
        best = best.max(cur);
        prop_assert_eq!(bm.largest_clear_run(), best as u64);
    }

    #[test]
    fn rangeset_matches_boolean_model(
        ranges in prop::collection::vec((0u64..500, 1u64..60), 1..40),
    ) {
        let mut rs = RangeSet::new();
        let mut model = vec![false; 600];
        for (s, w) in &ranges {
            rs.insert(*s, s + w);
            for i in *s..(s + w) {
                model[i as usize] = true;
            }
        }
        prop_assert_eq!(rs.covered(), model.iter().filter(|&&b| b).count() as u64);
        // Invariant: stored ranges are sorted, disjoint, non-adjacent.
        for w in rs.ranges().windows(2) {
            prop_assert!(w[0].1 < w[1].0, "ranges must be disjoint and separated");
        }
        // Membership agrees with the model at every boundary point.
        for (i, &m) in model.iter().enumerate() {
            let i = i as u64;
            let mut probe = RangeSet::new();
            probe.insert(i, i + 1);
            prop_assert_eq!(rs.intersects(&probe), m);
        }
    }

    #[test]
    fn freqmap_total_counts_conserved(
        accesses in prop::collection::vec((0u64..256, 1u32..8), 0..100),
    ) {
        let mut fm = FreqMap::new(256, 4);
        let mut expected_total = 0u64;
        for (off, size) in &accesses {
            let off = (*off).min(255);
            let size = (*size).min((256 - off) as u32);
            if size == 0 { continue; }
            fm.record(off, size);
            let first = off / 4;
            let last = (off + u64::from(size) - 1) / 4;
            expected_total += last - first + 1;
        }
        let total: u64 = fm.counts().iter().map(|&c| u64::from(c)).sum();
        prop_assert_eq!(total, expected_total);
        prop_assert!(fm.coefficient_of_variation_pct() >= 0.0);
    }

    // ----------------------------------------------------- dependency graph

    #[test]
    fn topological_timestamps_respect_all_edges(
        spec in prop::collection::vec((0u32..4, 0u64..6, 0u64..6), 1..60),
    ) {
        let vertices: Vec<VertexAccess> = spec
            .iter()
            .map(|(stream, read, write)| VertexAccess {
                stream: StreamId(*stream),
                reads: vec![ObjectId(*read)],
                writes: vec![ObjectId(*write)],
                frees: vec![],
                after: vec![],
            })
            .collect();
        let g = DependencyGraph::build(&vertices);
        for e in g.edges() {
            prop_assert!(
                g.timestamp(e.from) < g.timestamp(e.to),
                "edge {}->{} violates topological order",
                e.from,
                e.to
            );
        }
        // Single-stream degenerates to invocation order.
        let single: Vec<VertexAccess> = spec
            .iter()
            .map(|(_, read, write)| VertexAccess {
                stream: StreamId(0),
                reads: vec![ObjectId(*read)],
                writes: vec![ObjectId(*write)],
                frees: vec![],
                after: vec![],
            })
            .collect();
        let g1 = DependencyGraph::build(&single);
        let expect: Vec<u64> = (0..single.len() as u64).collect();
        prop_assert_eq!(g1.timestamps(), &expect[..]);
    }

    // ------------------------------------------------- detector soundness

    #[test]
    fn object_level_findings_are_sound(
        objects in prop::collection::vec(
            // (alloc, first, last, free) offsets into a 64-API trace.
            (0usize..16, 0usize..16, 0usize..16, 0usize..16, prop::bool::ANY),
            1..20,
        ),
    ) {
        let n_apis = 64;
        let mut tv = TraceView::synthetic(n_apis);
        for (i, (a, f, l, d, freed)) in objects.iter().enumerate() {
            let alloc = *a;
            let first = alloc + 1 + f;
            let last = first + l;
            let free = last + 1 + d;
            let mk = |idx: usize| ObjectAccess {
                api: ApiRef { idx, ts: idx as u64, name: format!("API({idx})") },
                read: true,
                write: false,
                via: AccessVia::Kernel,
            };
            let accesses = if first == last { vec![mk(first)] } else { vec![mk(first), mk(last)] };
            tv.objects.push(ObjectView {
                id: ObjectId(i as u64),
                label: format!("o{i}"),
                size: 512,
                alloc: Some(ApiRef { idx: alloc, ts: alloc as u64, name: format!("API({alloc})") }),
                alloc_anchor: alloc,
                free: freed.then(|| ApiRef { idx: free, ts: free as u64, name: format!("API({free})") }),
                free_anchor: None,
                accesses,
                analyzable: true,
            });
        }
        let thresholds = Thresholds::default();
        for finding in object_level::detect_all(&tv, &thresholds) {
            let obj = &tv.objects[finding.object.0 as usize];
            match &finding.evidence {
                PatternEvidence::EarlyAllocation { intervening, .. } => {
                    let alloc_ts = obj.alloc.as_ref().unwrap().ts;
                    let first_ts = obj.accesses.first().unwrap().api.ts;
                    prop_assert!(*intervening >= 1);
                    prop_assert_eq!(*intervening, first_ts - alloc_ts - 1);
                }
                PatternEvidence::LateDeallocation { intervening, .. } => {
                    let last_ts = obj.accesses.last().unwrap().api.ts;
                    let free_ts = obj.free.as_ref().unwrap().ts;
                    prop_assert!(*intervening >= 1);
                    prop_assert_eq!(*intervening, free_ts - last_ts - 1);
                }
                PatternEvidence::MemoryLeak => prop_assert!(obj.free.is_none()),
                PatternEvidence::UnusedAllocation => prop_assert!(obj.accesses.is_empty()),
                PatternEvidence::TemporaryIdleness { spans } => {
                    for s in spans {
                        prop_assert!(s.intervening >= thresholds.idleness_min_apis);
                        prop_assert_eq!(s.intervening, s.to.ts - s.from.ts - 1);
                    }
                }
                other => prop_assert!(false, "unexpected evidence {other:?}"),
            }
        }
    }

    #[test]
    fn redundant_allocation_pairs_are_valid(
        objects in prop::collection::vec((0usize..30, 0usize..10, 100u64..2000), 2..20),
    ) {
        let mut tv = TraceView::synthetic(64);
        for (i, (first, span, size)) in objects.iter().enumerate() {
            let first = *first;
            let last = (first + span).min(63);
            let mk = |idx: usize| ObjectAccess {
                api: ApiRef { idx, ts: idx as u64, name: format!("API({idx})") },
                read: true,
                write: true,
                via: AccessVia::Kernel,
            };
            let accesses = if first == last { vec![mk(first)] } else { vec![mk(first), mk(last)] };
            tv.objects.push(ObjectView {
                id: ObjectId(i as u64),
                label: format!("o{i}"),
                size: *size,
                alloc: None,
                alloc_anchor: 0,
                free: None,
                free_anchor: None,
                accesses,
                analyzable: true,
            });
        }
        let findings = redundant::detect_redundant_allocations(&tv, 10.0);
        let pairs = redundant::reuse_pairs(&findings);
        let mut reused_sources = std::collections::HashSet::new();
        for (consumer, source) in &pairs {
            // Each source's memory handed out at most once.
            prop_assert!(reused_sources.insert(*source), "source reused twice");
            let c = &tv.objects[consumer.0 as usize];
            let s = &tv.objects[source.0 as usize];
            // Disjoint lifetimes: the source's last access strictly before
            // the consumer's first (Last sorts after First on ties).
            let s_last = s.accesses.last().unwrap().api.ts;
            let c_first = c.accesses.first().unwrap().api.ts;
            prop_assert!(s_last < c_first, "lifetimes overlap: {s_last} !< {c_first}");
            // Size window respected.
            prop_assert!(redundant::sizes_compatible(c.size, s.size, 10.0));
        }
    }
}

// --------------------------------------------------------------- peaks

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn peaks_are_true_local_maxima(curve in prop::collection::vec(0u64..1000, 1..80)) {
        let samples: Vec<drgpum::profiler::peaks::UsageSample> = curve
            .iter()
            .enumerate()
            .map(|(i, &b)| drgpum::profiler::peaks::UsageSample {
                api_idx: i,
                bytes_in_use: b,
            })
            .collect();
        let peaks = drgpum::profiler::peaks::find_peaks(&samples, 3);
        let global_max = curve.iter().copied().max().unwrap_or(0);
        if global_max > 0 {
            prop_assert!(!peaks.is_empty(), "a nonzero curve has at least one peak");
            prop_assert_eq!(peaks[0].1, global_max, "first peak is the global maximum");
        }
        for (idx, bytes) in &peaks {
            prop_assert_eq!(curve[*idx], *bytes, "peak value comes from the curve");
            // No strictly larger neighbour on either side until the value
            // changes (local maximum over distinct values).
            if *idx > 0 {
                prop_assert!(curve[idx - 1] <= *bytes);
            }
            if idx + 1 < curve.len() {
                prop_assert!(curve[idx + 1] <= *bytes);
            }
        }
    }
}
