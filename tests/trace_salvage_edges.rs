//! Deterministic trace-salvage edge cases: a zero-length final section,
//! truncation inside a frame's length prefix, and truncation inside the
//! CRC. Each must salvage to exactly the intact prefix, with the losses
//! counted in the `SalvageReport` — never a panic, never silent loss.

use drgpum::prelude::*;
use drgpum::profiler::trace_io;
use std::path::PathBuf;

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("drgpum-edge-{}-{name}", std::process::id()))
}

/// Streams a small, fully controlled session: five API events (two
/// mallocs, two memsets, one free) — few enough that the only checkpoint
/// is the final one — then returns the on-disk stream text.
fn small_streamed_trace(name: &str) -> String {
    let path = temp_path(name);
    let mut ctx = DeviceContext::new_default();
    let profiler = Profiler::attach_streaming(&mut ctx, ProfilerOptions::intra_object(), &path)
        .expect("trace file creatable");
    let a = ctx.malloc(512, "a").unwrap();
    ctx.memset(a, 0, 512).unwrap();
    let b = ctx.malloc(256, "b").unwrap();
    ctx.memset(b, 1, 256).unwrap();
    ctx.free(a).unwrap();
    // `b` is deliberately leaked so the prefix has a finding to report.
    profiler.finish_stream().expect("clean finish");
    let text = std::fs::read_to_string(&path).expect("trace readable");
    std::fs::remove_file(&path).ok();
    text
}

#[test]
fn zero_length_final_section_is_dropped_and_counted() {
    let clean = small_streamed_trace("zerolen.trace");
    let base = clean
        .strip_suffix("end\n")
        .expect("clean stream ends with the finish marker");
    // A zero-length `delta` frame: framing-valid, but an empty payload is
    // not decodable JSON, so salvage must stop exactly there.
    let crafted = format!("{base}section delta 0 0\n");

    let (damaged, losses) = trace_io::salvage(&crafted);
    let (intact, _) = trace_io::salvage(&clean);
    assert_eq!(damaged.api_count(), intact.api_count());
    assert_eq!(damaged.object_count(), intact.object_count());
    assert_eq!(
        losses.notes.len(),
        2,
        "exactly the damaged frame and the missing finish marker: {:?}",
        losses.notes
    );
    assert!(losses.notes[0].contains("damaged streaming frame"));
    assert!(losses.notes[1].contains("no clean-finish marker"));

    // Everything before the damage survived, so the analysis matches the
    // cleanly finished recording.
    assert_eq!(
        damaged.reanalyze(&Thresholds::default()).render_text(),
        intact.reanalyze(&Thresholds::default()).render_text()
    );
}

#[test]
fn truncation_inside_a_length_prefix_keeps_the_intact_prefix() {
    let clean = small_streamed_trace("midlen.trace");
    // Cut inside the final checkpoint's header, right after the first
    // digit of its length field: `section checkpoint 1…` with no CRC.
    let header_at = clean
        .rfind("section checkpoint ")
        .expect("final checkpoint present");
    let cut = header_at + "section checkpoint ".len() + 1;
    let crafted = &clean[..cut];

    let (damaged, losses) = trace_io::salvage(crafted);
    let (intact, _) = trace_io::salvage(&clean);
    // All five delta frames precede the checkpoint, so every API event
    // survives; only the checkpointed maps are lost.
    assert_eq!(damaged.api_count(), intact.api_count());
    assert_eq!(
        losses.notes.len(),
        3,
        "damaged frame + no finish marker + lost checkpoint: {:?}",
        losses.notes
    );
    assert!(losses.notes[0].contains("damaged streaming frame"));
    assert!(losses.notes[1].contains("no clean-finish marker"));
    assert!(losses.notes[2].contains("no checkpoint recovered"));

    let report = trace_io::reanalyze_salvaged(crafted, &Thresholds::default());
    assert!(report.is_degraded(), "losses must surface in the report");
    assert_eq!(report.detectors.len(), 4);
    assert_eq!(report.stats.gpu_apis, damaged.api_count() as u64);
}

#[test]
fn truncation_inside_a_crc_stops_at_the_previous_frame() {
    let clean = small_streamed_trace("midcrc.trace");
    // Chop the last character of the final delta frame's CRC (and with it
    // the whole payload): the header still parses, the payload is gone.
    let header_at = clean.rfind("section delta ").expect("delta frames present");
    let header_end = header_at + clean[header_at..].find('\n').expect("header line ends");
    let crafted = &clean[..header_end - 1];
    // The intact prefix ends just before that frame's header line.
    let prefix = &clean[..header_at];

    let (damaged, losses) = trace_io::salvage(crafted);
    let (intact_prefix, _) = trace_io::salvage(prefix);
    assert_eq!(
        damaged.api_count(),
        intact_prefix.api_count(),
        "salvage must recover exactly the frames before the damage"
    );
    assert_eq!(
        damaged.api_count() + 1,
        clean.matches("section delta ").count(),
        "exactly the final delta frame is lost"
    );
    assert!(!losses.is_lossless());
    assert!(losses.notes[0].contains("damaged streaming frame"));

    // Same prefix in, same analysis out.
    assert_eq!(
        damaged.reanalyze(&Thresholds::default()).render_text(),
        intact_prefix
            .reanalyze(&Thresholds::default())
            .render_text()
    );
}

#[test]
fn batch_trace_truncated_mid_frame_salvages_the_intact_sections() {
    // The same edge cases hold for the batch (non-streaming) format: cut a
    // saved trace inside a section header and salvage what frames intact.
    let mut ctx = DeviceContext::new_default();
    let profiler = Profiler::attach(&mut ctx, ProfilerOptions::object_level());
    let a = ctx.malloc(512, "a").unwrap();
    ctx.memset(a, 0, 512).unwrap();
    ctx.free(a).unwrap();
    let collector = profiler.collector();
    let collector = collector.lock();
    let text = trace_io::save(&collector, ctx.call_stack().table(), "rtx3090").to_text();
    drop(collector);

    let header_at = text.rfind("section ").expect("framed sections");
    let cut = header_at + "section ".len() + 2;
    let crafted = &text[..cut];
    let (salvaged, losses) = trace_io::salvage(crafted);
    assert!(!losses.is_lossless());
    // Earlier sections frame-check independently, so the APIs survive the
    // loss of the trailing section.
    assert_eq!(salvaged.api_count(), 3);
    let report = trace_io::reanalyze_salvaged(crafted, &Thresholds::default());
    assert!(report.is_degraded());
    assert_eq!(report.detectors.len(), 4);
}
