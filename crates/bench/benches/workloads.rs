//! End-to-end benchmarks: each paper workload natively and under DrGPUM's
//! two analysis modes — the measured form of Figure 6's bars. Uses the
//! offline timing harness in [`drgpum_bench::timing`].

use drgpum_bench::timing::{bench, group};
use drgpum_bench::{profile_with_options, profile_workload, run_native};
use drgpum_core::{AnalysisLevel, ProfilerOptions, SamplingPolicy};
use drgpum_workloads::common::Variant;
use gpu_sim::PlatformConfig;
use std::hint::black_box;

fn main() {
    group("workloads");
    // A representative subset keeps `cargo bench` within a coffee break;
    // the figure6 binary covers the full suite.
    for name in ["2MM", "huffman", "Laghos", "SimpleMultiCopy"] {
        let spec = drgpum_workloads::by_name(name).expect("registered");
        bench(&format!("native/{name}"), 10, || {
            black_box(run_native(&spec, PlatformConfig::rtx3090()).1.peak_bytes)
        });
        bench(&format!("object_level/{name}"), 10, || {
            let (report, _) = profile_workload(
                &spec,
                Variant::Unoptimized,
                AnalysisLevel::ObjectLevel,
                PlatformConfig::rtx3090(),
                SamplingPolicy::default(),
            );
            black_box(report.findings.len())
        });
        bench(&format!("intra_object/{name}"), 10, || {
            let (report, _) = profile_workload(
                &spec,
                Variant::Unoptimized,
                AnalysisLevel::IntraObject,
                PlatformConfig::rtx3090(),
                SamplingPolicy::every_instance(),
            );
            black_box(report.findings.len())
        });
        // The low-overhead collection pipeline (Sec. 5.5): sharded
        // aggregation plus warp-level record coalescing. Reports are
        // byte-identical to `intra_object`; only the wall-clock differs.
        bench(&format!("intra_parallel_coalesced/{name}"), 10, || {
            let options = ProfilerOptions::intra_object()
                .with_collector_shards(4)
                .with_coalescing();
            let (report, _, _, _) = profile_with_options(
                &spec,
                Variant::Unoptimized,
                options,
                PlatformConfig::rtx3090(),
            );
            black_box(report.findings.len())
        });
    }
}
