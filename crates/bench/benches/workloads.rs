//! End-to-end benchmarks: each paper workload natively and under DrGPUM's
//! two analysis modes — the measured form of Figure 6's bars. Uses the
//! offline timing harness in [`drgpum_bench::timing`].

use drgpum_bench::timing::{bench, group};
use drgpum_bench::{profile_workload, run_native};
use drgpum_core::{AnalysisLevel, SamplingPolicy};
use drgpum_workloads::common::Variant;
use gpu_sim::PlatformConfig;
use std::hint::black_box;

fn main() {
    group("workloads");
    // A representative subset keeps `cargo bench` within a coffee break;
    // the figure6 binary covers the full suite.
    for name in ["2MM", "huffman", "Laghos", "SimpleMultiCopy"] {
        let spec = drgpum_workloads::by_name(name).expect("registered");
        bench(&format!("native/{name}"), 10, || {
            black_box(run_native(&spec, PlatformConfig::rtx3090()).1.peak_bytes)
        });
        bench(&format!("object_level/{name}"), 10, || {
            let (report, _) = profile_workload(
                &spec,
                Variant::Unoptimized,
                AnalysisLevel::ObjectLevel,
                PlatformConfig::rtx3090(),
                SamplingPolicy::default(),
            );
            black_box(report.findings.len())
        });
        bench(&format!("intra_object/{name}"), 10, || {
            let (report, _) = profile_workload(
                &spec,
                Variant::Unoptimized,
                AnalysisLevel::IntraObject,
                PlatformConfig::rtx3090(),
                SamplingPolicy::every_instance(),
            );
            black_box(report.findings.len())
        });
    }
}
