//! Criterion end-to-end benchmarks: each paper workload natively and under
//! DrGPUM's two analysis modes — the measured form of Figure 6's bars.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drgpum_bench::{profile_workload, run_native};
use drgpum_core::{AnalysisLevel, SamplingPolicy};
use drgpum_workloads::common::Variant;
use gpu_sim::PlatformConfig;
use std::hint::black_box;

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads");
    group.sample_size(10);
    // A representative subset keeps `cargo bench` within a coffee break;
    // the figure6 binary covers the full suite.
    for name in ["2MM", "huffman", "Laghos", "SimpleMultiCopy"] {
        let spec = drgpum_workloads::by_name(name).expect("registered");
        group.bench_with_input(BenchmarkId::new("native", name), &spec, |b, spec| {
            b.iter(|| black_box(run_native(spec, PlatformConfig::rtx3090()).1.peak_bytes));
        });
        group.bench_with_input(BenchmarkId::new("object_level", name), &spec, |b, spec| {
            b.iter(|| {
                let (report, _) = profile_workload(
                    spec,
                    Variant::Unoptimized,
                    AnalysisLevel::ObjectLevel,
                    PlatformConfig::rtx3090(),
                    SamplingPolicy::default(),
                );
                black_box(report.findings.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("intra_object", name), &spec, |b, spec| {
            b.iter(|| {
                let (report, _) = profile_workload(
                    spec,
                    Variant::Unoptimized,
                    AnalysisLevel::IntraObject,
                    PlatformConfig::rtx3090(),
                    SamplingPolicy::every_instance(),
                );
                black_box(report.findings.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);
