//! Micro-benchmarks for the GPU-simulator substrate: allocator throughput,
//! memory traffic, and kernel execution with and without instrumentation.
//! Uses the offline timing harness in [`drgpum_bench::timing`].

use drgpum_bench::timing::{bench, group};
use gpu_sim::mem::DeviceAllocator;
use gpu_sim::sanitizer::{KernelInfo, PatchMode, SanitizerHooks};
use gpu_sim::{DeviceContext, LaunchConfig, StreamId};
use parking_lot::Mutex;
use std::hint::black_box;
use std::sync::Arc;

fn bench_allocator() {
    group("allocator");
    bench("alloc_free_churn_1k", 50, || {
        let mut a = DeviceAllocator::new(1 << 24);
        let mut ptrs = Vec::with_capacity(1000);
        for i in 0..1000u64 {
            ptrs.push(a.malloc(256 + (i % 16) * 64).expect("fits").ptr);
        }
        for p in ptrs.drain(..).step_by(2) {
            a.free(p).expect("valid");
        }
        black_box(a.stats())
    });
    let mut a = DeviceAllocator::new(1 << 24);
    let ptrs: Vec<_> = (0..1000u64)
        .map(|_| a.malloc(4096).expect("fits").ptr)
        .collect();
    bench("interval_lookup", 50, || {
        let mut hits = 0;
        for p in &ptrs {
            if a.find_containing(*p + 100).is_some() {
                hits += 1;
            }
        }
        black_box(hits)
    });
}

/// A sink that forces a patch mode and discards records, to isolate the
/// instrumentation cost of kernel execution.
struct Forcing(PatchMode);

impl SanitizerHooks for Forcing {
    fn on_kernel_begin(&mut self, _info: &KernelInfo) -> PatchMode {
        self.0
    }
}

fn bench_kernels() {
    group("kernel_execution");
    for (label, mode, coalesce) in [
        ("uninstrumented", None, false),
        ("hit_flags", Some(PatchMode::HitFlags), false),
        ("full_records", Some(PatchMode::Full), false),
        ("full_records_coalesced", Some(PatchMode::Full), true),
    ] {
        let mut ctx = DeviceContext::new_default();
        if let Some(m) = mode {
            ctx.sanitizer_mut()
                .register(Arc::new(Mutex::new(Forcing(m))));
        }
        ctx.sanitizer_mut().set_coalescing(coalesce);
        let n = 64 * 1024u64;
        let x = ctx.malloc(n * 4, "x").expect("fits");
        let y = ctx.malloc(n * 4, "y").expect("fits");
        ctx.memset(x, 1, n * 4).expect("valid");
        ctx.memset(y, 2, n * 4).expect("valid");
        bench(&format!("saxpy_64k/{label}"), 10, || {
            ctx.launch(
                "saxpy",
                LaunchConfig::cover(n, 256).unwrap(),
                StreamId::DEFAULT,
                |t| {
                    let i = t.global_x();
                    if i < n {
                        let xv = t.load_f32(x + i * 4);
                        let yv = t.load_f32(y + i * 4);
                        t.store_f32(y + i * 4, 2.0 * xv + yv);
                        t.flop(2);
                    }
                },
            )
            .expect("launches")
        });
    }
}

fn bench_memcpy() {
    group("memcpy");
    let mut ctx = DeviceContext::new_default();
    let p = ctx.malloc(1 << 20, "buf").expect("fits");
    let data = vec![7u8; 1 << 20];
    bench("h2d_1m", 20, || ctx.memcpy_h2d(p, &data).expect("valid"));
    let mut out = vec![0u8; 1 << 20];
    bench("d2h_1m", 20, || ctx.memcpy_d2h(&mut out, p).expect("valid"));
}

fn main() {
    bench_allocator();
    bench_kernels();
    bench_memcpy();
}
