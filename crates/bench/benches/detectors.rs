//! Micro-benchmarks for the pattern detectors and their data structures —
//! the profiler-side costs behind Figure 6's overhead. Uses the offline
//! timing harness in [`drgpum_bench::timing`].

use drgpum_bench::timing::{bench, group};
use drgpum_core::accessmap::{AccessBitmap, FreqMap, RangeSet};
use drgpum_core::depgraph::{DependencyGraph, VertexAccess};
use drgpum_core::object::ObjectId;
use drgpum_core::options::Thresholds;
use drgpum_core::patterns::{
    object_level, redundant, AccessVia, ApiRef, ObjectAccess, ObjectView, TraceView,
};
use gpu_sim::StreamId;
use std::hint::black_box;

/// Builds a synthetic trace of `n_objects` objects, each with a handful of
/// accesses spread over a `4 * n_objects`-API trace.
fn synthetic_trace(n_objects: usize) -> TraceView {
    let n_apis = n_objects * 4;
    let mut tv = TraceView::synthetic(n_apis);
    for i in 0..n_objects {
        let base = i * 4;
        let mk = |idx: usize| ObjectAccess {
            api: ApiRef {
                idx,
                ts: idx as u64,
                name: format!("API({idx})"),
            },
            read: true,
            write: idx.is_multiple_of(2),
            via: AccessVia::Kernel,
        };
        tv.objects.push(ObjectView {
            id: ObjectId(i as u64),
            label: format!("obj{i}"),
            size: 1024 + (i as u64 % 7) * 64,
            alloc: Some(ApiRef {
                idx: base,
                ts: base as u64,
                name: format!("API({base})"),
            }),
            alloc_anchor: base,
            free: None,
            free_anchor: None,
            accesses: vec![mk(base + 1), mk(base + 2), mk(base + 3)],
            analyzable: true,
        });
    }
    tv
}

fn bench_object_level() {
    group("object_level_detectors");
    for n in [100usize, 1000] {
        let tv = synthetic_trace(n);
        let thresholds = Thresholds::default();
        bench(&format!("detect_all/{n}"), 50, || {
            black_box(object_level::detect_all(&tv, &thresholds))
        });
        bench(&format!("redundant_one_pass/{n}"), 50, || {
            black_box(redundant::detect_redundant_allocations(&tv, 10.0))
        });
    }
}

fn bench_depgraph() {
    group("dependency_graph");
    for n in [1000usize, 10_000] {
        let vertices: Vec<VertexAccess> = (0..n)
            .map(|i| VertexAccess {
                stream: StreamId((i % 4) as u32),
                reads: vec![ObjectId((i % 50) as u64)],
                writes: vec![ObjectId(((i + 1) % 50) as u64)],
                frees: vec![],
                after: vec![],
            })
            .collect();
        bench(&format!("build_and_sort/{n}"), 20, || {
            black_box(DependencyGraph::build(&vertices))
        });
    }
}

fn bench_access_maps() {
    group("access_maps");
    bench("bitmap_set_4k_ranges_in_1m", 20, || {
        let mut bm = AccessBitmap::new(1 << 20);
        for i in 0..4096u64 {
            bm.set_range(i * 256, i * 256 + 128);
        }
        black_box(bm.count_set())
    });
    let mut bm = AccessBitmap::new(1 << 20);
    for i in 0..2048u64 {
        bm.set_range(i * 512, i * 512 + 256);
    }
    bench("bitmap_fragmentation_1m", 20, || {
        black_box(drgpum_core::metrics::fragmentation_pct(&bm))
    });
    bench("rangeset_insert_4k", 20, || {
        let mut rs = RangeSet::new();
        for i in 0..4096u64 {
            let s = (i * 37) % 100_000;
            rs.insert(s, s + 64);
        }
        black_box(rs.covered())
    });
    bench("freqmap_record_64k", 20, || {
        let mut fm = FreqMap::new(1 << 16, 4);
        for i in 0..65_536u64 {
            fm.record((i * 4) % (1 << 16), 4);
        }
        black_box(fm.coefficient_of_variation_pct())
    });
}

fn main() {
    bench_object_level();
    bench_depgraph();
    bench_access_maps();
}
