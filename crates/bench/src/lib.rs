//! # drgpum-bench: experiment harnesses for every table and figure
//!
//! Shared machinery for the binaries that regenerate the paper's results:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table 1 — inefficiency patterns per program |
//! | `table4` | Table 4 — peak-memory reductions and speedups |
//! | `table5` | Table 5 — DrGPUM vs ValueExpert vs Compute Sanitizer |
//! | `figure6` | Figure 6 — profiling overhead (two platforms, two modes) |
//! | `figure7` | Figure 7 — Perfetto GUI trace (`results/liveness.json`) |
//! | `ablation_accessmap` | Sec. 5.5 — GPU- vs CPU-side access maps |
//! | `ablation_sampling` | Sec. 5.5 — kernel sampling period sweep |

#![warn(missing_docs)]

pub mod timing;

use drgpum_core::{AnalysisLevel, PhaseTimings, Profiler, ProfilerOptions, Report, SamplingPolicy};
use drgpum_workloads::common::{RunOutcome, Variant};
use drgpum_workloads::registry::{RunConfig, WorkloadSpec};
use gpu_sim::{DeviceContext, PlatformConfig};
use std::time::{Duration, Instant};

/// Profiles one workload run with DrGPUM attached.
///
/// Wires up everything the paper's workflow needs: analysis level, the
/// workload's element-granularity hint, pool observation for pool-based
/// workloads, and the kernel-sampling policy.
///
/// # Panics
///
/// Panics if the workload itself fails (a workload bug, not a profiler
/// condition).
pub fn profile_workload(
    spec: &WorkloadSpec,
    variant: Variant,
    analysis: AnalysisLevel,
    platform: PlatformConfig,
    sampling: SamplingPolicy,
) -> (Report, RunOutcome) {
    let mut ctx = DeviceContext::new(platform);
    let mut options = match analysis {
        AnalysisLevel::ObjectLevel => ProfilerOptions::object_level(),
        AnalysisLevel::IntraObject => ProfilerOptions::intra_object(),
    };
    options.sampling = sampling;
    if let Some(elem) = spec.elem_size_hint {
        options.elem_size = elem;
    }
    if spec.uses_pool {
        options.track_pool_tensors = true;
    }
    let profiler = Profiler::attach(&mut ctx, options);
    let cfg = RunConfig {
        pool_observer: spec.uses_pool.then(|| {
            let collector = profiler.collector();
            collector as gpu_sim::pool::SharedPoolObserver
        }),
    };
    let outcome = (spec.run)(&mut ctx, variant, &cfg)
        .unwrap_or_else(|e| panic!("workload {} failed: {e}", spec.name));
    (profiler.report(&ctx), outcome)
}

/// Profiles one workload with fully explicit [`ProfilerOptions`] and
/// additionally returns the serialized trace (format v2 text) — the
/// byte-exact artifact the determinism checks compare across collection
/// modes — plus the wall-clock time of the instrumented run alone
/// (report rendering and trace serialization excluded; those costs are
/// identical across collection modes and would dilute overhead ratios).
///
/// # Panics
///
/// Panics if the workload itself fails (a workload bug, not a profiler
/// condition).
pub fn profile_with_options(
    spec: &WorkloadSpec,
    variant: Variant,
    options: ProfilerOptions,
    platform: PlatformConfig,
) -> (Report, String, RunOutcome, Duration) {
    profile_in_ctx(spec, variant, options, DeviceContext::new(platform))
}

/// Like [`profile_with_options`], but against a caller-built context —
/// the overhead bench uses this to pin `kernel_workers` through
/// [`gpu_sim::SimConfig`] independent of any environment override.
///
/// # Panics
///
/// Panics if the workload itself fails (a workload bug, not a profiler
/// condition).
pub fn profile_in_ctx(
    spec: &WorkloadSpec,
    variant: Variant,
    options: ProfilerOptions,
    ctx: DeviceContext,
) -> (Report, String, RunOutcome, Duration) {
    let (report, trace, outcome, elapsed, _) = profile_in_ctx_timed(spec, variant, options, ctx);
    (report, trace, outcome, elapsed)
}

/// Like [`profile_in_ctx`], additionally returning the collector's
/// cumulative hot-path [`PhaseTimings`] (resolve / aggregate / flush) —
/// the overhead bench's per-phase breakdown.
///
/// # Panics
///
/// Panics if the workload itself fails (a workload bug, not a profiler
/// condition).
pub fn profile_in_ctx_timed(
    spec: &WorkloadSpec,
    variant: Variant,
    mut options: ProfilerOptions,
    mut ctx: DeviceContext,
) -> (Report, String, RunOutcome, Duration, PhaseTimings) {
    if let Some(elem) = spec.elem_size_hint {
        options.elem_size = elem;
    }
    if spec.uses_pool {
        options.track_pool_tensors = true;
    }
    let profiler = Profiler::attach(&mut ctx, options);
    let cfg = RunConfig {
        pool_observer: spec.uses_pool.then(|| {
            let collector = profiler.collector();
            collector as gpu_sim::pool::SharedPoolObserver
        }),
    };
    let start = Instant::now();
    let outcome = (spec.run)(&mut ctx, variant, &cfg)
        .unwrap_or_else(|e| panic!("workload {} failed: {e}", spec.name));
    let elapsed = start.elapsed();
    let (trace, phases) = {
        let collector = profiler.collector();
        let collector = collector.lock();
        (
            drgpum_core::trace_io::save(&collector, ctx.call_stack().table(), "rtx3090").to_text(),
            collector.phase_timings(),
        )
    };
    (profiler.report(&ctx), trace, outcome, elapsed, phases)
}

/// Convenience: profile with the paper's defaults (intra-object analysis,
/// every kernel instance, RTX 3090 platform).
pub fn profile_default(spec: &WorkloadSpec, variant: Variant) -> (Report, RunOutcome) {
    profile_workload(
        spec,
        variant,
        AnalysisLevel::IntraObject,
        PlatformConfig::rtx3090(),
        SamplingPolicy::every_instance(),
    )
}

/// Runs one workload *without* any profiler and measures wall-clock time —
/// the "native execution" side of Figure 6's overhead ratio.
///
/// # Panics
///
/// Panics if the workload fails.
pub fn run_native(spec: &WorkloadSpec, platform: PlatformConfig) -> (Duration, RunOutcome) {
    let mut ctx = DeviceContext::new(platform);
    let start = Instant::now();
    let outcome = (spec.run)(&mut ctx, Variant::Unoptimized, &RunConfig::default())
        .unwrap_or_else(|e| panic!("workload {} failed: {e}", spec.name));
    (start.elapsed(), outcome)
}

/// Runs one workload with DrGPUM attached and measures wall-clock time —
/// the "with DrGPUM" side of Figure 6's overhead ratio.
///
/// # Panics
///
/// Panics if the workload fails.
pub fn run_profiled(
    spec: &WorkloadSpec,
    platform: PlatformConfig,
    analysis: AnalysisLevel,
    sampling: SamplingPolicy,
) -> Duration {
    let start = Instant::now();
    let _ = profile_workload(spec, Variant::Unoptimized, analysis, platform, sampling);
    start.elapsed()
}

/// Finds the kernel with the largest memory footprint in a workload — the
/// kernel Figure 6's intra-object analysis monitors. Footprint is the total
/// size of the data objects one instance touches, measured with a cheap
/// object-level pre-pass (exactly how a user would scope the analysis with
/// the kernel whitelist).
pub fn largest_footprint_kernel(spec: &WorkloadSpec) -> Option<String> {
    let mut ctx = DeviceContext::new_default();
    let mut options = ProfilerOptions::object_level();
    if spec.uses_pool {
        options.track_pool_tensors = true;
    }
    let profiler = Profiler::attach(&mut ctx, options);
    let cfg = RunConfig {
        pool_observer: spec
            .uses_pool
            .then(|| profiler.collector() as gpu_sim::pool::SharedPoolObserver),
    };
    (spec.run)(&mut ctx, Variant::Unoptimized, &cfg)
        .unwrap_or_else(|e| panic!("workload {} failed: {e}", spec.name));
    let collector = profiler.collector();
    let collector = collector.lock();
    let mut best: Option<(u64, String)> = None;
    for (idx, api) in collector.gpu_apis().iter().enumerate() {
        if api.mnemonic != "KERL" {
            continue;
        }
        let footprint: u64 = collector
            .accesses()
            .iter()
            .filter(|a| a.api_idx == idx)
            .filter_map(|a| collector.registry().get(a.object).map(|o| o.size()))
            .sum();
        if best.as_ref().map(|(b, _)| footprint > *b).unwrap_or(true) {
            best = Some((footprint, api.detail.clone()));
        }
    }
    best.map(|(_, name)| name)
}

/// Median of a slice (not-NaN floats).
pub fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// Geometric mean of a slice of positive floats.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_geomean() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&mut []).is_nan());
        let g = geomean(&[2.0, 8.0]);
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn profile_default_smoke() {
        let spec = drgpum_workloads::by_name("2MM").unwrap();
        let (report, outcome) = profile_default(&spec, Variant::Unoptimized);
        assert!(outcome.peak_bytes > 0);
        assert!(!report.findings.is_empty());
    }
}
