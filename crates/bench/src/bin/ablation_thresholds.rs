//! Ablation: sensitivity of the detectors to the paper's user-tunable
//! thresholds (Sec. 3 defines every `X` as user-tunable; Sec. 6 states the
//! defaults used in the evaluation).
//!
//! One recording per workload is taken once; the offline analyzer then
//! replays it under threshold sweeps — no program re-runs (the
//! `trace_io` path). Reported: number of findings per pattern as each knob
//! moves through its range.
//!
//! Run with `cargo run -p drgpum-bench --bin ablation_thresholds`.

use drgpum_core::{trace_io, PatternKind, Profiler, ProfilerOptions, Thresholds};
use drgpum_workloads::common::Variant;
use drgpum_workloads::registry::RunConfig;
use gpu_sim::DeviceContext;

fn record(name: &str) -> trace_io::SavedTrace {
    let spec = drgpum_workloads::by_name(name).expect("registered");
    let mut ctx = DeviceContext::new_default();
    let mut options = ProfilerOptions::intra_object();
    if let Some(elem) = spec.elem_size_hint {
        options.elem_size = elem;
    }
    let profiler = Profiler::attach(&mut ctx, options);
    (spec.run)(&mut ctx, Variant::Unoptimized, &RunConfig::default()).expect("runs");
    let collector = profiler.collector();
    let collector = collector.lock();
    trace_io::save(&collector, ctx.call_stack().table(), "rtx3090")
}

fn count(trace: &trace_io::SavedTrace, t: &Thresholds, kind: PatternKind) -> usize {
    trace
        .reanalyze(t)
        .findings
        .iter()
        .filter(|f| f.kind() == kind)
        .count()
}

fn main() {
    println!("Ablation: threshold sensitivity (offline replay of one recording)\n");

    // Temporary idleness gap X on Darknet (many idle buffers).
    let darknet = record("Darknet");
    println!("Darknet, temporary-idleness minimum gap X (paper default 2):");
    let mut prev = usize::MAX;
    for x in [1u64, 2, 4, 8, 16, 32] {
        let t = Thresholds {
            idleness_min_apis: x,
            ..Thresholds::default()
        };
        let n = count(&darknet, &t, PatternKind::TemporaryIdleness);
        println!("  X = {x:>2}: {n} TI findings");
        assert!(n <= prev, "raising the gap must not add findings");
        prev = n;
    }

    // Redundant-allocation size window on 3MM (many equal-size matrices).
    let three_mm = record("3MM");
    println!("\n3MM, redundant-allocation size window (paper default 10%):");
    prev = 0;
    for pct in [0.0f64, 10.0, 50.0, 200.0] {
        let t = Thresholds {
            redundant_size_pct: pct,
            ..Thresholds::default()
        };
        let n = count(&three_mm, &t, PatternKind::RedundantAllocation);
        println!("  window = {pct:>5.0}%: {n} RA findings");
        assert!(n >= prev, "widening the window must not remove findings");
        prev = n;
    }

    // Overallocation accessed-% threshold on XSBench (5% touched grid).
    let xsbench = record("XSBench");
    println!("\nXSBench, overallocation accessed-%% threshold (paper default 80%):");
    for pct in [1.0f64, 5.0, 10.0, 80.0] {
        let t = Thresholds {
            overalloc_accessed_pct: pct,
            ..Thresholds::default()
        };
        let n = count(&xsbench, &t, PatternKind::Overallocation);
        let expected = usize::from(pct > 5.0);
        println!("  threshold = {pct:>4.0}%: {n} OA findings (index_grid is 5.0% accessed)");
        assert_eq!(
            n, expected,
            "OA must fire exactly when the threshold exceeds the touched fraction"
        );
    }

    // NUAF CoV threshold on BICG (triangular skew ≈ 57%).
    let bicg = record("BICG");
    println!("\nBICG, NUAF coefficient-of-variation threshold (paper default 20%):");
    for pct in [10.0f64, 20.0, 56.0, 90.0] {
        let t = Thresholds {
            nuaf_cov_pct: pct,
            ..Thresholds::default()
        };
        let n = count(&bicg, &t, PatternKind::NonUniformAccessFrequency);
        println!("  threshold = {pct:>4.0}%: {n} NUAF findings");
    }
    println!("\nall monotonicity checks passed");
}
