//! Regenerates the paper's **Table 5**: whether the inefficiencies detected
//! by DrGPUM could be detected by state-of-the-art tools.
//!
//! All three tools — DrGPUM's collector, ValueExpert-lite, and
//! memcheck-lite — register with the same Sanitizer-style instrumentation
//! API and observe the *same* event streams of every workload's
//! unoptimized run. The matrix reports, per pattern, whether each tool
//! detected it in at least one program.
//!
//! Run with `cargo run -p drgpum-bench --bin table5`.

use drgpum_baselines::{MemcheckLite, ValueExpertLite};
use drgpum_bench::profile_default;
use drgpum_core::PatternKind;
use drgpum_workloads::common::Variant;
use drgpum_workloads::registry::RunConfig;
use gpu_sim::DeviceContext;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::Arc;

fn main() {
    let mut drgpum: HashSet<PatternKind> = HashSet::new();
    let mut value_expert: HashSet<PatternKind> = HashSet::new();
    let mut memcheck: HashSet<PatternKind> = HashSet::new();

    for spec in drgpum_workloads::all() {
        // DrGPUM.
        let (report, _) = profile_default(&spec, Variant::Unoptimized);
        drgpum.extend(report.patterns_present());

        // Baselines observe the identical program (fresh context each).
        let ve = Arc::new(Mutex::new(ValueExpertLite::new()));
        let mc = Arc::new(Mutex::new(MemcheckLite::new()));
        let mut ctx = DeviceContext::new_default();
        ctx.sanitizer_mut().register(ve.clone());
        ctx.sanitizer_mut().register(mc.clone());
        (spec.run)(&mut ctx, Variant::Unoptimized, &RunConfig::default())
            .unwrap_or_else(|e| panic!("workload {} failed: {e}", spec.name));
        let mut ve_tool = ve.lock();
        ve_tool.finish();
        value_expert.extend(ve_tool.detectable_patterns());
        memcheck.extend(mc.lock().detectable_patterns());
    }

    println!("Table 5: DrGPUM vs state-of-the-art tools\n");
    println!(
        "{:<30} {:>8} {:>13} {:>18}",
        "Inefficiency pattern", "DrGPUM", "ValueExpert", "Compute Sanitizer"
    );
    println!("{}", "-".repeat(72));
    let yes_no = |s: &HashSet<PatternKind>, p: PatternKind, starred: bool| {
        if s.contains(&p) {
            if starred {
                "Yes*"
            } else {
                "Yes"
            }
        } else {
            "No"
        }
    };
    // Paper's expected matrix for verification.
    let mut mismatches = 0;
    for p in PatternKind::ALL {
        let d = yes_no(&drgpum, p, false);
        let v = yes_no(&value_expert, p, p == PatternKind::UnusedAllocation);
        let m = yes_no(&memcheck, p, false);
        println!("{:<30} {:>8} {:>13} {:>18}", p.name(), d, v, m);
        let expected_v = p == PatternKind::UnusedAllocation;
        let expected_m = p == PatternKind::MemoryLeak;
        if d != "Yes" || (v.starts_with("Yes") != expected_v) || ((m == "Yes") != expected_m) {
            mismatches += 1;
        }
    }
    println!(
        "\n*: ValueExpert does not report unused allocations directly, but users \
         can reason about them from its access profile (paper footnote)."
    );
    if mismatches == 0 {
        println!("matrix matches the paper's Table 5");
    } else {
        println!("{mismatches} row(s) deviate from the paper's Table 5");
        std::process::exit(1);
    }
}
