//! Regenerates the paper's **Table 4**: peak memory reductions and
//! performance gains guided by DrGPUM.
//!
//! Every workload runs in its unoptimized and optimized variants; peak
//! device memory comes from the allocator's high-water mark (the caching
//! pool's peak for the PyTorch workload) and speedups from the simulated
//! end-to-end time on both platform models. The paper's numbers are printed
//! alongside for comparison. Checksum equality between the variants is the
//! "optimization preserves semantics" validation.
//!
//! Run with `cargo run -p drgpum-bench --bin table4`.

use drgpum_core::{Profiler, ProfilerOptions};
use drgpum_workloads::common::{RunOutcome, Variant};
use drgpum_workloads::registry::RunConfig;
use gpu_sim::{DeviceContext, PlatformConfig};

fn run_on(
    spec: &drgpum_workloads::WorkloadSpec,
    variant: Variant,
    platform: PlatformConfig,
) -> RunOutcome {
    let mut ctx = DeviceContext::new(platform);
    (spec.run)(&mut ctx, variant, &RunConfig::default())
        .unwrap_or_else(|e| panic!("workload {} failed: {e}", spec.name))
}

/// The advisor's predicted reduction from the unoptimized run's report —
/// what a user would see *before* writing any fix.
fn predicted_reduction(spec: &drgpum_workloads::WorkloadSpec) -> f64 {
    let mut ctx = DeviceContext::new(PlatformConfig::rtx3090());
    let mut options = ProfilerOptions::intra_object();
    if let Some(elem) = spec.elem_size_hint {
        options.elem_size = elem;
    }
    if spec.uses_pool {
        options.track_pool_tensors = true;
    }
    let profiler = Profiler::attach(&mut ctx, options);
    let cfg = RunConfig {
        pool_observer: spec
            .uses_pool
            .then(|| profiler.collector() as gpu_sim::pool::SharedPoolObserver),
    };
    (spec.run)(&mut ctx, Variant::Unoptimized, &cfg)
        .unwrap_or_else(|e| panic!("workload {} failed: {e}", spec.name));
    profiler.estimate_savings(&ctx).reduction_pct()
}

fn peak(outcome: &RunOutcome) -> u64 {
    outcome.pool_peak_bytes.unwrap_or(outcome.peak_bytes)
}

fn main() {
    println!("Table 4: peak memory reductions and speedups (measured vs paper)\n");
    println!(
        "{:<17} {:>6} {:>11} {:>10} {:>7} {:>12} {:>11} {:>12} {:>11}",
        "Program",
        "SLOC*",
        "mem (meas)",
        "(paper)",
        "est.**",
        "rtx3090 spd",
        "(paper)",
        "a100 spd",
        "(paper)"
    );
    println!("{}", "-".repeat(106));

    let mut ok = true;
    for spec in drgpum_workloads::all() {
        let rtx = PlatformConfig::rtx3090();
        let a100 = PlatformConfig::a100();
        let u_rtx = run_on(&spec, Variant::Unoptimized, rtx.clone());
        let o_rtx = run_on(&spec, Variant::Optimized, rtx);
        let u_a100 = run_on(&spec, Variant::Unoptimized, a100.clone());
        let o_a100 = run_on(&spec, Variant::Optimized, a100);

        // Semantics preserved (paper: "passes validation tests").
        assert!(
            ((u_rtx.checksum - o_rtx.checksum) / u_rtx.checksum.abs().max(1.0)).abs() < 1e-6,
            "{}: optimized variant changed results",
            spec.name
        );

        let reduction = 100.0 * (1.0 - peak(&o_rtx) as f64 / peak(&u_rtx) as f64);
        // The paper reports identical reductions on both platforms; verify.
        let reduction_a100 = 100.0 * (1.0 - peak(&o_a100) as f64 / peak(&u_a100) as f64);
        assert!(
            (reduction - reduction_a100).abs() < 1e-9,
            "{}: reduction differs across platforms",
            spec.name
        );

        let speed_rtx = u_rtx.elapsed.as_ns() as f64 / o_rtx.elapsed.as_ns() as f64;
        let speed_a100 = u_a100.elapsed.as_ns() as f64 / o_a100.elapsed.as_ns() as f64;

        let predicted = predicted_reduction(&spec);
        let mem_meas = if spec.expected_reduction_pct.is_some() {
            format!("{reduction:.1}%")
        } else {
            "-".to_owned()
        };
        let mem_paper = spec
            .expected_reduction_pct
            .map(|p| format!("{p:.0}%"))
            .unwrap_or_else(|| "-".to_owned());
        let (s_rtx, s_a100, p_rtx, p_a100) = match spec.expected_speedup {
            Some((pr, pa)) => (
                format!("{speed_rtx:.2}x"),
                format!("{speed_a100:.2}x"),
                format!("{pr:.2}x"),
                format!("{pa:.2}x"),
            ),
            None => (
                "-".to_owned(),
                "-".to_owned(),
                "-".to_owned(),
                "-".to_owned(),
            ),
        };
        println!(
            "{:<17} {:>6} {:>11} {:>10} {:>6.1}% {:>12} {:>11} {:>12} {:>11}",
            spec.name,
            spec.sloc_modified,
            mem_meas,
            mem_paper,
            predicted,
            s_rtx,
            p_rtx,
            s_a100,
            p_a100
        );

        if let Some(expected) = spec.expected_reduction_pct {
            if (reduction - expected).abs() > 3.0 {
                println!("  !! reduction off by more than 3 points");
                ok = false;
            }
        }
        if let Some((pr, _)) = spec.expected_speedup {
            if speed_rtx < 1.0 + (pr - 1.0) * 0.5 {
                println!("  !! speedup far below the paper's");
                ok = false;
            }
        }
    }
    println!("\n*: SLOC modified is the paper's count for the original CUDA sources.");
    println!(
        "**: est. is the advisor's predicted reduction from the unoptimized \
         run's findings alone (an upper bound; pool workloads predict at the \
         CUDA level)."
    );
    if !ok {
        std::process::exit(1);
    }
    println!("all reductions within 3 points of the paper; speedup shapes hold");
}
