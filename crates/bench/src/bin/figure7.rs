//! Regenerates the paper's **Figure 7**: the DrGPUM GUI for
//! SimpleMultiCopy.
//!
//! Profiles the unoptimized SimpleMultiCopy run and writes
//! `results/liveness.json` in the Chrome trace-event format. Load it at
//! <https://ui.perfetto.dev> via *Open trace file* — the workflow of the
//! paper's artifact appendix. The trace shows the topological order of GPU
//! APIs per stream, the lifetimes of the data objects of the top memory
//! peaks, and per-object inefficiency patterns with suggestions in the
//! slice arguments (e.g. `d_data_out1`'s early allocation).
//!
//! Run with `cargo run -p drgpum-bench --bin figure7`.

use drgpum_core::{Profiler, ProfilerOptions};
use drgpum_workloads::common::Variant;
use drgpum_workloads::registry::RunConfig;
use gpu_sim::DeviceContext;
use std::fs;
use std::path::Path;

fn main() {
    let spec = drgpum_workloads::by_name("SimpleMultiCopy").expect("registered");
    let mut ctx = DeviceContext::new_default();
    let profiler = Profiler::attach(&mut ctx, ProfilerOptions::object_level());
    (spec.run)(&mut ctx, Variant::Unoptimized, &RunConfig::default()).expect("workload runs");

    let report = profiler.report(&ctx);
    println!("{}", report.render_text());

    let trace = profiler.perfetto_trace(&ctx);
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join("liveness.json");
    fs::write(
        &path,
        serde_json::to_string_pretty(&trace).expect("serialize"),
    )
    .expect("write trace");
    let events = trace["traceEvents"].as_array().map(Vec::len).unwrap_or(0);
    println!("wrote {} ({events} trace events)", path.display());
    println!("open it at https://ui.perfetto.dev via `Open trace file`");

    // Sanity: the paper's headline finding must be present.
    let out1 = report.findings_for("d_data_out1");
    assert!(
        out1.iter()
            .any(|f| f.kind() == drgpum_core::PatternKind::EarlyAllocation),
        "d_data_out1 must match the early allocation pattern (Fig. 7)"
    );
}
