//! Ablation for kernel sampling (Sec. 5.5): sweep the sampling period and
//! report profiling cost vs detection quality.
//!
//! DrGPUM's kernel sampling relies on "code behaviors typically remain
//! similar across different instances of the same GPU kernel": patching one
//! in N instances should preserve the intra-object findings while cutting
//! overhead. The sweep profiles GramSchmidt (72 kernel instances) and BICG
//! (61) with periods 1 → 1000 and checks that the NUAF/SA/OA findings
//! survive and the instrumented-access count drops.
//!
//! Run with `cargo run -p drgpum-bench --bin ablation_sampling`.

use drgpum_bench::profile_workload;
use drgpum_core::{AnalysisLevel, PatternKind, SamplingPolicy};
use drgpum_workloads::common::Variant;
use gpu_sim::PlatformConfig;
use std::time::Instant;

fn main() {
    println!("Ablation: kernel sampling period vs detection quality\n");
    for name in ["GramSchmidt", "BICG"] {
        let spec = drgpum_workloads::by_name(name).expect("registered");
        println!("workload: {name}");
        println!(
            "{:>8} {:>12} {:>10}  intra-object patterns found",
            "period", "wall (ms)", "intra?"
        );
        let mut base_patterns = None;
        for period in [1u64, 10, 100, 1000] {
            let start = Instant::now();
            let (report, _) = profile_workload(
                &spec,
                Variant::Unoptimized,
                AnalysisLevel::IntraObject,
                PlatformConfig::rtx3090(),
                SamplingPolicy::with_period(period),
            );
            let wall = start.elapsed().as_secs_f64() * 1000.0;
            let intra: Vec<&'static str> = report
                .patterns_present()
                .into_iter()
                .filter(|p| !p.is_object_level())
                .map(PatternKind::code)
                .collect();
            println!(
                "{:>8} {:>12.1} {:>10}  {:?}",
                period,
                wall,
                if intra.is_empty() { "lost" } else { "kept" },
                intra
            );
            if period == 1 {
                base_patterns = Some(intra.clone());
            } else if period <= 10 {
                // Modest sampling must preserve every finding (instance 0
                // of each kernel is always patched).
                if let Some(base) = &base_patterns {
                    for p in base {
                        assert!(
                            intra.contains(p),
                            "{name}: pattern {p} lost at period {period}"
                        );
                    }
                }
            }
            // Beyond that, losing *multi-instance* patterns (structured
            // access needs ≥2 disjoint slices; GramSchmidt's per-slice
            // frequency skew needs many slices) is the inherent cost of
            // sampling — the trade-off this ablation quantifies.
        }
        println!();
    }
    println!(
        "single-instance findings (OA) survive any period; multi-instance \
         findings (SA, lifetime NUAF) need the sampling period to stay below \
         the kernel's instance count"
    );
}
