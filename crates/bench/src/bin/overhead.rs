//! Collection-pipeline overhead comparison (Sec. 5.5): serial vs. parallel
//! (sharded aggregation) vs. coalesced (warp-level record merging) vs. both,
//! on the largest PolyBench workload (3MM), with full intra-object analysis
//! of every kernel instance.
//!
//! Two properties are checked:
//!
//! 1. **Determinism** — the rendered report and the serialized trace
//!    (format v2 text) are byte-identical across all four modes. Trace v2
//!    round-trips depend on this; it is asserted, not sampled.
//! 2. **Speedup** — profiling overhead (profiled wall time minus native
//!    wall time) of parallel+coalesced is at least 2x lower than the serial
//!    baseline.
//!
//! Run with `cargo run --release -p drgpum-bench --bin overhead`.
//! `DRGPUM_RUNS` overrides the repetition count (default 7; minimum is
//! used, so more runs only reduce noise).

use drgpum_bench::profile_with_options;
use drgpum_core::{ProfilerOptions, Report};
use drgpum_workloads::{by_name, Variant, WorkloadSpec};
use gpu_sim::{DeviceContext, PlatformConfig};
use std::time::{Duration, Instant};

/// Wall-clock of one native (unprofiled) run.
fn native_once(spec: &WorkloadSpec, platform: &PlatformConfig) -> Duration {
    let mut ctx = DeviceContext::new(platform.clone());
    let start = Instant::now();
    (spec.run)(&mut ctx, Variant::Unoptimized, &Default::default())
        .unwrap_or_else(|e| panic!("workload {} failed: {e}", spec.name));
    start.elapsed()
}

/// Wall-clock of one profiled run (instrumented workload only — report
/// rendering and trace serialization are mode-invariant and excluded),
/// plus its report text and trace bytes.
fn profiled_once(
    spec: &WorkloadSpec,
    platform: &PlatformConfig,
    options: &ProfilerOptions,
) -> (Duration, Report, String) {
    let (report, trace, _, elapsed) = profile_with_options(
        spec,
        Variant::Unoptimized,
        options.clone(),
        platform.clone(),
    );
    (elapsed, report, trace)
}

fn main() {
    let runs: usize = std::env::var("DRGPUM_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);
    let shards = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 8);
    let platform = PlatformConfig::rtx3090();
    let spec = by_name("3MM").expect("3MM is registered");

    let modes: [(&str, ProfilerOptions); 4] = [
        ("serial", ProfilerOptions::intra_object()),
        (
            "parallel",
            ProfilerOptions::intra_object().with_collector_shards(shards),
        ),
        (
            "coalesced",
            ProfilerOptions::intra_object().with_coalescing(),
        ),
        (
            "parallel+coalesced",
            ProfilerOptions::intra_object()
                .with_collector_shards(shards)
                .with_coalescing(),
        ),
    ];

    println!(
        "Collection-pipeline overhead on {} ({} shards, min of {} runs)\n",
        spec.name, shards, runs
    );

    let native = (0..runs)
        .map(|_| native_once(&spec, &platform))
        .min()
        .expect("at least one run");

    let mut baseline: Option<(String, String)> = None;
    let mut overheads: Vec<(&str, Duration)> = Vec::new();
    for (name, options) in &modes {
        let mut best: Option<Duration> = None;
        for _ in 0..runs {
            let (elapsed, report, trace) = profiled_once(&spec, &platform, options);
            best = Some(best.map_or(elapsed, |b| b.min(elapsed)));
            let text = report.render_text();
            match &baseline {
                None => baseline = Some((text, trace)),
                Some((base_text, base_trace)) => {
                    assert_eq!(
                        &text, base_text,
                        "report text diverged from serial baseline in mode `{name}`"
                    );
                    assert_eq!(
                        &trace, base_trace,
                        "trace v2 bytes diverged from serial baseline in mode `{name}`"
                    );
                }
            }
        }
        let best = best.expect("at least one run");
        overheads.push((name, best.saturating_sub(native)));
    }

    println!(
        "native run:            {:>10.3} ms",
        native.as_secs_f64() * 1e3
    );
    let serial_overhead = overheads[0].1;
    println!("{:<22} {:>12} {:>10}", "mode", "overhead", "speedup");
    println!("{}", "-".repeat(46));
    for (name, overhead) in &overheads {
        let speedup = serial_overhead.as_secs_f64() / overhead.as_secs_f64().max(1e-9);
        println!(
            "{:<22} {:>9.3} ms {:>9.2}x",
            name,
            overhead.as_secs_f64() * 1e3,
            speedup
        );
    }
    println!("\nreports and traces: byte-identical across all modes");

    let combined = overheads
        .iter()
        .find(|(n, _)| *n == "parallel+coalesced")
        .expect("mode present")
        .1;
    let speedup = serial_overhead.as_secs_f64() / combined.as_secs_f64().max(1e-9);
    assert!(
        speedup >= 2.0,
        "parallel+coalesced must cut profiling overhead by at least 2x \
         (got {speedup:.2}x: serial {:?} vs parallel+coalesced {:?})",
        serial_overhead,
        combined
    );
    println!("parallel+coalesced overhead speedup: {speedup:.2}x (>= 2x required)");
}
