//! Collection-pipeline and execution-parallelism overhead comparison
//! (Sec. 5.5) on the largest PolyBench workload (3MM), with full
//! intra-object analysis of every kernel instance.
//!
//! Two generations of the collection pipeline run side by side:
//!
//! * **slow-path modes** route through the pre-overhaul hot path
//!   (per-record descending `BTreeMap` resolution, per-byte map updates,
//!   per-record governor remetering, no resolve caches or pc memo) via the
//!   hidden `ProfilerOptions::with_slow_path` hook;
//! * **fast-path modes** use the epoch-snapshot allocation index, resolve
//!   caches, and word-level aggregation.
//!
//! Checked properties:
//!
//! 1. **Determinism** — the rendered report and the serialized trace
//!    (format v2 text) are byte-identical across *every* mode: slow path
//!    vs. fast path, all collection modes, and worker counts 1 vs. 4.
//!    Asserted on every run, not sampled.
//! 2. **Fast-path speedup** — profiling overhead (profiled wall time minus
//!    native wall time at the same worker count) of the fast-path
//!    sharded+coalesced mode is at least 1.5x lower than the slow-path
//!    sharded+coalesced mode. Single-core by construction (1 worker), so
//!    it is always enforced.
//! 3. **Collection speedup** — fast-path sharded+coalesced overhead is at
//!    least 2x lower than fast-path serial. Enforced when the host has
//!    2+ cores; always recorded.
//! 4. **Execution speedup** — the native run with 4 kernel workers is at
//!    least 1.8x faster than with 1. Enforced when the host has 4+ cores;
//!    always recorded.
//!
//! Host parallelism is detected exactly once at startup; every gate keys
//! off that one reading, and skipped gates say so on stdout and in the
//! JSON (`checks[].skipped_reason`). Per-mode resolve/aggregate/flush
//! phase timings (from `Collector::phase_timings`) land in the JSON too.
//!
//! Measurement is noise-hardened for shared hosts: native and profiled
//! runs are interleaved round-robin (so load drift hits every mode
//! equally), each per-round sample is the min of `DRGPUM_INNER`
//! back-to-back runs (scheduler noise is one-sided, so min filters it),
//! overhead is the *paired* difference `profiled - native` within each
//! round, and the final figure is the median across rounds (robust to
//! the spikes a min-of-separate-loops design turns into negative
//! overheads). One warmup round is discarded.
//!
//! Results land in `results/BENCH_5.json` — written *before* any gate is
//! enforced, so a failing run still leaves the artifact for inspection.
//!
//! Run with `cargo run --release -p drgpum-bench --bin overhead`.
//! `DRGPUM_RUNS` overrides the round count (default 7; medians are
//! taken, so more rounds only reduce noise).

use drgpum_bench::{median, profile_in_ctx_timed};
use drgpum_core::{PhaseTimings, ProfilerOptions, Report};
use drgpum_workloads::{by_name, Variant, WorkloadSpec};
use gpu_sim::{DeviceContext, PlatformConfig, SimConfig};
use std::time::{Duration, Instant};

/// Wall-clock of one native (unprofiled) run under `workers` kernel workers.
fn native_once(spec: &WorkloadSpec, platform: &PlatformConfig, workers: usize) -> Duration {
    let sim = SimConfig::new(platform.clone()).with_kernel_workers(workers);
    let mut ctx = DeviceContext::with_config(sim);
    let start = Instant::now();
    (spec.run)(&mut ctx, Variant::Unoptimized, &Default::default())
        .unwrap_or_else(|e| panic!("workload {} failed: {e}", spec.name));
    start.elapsed()
}

/// Wall-clock of one profiled run (instrumented workload only — report
/// rendering and trace serialization are mode-invariant and excluded),
/// plus its report, trace bytes, and hot-path phase timings.
fn profiled_once(
    spec: &WorkloadSpec,
    platform: &PlatformConfig,
    options: &ProfilerOptions,
    workers: usize,
) -> (Duration, Report, String, PhaseTimings) {
    let sim = SimConfig::new(platform.clone()).with_kernel_workers(workers);
    let ctx = DeviceContext::with_config(sim);
    let (report, trace, _, elapsed, phases) =
        profile_in_ctx_timed(spec, Variant::Unoptimized, options.clone(), ctx);
    (elapsed, report, trace, phases)
}

/// One collection mode under measurement.
struct Mode {
    name: &'static str,
    options: ProfilerOptions,
    workers: usize,
}

/// Median-of-rounds result for one mode.
struct Measured {
    name: &'static str,
    workers: usize,
    slow_path: bool,
    wall_ms: f64,
    overhead_ms: f64,
    phases: PhaseTimings,
}

/// Per-round samples for one mode, folded into a [`Measured`] at the end.
#[derive(Default)]
struct Samples {
    wall_ms: Vec<f64>,
    overhead_ms: Vec<f64>,
    /// Phase timings of the fastest round (least contaminated by noise).
    best: Option<(Duration, PhaseTimings)>,
}

/// One enforceable metric: always recorded, asserted only when its gate
/// (decided from the single startup core-count reading) is open.
struct Check {
    name: &'static str,
    value: f64,
    threshold: f64,
    enforced: bool,
    skipped_reason: Option<String>,
}

fn main() {
    let runs: usize = std::env::var("DRGPUM_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);
    // The one and only parallelism probe: every gate below keys off this.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let shards = cores.clamp(2, 8);
    let platform = PlatformConfig::rtx3090();
    let spec = by_name("3MM").expect("3MM is registered");

    let intra = ProfilerOptions::intra_object;
    let modes: Vec<Mode> = vec![
        Mode {
            name: "slow-path serial",
            options: intra().with_slow_path(),
            workers: 1,
        },
        Mode {
            name: "slow-path sharded+coalesced",
            options: intra()
                .with_collector_shards(shards)
                .with_coalescing()
                .with_slow_path(),
            workers: 1,
        },
        Mode {
            name: "serial",
            options: intra(),
            workers: 1,
        },
        Mode {
            name: "sharded",
            options: intra().with_collector_shards(shards),
            workers: 1,
        },
        Mode {
            name: "coalesced",
            options: intra().with_coalescing(),
            workers: 1,
        },
        Mode {
            name: "sharded+coalesced",
            options: intra().with_collector_shards(shards).with_coalescing(),
            workers: 1,
        },
        Mode {
            name: "workers4",
            options: intra(),
            workers: 4,
        },
        Mode {
            name: "workers4+sharded+coalesced",
            options: intra().with_collector_shards(shards).with_coalescing(),
            workers: 4,
        },
    ];

    println!(
        "Collection-pipeline overhead on {} ({} shards, median of {} rounds, {} host core(s))\n",
        spec.name, shards, runs, cores
    );

    // The byte-identity baseline is the *slow-path* serial run: every
    // other mode — fast path included — is pinned against the pre-overhaul
    // pipeline's exact report text and trace v2 bytes.
    let mut baseline: Option<(String, String)> = None;
    let mut native1_ms: Vec<f64> = Vec::new();
    let mut native4_ms: Vec<f64> = Vec::new();
    let mut samples: Vec<Samples> = modes.iter().map(|_| Samples::default()).collect();
    // Scheduler noise is one-sided (preemption only ever adds time), so
    // each per-round sample is the min of `inner` back-to-back runs —
    // taken inside the round's short window, where min filters spikes
    // without the cross-session drift that a global min suffers from.
    let inner: usize = std::env::var("DRGPUM_INNER")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    // Round 0 is a discarded warmup (page cache, allocator pools); the
    // byte-identity asserts still run on it.
    for round in 0..=runs {
        let warmup = round == 0;
        let n1 = (0..inner)
            .map(|_| native_once(&spec, &platform, 1))
            .min()
            .expect("inner >= 1");
        let n4 = (0..inner)
            .map(|_| native_once(&spec, &platform, 4))
            .min()
            .expect("inner >= 1");
        if !warmup {
            native1_ms.push(n1.as_secs_f64() * 1e3);
            native4_ms.push(n4.as_secs_f64() * 1e3);
        }
        for (mode, sample) in modes.iter().zip(samples.iter_mut()) {
            let mut round_best: Option<(Duration, PhaseTimings)> = None;
            for _ in 0..inner {
                let (elapsed, report, trace, phases) =
                    profiled_once(&spec, &platform, &mode.options, mode.workers);
                if round_best
                    .as_ref()
                    .map(|(b, _)| elapsed < *b)
                    .unwrap_or(true)
                {
                    round_best = Some((elapsed, phases));
                }
                let text = report.render_text();
                match &baseline {
                    None => baseline = Some((text, trace)),
                    Some((base_text, base_trace)) => {
                        assert_eq!(
                            &text, base_text,
                            "report text diverged from slow-path baseline in mode `{}`",
                            mode.name
                        );
                        assert_eq!(
                            &trace, base_trace,
                            "trace v2 bytes diverged from slow-path baseline in mode `{}`",
                            mode.name
                        );
                    }
                }
            }
            if warmup {
                continue;
            }
            let (elapsed, phases) = round_best.expect("inner >= 1");
            // Overhead is the *paired* difference against the native run
            // of the same round and worker count: pairing cancels load
            // drift, and matching worker counts keeps execution
            // parallelism from masquerading as a cheaper pipeline.
            let native_same = if mode.workers == 4 { n4 } else { n1 };
            sample
                .overhead_ms
                .push((elapsed.as_secs_f64() - native_same.as_secs_f64()).max(0.0) * 1e3);
            sample.wall_ms.push(elapsed.as_secs_f64() * 1e3);
            if sample
                .best
                .as_ref()
                .map(|(b, _)| elapsed < *b)
                .unwrap_or(true)
            {
                sample.best = Some((elapsed, phases));
            }
        }
    }

    let native_ms = median(&mut native1_ms.clone());
    let native4_med_ms = median(&mut native4_ms.clone());
    let mut measured: Vec<Measured> = Vec::new();
    for (mode, sample) in modes.iter().zip(samples.iter_mut()) {
        let (_, phases) = sample.best.expect("at least one round");
        measured.push(Measured {
            name: mode.name,
            workers: mode.workers,
            slow_path: mode.options.slow_path,
            wall_ms: median(&mut sample.wall_ms),
            overhead_ms: median(&mut sample.overhead_ms),
            phases,
        });
    }

    let by_name = |n: &str| {
        measured
            .iter()
            .find(|m| m.name == n)
            .unwrap_or_else(|| panic!("mode `{n}` measured"))
    };
    let slow_serial = by_name("slow-path serial");
    let slow_sc = by_name("slow-path sharded+coalesced");
    let fast_serial = by_name("serial");
    let fast_sc = by_name("sharded+coalesced");

    println!("native run (1 worker): {native_ms:>10.3} ms");
    println!("native run (4 workers):{native4_med_ms:>10.3} ms");
    let slow_overhead_ms = slow_serial.overhead_ms;
    println!(
        "{:<28} {:>12} {:>9} {:>9} {:>9} {:>9}",
        "mode", "overhead", "speedup", "resolve", "aggr", "flush"
    );
    println!("{}", "-".repeat(82));
    let mut mode_json = Vec::new();
    for m in &measured {
        let speedup = slow_overhead_ms / m.overhead_ms.max(1e-6);
        println!(
            "{:<28} {:>9.3} ms {:>8.2}x {:>6.2} ms {:>6.2} ms {:>6.2} ms",
            m.name,
            m.overhead_ms,
            speedup,
            m.phases.resolve_ns as f64 / 1e6,
            m.phases.aggregate_ns as f64 / 1e6,
            m.phases.flush_ns as f64 / 1e6,
        );
        mode_json.push(serde_json::json!({
            "mode": m.name,
            "workers": m.workers,
            "slow_path": m.slow_path,
            "wall_ms": m.wall_ms,
            "overhead_ms": m.overhead_ms,
            "overhead_speedup_vs_slow_serial": speedup,
            "phases": {
                "resolve_ns": m.phases.resolve_ns,
                "aggregate_ns": m.phases.aggregate_ns,
                "flush_ns": m.phases.flush_ns,
            },
        }));
    }
    println!("\nreports and traces: byte-identical across slow/fast paths, modes, worker counts");

    let ratio = |num: f64, den: f64| num / den.max(1e-6);
    let checks = vec![
        Check {
            name: "fastpath_overhead_speedup",
            value: ratio(slow_sc.overhead_ms, fast_sc.overhead_ms),
            threshold: 1.5,
            enforced: true,
            skipped_reason: None,
        },
        Check {
            name: "sharded_coalesced_speedup_vs_serial",
            value: ratio(fast_serial.overhead_ms, fast_sc.overhead_ms),
            threshold: 2.0,
            enforced: cores >= 2,
            skipped_reason: (cores < 2).then(|| {
                format!("host has {cores} core(s); sharded aggregation needs 2+ to be enforced")
            }),
        },
        Check {
            name: "exec_speedup_workers4",
            value: ratio(native_ms, native4_med_ms),
            threshold: 1.8,
            enforced: cores >= 4,
            skipped_reason: (cores < 4).then(|| {
                format!("host has {cores} core(s); 4-worker execution needs 4+ to be enforced")
            }),
        },
    ];
    for c in &checks {
        match &c.skipped_reason {
            None => println!(
                "check {}: {:.2}x (>= {:.1}x required)",
                c.name, c.value, c.threshold
            ),
            Some(reason) => println!(
                "check {}: {:.2}x recorded, NOT enforced — {reason}",
                c.name, c.value
            ),
        }
    }

    let out = serde_json::json!({
        "bench": "overhead",
        "workload": spec.name,
        "runs": runs,
        "host_cores": cores,
        "collector_shards": shards,
        "native_ms_workers1": native_ms,
        "native_ms_workers4": native4_med_ms,
        "byte_identical_across_modes_and_workers": true,
        "modes": mode_json,
        "checks": checks.iter().map(|c| serde_json::json!({
            "check": c.name,
            "value": c.value,
            "threshold": c.threshold,
            "enforced": c.enforced,
            "skipped_reason": c.skipped_reason,
        })).collect::<Vec<_>>(),
    });
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write(
        "results/BENCH_5.json",
        serde_json::to_string_pretty(&out).expect("serialize"),
    )
    .expect("write results/BENCH_5.json");
    println!("wrote results/BENCH_5.json");

    // Gates are enforced only after the artifact is on disk, so a failing
    // run still leaves the numbers behind for inspection.
    for c in &checks {
        if c.enforced {
            assert!(
                c.value >= c.threshold,
                "check `{}` below threshold: got {:.2}x, need >= {:.1}x",
                c.name,
                c.value,
                c.threshold
            );
        }
    }
}
