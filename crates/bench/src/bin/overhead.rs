//! Collection-pipeline and execution-parallelism overhead comparison
//! (Sec. 5.5): serial vs. parallel (sharded aggregation) vs. coalesced
//! (warp-level record merging) vs. both, on the largest PolyBench workload
//! (3MM), with full intra-object analysis of every kernel instance — plus
//! the block-parallel execution path (`SimConfig::kernel_workers`).
//!
//! Three properties are checked:
//!
//! 1. **Determinism** — the rendered report and the serialized trace
//!    (format v2 text) are byte-identical across all four collection modes
//!    *and* across worker counts (1 vs. 4). Trace v2 round-trips depend on
//!    this; it is asserted, not sampled.
//! 2. **Collection speedup** — profiling overhead (profiled wall time minus
//!    native wall time) of parallel+coalesced is at least 2x lower than the
//!    serial baseline.
//! 3. **Execution speedup** — the native end-to-end run with 4 kernel
//!    workers is at least 1.8x faster than with 1. Only enforced when the
//!    host actually has 4+ cores; the measurement is always recorded.
//!
//! Results land in `results/BENCH_3.json`.
//!
//! Run with `cargo run --release -p drgpum-bench --bin overhead`.
//! `DRGPUM_RUNS` overrides the repetition count (default 7; minimum is
//! used, so more runs only reduce noise).

use drgpum_bench::profile_in_ctx;
use drgpum_core::{ProfilerOptions, Report};
use drgpum_workloads::{by_name, Variant, WorkloadSpec};
use gpu_sim::{DeviceContext, PlatformConfig, SimConfig};
use std::time::{Duration, Instant};

/// Wall-clock of one native (unprofiled) run under `workers` kernel workers.
fn native_once(spec: &WorkloadSpec, platform: &PlatformConfig, workers: usize) -> Duration {
    let sim = SimConfig::new(platform.clone()).with_kernel_workers(workers);
    let mut ctx = DeviceContext::with_config(sim);
    let start = Instant::now();
    (spec.run)(&mut ctx, Variant::Unoptimized, &Default::default())
        .unwrap_or_else(|e| panic!("workload {} failed: {e}", spec.name));
    start.elapsed()
}

/// Wall-clock of one profiled run (instrumented workload only — report
/// rendering and trace serialization are mode-invariant and excluded),
/// plus its report text and trace bytes.
fn profiled_once(
    spec: &WorkloadSpec,
    platform: &PlatformConfig,
    options: &ProfilerOptions,
    workers: usize,
) -> (Duration, Report, String) {
    let sim = SimConfig::new(platform.clone()).with_kernel_workers(workers);
    let ctx = DeviceContext::with_config(sim);
    let (report, trace, _, elapsed) =
        profile_in_ctx(spec, Variant::Unoptimized, options.clone(), ctx);
    (elapsed, report, trace)
}

fn main() {
    let runs: usize = std::env::var("DRGPUM_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let shards = cores.clamp(2, 8);
    let platform = PlatformConfig::rtx3090();
    let spec = by_name("3MM").expect("3MM is registered");

    let modes: [(&str, ProfilerOptions, usize); 6] = [
        ("serial", ProfilerOptions::intra_object(), 1),
        (
            "sharded",
            ProfilerOptions::intra_object().with_collector_shards(shards),
            1,
        ),
        (
            "coalesced",
            ProfilerOptions::intra_object().with_coalescing(),
            1,
        ),
        (
            "sharded+coalesced",
            ProfilerOptions::intra_object()
                .with_collector_shards(shards)
                .with_coalescing(),
            1,
        ),
        ("workers4", ProfilerOptions::intra_object(), 4),
        (
            "workers4+sharded+coalesced",
            ProfilerOptions::intra_object()
                .with_collector_shards(shards)
                .with_coalescing(),
            4,
        ),
    ];

    println!(
        "Collection-pipeline overhead on {} ({} shards, min of {} runs, {} cores)\n",
        spec.name, shards, runs, cores
    );

    let native = (0..runs)
        .map(|_| native_once(&spec, &platform, 1))
        .min()
        .expect("at least one run");
    let native_w4 = (0..runs)
        .map(|_| native_once(&spec, &platform, 4))
        .min()
        .expect("at least one run");

    let mut baseline: Option<(String, String)> = None;
    let mut overheads: Vec<(&str, Duration)> = Vec::new();
    for (name, options, workers) in &modes {
        let mut best: Option<Duration> = None;
        for _ in 0..runs {
            let (elapsed, report, trace) = profiled_once(&spec, &platform, options, *workers);
            best = Some(best.map_or(elapsed, |b| b.min(elapsed)));
            let text = report.render_text();
            match &baseline {
                None => baseline = Some((text, trace)),
                Some((base_text, base_trace)) => {
                    assert_eq!(
                        &text, base_text,
                        "report text diverged from serial baseline in mode `{name}`"
                    );
                    assert_eq!(
                        &trace, base_trace,
                        "trace v2 bytes diverged from serial baseline in mode `{name}`"
                    );
                }
            }
        }
        let best = best.expect("at least one run");
        overheads.push((name, best.saturating_sub(native)));
    }

    println!(
        "native run (1 worker): {:>10.3} ms",
        native.as_secs_f64() * 1e3
    );
    println!(
        "native run (4 workers):{:>10.3} ms",
        native_w4.as_secs_f64() * 1e3
    );
    let serial_overhead = overheads[0].1;
    println!("{:<28} {:>12} {:>10}", "mode", "overhead", "speedup");
    println!("{}", "-".repeat(52));
    let mut mode_json = Vec::new();
    for (name, overhead) in &overheads {
        let speedup = serial_overhead.as_secs_f64() / overhead.as_secs_f64().max(1e-9);
        println!(
            "{:<28} {:>9.3} ms {:>9.2}x",
            name,
            overhead.as_secs_f64() * 1e3,
            speedup
        );
        mode_json.push(serde_json::json!({
            "mode": name,
            "overhead_ms": overhead.as_secs_f64() * 1e3,
            "overhead_speedup_vs_serial": speedup,
        }));
    }
    println!("\nreports and traces: byte-identical across all modes and worker counts");

    let combined = overheads
        .iter()
        .find(|(n, _)| *n == "sharded+coalesced")
        .expect("mode present")
        .1;
    let collect_speedup = serial_overhead.as_secs_f64() / combined.as_secs_f64().max(1e-9);
    assert!(
        collect_speedup >= 2.0,
        "sharded+coalesced must cut profiling overhead by at least 2x \
         (got {collect_speedup:.2}x: serial {:?} vs sharded+coalesced {:?})",
        serial_overhead,
        combined
    );
    println!("sharded+coalesced overhead speedup: {collect_speedup:.2}x (>= 2x required)");

    let exec_speedup = native.as_secs_f64() / native_w4.as_secs_f64().max(1e-9);
    let enforce_exec = cores >= 4;
    println!(
        "4-worker end-to-end speedup: {exec_speedup:.2}x ({})",
        if enforce_exec {
            ">= 1.8x required"
        } else {
            "not enforced: fewer than 4 cores"
        }
    );

    let out = serde_json::json!({
        "bench": "overhead",
        "workload": spec.name,
        "runs": runs,
        "host_cores": cores,
        "collector_shards": shards,
        "native_ms_workers1": native.as_secs_f64() * 1e3,
        "native_ms_workers4": native_w4.as_secs_f64() * 1e3,
        "exec_speedup_workers4": exec_speedup,
        "exec_speedup_enforced": enforce_exec,
        "collection_overhead_speedup": collect_speedup,
        "byte_identical_across_modes_and_workers": true,
        "modes": mode_json,
    });
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write(
        "results/BENCH_3.json",
        serde_json::to_string_pretty(&out).expect("serialize"),
    )
    .expect("write results/BENCH_3.json");
    println!("wrote results/BENCH_3.json");

    if enforce_exec {
        assert!(
            exec_speedup >= 1.8,
            "4 kernel workers must yield at least a 1.8x end-to-end speedup on \
             {} (got {exec_speedup:.2}x: {:?} vs {:?})",
            spec.name,
            native,
            native_w4
        );
    }
}
