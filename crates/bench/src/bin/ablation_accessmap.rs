//! Ablation for the paper's Sec. 5.5 acceleration strategies:
//!
//! 1. **Object-level offload (Fig. 5).** The naive design streams every
//!    memory-access record to the CPU to build the access trace; DrGPUM
//!    instead offloads hit-flag matching to the GPU. We compare the
//!    simulated cost of `PatchMode::Full` (naive streaming) vs
//!    `PatchMode::HitFlags` (Fig. 5) for object-level analysis — the paper
//!    reports Darknet dropping from 1.5 hours to 12 seconds.
//! 2. **Adaptive access-map placement.** Before each fully-patched kernel
//!    DrGPUM sums access maps + live data and places map updates on the GPU
//!    iff they fit; otherwise it streams records to the CPU. We force the
//!    decision both ways by shrinking the device and report the decision
//!    log.
//!
//! Run with `cargo run -p drgpum-bench --bin ablation_accessmap`.

use drgpum_core::collector::MapSide;
use drgpum_core::{Collector, ProfilerOptions};
use drgpum_workloads::common::Variant;
use drgpum_workloads::registry::RunConfig;
use gpu_sim::sanitizer::{KernelInfo, PatchMode, SanitizerHooks};
use gpu_sim::{DeviceContext, PlatformConfig};
use parking_lot::Mutex;
use std::sync::Arc;

/// A tool that forces a fixed patch mode on every kernel, to cost the
/// naive full-streaming design against the hit-flag design.
struct ForcedMode(PatchMode);

impl SanitizerHooks for ForcedMode {
    fn on_kernel_begin(&mut self, _info: &KernelInfo) -> PatchMode {
        self.0
    }
}

fn simulated_ns(spec: &drgpum_workloads::WorkloadSpec, mode: Option<PatchMode>) -> u64 {
    let mut ctx = DeviceContext::new_default();
    if let Some(m) = mode {
        ctx.sanitizer_mut()
            .register(Arc::new(Mutex::new(ForcedMode(m))));
    }
    let out = (spec.run)(&mut ctx, Variant::Unoptimized, &RunConfig::default())
        .unwrap_or_else(|e| panic!("workload {} failed: {e}", spec.name));
    out.elapsed.as_ns()
}

fn main() {
    println!("Ablation 1: GPU-side hit flags (Fig. 5) vs naive record streaming");
    println!("(simulated time of the unoptimized run under each instrumentation)\n");
    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>9} {:>9}",
        "Program", "native", "hit-flags", "full-stream", "hf ovh", "full ovh"
    );
    println!("{}", "-".repeat(74));
    for spec in drgpum_workloads::all() {
        let native = simulated_ns(&spec, None).max(1);
        let hit = simulated_ns(&spec, Some(PatchMode::HitFlags));
        let full = simulated_ns(&spec, Some(PatchMode::Full));
        println!(
            "{:<18} {:>8}us {:>10}us {:>10}us {:>8.2}x {:>8.2}x",
            spec.name,
            native / 1000,
            hit / 1000,
            full / 1000,
            hit as f64 / native as f64,
            full as f64 / native as f64,
        );
        assert!(
            full >= hit,
            "{}: full streaming must not be cheaper than hit flags",
            spec.name
        );
    }

    println!("\nAblation 2: adaptive access-map placement (maps on GPU iff they fit)");
    let spec = drgpum_workloads::by_name("Darknet").expect("registered");
    for (label, capacity) in [
        (
            "roomy device (24 GB)",
            PlatformConfig::rtx3090().device_memory_bytes,
        ),
        ("tiny device (1.5 MB)", 1_500_000),
    ] {
        let mut platform = PlatformConfig::rtx3090();
        // Keep the allocator roomy so the workload still runs; the planner
        // bases its decision on the advertised capacity.
        let advertised = capacity;
        platform.device_memory_bytes = platform.device_memory_bytes.max(advertised);
        let mut ctx = DeviceContext::new(platform);
        let collector = Arc::new(Mutex::new(Collector::new(
            ProfilerOptions::intra_object(),
            advertised,
        )));
        ctx.sanitizer_mut().register(collector.clone());
        (spec.run)(&mut ctx, Variant::Unoptimized, &RunConfig::default())
            .unwrap_or_else(|e| panic!("workload failed: {e}"));
        let col = collector.lock();
        let gpu = col
            .mode_decisions()
            .iter()
            .filter(|d| d.side == MapSide::Gpu)
            .count();
        let cpu = col.mode_decisions().len() - gpu;
        println!("  {label}: {gpu} kernels updated maps on the GPU, {cpu} streamed to the CPU");
        assert!(
            !col.mode_decisions().is_empty(),
            "intra-object analysis must log placement decisions"
        );
        if let Some(d) = col.mode_decisions().first() {
            println!(
                "    first decision: kernel {} with {} map bytes + {} data bytes",
                d.kernel, d.map_bytes, d.data_bytes
            );
        }
    }
}
