//! Regenerates the paper's **Figure 6**: DrGPUM's profiling overhead on
//! both platforms, for object-level and intra-object analysis.
//!
//! Methodology matches the paper's caption: object-level analysis monitors
//! every GPU API without sampling; intra-object analysis monitors the GPU
//! kernel with the largest memory footprint and uses a kernel sampling
//! period of 100. Overhead is the wall-clock ratio of the profiled run to
//! the native run, averaged over `DRGPUM_RUNS` repetitions (default 5; the
//! paper uses 10).
//!
//! Run with `cargo run --release -p drgpum-bench --bin figure6`.

use drgpum_bench::{geomean, largest_footprint_kernel, median, run_native, run_profiled};
use drgpum_core::{AnalysisLevel, SamplingPolicy};
use gpu_sim::PlatformConfig;
use std::time::Duration;

fn avg_secs(times: &[Duration]) -> f64 {
    times.iter().map(Duration::as_secs_f64).sum::<f64>() / times.len() as f64
}

fn main() {
    let runs: usize = std::env::var("DRGPUM_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    println!("Figure 6: DrGPUM overhead (x native), {runs} runs per point\n");
    let mut csv = String::from("platform,program,object_level,intra_object\n");
    for platform in [PlatformConfig::rtx3090(), PlatformConfig::a100()] {
        println!("platform: {}", platform.name);
        println!(
            "{:<18} {:>12} {:>12}",
            "Program", "object-level", "intra-object"
        );
        println!("{}", "-".repeat(44));
        let mut obj_ratios = Vec::new();
        let mut intra_ratios = Vec::new();
        for spec in drgpum_workloads::all() {
            let native: Vec<Duration> = (0..runs)
                .map(|_| run_native(&spec, platform.clone()).0)
                .collect();
            let obj: Vec<Duration> = (0..runs)
                .map(|_| {
                    run_profiled(
                        &spec,
                        platform.clone(),
                        AnalysisLevel::ObjectLevel,
                        SamplingPolicy::default(),
                    )
                })
                .collect();
            // Intra-object: largest-footprint kernel only, period 100.
            let sampling = match largest_footprint_kernel(&spec) {
                Some(kernel) => SamplingPolicy::with_period(100).with_whitelist([kernel]),
                None => SamplingPolicy::with_period(100),
            };
            let intra: Vec<Duration> = (0..runs)
                .map(|_| {
                    run_profiled(
                        &spec,
                        platform.clone(),
                        AnalysisLevel::IntraObject,
                        sampling.clone(),
                    )
                })
                .collect();
            let native_s = avg_secs(&native).max(1e-9);
            let obj_ratio = avg_secs(&obj) / native_s;
            let intra_ratio = avg_secs(&intra) / native_s;
            obj_ratios.push(obj_ratio);
            intra_ratios.push(intra_ratio);
            println!(
                "{:<18} {:>11.2}x {:>11.2}x",
                spec.name, obj_ratio, intra_ratio
            );
            csv.push_str(&format!(
                "{},{},{obj_ratio:.4},{intra_ratio:.4}\n",
                platform.name, spec.name
            ));
        }
        println!(
            "{:<18} {:>11.2}x {:>11.2}x   (paper: 1.45x/1.30x and 3.55x/4.13x)",
            "median",
            median(&mut obj_ratios.clone()),
            median(&mut intra_ratios.clone())
        );
        println!(
            "{:<18} {:>11.2}x {:>11.2}x   (paper: 2.19x/2.28x and 3.66x/3.31x)\n",
            "geomean",
            geomean(&obj_ratios),
            geomean(&intra_ratios)
        );
    }
    // The paper's artifact emits overhead.pdf; we emit the underlying data.
    std::fs::create_dir_all("results").ok();
    if std::fs::write("results/figure6.csv", csv).is_ok() {
        println!("per-benchmark data written to results/figure6.csv");
    }
}
