//! Regenerates the paper's **Table 1**: patterns of memory inefficiencies
//! found in popular GPU programs.
//!
//! For every workload, the unoptimized variant is profiled with full
//! intra-object analysis and the detected pattern set is compared against
//! the paper's row:
//!
//! * `✓` — expected by the paper and detected;
//! * `✗` — expected but NOT detected (a reproduction failure);
//! * `+` — detected beyond the paper's row (the detectors are sound, so
//!   these are real inefficiencies of the simulated program; see
//!   EXPERIMENTS.md for per-workload notes);
//! * ` ` — neither expected nor detected.
//!
//! Run with `cargo run -p drgpum-bench --bin table1`.

use drgpum_bench::profile_default;
use drgpum_core::PatternKind;
use drgpum_workloads::common::Variant;

fn main() {
    let patterns = PatternKind::ALL;
    println!("Table 1: patterns of memory inefficiencies found in popular GPU programs");
    println!("(✓ expected+found, ✗ expected+missed, + found beyond the paper's row)\n");
    print!("{:<18}", "Program");
    for p in patterns {
        print!("{:>6}", p.code());
    }
    println!();
    println!("{}", "-".repeat(18 + 6 * patterns.len()));

    let mut missed_total = 0;
    for spec in drgpum_workloads::all() {
        let (report, _) = profile_default(&spec, Variant::Unoptimized);
        let detected = report.patterns_present();
        print!("{:<18}", spec.name);
        for p in patterns {
            let expected = spec.expected_patterns.contains(&p);
            let found = detected.contains(&p);
            let mark = match (expected, found) {
                (true, true) => "✓",
                (true, false) => {
                    missed_total += 1;
                    "✗"
                }
                (false, true) => "+",
                (false, false) => "",
            };
            print!("{mark:>6}");
        }
        println!();
    }
    println!();
    if missed_total == 0 {
        println!("all paper-expected patterns detected (0 misses)");
    } else {
        println!("{missed_total} paper-expected pattern(s) NOT detected");
        std::process::exit(1);
    }
}
