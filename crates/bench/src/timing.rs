//! Minimal micro-benchmark harness for the `benches/` targets.
//!
//! The build environment is fully offline, so the bench targets ship their
//! own Criterion-style loop instead of pulling in an external framework:
//! warm up, run a fixed number of timed iterations, and report min / median
//! / mean wall time per iteration.

use crate::median;
use std::time::Instant;

/// Timing summary for one benchmark case.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark label, e.g. `"object_level/detect_all/1000"`.
    pub name: String,
    /// Number of timed iterations.
    pub iters: u32,
    /// Fastest iteration, in nanoseconds.
    pub min_ns: f64,
    /// Median iteration, in nanoseconds.
    pub median_ns: f64,
    /// Mean iteration, in nanoseconds.
    pub mean_ns: f64,
}

/// Formats a nanosecond figure with a human-scale unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Runs `f` for `iters` timed iterations (plus ~10% warmup), prints a
/// one-line summary, and returns the timings.
///
/// Wrap the interesting value in [`std::hint::black_box`] inside `f` to
/// keep the optimizer honest, exactly as with Criterion's `b.iter`.
pub fn bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) -> BenchResult {
    let warmup = (iters / 10).max(1);
    for _ in 0..warmup {
        f();
    }
    let mut samples = Vec::with_capacity(iters as usize);
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        f();
        samples.push(start.elapsed().as_nanos() as f64);
    }
    let min_ns = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let mean_ns = samples.iter().sum::<f64>() / samples.len() as f64;
    let median_ns = median(&mut samples);
    println!(
        "{name:<48} median {:>10}   (min {:>10}, mean {:>10}, {} iters)",
        fmt_ns(median_ns),
        fmt_ns(min_ns),
        fmt_ns(mean_ns),
        samples.len(),
    );
    BenchResult {
        name: name.to_owned(),
        iters: samples.len() as u32,
        min_ns,
        median_ns,
        mean_ns,
    }
}

/// Prints a group header, mirroring Criterion's `benchmark_group` output.
pub fn group(title: &str) {
    println!("\n== {title} ==");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_sane_statistics() {
        let r = bench("noop", 16, || std::hint::black_box(1 + 1));
        assert_eq!(r.iters, 16);
        assert!(r.min_ns <= r.median_ns);
        assert!(r.min_ns <= r.mean_ns);
        assert!(r.median_ns.is_finite());
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(2_500.0), "2.50 µs");
        assert_eq!(fmt_ns(3_000_000.0), "3.00 ms");
        assert_eq!(fmt_ns(1.5e9), "1.50 s");
    }
}
