//! Streams, events, and the simulated timeline.
//!
//! GPU APIs dispatched on different streams may execute concurrently
//! (Sec. 5.3). The simulator models each stream as an in-order timeline with
//! a *tail* timestamp; an operation enqueued on stream `s` begins at
//! `max(host_now, tail(s))` and advances the tail by its simulated duration.
//! Events provide cross-stream ordering exactly like `cudaEventRecord` /
//! `cudaStreamWaitEvent`.

use crate::error::{Result, SimError};
use std::fmt;

/// Simulated time in nanoseconds since context creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The zero time.
    pub const ZERO: SimTime = SimTime(0);

    /// Returns the later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Adds a duration in nanoseconds.
    pub fn advance(self, ns: u64) -> SimTime {
        SimTime(self.0 + ns)
    }

    /// Nanoseconds since time zero.
    pub fn as_ns(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

/// Identifier of a stream. Stream 0 is the default stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StreamId(pub u32);

impl StreamId {
    /// The default stream (stream 0).
    pub const DEFAULT: StreamId = StreamId(0);
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream{}", self.0)
    }
}

/// Identifier of an event created with [`StreamSet::create_event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(pub u32);

#[derive(Debug, Clone)]
struct StreamState {
    tail: SimTime,
    /// Number of operations enqueued on this stream so far, used to derive
    /// per-stream API ordinals (the paper's `ALLOC(i, j)` naming in Fig. 7).
    ops: u64,
    /// Set by fault injection: an aborted stream rejects all further work.
    aborted: bool,
}

/// The set of streams and events owned by a device context.
#[derive(Debug)]
pub struct StreamSet {
    streams: Vec<StreamState>,
    events: Vec<Option<SimTime>>,
    host_now: SimTime,
}

impl Default for StreamSet {
    fn default() -> Self {
        StreamSet::new()
    }
}

impl StreamSet {
    /// Creates a stream set containing only the default stream.
    pub fn new() -> Self {
        StreamSet {
            streams: vec![StreamState {
                tail: SimTime::ZERO,
                ops: 0,
                aborted: false,
            }],
            events: Vec::new(),
            host_now: SimTime::ZERO,
        }
    }

    /// Creates a new stream and returns its id.
    pub fn create_stream(&mut self) -> StreamId {
        let id = StreamId(u32::try_from(self.streams.len()).expect("too many streams"));
        self.streams.push(StreamState {
            tail: self.host_now,
            ops: 0,
            aborted: false,
        });
        id
    }

    /// Creates a new (unrecorded) event.
    pub fn create_event(&mut self) -> EventId {
        let id = EventId(u32::try_from(self.events.len()).expect("too many events"));
        self.events.push(None);
        id
    }

    /// Number of streams, including the default stream.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Current host-side time.
    pub fn host_now(&self) -> SimTime {
        self.host_now
    }

    /// Advances host time by `ns` (models host-side work between API calls).
    pub fn advance_host(&mut self, ns: u64) {
        self.host_now = self.host_now.advance(ns);
    }

    fn state_mut(&mut self, stream: StreamId) -> Result<&mut StreamState> {
        self.streams
            .get_mut(stream.0 as usize)
            .ok_or(SimError::UnknownStream(stream.0))
    }

    fn state(&self, stream: StreamId) -> Result<&StreamState> {
        self.streams
            .get(stream.0 as usize)
            .ok_or(SimError::UnknownStream(stream.0))
    }

    /// Enqueues an asynchronous operation of `duration_ns` on `stream`.
    ///
    /// Returns the `(start, end)` interval and the per-stream ordinal of the
    /// operation. Host time does not advance (the call is asynchronous).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownStream`] for an id not created by this set.
    pub fn enqueue(
        &mut self,
        stream: StreamId,
        duration_ns: u64,
    ) -> Result<(SimTime, SimTime, u64)> {
        let host_now = self.host_now;
        let st = self.state_mut(stream)?;
        if st.aborted {
            return Err(SimError::StreamAborted(stream.0));
        }
        let start = st.tail.max(host_now);
        let end = start.advance(duration_ns);
        st.tail = end;
        let ordinal = st.ops;
        st.ops += 1;
        Ok((start, end, ordinal))
    }

    /// Enqueues a *synchronous* operation (e.g. a blocking memcpy): like
    /// [`StreamSet::enqueue`], but host time also advances to the end.
    pub fn enqueue_sync(
        &mut self,
        stream: StreamId,
        duration_ns: u64,
    ) -> Result<(SimTime, SimTime, u64)> {
        let (start, end, ordinal) = self.enqueue(stream, duration_ns)?;
        self.host_now = self.host_now.max(end);
        Ok((start, end, ordinal))
    }

    /// Fault injection: stalls `stream` by pushing its tail `ns` into the
    /// future. Later operations on the stream (and host syncs against it)
    /// observe the delay.
    pub fn stall_stream(&mut self, stream: StreamId, ns: u64) -> Result<()> {
        let host_now = self.host_now;
        let st = self.state_mut(stream)?;
        st.tail = st.tail.max(host_now).advance(ns);
        Ok(())
    }

    /// Fault injection: marks `stream` aborted; every subsequent enqueue on
    /// it fails with [`SimError::StreamAborted`].
    pub fn abort_stream(&mut self, stream: StreamId) -> Result<()> {
        self.state_mut(stream)?.aborted = true;
        Ok(())
    }

    /// `true` if `stream` has been aborted by fault injection.
    pub fn is_aborted(&self, stream: StreamId) -> bool {
        self.state(stream).map(|s| s.aborted).unwrap_or(false)
    }

    /// Records `event` at the current tail of `stream`
    /// (`cudaEventRecord`).
    pub fn record_event(&mut self, event: EventId, stream: StreamId) -> Result<SimTime> {
        let tail = self.state(stream)?.tail;
        let slot = self
            .events
            .get_mut(event.0 as usize)
            .ok_or(SimError::UnknownEvent(event.0))?;
        *slot = Some(tail);
        Ok(tail)
    }

    /// Makes `stream` wait for `event` (`cudaStreamWaitEvent`). Waiting on an
    /// unrecorded event is a no-op, as in CUDA.
    pub fn wait_event(&mut self, stream: StreamId, event: EventId) -> Result<()> {
        let recorded = *self
            .events
            .get(event.0 as usize)
            .ok_or(SimError::UnknownEvent(event.0))?;
        if let Some(t) = recorded {
            let st = self.state_mut(stream)?;
            st.tail = st.tail.max(t);
        }
        Ok(())
    }

    /// Blocks the host until `stream` drains (`cudaStreamSynchronize`).
    pub fn sync_stream(&mut self, stream: StreamId) -> Result<SimTime> {
        let tail = self.state(stream)?.tail;
        self.host_now = self.host_now.max(tail);
        Ok(self.host_now)
    }

    /// Blocks the host until all streams drain (`cudaDeviceSynchronize`).
    pub fn sync_device(&mut self) -> SimTime {
        let max_tail = self
            .streams
            .iter()
            .map(|s| s.tail)
            .max()
            .unwrap_or(SimTime::ZERO);
        self.host_now = self.host_now.max(max_tail);
        self.host_now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_stream_exists() {
        let s = StreamSet::new();
        assert_eq!(s.stream_count(), 1);
        assert_eq!(StreamId::DEFAULT, StreamId(0));
    }

    #[test]
    fn ops_on_one_stream_serialize() {
        let mut s = StreamSet::new();
        let (a0, a1, ord0) = s.enqueue(StreamId::DEFAULT, 100).unwrap();
        let (b0, b1, ord1) = s.enqueue(StreamId::DEFAULT, 50).unwrap();
        assert_eq!(a0, SimTime::ZERO);
        assert_eq!(a1, SimTime(100));
        assert_eq!(b0, SimTime(100));
        assert_eq!(b1, SimTime(150));
        assert_eq!((ord0, ord1), (0, 1));
    }

    #[test]
    fn ops_on_different_streams_overlap() {
        let mut s = StreamSet::new();
        let s1 = s.create_stream();
        let (a0, a1, _) = s.enqueue(StreamId::DEFAULT, 100).unwrap();
        let (b0, b1, _) = s.enqueue(s1, 100).unwrap();
        assert_eq!(a0, b0, "independent streams start together");
        assert_eq!(a1, b1);
    }

    #[test]
    fn sync_operations_block_host() {
        let mut s = StreamSet::new();
        s.enqueue(StreamId::DEFAULT, 100).unwrap();
        assert_eq!(s.host_now(), SimTime::ZERO);
        s.enqueue_sync(StreamId::DEFAULT, 10).unwrap();
        assert_eq!(s.host_now(), SimTime(110));
    }

    #[test]
    fn events_order_across_streams() {
        let mut s = StreamSet::new();
        let s1 = s.create_stream();
        let ev = s.create_event();
        s.enqueue(StreamId::DEFAULT, 100).unwrap();
        s.record_event(ev, StreamId::DEFAULT).unwrap();
        s.wait_event(s1, ev).unwrap();
        let (start, _, _) = s.enqueue(s1, 10).unwrap();
        assert_eq!(start, SimTime(100), "s1 waits for the event at t=100");
    }

    #[test]
    fn waiting_on_unrecorded_event_is_noop() {
        let mut s = StreamSet::new();
        let s1 = s.create_stream();
        let ev = s.create_event();
        s.wait_event(s1, ev).unwrap();
        let (start, _, _) = s.enqueue(s1, 10).unwrap();
        assert_eq!(start, SimTime::ZERO);
    }

    #[test]
    fn device_sync_joins_all_streams() {
        let mut s = StreamSet::new();
        let s1 = s.create_stream();
        s.enqueue(StreamId::DEFAULT, 70).unwrap();
        s.enqueue(s1, 100).unwrap();
        assert_eq!(s.sync_device(), SimTime(100));
    }

    #[test]
    fn unknown_ids_are_errors() {
        let mut s = StreamSet::new();
        assert!(matches!(
            s.enqueue(StreamId(9), 1).unwrap_err(),
            SimError::UnknownStream(9)
        ));
        assert!(matches!(
            s.wait_event(StreamId::DEFAULT, EventId(3)).unwrap_err(),
            SimError::UnknownEvent(3)
        ));
    }

    #[test]
    fn new_stream_starts_at_host_now() {
        let mut s = StreamSet::new();
        s.enqueue_sync(StreamId::DEFAULT, 500).unwrap();
        let s1 = s.create_stream();
        let (start, _, _) = s.enqueue(s1, 1).unwrap();
        assert_eq!(start, SimTime(500));
    }
}
