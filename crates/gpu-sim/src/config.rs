//! Platform configuration: the simulated analogue of the paper's Table 3.
//!
//! The DrGPUM paper evaluates on two machines (NVIDIA RTX 3090 + Intel Xeon
//! 4316, and NVIDIA A100 + AMD EPYC 7402). The simulator reproduces the
//! *relative* characteristics of the two platforms — memory bandwidth, access
//! latency, host-side speed — through a [`PlatformConfig`] that drives the
//! simulated-time cost model in [`crate::api::DeviceContext`].

/// Cost-model parameters for one simulated GPU platform.
///
/// All latencies are in simulated nanoseconds; bandwidths are in bytes per
/// simulated nanosecond (i.e. GB/s).
///
/// # Examples
///
/// ```
/// use gpu_sim::PlatformConfig;
///
/// let a100 = PlatformConfig::a100();
/// let rtx = PlatformConfig::rtx3090();
/// assert!(a100.global_bandwidth_bpns > rtx.global_bandwidth_bpns);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformConfig {
    /// Human-readable platform name (e.g. `"rtx3090"`).
    pub name: String,
    /// Total device memory capacity in bytes.
    pub device_memory_bytes: u64,
    /// Global-memory bandwidth, bytes per simulated nanosecond (== GB/s).
    pub global_bandwidth_bpns: f64,
    /// Host↔device (PCIe/NVLink) bandwidth, bytes per simulated nanosecond.
    pub interconnect_bandwidth_bpns: f64,
    /// Latency of one uncoalesced global-memory access, in ns.
    pub global_latency_ns: f64,
    /// Latency of one shared-memory access, in ns. The paper cites a ~100×
    /// speedup of on-chip memory over global memory (Sec. 3.2).
    pub shared_latency_ns: f64,
    /// Fixed cost of a `cudaMalloc`-family call, in ns.
    pub malloc_overhead_ns: u64,
    /// Fixed cost of a `cudaFree`-family call, in ns.
    pub free_overhead_ns: u64,
    /// Fixed cost of launching a kernel, in ns.
    pub launch_overhead_ns: u64,
    /// Fixed cost of a memcpy/memset API call (driver overhead), in ns.
    pub copy_overhead_ns: u64,
    /// Number of streaming multiprocessors; the kernel cost model divides
    /// aggregate per-thread work by an effective parallelism derived from it.
    pub sm_count: u32,
    /// Threads concurrently resident per SM used by the parallelism model.
    pub threads_per_sm: u32,
    /// Relative host (CPU) speed factor; > 1.0 means a slower CPU. Models the
    /// paper's observation that dwt2d overhead is higher on the (slower)
    /// AMD EPYC host of the A100 machine.
    pub cpu_factor: f64,
    /// Cost of one arithmetic instruction per thread, in ns.
    pub flop_ns: f64,
    /// Cost of migrating one unified-memory page between host and device,
    /// in ns. Page faults are expensive — the paper cites up to 10×
    /// slowdowns from unified-memory page migration (Sec. 1).
    pub page_migration_ns: u64,
}

impl PlatformConfig {
    /// Configuration modelled after the paper's RTX 3090 platform
    /// (24 GB GDDR6X, Intel Xeon 4316 host).
    pub fn rtx3090() -> Self {
        PlatformConfig {
            name: "rtx3090".to_owned(),
            device_memory_bytes: 24 * (1 << 30),
            global_bandwidth_bpns: 936.0,
            interconnect_bandwidth_bpns: 16.0,
            global_latency_ns: 400.0,
            shared_latency_ns: 4.0,
            malloc_overhead_ns: 10_000,
            free_overhead_ns: 6_000,
            launch_overhead_ns: 5_000,
            copy_overhead_ns: 4_000,
            sm_count: 82,
            threads_per_sm: 1536,
            cpu_factor: 1.0,
            flop_ns: 0.7,
            page_migration_ns: 20_000,
        }
    }

    /// Configuration modelled after the paper's A100 platform
    /// (40 GB HBM2, AMD EPYC 7402 host).
    pub fn a100() -> Self {
        PlatformConfig {
            name: "a100".to_owned(),
            device_memory_bytes: 40 * (1 << 30),
            global_bandwidth_bpns: 1555.0,
            interconnect_bandwidth_bpns: 24.0,
            global_latency_ns: 350.0,
            shared_latency_ns: 3.5,
            malloc_overhead_ns: 9_000,
            free_overhead_ns: 5_500,
            launch_overhead_ns: 4_500,
            copy_overhead_ns: 3_500,
            sm_count: 108,
            threads_per_sm: 2048,
            cpu_factor: 1.25,
            flop_ns: 0.5,
            page_migration_ns: 18_000,
        }
    }

    /// A tiny test platform with a small device memory, handy for forcing
    /// out-of-memory conditions and for fast unit tests.
    pub fn test_tiny() -> Self {
        PlatformConfig {
            name: "test-tiny".to_owned(),
            device_memory_bytes: 1 << 20, // 1 MiB
            ..PlatformConfig::rtx3090()
        }
    }

    /// Effective number of concurrently executing threads used by the kernel
    /// cost model.
    pub fn effective_parallelism(&self) -> f64 {
        f64::from(self.sm_count) * f64::from(self.threads_per_sm)
    }

    /// Simulated duration of a host↔device transfer of `bytes`.
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        self.copy_overhead_ns + (bytes as f64 / self.interconnect_bandwidth_bpns) as u64
    }

    /// Simulated duration of a device-internal streaming operation over
    /// `bytes` (memset, device-to-device copy).
    pub fn device_stream_ns(&self, bytes: u64) -> u64 {
        self.copy_overhead_ns + (bytes as f64 / self.global_bandwidth_bpns) as u64
    }
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig::rtx3090()
    }
}

/// Top-level simulator configuration: the platform cost model plus
/// execution knobs that are properties of the *simulator*, not of the
/// simulated hardware.
///
/// # Examples
///
/// ```
/// use gpu_sim::{DeviceContext, SimConfig};
///
/// let cfg = SimConfig::default().with_kernel_workers(4);
/// let ctx = DeviceContext::with_config(cfg);
/// assert_eq!(ctx.kernel_workers(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// The simulated platform (cost model, device memory size).
    pub platform: PlatformConfig,
    /// Number of worker threads used to execute a kernel's thread blocks.
    ///
    /// `1` (the default) runs the classic serial interpreter loop. Values
    /// above `1` execute blocks concurrently on a scoped thread pool while
    /// preserving byte-identical profiler output; kernels that touch
    /// unified memory or run under an active fault plan automatically fall
    /// back to the serial loop. `0` is treated as `1`.
    pub kernel_workers: usize,
    /// Wall-clock watchdog deadline, in milliseconds, for each kernel's
    /// block loop. When a kernel's execution exceeds the deadline the
    /// simulator stops at the next block boundary, delivers the partial
    /// results to every registered tool, and the launch returns
    /// [`crate::SimError::KernelFaulted`] — mirroring how a profiler's
    /// watchdog cancels a runaway kernel without losing the run. `None`
    /// (the default) never interrupts; the
    /// `DRGPUM_KERNEL_DEADLINE_MS` environment variable fills this for
    /// contexts built via [`crate::DeviceContext::new`].
    pub kernel_deadline_ms: Option<u64>,
}

impl SimConfig {
    /// A configuration for `platform` with serial kernel execution.
    pub fn new(platform: PlatformConfig) -> Self {
        SimConfig {
            platform,
            kernel_workers: 1,
            kernel_deadline_ms: None,
        }
    }

    /// Sets the kernel worker count (builder style).
    pub fn with_kernel_workers(mut self, workers: usize) -> Self {
        self.kernel_workers = workers.max(1);
        self
    }

    /// Sets the per-kernel wall-clock watchdog deadline (builder style);
    /// `0` disables the watchdog.
    pub fn with_kernel_deadline_ms(mut self, ms: u64) -> Self {
        self.kernel_deadline_ms = (ms >= 1).then_some(ms);
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::new(PlatformConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table3_relationships() {
        let rtx = PlatformConfig::rtx3090();
        let a100 = PlatformConfig::a100();
        // A100 has more device memory and higher bandwidth (Table 3 / Sec. 6).
        assert!(a100.device_memory_bytes > rtx.device_memory_bytes);
        assert!(a100.global_bandwidth_bpns > rtx.global_bandwidth_bpns);
        // The A100 machine's CPU is slower (dwt2d takeaway in Sec. 6).
        assert!(a100.cpu_factor > rtx.cpu_factor);
    }

    #[test]
    fn shared_memory_is_orders_of_magnitude_faster() {
        let cfg = PlatformConfig::rtx3090();
        assert!(cfg.global_latency_ns / cfg.shared_latency_ns >= 90.0);
    }

    #[test]
    fn transfer_cost_scales_with_bytes() {
        let cfg = PlatformConfig::rtx3090();
        assert!(cfg.transfer_ns(1 << 20) < cfg.transfer_ns(1 << 24));
        assert!(cfg.transfer_ns(0) == cfg.copy_overhead_ns);
    }

    #[test]
    fn default_is_rtx3090() {
        assert_eq!(PlatformConfig::default().name, "rtx3090");
    }

    #[test]
    fn tiny_platform_is_small() {
        assert!(PlatformConfig::test_tiny().device_memory_bytes <= 1 << 20);
    }

    #[test]
    fn sim_config_defaults_to_serial_execution() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.kernel_workers, 1);
        assert_eq!(cfg.platform, PlatformConfig::rtx3090());
    }

    #[test]
    fn sim_config_worker_builder_clamps_zero_to_serial() {
        assert_eq!(
            SimConfig::default().with_kernel_workers(0).kernel_workers,
            1
        );
        assert_eq!(
            SimConfig::default().with_kernel_workers(8).kernel_workers,
            8
        );
    }
}
