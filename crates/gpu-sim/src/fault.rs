//! Deterministic fault injection for the simulated GPU runtime.
//!
//! Production profilers must keep working when the profiled application
//! misbehaves: allocations fail, pointers are freed twice, kernels access
//! memory out of bounds, streams wedge. This module lets tests and chaos
//! harnesses reproduce those conditions *deterministically*: a [`FaultPlan`]
//! names which faults to inject, either at exact API sequence numbers or
//! probabilistically from a seeded PRNG, and the [`FaultInjector`] built from
//! it is consulted by [`DeviceContext`](crate::DeviceContext) on every
//! fault-capable operation.
//!
//! Injected faults surface as ordinary [`SimError`](crate::SimError) values
//! (plus synthetic API events for spurious frees), so everything downstream —
//! profilers, collectors, retry loops — exercises exactly the code paths a
//! real failure would.

use std::fmt;

/// A tiny, fast, seedable PRNG (SplitMix64).
///
/// Used for probabilistic fault triggers and available to tests that need
/// reproducible randomness without an external dependency.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal sequences.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform value in `[0, bound)`; returns 0 when `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// The kinds of fault the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultKind {
    /// `malloc` fails with a forced `OutOfMemory`.
    AllocFail,
    /// A successful `free` is followed by a synthetic duplicate `FREE`
    /// API event for the same (now dead) pointer.
    SpuriousFree,
    /// A launched kernel faults with an out-of-bounds access mid-execution.
    KernelOob,
    /// A launched kernel is killed mid-execution (only a prefix of its
    /// threads run).
    KernelKill,
    /// The target stream stalls: its tail jumps far into the future before
    /// the operation is enqueued.
    StreamStall,
    /// The target stream aborts: this and every later operation on it is
    /// rejected with `StreamAborted`.
    StreamAbort,
}

impl FaultKind {
    /// Every injectable fault kind, for matrix-style sweeps in tests.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::AllocFail,
        FaultKind::SpuriousFree,
        FaultKind::KernelOob,
        FaultKind::KernelKill,
        FaultKind::StreamStall,
        FaultKind::StreamAbort,
    ];

    /// Stable lowercase name, used in logs and degradation records.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::AllocFail => "alloc_fail",
            FaultKind::SpuriousFree => "spurious_free",
            FaultKind::KernelOob => "kernel_oob",
            FaultKind::KernelKill => "kernel_kill",
            FaultKind::StreamStall => "stream_stall",
            FaultKind::StreamAbort => "stream_abort",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// When a fault rule fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultTrigger {
    /// Fire exactly once, at the API whose global sequence number matches.
    ///
    /// Because the faulted call does not consume a sequence number, a retry
    /// of the same call sees the rule already spent — which is what makes
    /// `AtApiIndex` allocation failures *transient* and retryable.
    AtApiIndex(u64),
    /// Fire with this probability at every opportunity (seeded, so still
    /// deterministic for a given plan and program).
    Probability(f64),
}

#[derive(Debug, Clone)]
struct FaultRule {
    kind: FaultKind,
    trigger: FaultTrigger,
    spent: bool,
}

/// A declarative description of the faults to inject into one run.
///
/// # Examples
///
/// ```
/// use gpu_sim::{FaultKind, FaultPlan};
///
/// let plan = FaultPlan::new(42)
///     .at_api(3, FaultKind::AllocFail)
///     .probabilistic(FaultKind::KernelKill, 0.1);
/// assert!(!plan.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// Creates an empty plan with the PRNG seed for probabilistic rules.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Injects `kind` once, at the API with global sequence number
    /// `api_seq`.
    pub fn at_api(mut self, api_seq: u64, kind: FaultKind) -> Self {
        self.rules.push(FaultRule {
            kind,
            trigger: FaultTrigger::AtApiIndex(api_seq),
            spent: false,
        });
        self
    }

    /// Injects `kind` with probability `p` at every opportunity.
    pub fn probabilistic(mut self, kind: FaultKind, p: f64) -> Self {
        self.rules.push(FaultRule {
            kind,
            trigger: FaultTrigger::Probability(p.clamp(0.0, 1.0)),
            spent: false,
        });
        self
    }

    /// `true` if the plan has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// One fault the injector actually delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// What was injected.
    pub kind: FaultKind,
    /// Global API sequence number current when the fault fired.
    pub api_seq: u64,
}

/// The runtime side of a [`FaultPlan`]: consulted by the device context at
/// every fault-capable operation, records everything it injects.
#[derive(Debug)]
pub struct FaultInjector {
    rules: Vec<FaultRule>,
    rng: SplitMix64,
    log: Vec<InjectedFault>,
}

impl FaultInjector {
    /// Builds an injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            rng: SplitMix64::new(plan.seed),
            rules: plan.rules,
            log: Vec::new(),
        }
    }

    /// Decides whether a fault of `kind` fires at the operation with global
    /// sequence number `api_seq`, consuming one-shot rules and logging every
    /// injection.
    pub fn should_inject(&mut self, kind: FaultKind, api_seq: u64) -> bool {
        let mut fired = false;
        for rule in &mut self.rules {
            if rule.kind != kind || rule.spent {
                continue;
            }
            match rule.trigger {
                FaultTrigger::AtApiIndex(idx) => {
                    if idx == api_seq {
                        rule.spent = true;
                        fired = true;
                    }
                }
                FaultTrigger::Probability(p) => {
                    if self.rng.chance(p) {
                        fired = true;
                    }
                }
            }
        }
        if fired {
            self.log.push(InjectedFault { kind, api_seq });
        }
        fired
    }

    /// Everything injected so far, in firing order.
    pub fn log(&self) -> &[InjectedFault] {
        &self.log
    }
}

/// Bounded retry-with-backoff policy for transient allocation failures,
/// modelling the shrink-and-retry loops of real CUDA applications (e.g.
/// PyTorch's caching allocator halving its slab request on OOM).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum number of retries after the first failure.
    pub max_retries: u32,
    /// Base backoff charged to the simulated host clock; doubles per retry.
    pub backoff_ns: u64,
    /// Multiplier applied to the request size before each retry
    /// (`1.0` retries the original size; `0.5` halves it each time).
    pub shrink_factor: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_ns: 1_000,
            shrink_factor: 0.5,
        }
    }
}

impl RetryPolicy {
    /// Backoff for the `attempt`-th retry (1-based), with exponential growth.
    pub fn backoff_for(&self, attempt: u32) -> u64 {
        self.backoff_ns
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(20))
    }

    /// The next (possibly shrunk) request size; never below one byte.
    pub fn shrink(&self, request: u64) -> u64 {
        let shrunk = (request as f64 * self.shrink_factor) as u64;
        shrunk.clamp(1, request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
        let mut c = SplitMix64::new(8);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn chance_respects_bounds() {
        let mut r = SplitMix64::new(1);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn at_api_rules_fire_once() {
        let plan = FaultPlan::new(0).at_api(5, FaultKind::AllocFail);
        let mut inj = FaultInjector::new(plan);
        assert!(!inj.should_inject(FaultKind::AllocFail, 4));
        assert!(inj.should_inject(FaultKind::AllocFail, 5));
        assert!(!inj.should_inject(FaultKind::AllocFail, 5), "one-shot");
        assert_eq!(
            inj.log(),
            &[InjectedFault {
                kind: FaultKind::AllocFail,
                api_seq: 5,
            }]
        );
    }

    #[test]
    fn kinds_do_not_cross_trigger() {
        let plan = FaultPlan::new(0).at_api(2, FaultKind::KernelKill);
        let mut inj = FaultInjector::new(plan);
        assert!(!inj.should_inject(FaultKind::AllocFail, 2));
        assert!(inj.should_inject(FaultKind::KernelKill, 2));
    }

    #[test]
    fn probabilistic_rules_are_seed_deterministic() {
        let fire_seqs = |seed: u64| -> Vec<u64> {
            let mut inj =
                FaultInjector::new(FaultPlan::new(seed).probabilistic(FaultKind::KernelOob, 0.5));
            (0..64)
                .filter(|&s| inj.should_inject(FaultKind::KernelOob, s))
                .collect()
        };
        assert_eq!(fire_seqs(3), fire_seqs(3));
        assert_ne!(fire_seqs(3), fire_seqs(4));
        let n = fire_seqs(3).len();
        assert!(n > 8 && n < 56, "p=0.5 over 64 draws, got {n}");
    }

    #[test]
    fn retry_policy_shrinks_and_backs_off() {
        let p = RetryPolicy::default();
        assert_eq!(p.shrink(1000), 500);
        assert_eq!(p.shrink(1), 1);
        assert_eq!(p.backoff_for(1), 1_000);
        assert_eq!(p.backoff_for(3), 4_000);
        let flat = RetryPolicy {
            shrink_factor: 1.0,
            ..p
        };
        assert_eq!(flat.shrink(1000), 1000);
    }
}
