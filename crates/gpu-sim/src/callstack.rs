//! Host call-path capture: the simulated analogue of libunwind + DWARF.
//!
//! DrGPUM unwinds the host call path at every GPU API invocation with
//! libunwind and later maps frames to source lines via DWARF (Sec. 4/5.1).
//! In the simulator, host programs push scoped frames carrying
//! `function @ file:line`; the profiler stores interned frame ids and the
//! offline analyzer resolves them back to source locations through the
//! [`FrameTable`] — the same two-phase structure as the real tool.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A source location: function, file, and line.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SourceLoc {
    /// Function (or method) name.
    pub function: String,
    /// Source file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
}

impl SourceLoc {
    /// Creates a source location.
    pub fn new(function: impl Into<String>, file: impl Into<String>, line: u32) -> Self {
        SourceLoc {
            function: function.into(),
            file: file.into(),
            line,
        }
    }
}

impl fmt::Display for SourceLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}:{}", self.function, self.file, self.line)
    }
}

/// Interned id of one call-stack frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FrameId(pub u32);

/// An interned call path: outermost frame first.
///
/// Cheaply cloneable (`Arc`-backed); captured once per GPU API invocation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct CallPath {
    frames: Arc<[FrameId]>,
}

impl CallPath {
    /// An empty call path (no frames pushed).
    pub fn empty() -> Self {
        CallPath::default()
    }

    /// The frames of this path, outermost first.
    pub fn frames(&self) -> &[FrameId] {
        &self.frames
    }

    /// The shared frame list, outermost first. A cheap refcount bump —
    /// callers that key memo tables by the path use this to avoid copying
    /// the frame ids.
    pub fn frames_shared(&self) -> std::sync::Arc<[FrameId]> {
        self.frames.clone()
    }

    /// Number of frames.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// The innermost frame (the direct caller of the GPU API), if any.
    pub fn leaf(&self) -> Option<FrameId> {
        self.frames.last().copied()
    }
}

/// Intern table mapping [`FrameId`]s to [`SourceLoc`]s.
///
/// Stands in for the DWARF debugging sections the paper's offline analyzer
/// reads: the online collector records compact ids; resolution to
/// file/line/function happens offline.
#[derive(Debug, Default)]
pub struct FrameTable {
    locs: Vec<SourceLoc>,
    index: HashMap<SourceLoc, FrameId>,
}

impl FrameTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        FrameTable::default()
    }

    /// Interns `loc`, returning a stable id.
    pub fn intern(&mut self, loc: SourceLoc) -> FrameId {
        if let Some(&id) = self.index.get(&loc) {
            return id;
        }
        let id = FrameId(u32::try_from(self.locs.len()).expect("frame table overflow"));
        self.locs.push(loc.clone());
        self.index.insert(loc, id);
        id
    }

    /// Resolves a frame id to its source location.
    pub fn resolve(&self, id: FrameId) -> Option<&SourceLoc> {
        self.locs.get(id.0 as usize)
    }

    /// Number of distinct interned frames.
    pub fn len(&self) -> usize {
        self.locs.len()
    }

    /// Returns `true` if no frames have been interned.
    pub fn is_empty(&self) -> bool {
        self.locs.is_empty()
    }

    /// Renders a call path as a multi-line backtrace, innermost frame first.
    pub fn render(&self, path: &CallPath) -> String {
        let mut out = String::new();
        for (depth, id) in path.frames().iter().rev().enumerate() {
            let loc = self
                .resolve(*id)
                .map(|l| l.to_string())
                .unwrap_or_else(|| format!("<unknown frame {}>", id.0));
            out.push_str(&format!("  #{depth} {loc}\n"));
        }
        out
    }
}

/// The live host call stack; produces [`CallPath`] snapshots on demand.
#[derive(Debug, Default)]
pub struct CallStack {
    table: FrameTable,
    stack: Vec<FrameId>,
}

impl CallStack {
    /// Creates an empty call stack.
    pub fn new() -> Self {
        CallStack::default()
    }

    /// Pushes a frame; pair with [`CallStack::pop`].
    pub fn push(&mut self, loc: SourceLoc) -> FrameId {
        let id = self.table.intern(loc);
        self.stack.push(id);
        id
    }

    /// Pops the innermost frame.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty (unbalanced push/pop indicates a bug in
    /// the host program).
    pub fn pop(&mut self) {
        self.stack
            .pop()
            .expect("call stack underflow: unbalanced pop");
    }

    /// Current depth of the stack.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Captures the current path (outermost frame first), like an unwind.
    pub fn capture(&self) -> CallPath {
        CallPath {
            frames: self.stack.clone().into(),
        }
    }

    /// Read access to the intern table for offline resolution.
    pub fn table(&self) -> &FrameTable {
        &self.table
    }
}

/// Captures a [`SourceLoc`] for the current source position.
///
/// # Examples
///
/// ```
/// use gpu_sim::source_loc;
///
/// let loc = source_loc!("my_function");
/// assert_eq!(loc.function, "my_function");
/// assert!(loc.file.ends_with(".rs"));
/// ```
#[macro_export]
macro_rules! source_loc {
    ($function:expr) => {
        $crate::callstack::SourceLoc::new($function, file!(), line!())
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_deduplicating() {
        let mut t = FrameTable::new();
        let a = t.intern(SourceLoc::new("f", "a.rs", 1));
        let b = t.intern(SourceLoc::new("g", "a.rs", 2));
        let a2 = t.intern(SourceLoc::new("f", "a.rs", 1));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn capture_snapshots_are_independent() {
        let mut cs = CallStack::new();
        cs.push(SourceLoc::new("main", "m.rs", 10));
        let outer = cs.capture();
        cs.push(SourceLoc::new("inner", "m.rs", 20));
        let both = cs.capture();
        cs.pop();
        assert_eq!(outer.depth(), 1);
        assert_eq!(both.depth(), 2);
        assert_eq!(both.frames()[0], outer.frames()[0]);
    }

    #[test]
    fn leaf_is_innermost() {
        let mut cs = CallStack::new();
        cs.push(SourceLoc::new("main", "m.rs", 1));
        let inner = cs.push(SourceLoc::new("kernel_call", "m.rs", 2));
        assert_eq!(cs.capture().leaf(), Some(inner));
    }

    #[test]
    #[should_panic(expected = "call stack underflow")]
    fn unbalanced_pop_panics() {
        CallStack::new().pop();
    }

    #[test]
    fn render_lists_innermost_first() {
        let mut cs = CallStack::new();
        cs.push(SourceLoc::new("main", "m.rs", 1));
        cs.push(SourceLoc::new("helper", "h.rs", 42));
        let rendered = cs.table().render(&cs.capture());
        let lines: Vec<&str> = rendered.lines().collect();
        assert!(lines[0].contains("helper"));
        assert!(lines[1].contains("main"));
    }

    #[test]
    fn empty_path_renders_empty() {
        let t = FrameTable::new();
        assert!(t.render(&CallPath::empty()).is_empty());
    }
}
