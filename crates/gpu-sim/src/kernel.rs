//! Kernel launch geometry and the per-thread execution context.
//!
//! Simulated kernels are plain Rust closures invoked once per logical GPU
//! thread. All device-memory traffic goes through [`ThreadCtx`], which is
//! where the Sanitizer-style instrumentation observes every memory
//! instruction — the simulated analogue of SASS patching.

use crate::error::SimError;
use crate::mem::paged::SharedPagedView;
use crate::mem::{DeviceAllocator, DevicePtr, PagedStore};
use crate::sanitizer::{AccessKind, AccessSink, KernelInfo, Sanitizer};
use std::fmt;

/// Global-memory backing a thread executes against: the exclusive store
/// (serial launch path) or the concurrent page-sharded view (parallel
/// launch path).
pub(crate) enum KernelMem<'a> {
    /// Serial execution owns the paged store outright.
    Exclusive(&'a mut PagedStore),
    /// Parallel workers share one interior-mutability view.
    Shared(&'a SharedPagedView),
}

impl KernelMem<'_> {
    fn read_bytes(&self, addr: DevicePtr, buf: &mut [u8]) {
        match self {
            KernelMem::Exclusive(store) => store.read_bytes(addr, buf),
            KernelMem::Shared(view) => view.read_bytes(addr, buf),
        }
    }

    fn write_bytes(&mut self, addr: DevicePtr, data: &[u8]) {
        match self {
            KernelMem::Exclusive(store) => store.write_bytes(addr, data),
            KernelMem::Shared(view) => view.write_bytes(addr, data),
        }
    }

    fn read_f32(&self, addr: DevicePtr) -> f32 {
        match self {
            KernelMem::Exclusive(store) => store.read_f32(addr),
            KernelMem::Shared(view) => view.read_f32(addr),
        }
    }

    fn write_f32(&mut self, addr: DevicePtr, v: f32) {
        match self {
            KernelMem::Exclusive(store) => store.write_f32(addr, v),
            KernelMem::Shared(view) => view.write_f32(addr, v),
        }
    }

    fn read_f64(&self, addr: DevicePtr) -> f64 {
        match self {
            KernelMem::Exclusive(store) => store.read_f64(addr),
            KernelMem::Shared(view) => view.read_f64(addr),
        }
    }

    fn write_f64(&mut self, addr: DevicePtr, v: f64) {
        match self {
            KernelMem::Exclusive(store) => store.write_f64(addr, v),
            KernelMem::Shared(view) => view.write_f64(addr, v),
        }
    }

    fn read_u32(&self, addr: DevicePtr) -> u32 {
        match self {
            KernelMem::Exclusive(store) => store.read_u32(addr),
            KernelMem::Shared(view) => view.read_u32(addr),
        }
    }

    fn write_u32(&mut self, addr: DevicePtr, v: u32) {
        match self {
            KernelMem::Exclusive(store) => store.write_u32(addr, v),
            KernelMem::Shared(view) => view.write_u32(addr, v),
        }
    }

    fn read_u64(&self, addr: DevicePtr) -> u64 {
        match self {
            KernelMem::Exclusive(store) => store.read_u64(addr),
            KernelMem::Shared(view) => view.read_u64(addr),
        }
    }

    fn write_u64(&mut self, addr: DevicePtr, v: u64) {
        match self {
            KernelMem::Exclusive(store) => store.write_u64(addr, v),
            KernelMem::Shared(view) => view.write_u64(addr, v),
        }
    }
}

/// A three-dimensional launch extent or index, like CUDA's `dim3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim3 {
    /// Extent/index along x.
    pub x: u32,
    /// Extent/index along y.
    pub y: u32,
    /// Extent/index along z.
    pub z: u32,
}

impl Dim3 {
    /// A one-dimensional extent `(x, 1, 1)`.
    pub fn x(x: u32) -> Self {
        Dim3 { x, y: 1, z: 1 }
    }

    /// A two-dimensional extent `(x, y, 1)`.
    pub fn xy(x: u32, y: u32) -> Self {
        Dim3 { x, y, z: 1 }
    }

    /// A full three-dimensional extent.
    pub fn xyz(x: u32, y: u32, z: u32) -> Self {
        Dim3 { x, y, z }
    }

    /// Total number of elements covered by this extent.
    pub fn count(&self) -> u64 {
        u64::from(self.x) * u64::from(self.y) * u64::from(self.z)
    }

    /// Flattens an index within this extent (x fastest).
    pub fn flatten(&self, idx: Dim3) -> u64 {
        u64::from(idx.z) * u64::from(self.y) * u64::from(self.x)
            + u64::from(idx.y) * u64::from(self.x)
            + u64::from(idx.x)
    }
}

impl Default for Dim3 {
    fn default() -> Self {
        Dim3::x(1)
    }
}

impl fmt::Display for Dim3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},{})", self.x, self.y, self.z)
    }
}

impl From<u32> for Dim3 {
    fn from(x: u32) -> Self {
        Dim3::x(x)
    }
}

impl From<(u32, u32)> for Dim3 {
    fn from((x, y): (u32, u32)) -> Self {
        Dim3::xy(x, y)
    }
}

impl From<(u32, u32, u32)> for Dim3 {
    fn from((x, y, z): (u32, u32, u32)) -> Self {
        Dim3::xyz(x, y, z)
    }
}

/// Grid/block geometry plus dynamic shared-memory size for one launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of blocks in the grid.
    pub grid: Dim3,
    /// Number of threads per block.
    pub block: Dim3,
    /// Dynamic shared memory per block, in bytes.
    pub shared_mem_bytes: u32,
    /// Forces the serial interpreter loop even when the context's
    /// `kernel_workers` knob is above 1. Set by kernels that perform
    /// cross-block read-modify-write (histogram increments, XOR
    /// accumulators): real GPUs need atomics for those, which the
    /// simulator does not model, so they are only deterministic when
    /// blocks run in order.
    pub serial_only: bool,
}

impl LaunchConfig {
    /// Creates a launch configuration without shared memory.
    pub fn new(grid: impl Into<Dim3>, block: impl Into<Dim3>) -> Self {
        LaunchConfig {
            grid: grid.into(),
            block: block.into(),
            shared_mem_bytes: 0,
            serial_only: false,
        }
    }

    /// Sets the dynamic shared-memory size (builder style).
    pub fn with_shared_mem(mut self, bytes: u32) -> Self {
        self.shared_mem_bytes = bytes;
        self
    }

    /// Marks the launch as serial-only (builder style); see
    /// [`LaunchConfig::serial_only`].
    pub fn serialized(mut self) -> Self {
        self.serial_only = true;
        self
    }

    /// A 1-D launch covering at least `n` threads with `block_size`-wide
    /// blocks — the ubiquitous `(n + b - 1) / b` idiom.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::GridTooLarge`] when covering `n` threads would
    /// need more than `u32::MAX` blocks — the launch would silently cover
    /// fewer threads than asked if the grid were clamped, so the driver
    /// rejects it instead, like `cudaErrorInvalidConfiguration`.
    pub fn cover(n: u64, block_size: u32) -> Result<Self, SimError> {
        let blocks = n.div_ceil(u64::from(block_size)).max(1);
        let Ok(grid_x) = u32::try_from(blocks) else {
            return Err(SimError::GridTooLarge {
                requested_threads: n,
                blocks,
            });
        };
        Ok(LaunchConfig::new(Dim3::x(grid_x), Dim3::x(block_size)))
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> u64 {
        self.grid.count() * self.block.count()
    }
}

/// Aggregate work counters for one kernel execution, consumed by the
/// simulated-time cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Number of global-memory read instructions executed.
    pub global_reads: u64,
    /// Number of global-memory write instructions executed.
    pub global_writes: u64,
    /// Total bytes moved to/from global memory.
    pub global_bytes: u64,
    /// Number of shared-memory accesses executed.
    pub shared_accesses: u64,
    /// Number of arithmetic operations charged via [`ThreadCtx::flop`].
    pub flops: u64,
    /// Unified-memory pages migrated to the device by this kernel's
    /// accesses.
    pub page_migrations: u64,
}

impl KernelCounters {
    /// Total global-memory instructions (reads + writes).
    pub fn global_accesses(&self) -> u64 {
        self.global_reads + self.global_writes
    }

    /// Accumulates another execution's counters (used to fold per-worker
    /// counters into the launch total; addition is order-independent).
    pub(crate) fn merge(&mut self, other: &KernelCounters) {
        self.global_reads += other.global_reads;
        self.global_writes += other.global_writes;
        self.global_bytes += other.global_bytes;
        self.shared_accesses += other.shared_accesses;
        self.flops += other.flops;
        self.page_migrations += other.page_migrations;
    }
}

/// The execution context handed to a kernel closure, once per thread.
///
/// Provides CUDA-like indexing (`block_idx`, `thread_idx`, grid/block dims),
/// typed global-memory accessors that are observed by the instrumentation,
/// per-block shared memory, and a `flop` counter for the timing model.
///
/// # Device faults
///
/// A global access that does not fall inside a live device allocation is a
/// *device fault*: the access is skipped (loads return zero, stores are
/// dropped) and recorded, and the launch returns
/// [`SimError::KernelFaulted`] once the kernel's partial results have been
/// delivered to the instrumentation — the simulator's equivalent of a
/// memory fault under `compute-sanitizer`, without aborting the host.
pub struct ThreadCtx<'a> {
    pub(crate) mem: KernelMem<'a>,
    pub(crate) alloc: &'a DeviceAllocator,
    pub(crate) sink: &'a mut AccessSink,
    /// `None` on parallel workers: a staging sink never dispatches to
    /// tools mid-kernel, and unified memory (the only other dispatch from
    /// inside a thread) forces the serial path.
    pub(crate) sanitizer: Option<&'a Sanitizer>,
    pub(crate) info: &'a KernelInfo,
    /// `None` on parallel workers: kernels touching unified memory fall
    /// back to the serial path, so workers never migrate pages.
    pub(crate) unified: Option<&'a mut crate::unified::UnifiedManager>,
    pub(crate) shared: &'a mut [u8],
    pub(crate) counters: &'a mut KernelCounters,
    /// Index of this thread's block within the grid.
    pub block_idx: Dim3,
    /// Index of this thread within its block.
    pub thread_idx: Dim3,
    /// Grid extent of the launch.
    pub grid_dim: Dim3,
    /// Block extent of the launch.
    pub block_dim: Dim3,
    pub(crate) flat_thread: u64,
    pub(crate) pc_counter: u32,
}

impl fmt::Debug for ThreadCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadCtx")
            .field("block_idx", &self.block_idx)
            .field("thread_idx", &self.thread_idx)
            .field("flat_thread", &self.flat_thread)
            .finish_non_exhaustive()
    }
}

impl ThreadCtx<'_> {
    /// Global flattened thread id (`blockIdx * blockDim + threadIdx`,
    /// flattened over all dimensions).
    pub fn global_thread_id(&self) -> u64 {
        self.flat_thread
    }

    /// 1-D convenience: `blockIdx.x * blockDim.x + threadIdx.x`.
    pub fn global_x(&self) -> u64 {
        u64::from(self.block_idx.x) * u64::from(self.block_dim.x) + u64::from(self.thread_idx.x)
    }

    /// 1-D convenience along y.
    pub fn global_y(&self) -> u64 {
        u64::from(self.block_idx.y) * u64::from(self.block_dim.y) + u64::from(self.thread_idx.y)
    }

    /// Validates and records one access; returns `false` (and captures the
    /// fault) if it lies outside every live allocation, in which case the
    /// caller must skip the memory side effect.
    fn access(&mut self, addr: DevicePtr, size: u32, kind: AccessKind) -> bool {
        if !self.alloc.is_valid_access(addr, u64::from(size)) {
            if self.sink.fault.is_none() {
                self.sink.fault = Some(SimError::OutOfBounds {
                    addr,
                    size: u64::from(size),
                });
            }
            return false;
        }
        let pc = self.pc_counter;
        self.pc_counter += 1;
        // Unified memory: a device access to host-resident pages faults
        // them over (expensive; observed by the instrumentation). Absent on
        // parallel workers — unified regions force the serial path.
        if let Some(unified) = self.unified.as_deref_mut() {
            for migration in
                unified.ensure_resident(addr, u64::from(size), crate::unified::Side::Device)
            {
                self.counters.page_migrations += 1;
                if let Some(sanitizer) = self.sanitizer {
                    sanitizer.dispatch_page_migration(&migration);
                }
            }
        }
        match kind {
            AccessKind::Read => self.counters.global_reads += 1,
            AccessKind::Write => self.counters.global_writes += 1,
        }
        self.counters.global_bytes += u64::from(size);
        self.sink.note_access(
            self.alloc,
            self.sanitizer,
            self.info,
            addr,
            size,
            kind,
            self.flat_thread,
            pc,
        );
        true
    }

    /// Reads an `f32` from global memory.
    pub fn load_f32(&mut self, addr: DevicePtr) -> f32 {
        if self.access(addr, 4, AccessKind::Read) {
            self.mem.read_f32(addr)
        } else {
            0.0
        }
    }

    /// Writes an `f32` to global memory.
    pub fn store_f32(&mut self, addr: DevicePtr, v: f32) {
        if self.access(addr, 4, AccessKind::Write) {
            self.mem.write_f32(addr, v);
        }
    }

    /// Reads an `f64` from global memory.
    pub fn load_f64(&mut self, addr: DevicePtr) -> f64 {
        if self.access(addr, 8, AccessKind::Read) {
            self.mem.read_f64(addr)
        } else {
            0.0
        }
    }

    /// Writes an `f64` to global memory.
    pub fn store_f64(&mut self, addr: DevicePtr, v: f64) {
        if self.access(addr, 8, AccessKind::Write) {
            self.mem.write_f64(addr, v);
        }
    }

    /// Reads a `u32` from global memory.
    pub fn load_u32(&mut self, addr: DevicePtr) -> u32 {
        if self.access(addr, 4, AccessKind::Read) {
            self.mem.read_u32(addr)
        } else {
            0
        }
    }

    /// Writes a `u32` to global memory.
    pub fn store_u32(&mut self, addr: DevicePtr, v: u32) {
        if self.access(addr, 4, AccessKind::Write) {
            self.mem.write_u32(addr, v);
        }
    }

    /// Reads a `u64` from global memory.
    pub fn load_u64(&mut self, addr: DevicePtr) -> u64 {
        if self.access(addr, 8, AccessKind::Read) {
            self.mem.read_u64(addr)
        } else {
            0
        }
    }

    /// Writes a `u64` to global memory.
    pub fn store_u64(&mut self, addr: DevicePtr, v: u64) {
        if self.access(addr, 8, AccessKind::Write) {
            self.mem.write_u64(addr, v);
        }
    }

    /// Reads a single byte from global memory.
    pub fn load_u8(&mut self, addr: DevicePtr) -> u8 {
        if self.access(addr, 1, AccessKind::Read) {
            let mut b = [0u8; 1];
            self.mem.read_bytes(addr, &mut b);
            b[0]
        } else {
            0
        }
    }

    /// Writes a single byte to global memory.
    pub fn store_u8(&mut self, addr: DevicePtr, v: u8) {
        if self.access(addr, 1, AccessKind::Write) {
            self.mem.write_bytes(addr, &[v]);
        }
    }

    /// Records a shared-memory out-of-bounds access as a device fault
    /// (first fault wins, like global-memory faults) instead of panicking
    /// the host. Returns `false` so the caller skips the memory effect.
    fn shared_in_bounds(&mut self, offset: u32, size: u32) -> bool {
        let end = u64::from(offset) + u64::from(size);
        if end <= self.shared.len() as u64 {
            return true;
        }
        if self.sink.fault.is_none() {
            self.sink.fault = Some(SimError::SharedOutOfBounds {
                offset,
                size,
                shared_bytes: self.shared.len() as u32,
            });
        }
        false
    }

    /// Reads an `f32` from per-block shared memory at byte offset `offset`.
    ///
    /// Shared-memory traffic is counted for the timing model but is *not* an
    /// object access (it does not touch global data objects), so it never
    /// reaches the instrumentation — exactly like real SASS shared loads
    /// being irrelevant to DrGPUM's object analyses.
    ///
    /// An access past the launch's `shared_mem_bytes` is a device fault:
    /// the load returns `0.0` and the launch fails with
    /// [`SimError::KernelFaulted`] once partial results are delivered.
    pub fn shared_load_f32(&mut self, offset: u32) -> f32 {
        self.counters.shared_accesses += 1;
        if !self.shared_in_bounds(offset, 4) {
            return 0.0;
        }
        let o = offset as usize;
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.shared[o..o + 4]);
        f32::from_le_bytes(b)
    }

    /// Writes an `f32` to per-block shared memory at byte offset `offset`.
    ///
    /// An access past the launch's `shared_mem_bytes` is a device fault:
    /// the store is dropped and the launch fails with
    /// [`SimError::KernelFaulted`] once partial results are delivered.
    pub fn shared_store_f32(&mut self, offset: u32, v: f32) {
        self.counters.shared_accesses += 1;
        if !self.shared_in_bounds(offset, 4) {
            return;
        }
        let o = offset as usize;
        self.shared[o..o + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Charges `n` arithmetic operations to the timing model.
    pub fn flop(&mut self, n: u64) {
        self.counters.flops += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim3_counts_and_flattens() {
        let d = Dim3::xyz(4, 3, 2);
        assert_eq!(d.count(), 24);
        assert_eq!(d.flatten(Dim3::xyz(0, 0, 0)), 0);
        assert_eq!(d.flatten(Dim3::xyz(1, 0, 0)), 1);
        assert_eq!(d.flatten(Dim3::xyz(0, 1, 0)), 4);
        assert_eq!(d.flatten(Dim3::xyz(0, 0, 1)), 12);
        assert_eq!(d.flatten(Dim3::xyz(3, 2, 1)), 23);
    }

    #[test]
    fn launch_config_cover_rounds_up() {
        let cfg = LaunchConfig::cover(1000, 256).unwrap();
        assert_eq!(cfg.grid.x, 4);
        assert_eq!(cfg.block.x, 256);
        assert!(cfg.total_threads() >= 1000);
        assert_eq!(LaunchConfig::cover(0, 32).unwrap().grid.x, 1);
    }

    #[test]
    fn launch_config_cover_rejects_oversized_grids() {
        // u32::MAX blocks exactly still fits...
        let max_fit = u64::from(u32::MAX);
        assert_eq!(LaunchConfig::cover(max_fit, 1).unwrap().grid.x, u32::MAX);
        // ...one block more must be a typed error, not a silent clamp that
        // would cover fewer threads than requested.
        let err = LaunchConfig::cover(max_fit + 1, 1).unwrap_err();
        match err {
            SimError::GridTooLarge {
                requested_threads,
                blocks,
            } => {
                assert_eq!(requested_threads, max_fit + 1);
                assert_eq!(blocks, max_fit + 1);
            }
            other => panic!("expected GridTooLarge, got {other:?}"),
        }
        // Same overflow reached through a wide block size.
        assert!(matches!(
            LaunchConfig::cover(u64::MAX, 2),
            Err(SimError::GridTooLarge { .. })
        ));
    }

    #[test]
    fn dim3_conversions() {
        assert_eq!(Dim3::from(7u32), Dim3::x(7));
        assert_eq!(Dim3::from((2u32, 3u32)), Dim3::xy(2, 3));
        assert_eq!(Dim3::from((2u32, 3u32, 4u32)), Dim3::xyz(2, 3, 4));
    }

    #[test]
    fn counters_aggregate() {
        let c = KernelCounters {
            global_reads: 3,
            global_writes: 2,
            ..KernelCounters::default()
        };
        assert_eq!(c.global_accesses(), 5);
    }
}
