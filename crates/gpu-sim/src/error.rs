//! Error types for the simulated GPU runtime.

use crate::mem::DevicePtr;
use std::fmt;

/// A specialized [`Result`] alias for simulator operations.
///
/// [`Result`]: std::result::Result
pub type Result<T> = std::result::Result<T, SimError>;

/// Errors produced by the simulated GPU runtime.
///
/// Mirrors the failure modes of the CUDA driver API that are relevant to
/// memory profiling: allocation failure, invalid frees, out-of-bounds
/// accesses, and the use of unknown streams or events.
///
/// # Examples
///
/// ```
/// use gpu_sim::{DeviceContext, SimError};
///
/// let mut ctx = DeviceContext::new_default();
/// let err = ctx.malloc(u64::MAX, "too_big").unwrap_err();
/// assert!(matches!(err, SimError::OutOfMemory { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The device allocator could not satisfy the request.
    OutOfMemory {
        /// Number of bytes requested.
        requested: u64,
        /// Largest contiguous free region available.
        largest_free: u64,
        /// Total free bytes (may be fragmented).
        total_free: u64,
    },
    /// `free` was called with a pointer that is not the base of a live
    /// allocation.
    InvalidFree(DevicePtr),
    /// The same allocation was freed twice.
    DoubleFree(DevicePtr),
    /// A memory operation touched an address range with no live allocation
    /// backing it.
    OutOfBounds {
        /// First byte of the faulting access.
        addr: DevicePtr,
        /// Size of the faulting access in bytes.
        size: u64,
    },
    /// A kernel thread accessed shared memory outside the block's
    /// declared shared-memory window.
    SharedOutOfBounds {
        /// Byte offset of the faulting access within the shared window.
        offset: u32,
        /// Size of the faulting access in bytes.
        size: u32,
        /// Declared shared-memory size of the launch in bytes.
        shared_bytes: u32,
    },
    /// A zero-byte allocation was requested.
    ZeroSizedAllocation,
    /// An operation referenced a stream id that was never created.
    UnknownStream(u32),
    /// An operation referenced an event id that was never created.
    UnknownEvent(u32),
    /// A kernel was launched with an empty grid or block.
    EmptyLaunch {
        /// Name of the offending kernel.
        kernel: String,
    },
    /// A 1-D cover launch would need more blocks than a grid dimension can
    /// address. Real drivers reject such launches with
    /// `cudaErrorInvalidConfiguration`.
    GridTooLarge {
        /// Number of threads the launch was asked to cover.
        requested_threads: u64,
        /// Blocks required at the given block size.
        blocks: u64,
    },
    /// Host/device copy size mismatch.
    SizeMismatch {
        /// Expected number of bytes.
        expected: u64,
        /// Provided number of bytes.
        actual: u64,
    },
    /// A kernel terminated abnormally: a device-side access fault, or a
    /// mid-execution kill injected by the fault harness. The API event for
    /// the launch is still emitted (with whatever partial work completed)
    /// before this error is returned.
    KernelFaulted {
        /// Name of the faulted kernel.
        kernel: String,
        /// Human-readable fault description.
        reason: String,
    },
    /// An operation was issued to a stream that has aborted; it and all
    /// later work on that stream are rejected.
    StreamAborted(u32),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfMemory {
                requested,
                largest_free,
                total_free,
            } => write!(
                f,
                "out of device memory: requested {requested} bytes, largest free \
                 region {largest_free} bytes, total free {total_free} bytes"
            ),
            SimError::InvalidFree(ptr) => {
                write!(
                    f,
                    "invalid free of {ptr}: not the base of a live allocation"
                )
            }
            SimError::DoubleFree(ptr) => write!(f, "double free of {ptr}"),
            SimError::OutOfBounds { addr, size } => {
                write!(f, "out-of-bounds device access at {addr} of {size} bytes")
            }
            SimError::SharedOutOfBounds {
                offset,
                size,
                shared_bytes,
            } => write!(
                f,
                "out-of-bounds shared-memory access at offset {offset} of {size} bytes \
                 (shared window is {shared_bytes} bytes)"
            ),
            SimError::ZeroSizedAllocation => write!(f, "zero-sized device allocation"),
            SimError::UnknownStream(id) => write!(f, "unknown stream id {id}"),
            SimError::UnknownEvent(id) => write!(f, "unknown event id {id}"),
            SimError::EmptyLaunch { kernel } => {
                write!(f, "kernel `{kernel}` launched with an empty grid or block")
            }
            SimError::GridTooLarge {
                requested_threads,
                blocks,
            } => write!(
                f,
                "grid too large: covering {requested_threads} threads needs {blocks} blocks, \
                 more than a grid dimension can address"
            ),
            SimError::SizeMismatch { expected, actual } => write!(
                f,
                "size mismatch: expected {expected} bytes, got {actual} bytes"
            ),
            SimError::KernelFaulted { kernel, reason } => {
                write!(f, "kernel `{kernel}` faulted: {reason}")
            }
            SimError::StreamAborted(id) => {
                write!(f, "stream {id} aborted: further operations are rejected")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = SimError::OutOfMemory {
            requested: 100,
            largest_free: 10,
            total_free: 20,
        };
        let s = e.to_string();
        assert!(s.starts_with("out of device memory"));
        assert!(s.contains("100"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }

    #[test]
    fn debug_is_never_empty() {
        let e = SimError::ZeroSizedAllocation;
        assert!(!format!("{e:?}").is_empty());
    }
}
