//! # gpu-sim: a deterministic CUDA-like GPU runtime simulator
//!
//! This crate is the hardware substrate of the DrGPUM reproduction. It
//! provides everything the profiler in `drgpum-core` observes on a real
//! machine through CUDA and NVIDIA's Sanitizer API:
//!
//! * a device memory system with real backing bytes, a first-fit allocator
//!   with CUDA-style 256 B alignment, and peak-usage statistics
//!   ([`mem`]);
//! * the GPU APIs the paper analyzes — allocation, deallocation, memory
//!   copy, memory set, and kernel launch — plus streams and events
//!   ([`DeviceContext`]);
//! * kernels as plain Rust closures executed once per logical thread, whose
//!   every global-memory access flows through instrumentable accessors
//!   ([`ThreadCtx`]);
//! * a Sanitizer-style callback API for tools: API interception, per-kernel
//!   patching decisions, buffered memory-access records, and touched-object
//!   summaries ([`sanitizer`]);
//! * host call-path capture with offline source-location resolution, the
//!   stand-in for libunwind + DWARF ([`callstack`]);
//! * a caching memory pool with a profiling observer, reproducing
//!   deep-learning frameworks' custom allocators ([`pool`]);
//! * a simulated-time cost model parameterized by platform configurations
//!   modelled after the paper's two machines ([`PlatformConfig`]);
//! * deterministic fault injection — forced allocation failures, spurious
//!   frees, kernel faults/kills, stream stalls/aborts — for exercising
//!   profiler robustness ([`fault`]).
//!
//! # Quick start
//!
//! ```
//! use gpu_sim::{DeviceContext, LaunchConfig, StreamId};
//!
//! # fn main() -> Result<(), gpu_sim::SimError> {
//! let mut ctx = DeviceContext::new_default();
//! let v = ctx.malloc(1024 * 4, "v")?;
//! ctx.memset(v, 0, 1024 * 4)?;
//! ctx.launch("inc", LaunchConfig::cover(1024, 256)?, StreamId::DEFAULT, |t| {
//!     let i = t.global_x();
//!     if i < 1024 {
//!         let p = v + i * 4;
//!         let x = t.load_f32(p);
//!         t.store_f32(p, x + 1.0);
//!     }
//! })?;
//! ctx.sync_device();
//! ctx.free(v)?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod api;
pub mod callstack;
pub mod config;
pub mod error;
pub mod fault;
pub mod kernel;
pub mod mem;
pub mod pool;
pub mod sanitizer;
pub mod stream;
pub mod unified;

pub use api::{ApiEvent, ApiKind, ContextStats, DeviceContext};
pub use callstack::{CallPath, CallStack, FrameId, FrameTable, SourceLoc};
pub use config::{PlatformConfig, SimConfig};
pub use error::{Result, SimError};
pub use fault::{
    FaultInjector, FaultKind, FaultPlan, FaultTrigger, InjectedFault, RetryPolicy, SplitMix64,
};
pub use kernel::{Dim3, KernelCounters, LaunchConfig, ThreadCtx};
pub use mem::{AddrRange, DevicePtr};
pub use sanitizer::{
    AccessKind, CollectionHint, KernelInfo, MemAccessRecord, PatchMode, Sanitizer, SanitizerHooks,
    TouchedObject, WARP_SIZE,
};
pub use stream::{EventId, SimTime, StreamId};
pub use unified::{PageMigration, Side, UnifiedManager};
