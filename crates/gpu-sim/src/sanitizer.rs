//! Sanitizer-style instrumentation API: the simulated analogue of NVIDIA's
//! Sanitizer API (callback interception + SASS memory-instruction patching).
//!
//! Tools register [`SanitizerHooks`] with a device context. The context then
//! delivers:
//!
//! * [`SanitizerHooks::on_api`] — after every GPU API invocation, with the
//!   full [`ApiEvent`] (kind, stream, call path, timing);
//! * [`SanitizerHooks::on_kernel_begin`] — before each kernel, letting the
//!   tool choose a [`PatchMode`] (no patching, object hit-flags as in the
//!   paper's Fig. 5, or full per-instruction records);
//! * [`SanitizerHooks::on_mem_access_buffer`] — buffered memory-access
//!   records streamed out of a fully-patched kernel, mirroring the real
//!   Sanitizer's device→host record buffers;
//! * [`SanitizerHooks::on_kernel_end`] — after the kernel, with the set of
//!   data objects it touched (the GPU-side hit-flag summary) and aggregate
//!   work counters.

use crate::api::ApiEvent;
use crate::callstack::{FrameId, SourceLoc};
use crate::error::SimError;
use crate::kernel::{Dim3, KernelCounters};
use crate::mem::{DeviceAllocator, DevicePtr};
use crate::stream::StreamId;
use crate::unified::PageMigration;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Whether a memory instruction read or wrote global memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A global-memory load.
    Read,
    /// A global-memory store.
    Write,
}

/// One instrumented memory instruction execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccessRecord {
    /// First byte touched.
    pub addr: DevicePtr,
    /// Access width in bytes.
    pub size: u32,
    /// Read or write.
    pub kind: AccessKind,
    /// Flattened global thread id of the executing thread.
    pub flat_thread: u64,
    /// Pseudo program counter: the ordinal of this memory instruction within
    /// its thread's execution (stable across threads on convergent paths).
    pub pc: u32,
}

/// Identity and geometry of a launched kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelInfo {
    /// Kernel name, interned once per launch and shared with the API event.
    pub name: Arc<str>,
    /// Global API sequence number of the launch.
    pub api_seq: u64,
    /// Stream the kernel was launched on.
    pub stream: StreamId,
    /// Grid extent.
    pub grid: Dim3,
    /// Block extent.
    pub block: Dim3,
    /// The how-many-th launch of a kernel with this name (0-based), used for
    /// kernel sampling.
    pub instance: u64,
}

/// Degree of instrumentation applied to one kernel launch.
///
/// Ordered by cost: `None < HitFlags < Full`. When several tools are
/// registered the most demanding request wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PatchMode {
    /// Do not observe memory instructions at all.
    None,
    /// Only mark which data objects the kernel touches (binary search over
    /// the memory map per access + a hit flag; the paper's Fig. 5 design).
    HitFlags,
    /// Stream every memory-access record to the tool (intra-object mode).
    Full,
}

/// Read/write summary for one data object touched by a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TouchedObject {
    /// Base address of the allocation.
    pub base: DevicePtr,
    /// The kernel executed at least one load from the object.
    pub read: bool,
    /// The kernel executed at least one store to the object.
    pub written: bool,
}

/// Cheap deterministic hasher for the small `(warp, pc)` merge-candidate
/// keys. SipHash would dominate the coalescing fast path, and hash-flooding
/// resistance is pointless for keys derived from simulated thread ids.
#[derive(Default)]
struct MixHasher(u64);

impl std::hash::Hasher for MixHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 32;
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }
}

type CandidateMap = HashMap<(u64, u32), usize, std::hash::BuildHasherDefault<MixHasher>>;

/// Cached result of the last containing-allocation lookup, with a copy of
/// that object's `touched` flags (kept in sync by [`AccessSink::note_access`]
/// so repeat hits skip the `touched` map entirely).
#[derive(Debug, Clone, Copy)]
struct LastHit {
    base: DevicePtr,
    start: u64,
    end: u64,
    read: bool,
    written: bool,
}

/// A collection-pressure hint a tool returns before each kernel launch.
///
/// This is the backpressure channel of the resource governor: a tool under
/// memory pressure can request cheaper record delivery without changing the
/// [`PatchMode`] contract. The default hint changes nothing, so tools that
/// never degrade observe byte-identical behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectionHint {
    /// Request warp-level access coalescing for this kernel even if the
    /// sanitizer-wide setting is off.
    pub coalesce: bool,
    /// Cap the device-side record-buffer capacity (in records) for this
    /// kernel; `None` keeps the sanitizer-wide capacity.
    pub buffer_capacity: Option<usize>,
}

/// Callbacks a profiling tool registers with the simulated Sanitizer API.
///
/// All methods have empty default bodies so tools override only what they
/// need.
pub trait SanitizerHooks {
    /// Called after every GPU API invocation completes.
    fn on_api(&mut self, _event: &ApiEvent) {}

    /// Called before a kernel executes; returns the desired [`PatchMode`].
    fn on_kernel_begin(&mut self, _info: &KernelInfo) -> PatchMode {
        PatchMode::None
    }

    /// Delivers a buffer of memory-access records from a fully-patched
    /// kernel. May be called multiple times per kernel as the device-side
    /// buffer fills.
    fn on_mem_access_buffer(&mut self, _info: &KernelInfo, _records: &[MemAccessRecord]) {}

    /// Called after a kernel finishes, with the hit-flag summary of touched
    /// objects (present in `HitFlags` and `Full` modes) and work counters.
    fn on_kernel_end(
        &mut self,
        _info: &KernelInfo,
        _touched: &[TouchedObject],
        _counters: &KernelCounters,
    ) {
    }

    /// Called on every unified-memory page migration (the raw signal for
    /// page-thrashing and page-level false-sharing analysis — the paper's
    /// future-work extension, Sec. 8).
    fn on_page_migration(&mut self, _migration: &PageMigration) {}

    /// Called when a device allocation request fails (out of memory, whether
    /// real or injected). No API event is emitted for the failed call; this
    /// hook is how tools learn about it and can downgrade to cheaper
    /// collection modes instead of losing the run.
    fn on_alloc_failure(&mut self, _requested: u64, _label: &str, _error: &SimError) {}

    /// Called when a host call-stack frame is interned, with its id and
    /// source location. Lets tools mirror the frame table incrementally —
    /// e.g. to resolve call paths while streaming a crash-consistent trace,
    /// without access to the context-owned [`crate::FrameTable`].
    fn on_frame(&mut self, _id: FrameId, _loc: &SourceLoc) {}

    /// Queried before each kernel launch (after
    /// [`SanitizerHooks::on_kernel_begin`]); lets a tool under resource
    /// pressure ask for cheaper record delivery. See [`CollectionHint`].
    fn collection_hint(&self) -> CollectionHint {
        CollectionHint::default()
    }
}

/// A shared, lockable hook registration.
pub type SharedHooks = Arc<Mutex<dyn SanitizerHooks>>;

/// Instrumentation cost model: simulated-time surcharges for patched kernels.
///
/// These constants drive the *simulated* overhead of profiling; the paper's
/// Figure 6 wall-clock overheads are measured separately by the benchmark
/// harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadModel {
    /// Extra ns per access in [`PatchMode::Full`].
    pub full_access_ns: f64,
    /// Extra ns per access in [`PatchMode::HitFlags`] (binary search + flag).
    pub hitflag_access_ns: f64,
    /// Bytes per record used to cost device→host record-buffer flushes.
    pub record_bytes: u64,
    /// ns per live allocation to copy the memory map to the device at each
    /// patched kernel launch (Fig. 5).
    pub map_copy_ns_per_entry: f64,
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel {
            full_access_ns: 12.0,
            hitflag_access_ns: 1.5,
            record_bytes: 24,
            map_copy_ns_per_entry: 2.0,
        }
    }
}

/// Number of threads per warp; coalescing only merges accesses issued by
/// threads of the same warp, mirroring how hardware combines the lanes of
/// one memory instruction into as few transactions as possible.
pub const WARP_SIZE: u64 = 32;

/// How many buffered records coalescing scans backwards for a merge
/// partner. The simulator executes threads sequentially, so accesses that
/// are simultaneous on real hardware (warp lanes at one instruction) appear
/// slightly interleaved with other instructions in the buffer; a small
/// window re-discovers them without an unbounded scan.
const COALESCE_WINDOW: usize = 8;

/// The Sanitizer registry owned by a device context.
pub struct Sanitizer {
    hooks: Vec<SharedHooks>,
    /// Capacity (in records) of the simulated device-side record buffer.
    buffer_capacity: usize,
    /// When set, contiguous same-kind accesses from one warp at one pc are
    /// merged into a single record before buffering (the paper's "merging
    /// memory accesses", Sec. 5.5).
    coalescing: bool,
    /// Merge-junction alignment in bytes, relative to the containing
    /// allocation's base. Records only grow at offsets that are multiples
    /// of this, so per-element frequency counts (element width = this
    /// alignment) are preserved exactly. 1 = unrestricted.
    coalesce_alignment: u32,
    overhead: OverheadModel,
}

impl std::fmt::Debug for Sanitizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sanitizer")
            .field("hooks", &self.hooks.len())
            .field("buffer_capacity", &self.buffer_capacity)
            .field("coalescing", &self.coalescing)
            .field("coalesce_alignment", &self.coalesce_alignment)
            .field("overhead", &self.overhead)
            .finish()
    }
}

impl Default for Sanitizer {
    fn default() -> Self {
        Sanitizer {
            hooks: Vec::new(),
            buffer_capacity: 16 * 1024,
            coalescing: false,
            coalesce_alignment: 1,
            overhead: OverheadModel::default(),
        }
    }
}

impl Sanitizer {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Sanitizer::default()
    }

    /// Registers a tool; returns nothing — keep your own `Arc` clone to read
    /// results back after the run.
    pub fn register(&mut self, hooks: SharedHooks) {
        self.hooks.push(hooks);
    }

    /// Removes all registered tools.
    pub fn clear(&mut self) {
        self.hooks.clear();
    }

    /// Number of registered tools.
    pub fn hook_count(&self) -> usize {
        self.hooks.len()
    }

    /// Sets the simulated device-side record-buffer capacity.
    pub fn set_buffer_capacity(&mut self, records: usize) {
        self.buffer_capacity = records.max(1);
    }

    /// The current record-buffer capacity.
    pub fn buffer_capacity(&self) -> usize {
        self.buffer_capacity
    }

    /// Enables or disables warp-level access coalescing (Sec. 5.5).
    pub fn set_coalescing(&mut self, on: bool) {
        self.coalescing = on;
    }

    /// Whether warp-level access coalescing is enabled.
    pub fn coalescing(&self) -> bool {
        self.coalescing
    }

    /// Sets the merge-junction alignment for coalescing: records only grow
    /// at allocation-relative offsets that are multiples of `bytes`. Tools
    /// that count per-element access frequencies pass their element width
    /// here so merging cannot collapse two same-element accesses into one
    /// count. Zero is treated as 1 (unrestricted).
    pub fn set_coalesce_alignment(&mut self, bytes: u32) {
        self.coalesce_alignment = bytes.max(1);
    }

    /// The current merge-junction alignment in bytes.
    pub fn coalesce_alignment(&self) -> u32 {
        self.coalesce_alignment
    }

    /// The instrumentation cost model.
    pub fn overhead_model(&self) -> OverheadModel {
        self.overhead
    }

    /// Replaces the instrumentation cost model.
    pub fn set_overhead_model(&mut self, model: OverheadModel) {
        self.overhead = model;
    }

    /// Dispatches an API event to every tool.
    pub(crate) fn dispatch_api(&self, event: &ApiEvent) {
        for h in &self.hooks {
            h.lock().on_api(event);
        }
    }

    /// Asks every tool for a patch mode; the most demanding wins.
    pub(crate) fn dispatch_kernel_begin(&self, info: &KernelInfo) -> PatchMode {
        self.hooks
            .iter()
            .map(|h| h.lock().on_kernel_begin(info))
            .max()
            .unwrap_or(PatchMode::None)
    }

    pub(crate) fn dispatch_kernel_end(
        &self,
        info: &KernelInfo,
        touched: &[TouchedObject],
        counters: &KernelCounters,
    ) {
        for h in &self.hooks {
            h.lock().on_kernel_end(info, touched, counters);
        }
    }

    pub(crate) fn dispatch_buffer(&self, info: &KernelInfo, records: &[MemAccessRecord]) {
        for h in &self.hooks {
            h.lock().on_mem_access_buffer(info, records);
        }
    }

    pub(crate) fn dispatch_page_migration(&self, migration: &PageMigration) {
        for h in &self.hooks {
            h.lock().on_page_migration(migration);
        }
    }

    pub(crate) fn dispatch_alloc_failure(&self, requested: u64, label: &str, error: &SimError) {
        for h in &self.hooks {
            h.lock().on_alloc_failure(requested, label, error);
        }
    }

    pub(crate) fn dispatch_frame(&self, id: FrameId, loc: &SourceLoc) {
        for h in &self.hooks {
            h.lock().on_frame(id, loc);
        }
    }

    /// Merges every tool's [`CollectionHint`]: coalescing requests OR
    /// together, buffer caps take the minimum.
    pub(crate) fn dispatch_collection_hint(&self) -> CollectionHint {
        let mut merged = CollectionHint::default();
        for h in &self.hooks {
            let hint = h.lock().collection_hint();
            merged.coalesce |= hint.coalesce;
            merged.buffer_capacity = match (merged.buffer_capacity, hint.buffer_capacity) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        merged
    }
}

/// One raw access captured by a worker sink during parallel block
/// execution, replayed through the serial record path at merge time.
///
/// The containing allocation's base is resolved by the worker (against the
/// launch-frozen allocation map, so the answer is position-independent) and
/// carried along, letting the replay skip the binary search.
#[derive(Debug, Clone, Copy)]
struct StagedAccess {
    addr: DevicePtr,
    size: u32,
    kind: AccessKind,
    flat_thread: u64,
    pc: u32,
    alloc_start: Option<u64>,
}

/// The staged-record range produced by one thread block, plus the first
/// device fault that block hit (if any).
#[derive(Debug)]
struct BlockSpan {
    flat_block: u64,
    start: usize,
    end: usize,
    fault: Option<SimError>,
}

/// Collects memory-access observations during one kernel execution and
/// streams them to the registered tools.
///
/// Created internally by [`crate::DeviceContext::launch`]; kernels interact
/// with it only indirectly through [`crate::ThreadCtx`].
///
/// A sink runs in one of two shapes: the *serial* shape (created by
/// [`AccessSink::new`]) buffers, coalesces, and streams records to the
/// tools as the kernel executes, while the *staging* shape (created by
/// [`AccessSink::new_staging`], one per parallel worker) only appends raw
/// records and never talks to the tools; staged records are replayed
/// through a serial sink in flat block order by
/// [`AccessSink::merge_staged`], reproducing the serial byte stream
/// exactly.
pub struct AccessSink {
    mode: PatchMode,
    buffer: Vec<MemAccessRecord>,
    capacity: usize,
    /// When set, merge an incoming access into a recent buffered record
    /// it extends contiguously (same kind, same warp).
    coalesce: bool,
    /// Merge-junction alignment (bytes, relative to the containing
    /// allocation's base); see [`Sanitizer::set_coalesce_alignment`].
    coalesce_align: u64,
    /// Open merge candidates: `(warp, pc)` → buffer index of the record a
    /// neighbouring lane's access at the same instruction would extend.
    /// Rebuilt per flush (indices are invalidated when the buffer drains).
    merge_candidates: CandidateMap,
    /// One-entry cache of the allocation containing the previous access,
    /// mirroring its `touched` flags so repeat hits skip both the binary
    /// search and the map update.
    last_hit: Option<LastHit>,
    /// Touched-object hit flags keyed by allocation base.
    touched: BTreeMap<DevicePtr, TouchedObject>,
    /// Number of buffer flushes performed (for the cost model).
    pub(crate) flushes: u64,
    /// Number of records observed (for the cost model). Counts *raw*
    /// accesses even when coalescing merges them, so the simulated
    /// instrumentation cost — and therefore every simulated timestamp — is
    /// identical with coalescing on or off.
    pub(crate) records_seen: u64,
    /// Number of raw accesses folded into a previous record by coalescing.
    pub(crate) coalesced_away: u64,
    /// First device-side access fault observed during the kernel. Faulting
    /// accesses are skipped (no memory side effect); the launch converts
    /// this into [`SimError::KernelFaulted`] after the partial results have
    /// been delivered to the tools.
    pub(crate) fault: Option<SimError>,
    /// Worker-local staging shape: buffer raw records instead of the
    /// serial coalesce/flush path (see the type-level docs).
    staging: bool,
    /// Raw records staged by this worker, grouped into block spans.
    staged: Vec<StagedAccess>,
    /// One span per executed block, in this worker's execution order.
    spans: Vec<BlockSpan>,
}

impl std::fmt::Debug for AccessSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccessSink")
            .field("mode", &self.mode)
            .field("buffered", &self.buffer.len())
            .field("touched_objects", &self.touched.len())
            .field("records_seen", &self.records_seen)
            .finish()
    }
}

impl AccessSink {
    pub(crate) fn new(mode: PatchMode, capacity: usize, coalesce: bool, align: u32) -> Self {
        AccessSink {
            mode,
            buffer: Vec::with_capacity(if mode == PatchMode::Full { capacity } else { 0 }),
            capacity,
            coalesce,
            coalesce_align: u64::from(align.max(1)),
            merge_candidates: CandidateMap::default(),
            last_hit: None,
            touched: BTreeMap::new(),
            flushes: 0,
            records_seen: 0,
            coalesced_away: 0,
            fault: None,
            staging: false,
            staged: Vec::new(),
            spans: Vec::new(),
        }
    }

    /// Creates a worker-local staging sink for parallel block execution.
    /// It never dispatches to tools, so it needs no capacity or coalescing
    /// parameters — those are applied once, at replay time.
    pub(crate) fn new_staging(mode: PatchMode) -> Self {
        let mut sink = AccessSink::new(mode, 0, false, 1);
        // A staging sink never flushes mid-kernel; records drain only
        // through `merge_staged`.
        sink.capacity = usize::MAX;
        sink.staging = true;
        sink
    }

    /// The patch mode this sink operates in.
    pub fn mode(&self) -> PatchMode {
        self.mode
    }

    /// Opens a staged span for the block with flat index `flat_block`.
    pub(crate) fn begin_block(&mut self, flat_block: u64) {
        debug_assert!(self.staging);
        let at = self.staged.len();
        self.spans.push(BlockSpan {
            flat_block,
            start: at,
            end: at,
            fault: None,
        });
    }

    /// Closes the current staged span, capturing the block's first fault.
    pub(crate) fn end_block(&mut self) {
        let end = self.staged.len();
        let fault = self.fault.take();
        let span = self
            .spans
            .last_mut()
            .expect("end_block without a matching begin_block");
        span.end = end;
        span.fault = fault;
    }

    /// Replays the staged records of `workers` into this (serial) sink in
    /// flat block-index order.
    ///
    /// Block assignment to workers is nondeterministic, but every block's
    /// records are contiguous within one worker and labeled with the flat
    /// block index, so a stable sort over spans reconstructs exactly the
    /// record stream the serial loop would have produced — same coalescing
    /// decisions, same flush boundaries, same tool dispatch order. The
    /// surviving fault is the earliest block's (the serial loop executes
    /// blocks in flat order, so its first-fault-wins rule picks the same
    /// one), and touched-sets and `records_seen` are order-independent
    /// unions/sums.
    pub(crate) fn merge_staged(
        &mut self,
        sanitizer: &Sanitizer,
        info: &KernelInfo,
        workers: &[AccessSink],
    ) {
        debug_assert!(!self.staging);
        let mut order: Vec<(u64, usize, usize)> = workers
            .iter()
            .enumerate()
            .flat_map(|(w, sink)| {
                sink.spans
                    .iter()
                    .enumerate()
                    .map(move |(s, span)| (span.flat_block, w, s))
            })
            .collect();
        order.sort_unstable_by_key(|&(flat_block, _, _)| flat_block);
        for (_, w, s) in order {
            let worker = &workers[w];
            let span = &worker.spans[s];
            if self.fault.is_none() {
                self.fault.clone_from(&span.fault);
            }
            for rec in &worker.staged[span.start..span.end] {
                self.push_full_record(
                    sanitizer,
                    info,
                    rec.addr,
                    rec.size,
                    rec.kind,
                    rec.flat_thread,
                    rec.pc,
                    rec.alloc_start,
                );
            }
        }
        for worker in workers {
            self.records_seen += worker.records_seen;
            for (base, t) in &worker.touched {
                let entry = self.touched.entry(*base).or_insert(TouchedObject {
                    base: *base,
                    read: false,
                    written: false,
                });
                entry.read |= t.read;
                entry.written |= t.written;
            }
        }
    }

    pub(crate) fn take_touched(self) -> Vec<TouchedObject> {
        self.touched.into_values().collect()
    }

    /// Resolves and stores one access. The containing object is looked up in
    /// the live-allocation map (the Fig. 5 binary search) and its hit flag is
    /// updated; in [`PatchMode::Full`] the record is also buffered and
    /// streamed to the tools when the device-side buffer fills (serial
    /// shape) or staged raw for later replay (staging shape, where
    /// `sanitizer` may be `None`).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn note_access(
        &mut self,
        alloc: &DeviceAllocator,
        sanitizer: Option<&Sanitizer>,
        info: &KernelInfo,
        addr: DevicePtr,
        size: u32,
        kind: AccessKind,
        flat_thread: u64,
        pc: u32,
    ) {
        if self.mode == PatchMode::None {
            return;
        }
        self.records_seen += 1;
        let alloc_start = self.update_touched(alloc, addr, kind);
        if self.mode == PatchMode::Full {
            if self.staging {
                self.staged.push(StagedAccess {
                    addr,
                    size,
                    kind,
                    flat_thread,
                    pc,
                    alloc_start,
                });
            } else {
                let sanitizer = sanitizer.expect("serial sink requires a sanitizer");
                self.push_full_record(
                    sanitizer,
                    info,
                    addr,
                    size,
                    kind,
                    flat_thread,
                    pc,
                    alloc_start,
                );
            }
        }
    }

    /// Updates the touched-object hit flags for one access and returns the
    /// containing allocation's base address, if any.
    fn update_touched(
        &mut self,
        alloc: &DeviceAllocator,
        addr: DevicePtr,
        kind: AccessKind,
    ) -> Option<u64> {
        // One-entry cache of the containing allocation. Access streams are
        // bursty per object, so the Fig. 5 binary search and the touched-map
        // update can usually be skipped. The live-allocation map cannot
        // change while a kernel executes, so a cached range stays valid for
        // the sink's lifetime.
        let raw = addr.addr();
        match &mut self.last_hit {
            Some(h) if raw >= h.start && raw < h.end => {
                let flag = match kind {
                    AccessKind::Read => &mut h.read,
                    AccessKind::Write => &mut h.written,
                };
                if !*flag {
                    *flag = true;
                    let entry = self.touched.entry(h.base).or_insert(TouchedObject {
                        base: h.base,
                        read: false,
                        written: false,
                    });
                    match kind {
                        AccessKind::Read => entry.read = true,
                        AccessKind::Write => entry.written = true,
                    }
                }
                Some(h.start)
            }
            _ => {
                if let Some(obj) = alloc.find_containing(addr) {
                    let entry = self.touched.entry(obj.ptr).or_insert(TouchedObject {
                        base: obj.ptr,
                        read: false,
                        written: false,
                    });
                    match kind {
                        AccessKind::Read => entry.read = true,
                        AccessKind::Write => entry.written = true,
                    }
                    let start = obj.ptr.addr();
                    self.last_hit = Some(LastHit {
                        base: obj.ptr,
                        start,
                        end: start + obj.size,
                        read: entry.read,
                        written: entry.written,
                    });
                    Some(start)
                } else {
                    None
                }
            }
        }
    }

    /// Pushes one raw record through the serial coalesce/buffer/flush path.
    /// `alloc_start` is the containing allocation's base (precomputed by
    /// [`AccessSink::update_touched`] or carried in a staged record).
    #[allow(clippy::too_many_arguments)]
    fn push_full_record(
        &mut self,
        sanitizer: &Sanitizer,
        info: &KernelInfo,
        addr: DevicePtr,
        size: u32,
        kind: AccessKind,
        flat_thread: u64,
        pc: u32,
        alloc_start: Option<u64>,
    ) {
        let raw = addr.addr();
        if self.coalesce {
            // Merge into a buffered record the incoming access extends
            // contiguously (same kind, same warp, adjacent address, no
            // size overflow). The merged record keeps the first access's
            // thread and pc. All downstream per-object maps (bitmap OR,
            // range insert, per-byte frequency add) see exactly the same
            // byte coverage, so in-place growth cannot change any
            // analysis.
            let warp = flat_thread / WARP_SIZE;
            // (a) Warp-lane merge: an earlier lane of this warp executed
            //     the same instruction (pc) and left an open record; this
            //     mirrors hardware coalescing across a warp and holds
            //     even when other accesses were buffered in between.
            // A record may only grow (a) within the allocation containing
            // the incoming access — adjacent allocations can abut exactly
            // (sizes that are multiples of the 256-byte alignment), and a
            // record spanning two objects would corrupt per-object
            // attribution downstream — and (b) at a junction aligned to
            // the tools' element width, so per-element frequency counts
            // (one per record per overlapped element) stay exact.
            let align = self.coalesce_align;
            let can_grow = |rec: &MemAccessRecord| {
                alloc_start.is_some_and(|s| rec.addr.addr() >= s && (raw - s).is_multiple_of(align))
            };
            if let Some(&idx) = self.merge_candidates.get(&(warp, pc)) {
                let rec = &mut self.buffer[idx];
                if rec.kind == kind
                    && rec.addr + u64::from(rec.size) == addr
                    && rec.size.checked_add(size).is_some()
                    && can_grow(rec)
                {
                    rec.size += size;
                    self.coalesced_away += 1;
                    return;
                }
            }
            // (b) Intra-thread run merge: a recent record from the same
            //     warp this access extends (a thread streaming through a
            //     matrix row, with the pc advancing each step).
            let window = self.buffer.len().saturating_sub(COALESCE_WINDOW);
            if let Some(idx) = (window..self.buffer.len()).rev().find(|&i| {
                let rec = &self.buffer[i];
                rec.kind == kind
                    && rec.flat_thread / WARP_SIZE == warp
                    && rec.addr + u64::from(rec.size) == addr
                    && rec.size.checked_add(size).is_some()
                    && can_grow(rec)
            }) {
                self.buffer[idx].size += size;
                self.merge_candidates.insert((warp, pc), idx);
                self.coalesced_away += 1;
                return;
            }
            self.merge_candidates.insert((warp, pc), self.buffer.len());
        }
        self.buffer.push(MemAccessRecord {
            addr,
            size,
            kind,
            flat_thread,
            pc,
        });
        if self.buffer.len() >= self.capacity {
            self.flush(sanitizer, info);
        }
    }

    pub(crate) fn flush(&mut self, sanitizer: &Sanitizer, info: &KernelInfo) {
        if self.buffer.is_empty() {
            return;
        }
        sanitizer.dispatch_buffer(info, &self.buffer);
        self.buffer.clear();
        // Buffer indices held by open merge candidates die with the drain.
        self.merge_candidates.clear();
        self.flushes += 1;
    }
}
