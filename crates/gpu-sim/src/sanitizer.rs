//! Sanitizer-style instrumentation API: the simulated analogue of NVIDIA's
//! Sanitizer API (callback interception + SASS memory-instruction patching).
//!
//! Tools register [`SanitizerHooks`] with a device context. The context then
//! delivers:
//!
//! * [`SanitizerHooks::on_api`] — after every GPU API invocation, with the
//!   full [`ApiEvent`] (kind, stream, call path, timing);
//! * [`SanitizerHooks::on_kernel_begin`] — before each kernel, letting the
//!   tool choose a [`PatchMode`] (no patching, object hit-flags as in the
//!   paper's Fig. 5, or full per-instruction records);
//! * [`SanitizerHooks::on_mem_access_buffer`] — buffered memory-access
//!   records streamed out of a fully-patched kernel, mirroring the real
//!   Sanitizer's device→host record buffers;
//! * [`SanitizerHooks::on_kernel_end`] — after the kernel, with the set of
//!   data objects it touched (the GPU-side hit-flag summary) and aggregate
//!   work counters.

use crate::api::ApiEvent;
use crate::error::SimError;
use crate::kernel::{Dim3, KernelCounters};
use crate::mem::{DeviceAllocator, DevicePtr};
use crate::stream::StreamId;
use crate::unified::PageMigration;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Whether a memory instruction read or wrote global memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A global-memory load.
    Read,
    /// A global-memory store.
    Write,
}

/// One instrumented memory instruction execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccessRecord {
    /// First byte touched.
    pub addr: DevicePtr,
    /// Access width in bytes.
    pub size: u32,
    /// Read or write.
    pub kind: AccessKind,
    /// Flattened global thread id of the executing thread.
    pub flat_thread: u64,
    /// Pseudo program counter: the ordinal of this memory instruction within
    /// its thread's execution (stable across threads on convergent paths).
    pub pc: u32,
}

/// Identity and geometry of a launched kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelInfo {
    /// Kernel name.
    pub name: String,
    /// Global API sequence number of the launch.
    pub api_seq: u64,
    /// Stream the kernel was launched on.
    pub stream: StreamId,
    /// Grid extent.
    pub grid: Dim3,
    /// Block extent.
    pub block: Dim3,
    /// The how-many-th launch of a kernel with this name (0-based), used for
    /// kernel sampling.
    pub instance: u64,
}

/// Degree of instrumentation applied to one kernel launch.
///
/// Ordered by cost: `None < HitFlags < Full`. When several tools are
/// registered the most demanding request wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PatchMode {
    /// Do not observe memory instructions at all.
    None,
    /// Only mark which data objects the kernel touches (binary search over
    /// the memory map per access + a hit flag; the paper's Fig. 5 design).
    HitFlags,
    /// Stream every memory-access record to the tool (intra-object mode).
    Full,
}

/// Read/write summary for one data object touched by a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TouchedObject {
    /// Base address of the allocation.
    pub base: DevicePtr,
    /// The kernel executed at least one load from the object.
    pub read: bool,
    /// The kernel executed at least one store to the object.
    pub written: bool,
}

/// Callbacks a profiling tool registers with the simulated Sanitizer API.
///
/// All methods have empty default bodies so tools override only what they
/// need.
pub trait SanitizerHooks {
    /// Called after every GPU API invocation completes.
    fn on_api(&mut self, _event: &ApiEvent) {}

    /// Called before a kernel executes; returns the desired [`PatchMode`].
    fn on_kernel_begin(&mut self, _info: &KernelInfo) -> PatchMode {
        PatchMode::None
    }

    /// Delivers a buffer of memory-access records from a fully-patched
    /// kernel. May be called multiple times per kernel as the device-side
    /// buffer fills.
    fn on_mem_access_buffer(&mut self, _info: &KernelInfo, _records: &[MemAccessRecord]) {}

    /// Called after a kernel finishes, with the hit-flag summary of touched
    /// objects (present in `HitFlags` and `Full` modes) and work counters.
    fn on_kernel_end(
        &mut self,
        _info: &KernelInfo,
        _touched: &[TouchedObject],
        _counters: &KernelCounters,
    ) {
    }

    /// Called on every unified-memory page migration (the raw signal for
    /// page-thrashing and page-level false-sharing analysis — the paper's
    /// future-work extension, Sec. 8).
    fn on_page_migration(&mut self, _migration: &PageMigration) {}

    /// Called when a device allocation request fails (out of memory, whether
    /// real or injected). No API event is emitted for the failed call; this
    /// hook is how tools learn about it and can downgrade to cheaper
    /// collection modes instead of losing the run.
    fn on_alloc_failure(&mut self, _requested: u64, _label: &str, _error: &SimError) {}
}

/// A shared, lockable hook registration.
pub type SharedHooks = Arc<Mutex<dyn SanitizerHooks>>;

/// Instrumentation cost model: simulated-time surcharges for patched kernels.
///
/// These constants drive the *simulated* overhead of profiling; the paper's
/// Figure 6 wall-clock overheads are measured separately by the benchmark
/// harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadModel {
    /// Extra ns per access in [`PatchMode::Full`].
    pub full_access_ns: f64,
    /// Extra ns per access in [`PatchMode::HitFlags`] (binary search + flag).
    pub hitflag_access_ns: f64,
    /// Bytes per record used to cost device→host record-buffer flushes.
    pub record_bytes: u64,
    /// ns per live allocation to copy the memory map to the device at each
    /// patched kernel launch (Fig. 5).
    pub map_copy_ns_per_entry: f64,
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel {
            full_access_ns: 12.0,
            hitflag_access_ns: 1.5,
            record_bytes: 24,
            map_copy_ns_per_entry: 2.0,
        }
    }
}

/// The Sanitizer registry owned by a device context.
pub struct Sanitizer {
    hooks: Vec<SharedHooks>,
    /// Capacity (in records) of the simulated device-side record buffer.
    buffer_capacity: usize,
    overhead: OverheadModel,
}

impl std::fmt::Debug for Sanitizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sanitizer")
            .field("hooks", &self.hooks.len())
            .field("buffer_capacity", &self.buffer_capacity)
            .field("overhead", &self.overhead)
            .finish()
    }
}

impl Default for Sanitizer {
    fn default() -> Self {
        Sanitizer {
            hooks: Vec::new(),
            buffer_capacity: 16 * 1024,
            overhead: OverheadModel::default(),
        }
    }
}

impl Sanitizer {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Sanitizer::default()
    }

    /// Registers a tool; returns nothing — keep your own `Arc` clone to read
    /// results back after the run.
    pub fn register(&mut self, hooks: SharedHooks) {
        self.hooks.push(hooks);
    }

    /// Removes all registered tools.
    pub fn clear(&mut self) {
        self.hooks.clear();
    }

    /// Number of registered tools.
    pub fn hook_count(&self) -> usize {
        self.hooks.len()
    }

    /// Sets the simulated device-side record-buffer capacity.
    pub fn set_buffer_capacity(&mut self, records: usize) {
        self.buffer_capacity = records.max(1);
    }

    /// The current record-buffer capacity.
    pub fn buffer_capacity(&self) -> usize {
        self.buffer_capacity
    }

    /// The instrumentation cost model.
    pub fn overhead_model(&self) -> OverheadModel {
        self.overhead
    }

    /// Replaces the instrumentation cost model.
    pub fn set_overhead_model(&mut self, model: OverheadModel) {
        self.overhead = model;
    }

    /// Dispatches an API event to every tool.
    pub(crate) fn dispatch_api(&self, event: &ApiEvent) {
        for h in &self.hooks {
            h.lock().on_api(event);
        }
    }

    /// Asks every tool for a patch mode; the most demanding wins.
    pub(crate) fn dispatch_kernel_begin(&self, info: &KernelInfo) -> PatchMode {
        self.hooks
            .iter()
            .map(|h| h.lock().on_kernel_begin(info))
            .max()
            .unwrap_or(PatchMode::None)
    }

    pub(crate) fn dispatch_kernel_end(
        &self,
        info: &KernelInfo,
        touched: &[TouchedObject],
        counters: &KernelCounters,
    ) {
        for h in &self.hooks {
            h.lock().on_kernel_end(info, touched, counters);
        }
    }

    pub(crate) fn dispatch_buffer(&self, info: &KernelInfo, records: &[MemAccessRecord]) {
        for h in &self.hooks {
            h.lock().on_mem_access_buffer(info, records);
        }
    }

    pub(crate) fn dispatch_page_migration(&self, migration: &PageMigration) {
        for h in &self.hooks {
            h.lock().on_page_migration(migration);
        }
    }

    pub(crate) fn dispatch_alloc_failure(&self, requested: u64, label: &str, error: &SimError) {
        for h in &self.hooks {
            h.lock().on_alloc_failure(requested, label, error);
        }
    }
}

/// Collects memory-access observations during one kernel execution and
/// streams them to the registered tools.
///
/// Created internally by [`crate::DeviceContext::launch`]; kernels interact
/// with it only indirectly through [`crate::ThreadCtx`].
pub struct AccessSink {
    mode: PatchMode,
    buffer: Vec<MemAccessRecord>,
    capacity: usize,
    /// Touched-object hit flags keyed by allocation base.
    touched: BTreeMap<DevicePtr, TouchedObject>,
    /// Number of buffer flushes performed (for the cost model).
    pub(crate) flushes: u64,
    /// Number of records observed (for the cost model).
    pub(crate) records_seen: u64,
    /// First device-side access fault observed during the kernel. Faulting
    /// accesses are skipped (no memory side effect); the launch converts
    /// this into [`SimError::KernelFaulted`] after the partial results have
    /// been delivered to the tools.
    pub(crate) fault: Option<SimError>,
}

impl std::fmt::Debug for AccessSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccessSink")
            .field("mode", &self.mode)
            .field("buffered", &self.buffer.len())
            .field("touched_objects", &self.touched.len())
            .field("records_seen", &self.records_seen)
            .finish()
    }
}

impl AccessSink {
    pub(crate) fn new(mode: PatchMode, capacity: usize) -> Self {
        AccessSink {
            mode,
            buffer: Vec::with_capacity(if mode == PatchMode::Full { capacity } else { 0 }),
            capacity,
            touched: BTreeMap::new(),
            flushes: 0,
            records_seen: 0,
            fault: None,
        }
    }

    /// The patch mode this sink operates in.
    pub fn mode(&self) -> PatchMode {
        self.mode
    }

    pub(crate) fn take_touched(self) -> Vec<TouchedObject> {
        self.touched.into_values().collect()
    }

    /// Resolves and stores one access. The containing object is looked up in
    /// the live-allocation map (the Fig. 5 binary search) and its hit flag is
    /// updated; in [`PatchMode::Full`] the record is also buffered and
    /// streamed to the tools when the device-side buffer fills.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn note_access(
        &mut self,
        alloc: &DeviceAllocator,
        sanitizer: &Sanitizer,
        info: &KernelInfo,
        addr: DevicePtr,
        size: u32,
        kind: AccessKind,
        flat_thread: u64,
        pc: u32,
    ) {
        if self.mode == PatchMode::None {
            return;
        }
        self.records_seen += 1;
        if let Some(obj) = alloc.find_containing(addr) {
            let entry = self.touched.entry(obj.ptr).or_insert(TouchedObject {
                base: obj.ptr,
                read: false,
                written: false,
            });
            match kind {
                AccessKind::Read => entry.read = true,
                AccessKind::Write => entry.written = true,
            }
        }
        if self.mode == PatchMode::Full {
            self.buffer.push(MemAccessRecord {
                addr,
                size,
                kind,
                flat_thread,
                pc,
            });
            if self.buffer.len() >= self.capacity {
                self.flush(sanitizer, info);
            }
        }
    }

    pub(crate) fn flush(&mut self, sanitizer: &Sanitizer, info: &KernelInfo) {
        if self.buffer.is_empty() {
            return;
        }
        sanitizer.dispatch_buffer(info, &self.buffer);
        self.buffer.clear();
        self.flushes += 1;
    }
}
