//! Sanitizer-style instrumentation API: the simulated analogue of NVIDIA's
//! Sanitizer API (callback interception + SASS memory-instruction patching).
//!
//! Tools register [`SanitizerHooks`] with a device context. The context then
//! delivers:
//!
//! * [`SanitizerHooks::on_api`] — after every GPU API invocation, with the
//!   full [`ApiEvent`] (kind, stream, call path, timing);
//! * [`SanitizerHooks::on_kernel_begin`] — before each kernel, letting the
//!   tool choose a [`PatchMode`] (no patching, object hit-flags as in the
//!   paper's Fig. 5, or full per-instruction records);
//! * [`SanitizerHooks::on_mem_access_buffer`] — buffered memory-access
//!   records streamed out of a fully-patched kernel, mirroring the real
//!   Sanitizer's device→host record buffers;
//! * [`SanitizerHooks::on_kernel_end`] — after the kernel, with the set of
//!   data objects it touched (the GPU-side hit-flag summary) and aggregate
//!   work counters.

use crate::api::ApiEvent;
use crate::callstack::{FrameId, SourceLoc};
use crate::error::SimError;
use crate::kernel::{Dim3, KernelCounters};
use crate::mem::{DeviceAllocator, DevicePtr};
use crate::stream::StreamId;
use crate::unified::PageMigration;
use parking_lot::Mutex;
use std::sync::Arc;

/// Whether a memory instruction read or wrote global memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A global-memory load.
    Read,
    /// A global-memory store.
    Write,
}

/// One instrumented memory instruction execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccessRecord {
    /// First byte touched.
    pub addr: DevicePtr,
    /// Access width in bytes.
    pub size: u32,
    /// Read or write.
    pub kind: AccessKind,
    /// Flattened global thread id of the executing thread.
    pub flat_thread: u64,
    /// Pseudo program counter: the ordinal of this memory instruction within
    /// its thread's execution (stable across threads on convergent paths).
    pub pc: u32,
}

/// Identity and geometry of a launched kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelInfo {
    /// Kernel name, interned once per launch and shared with the API event.
    pub name: Arc<str>,
    /// Global API sequence number of the launch.
    pub api_seq: u64,
    /// Stream the kernel was launched on.
    pub stream: StreamId,
    /// Grid extent.
    pub grid: Dim3,
    /// Block extent.
    pub block: Dim3,
    /// The how-many-th launch of a kernel with this name (0-based), used for
    /// kernel sampling.
    pub instance: u64,
}

/// Degree of instrumentation applied to one kernel launch.
///
/// Ordered by cost: `None < HitFlags < Full`. When several tools are
/// registered the most demanding request wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PatchMode {
    /// Do not observe memory instructions at all.
    None,
    /// Only mark which data objects the kernel touches (binary search over
    /// the memory map per access + a hit flag; the paper's Fig. 5 design).
    HitFlags,
    /// Stream every memory-access record to the tool (intra-object mode).
    Full,
}

/// Read/write summary for one data object touched by a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TouchedObject {
    /// Base address of the allocation.
    pub base: DevicePtr,
    /// The kernel executed at least one load from the object.
    pub read: bool,
    /// The kernel executed at least one store to the object.
    pub written: bool,
}

/// Slot sentinel for an empty [`CandidateMap`] entry. Warp ids are flat
/// thread ids divided by 32, so `u64::MAX` is unreachable.
const NO_WARP: u64 = u64::MAX;

/// Upper bound on directly-indexed merge-candidate slots. Kernels whose
/// per-thread memory-instruction count exceeds this skip the slot lookup
/// for the excess pcs and rely on the window scan — a merge-quality
/// matter, never a correctness one.
const CANDIDATE_CAP: usize = 1 << 16;

/// Direct-indexed merge-candidate table: the open record index per program
/// counter, tagged with the warp that left it. Replaces a hashed
/// `(warp, pc) → idx` map: simulated threads execute sequentially, so at
/// any moment at most one warp has an open record at a given pc, and a
/// plain slot load beats even a cheap hash on the per-access fast path.
#[derive(Debug, Default)]
struct CandidateMap {
    /// `(warp, record idx)` per pc; `warp == NO_WARP` means empty.
    slots: Vec<(u64, usize)>,
}

impl CandidateMap {
    /// The open record this warp left at `pc`, if any.
    #[inline]
    fn get(&self, warp: u64, pc: u32) -> Option<usize> {
        match self.slots.get(pc as usize) {
            Some(&(w, idx)) if w == warp => Some(idx),
            _ => None,
        }
    }

    /// Marks `idx` as the open record at `pc` for `warp`.
    #[inline]
    fn insert(&mut self, warp: u64, pc: u32, idx: usize) {
        let i = pc as usize;
        if i >= CANDIDATE_CAP {
            return;
        }
        if i >= self.slots.len() {
            self.slots.resize(i + 1, (NO_WARP, 0));
        }
        self.slots[i] = (warp, idx);
    }

    fn clear(&mut self) {
        self.slots.clear();
    }
}

/// Cheap deterministic hasher for the pre-overhaul `(warp, pc)` candidate
/// keys, kept verbatim for the slow-path baseline. Hash-flooding
/// resistance is pointless for keys derived from simulated thread ids.
#[derive(Default)]
struct MixHasher(u64);

impl std::hash::Hasher for MixHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 32;
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }
}

type HashedCandidates =
    std::collections::HashMap<(u64, u32), usize, std::hash::BuildHasherDefault<MixHasher>>;

/// Merge-candidate storage: the overhauled direct-indexed table, or the
/// pre-overhaul hashed map the slow-path baseline measures against. Both
/// sides answer "which open record would this `(warp, pc)` extend" — the
/// direct table may evict a slot the hashed map would keep, but any merge
/// either one performs respects the same contiguity/alignment/allocation
/// rules, so downstream analyses see identical byte coverage either way.
#[derive(Debug)]
enum CandidateTable {
    Direct(CandidateMap),
    Hashed(HashedCandidates),
}

impl Default for CandidateTable {
    fn default() -> Self {
        CandidateTable::Direct(CandidateMap::default())
    }
}

impl CandidateTable {
    fn hashed() -> Self {
        CandidateTable::Hashed(HashedCandidates::default())
    }

    #[inline]
    fn get(&self, warp: u64, pc: u32) -> Option<usize> {
        match self {
            CandidateTable::Direct(t) => t.get(warp, pc),
            CandidateTable::Hashed(m) => m.get(&(warp, pc)).copied(),
        }
    }

    #[inline]
    fn insert(&mut self, warp: u64, pc: u32, idx: usize) {
        match self {
            CandidateTable::Direct(t) => t.insert(warp, pc, idx),
            CandidateTable::Hashed(m) => {
                m.insert((warp, pc), idx);
            }
        }
    }

    fn clear(&mut self) {
        match self {
            CandidateTable::Direct(t) => t.clear(),
            CandidateTable::Hashed(m) => m.clear(),
        }
    }
}

/// Cached result of the last containing-allocation lookup, with a copy of
/// that object's `touched` flags (kept in sync by [`AccessSink::note_access`]
/// so repeat hits skip the `touched` map entirely).
#[derive(Debug, Clone, Copy)]
struct LastHit {
    base: DevicePtr,
    start: u64,
    end: u64,
    read: bool,
    written: bool,
}

/// A collection-pressure hint a tool returns before each kernel launch.
///
/// This is the backpressure channel of the resource governor: a tool under
/// memory pressure can request cheaper record delivery without changing the
/// [`PatchMode`] contract. The default hint changes nothing, so tools that
/// never degrade observe byte-identical behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectionHint {
    /// Request warp-level access coalescing for this kernel even if the
    /// sanitizer-wide setting is off.
    pub coalesce: bool,
    /// Cap the device-side record-buffer capacity (in records) for this
    /// kernel; `None` keeps the sanitizer-wide capacity.
    pub buffer_capacity: Option<usize>,
}

/// Callbacks a profiling tool registers with the simulated Sanitizer API.
///
/// All methods have empty default bodies so tools override only what they
/// need.
pub trait SanitizerHooks {
    /// Called after every GPU API invocation completes.
    fn on_api(&mut self, _event: &ApiEvent) {}

    /// Called before a kernel executes; returns the desired [`PatchMode`].
    fn on_kernel_begin(&mut self, _info: &KernelInfo) -> PatchMode {
        PatchMode::None
    }

    /// Delivers a buffer of memory-access records from a fully-patched
    /// kernel. May be called multiple times per kernel as the device-side
    /// buffer fills.
    fn on_mem_access_buffer(&mut self, _info: &KernelInfo, _records: &[MemAccessRecord]) {}

    /// Called after a kernel finishes, with the hit-flag summary of touched
    /// objects (present in `HitFlags` and `Full` modes) and work counters.
    fn on_kernel_end(
        &mut self,
        _info: &KernelInfo,
        _touched: &[TouchedObject],
        _counters: &KernelCounters,
    ) {
    }

    /// Called on every unified-memory page migration (the raw signal for
    /// page-thrashing and page-level false-sharing analysis — the paper's
    /// future-work extension, Sec. 8).
    fn on_page_migration(&mut self, _migration: &PageMigration) {}

    /// Called when a device allocation request fails (out of memory, whether
    /// real or injected). No API event is emitted for the failed call; this
    /// hook is how tools learn about it and can downgrade to cheaper
    /// collection modes instead of losing the run.
    fn on_alloc_failure(&mut self, _requested: u64, _label: &str, _error: &SimError) {}

    /// Called when a host call-stack frame is interned, with its id and
    /// source location. Lets tools mirror the frame table incrementally —
    /// e.g. to resolve call paths while streaming a crash-consistent trace,
    /// without access to the context-owned [`crate::FrameTable`].
    fn on_frame(&mut self, _id: FrameId, _loc: &SourceLoc) {}

    /// Queried before each kernel launch (after
    /// [`SanitizerHooks::on_kernel_begin`]); lets a tool under resource
    /// pressure ask for cheaper record delivery. See [`CollectionHint`].
    fn collection_hint(&self) -> CollectionHint {
        CollectionHint::default()
    }
}

/// A shared, lockable hook registration.
pub type SharedHooks = Arc<Mutex<dyn SanitizerHooks>>;

/// Instrumentation cost model: simulated-time surcharges for patched kernels.
///
/// These constants drive the *simulated* overhead of profiling; the paper's
/// Figure 6 wall-clock overheads are measured separately by the benchmark
/// harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadModel {
    /// Extra ns per access in [`PatchMode::Full`].
    pub full_access_ns: f64,
    /// Extra ns per access in [`PatchMode::HitFlags`] (binary search + flag).
    pub hitflag_access_ns: f64,
    /// Bytes per record used to cost device→host record-buffer flushes.
    pub record_bytes: u64,
    /// ns per live allocation to copy the memory map to the device at each
    /// patched kernel launch (Fig. 5).
    pub map_copy_ns_per_entry: f64,
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel {
            full_access_ns: 12.0,
            hitflag_access_ns: 1.5,
            record_bytes: 24,
            map_copy_ns_per_entry: 2.0,
        }
    }
}

/// Number of threads per warp; coalescing only merges accesses issued by
/// threads of the same warp, mirroring how hardware combines the lanes of
/// one memory instruction into as few transactions as possible.
pub const WARP_SIZE: u64 = 32;

/// How many buffered records coalescing scans backwards for a merge
/// partner. The simulator executes threads sequentially, so accesses that
/// are simultaneous on real hardware (warp lanes at one instruction) appear
/// slightly interleaved with other instructions in the buffer; a small
/// window re-discovers them without an unbounded scan.
const COALESCE_WINDOW: usize = 8;

/// The Sanitizer registry owned by a device context.
pub struct Sanitizer {
    hooks: Vec<SharedHooks>,
    /// Capacity (in records) of the simulated device-side record buffer.
    buffer_capacity: usize,
    /// When set, contiguous same-kind accesses from one warp at one pc are
    /// merged into a single record before buffering (the paper's "merging
    /// memory accesses", Sec. 5.5).
    coalescing: bool,
    /// Merge-junction alignment in bytes, relative to the containing
    /// allocation's base. Records only grow at offsets that are multiples
    /// of this, so per-element frequency counts (element width = this
    /// alignment) are preserved exactly. 1 = unrestricted.
    coalesce_alignment: u32,
    /// When set (the default), serial sinks keep a per-pc memo of the
    /// containing allocation, warmed by one thread and hit by every later
    /// thread executing the same instruction. Hits are validated by
    /// containment and the memo is wiped whenever the allocator epoch
    /// changes, so lookups are exactly [`DeviceAllocator::find_containing`].
    /// Tools turn this off to measure the unmemoized baseline.
    pc_memo: bool,
    overhead: OverheadModel,
}

impl std::fmt::Debug for Sanitizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sanitizer")
            .field("hooks", &self.hooks.len())
            .field("buffer_capacity", &self.buffer_capacity)
            .field("coalescing", &self.coalescing)
            .field("coalesce_alignment", &self.coalesce_alignment)
            .field("overhead", &self.overhead)
            .finish()
    }
}

impl Default for Sanitizer {
    fn default() -> Self {
        Sanitizer {
            hooks: Vec::new(),
            buffer_capacity: 16 * 1024,
            coalescing: false,
            coalesce_alignment: 1,
            pc_memo: true,
            overhead: OverheadModel::default(),
        }
    }
}

impl Sanitizer {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Sanitizer::default()
    }

    /// Registers a tool; returns nothing — keep your own `Arc` clone to read
    /// results back after the run.
    pub fn register(&mut self, hooks: SharedHooks) {
        self.hooks.push(hooks);
    }

    /// Removes all registered tools.
    pub fn clear(&mut self) {
        self.hooks.clear();
    }

    /// Number of registered tools.
    pub fn hook_count(&self) -> usize {
        self.hooks.len()
    }

    /// Sets the simulated device-side record-buffer capacity.
    pub fn set_buffer_capacity(&mut self, records: usize) {
        self.buffer_capacity = records.max(1);
    }

    /// The current record-buffer capacity.
    pub fn buffer_capacity(&self) -> usize {
        self.buffer_capacity
    }

    /// Enables or disables warp-level access coalescing (Sec. 5.5).
    pub fn set_coalescing(&mut self, on: bool) {
        self.coalescing = on;
    }

    /// Whether warp-level access coalescing is enabled.
    pub fn coalescing(&self) -> bool {
        self.coalescing
    }

    /// Sets the merge-junction alignment for coalescing: records only grow
    /// at allocation-relative offsets that are multiples of `bytes`. Tools
    /// that count per-element access frequencies pass their element width
    /// here so merging cannot collapse two same-element accesses into one
    /// count. Zero is treated as 1 (unrestricted).
    pub fn set_coalesce_alignment(&mut self, bytes: u32) {
        self.coalesce_alignment = bytes.max(1);
    }

    /// The current merge-junction alignment in bytes.
    pub fn coalesce_alignment(&self) -> u32 {
        self.coalesce_alignment
    }

    /// Enables or disables the per-pc containing-allocation memo (on by
    /// default; see [`Sanitizer`]'s field docs). Turning it off never
    /// changes results — only how often the Fig. 5 binary search runs.
    pub fn set_pc_memo(&mut self, on: bool) {
        self.pc_memo = on;
    }

    /// Whether the per-pc containing-allocation memo is enabled.
    pub fn pc_memo(&self) -> bool {
        self.pc_memo
    }

    /// The instrumentation cost model.
    pub fn overhead_model(&self) -> OverheadModel {
        self.overhead
    }

    /// Replaces the instrumentation cost model.
    pub fn set_overhead_model(&mut self, model: OverheadModel) {
        self.overhead = model;
    }

    /// Dispatches an API event to every tool.
    pub(crate) fn dispatch_api(&self, event: &ApiEvent) {
        for h in &self.hooks {
            h.lock().on_api(event);
        }
    }

    /// Asks every tool for a patch mode; the most demanding wins.
    pub(crate) fn dispatch_kernel_begin(&self, info: &KernelInfo) -> PatchMode {
        self.hooks
            .iter()
            .map(|h| h.lock().on_kernel_begin(info))
            .max()
            .unwrap_or(PatchMode::None)
    }

    pub(crate) fn dispatch_kernel_end(
        &self,
        info: &KernelInfo,
        touched: &[TouchedObject],
        counters: &KernelCounters,
    ) {
        for h in &self.hooks {
            h.lock().on_kernel_end(info, touched, counters);
        }
    }

    pub(crate) fn dispatch_buffer(&self, info: &KernelInfo, records: &[MemAccessRecord]) {
        for h in &self.hooks {
            h.lock().on_mem_access_buffer(info, records);
        }
    }

    pub(crate) fn dispatch_page_migration(&self, migration: &PageMigration) {
        for h in &self.hooks {
            h.lock().on_page_migration(migration);
        }
    }

    pub(crate) fn dispatch_alloc_failure(&self, requested: u64, label: &str, error: &SimError) {
        for h in &self.hooks {
            h.lock().on_alloc_failure(requested, label, error);
        }
    }

    pub(crate) fn dispatch_frame(&self, id: FrameId, loc: &SourceLoc) {
        for h in &self.hooks {
            h.lock().on_frame(id, loc);
        }
    }

    /// Merges every tool's [`CollectionHint`]: coalescing requests OR
    /// together, buffer caps take the minimum.
    pub(crate) fn dispatch_collection_hint(&self) -> CollectionHint {
        let mut merged = CollectionHint::default();
        for h in &self.hooks {
            let hint = h.lock().collection_hint();
            merged.coalesce |= hint.coalesce;
            merged.buffer_capacity = match (merged.buffer_capacity, hint.buffer_capacity) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        merged
    }
}

/// The staged-record range produced by one thread block, plus the first
/// device fault that block hit (if any).
#[derive(Debug)]
struct BlockSpan {
    flat_block: u64,
    start: usize,
    end: usize,
    fault: Option<SimError>,
}

/// Sentinel for "no containing allocation" in [`StagedArena::alloc_starts`]
/// and for an empty slot in the per-pc allocation memo. No valid device
/// address satisfies `addr >= u64::MAX`, so the containment checks reject
/// it without a separate flag.
const NO_ALLOC: u64 = u64::MAX;

/// Raw accesses staged by one parallel worker, in structure-of-arrays
/// layout, grouped into block spans.
///
/// One field per record component instead of a `Vec<struct>`: the replay in
/// [`AccessSink::merge_staged`] touches every component of every record
/// anyway, and the split arrays drop the `Option<u64>` padding (49 → 33
/// bytes per record). The arena is owned by the device context's
/// [`SinkArena`] and lent to a worker per launch, so its capacity — sized
/// by the first large kernel — is reused for the rest of the run.
#[derive(Debug, Default)]
pub(crate) struct StagedArena {
    addrs: Vec<u64>,
    sizes: Vec<u32>,
    kinds: Vec<AccessKind>,
    threads: Vec<u64>,
    pcs: Vec<u32>,
    /// Containing allocation base per record; [`NO_ALLOC`] when the access
    /// hit no live allocation.
    alloc_starts: Vec<u64>,
    /// One span per executed block, in the worker's execution order.
    spans: Vec<BlockSpan>,
}

impl StagedArena {
    fn len(&self) -> usize {
        self.addrs.len()
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        addr: DevicePtr,
        size: u32,
        kind: AccessKind,
        flat_thread: u64,
        pc: u32,
        alloc_start: Option<u64>,
    ) {
        self.addrs.push(addr.addr());
        self.sizes.push(size);
        self.kinds.push(kind);
        self.threads.push(flat_thread);
        self.pcs.push(pc);
        self.alloc_starts.push(alloc_start.unwrap_or(NO_ALLOC));
    }

    fn clear(&mut self) {
        self.addrs.clear();
        self.sizes.clear();
        self.kinds.clear();
        self.threads.clear();
        self.pcs.clear();
        self.alloc_starts.clear();
        self.spans.clear();
    }
}

/// Largest pc the per-pc allocation memo tracks. pcs are per-thread access
/// ordinals, so a single long-running thread can push them far past the
/// range where cross-thread reuse (the point of the memo) happens; the cap
/// bounds the memo at 1 MiB while covering every instruction of any
/// realistic kernel body.
const PC_MEMO_CAP: usize = 1 << 16;

/// An empty per-pc memo slot: a range no address is contained in.
const EMPTY_HINT: (u64, u64) = (NO_ALLOC, 0);

/// Reusable collection storage, owned by the device context and lent to
/// each launch's [`AccessSink`]s.
///
/// Two things make this worth threading through every launch: the record
/// buffer, merge-candidate table, and staging arenas keep their high-water
/// capacity instead of reallocating per kernel, and the per-pc allocation
/// memo stays warm *across* launches — consecutive kernels usually run with
/// an unchanged allocation map, so the second launch onward skips the
/// Fig. 5 binary search almost entirely. The memo is wiped whenever the
/// allocator epoch changes, which is exactly when its entries could go
/// stale.
#[derive(Debug)]
pub(crate) struct SinkArena {
    buffer: Vec<MemAccessRecord>,
    merge_candidates: CandidateTable,
    /// Per-pc `(start, end)` of the containing allocation, or
    /// [`EMPTY_HINT`].
    pc_hints: Vec<(u64, u64)>,
    /// Allocator epoch `pc_hints` was built under; `u64::MAX` = never.
    hint_epoch: u64,
    /// Returned staging arenas, ready for the next parallel launch.
    staged: Vec<StagedArena>,
}

impl Default for SinkArena {
    fn default() -> Self {
        SinkArena {
            buffer: Vec::new(),
            merge_candidates: CandidateTable::default(),
            pc_hints: Vec::new(),
            hint_epoch: u64::MAX,
            staged: Vec::new(),
        }
    }
}

impl SinkArena {
    /// Builds the serial-shaped sink for one launch from recycled storage.
    /// `alloc_epoch` is the allocator's current epoch; a mismatch with the
    /// stored one invalidates the per-pc memo.
    pub(crate) fn serial_sink(
        &mut self,
        mode: PatchMode,
        capacity: usize,
        coalesce: bool,
        align: u32,
        alloc_epoch: u64,
        pc_memo: bool,
    ) -> AccessSink {
        if !pc_memo {
            // Slow-path baseline: allocate per-launch storage and use the
            // pre-overhaul hashed candidate map, exactly as the old sinks
            // did. The arena stays untouched (its warm memo survives for
            // a later fast-path attach; the epoch check below covers any
            // staleness).
            let mut sink = AccessSink::new(mode, capacity, coalesce, align);
            sink.merge_candidates = CandidateTable::hashed();
            return sink;
        }
        let mut buffer = std::mem::take(&mut self.buffer);
        buffer.clear();
        if mode == PatchMode::Full {
            buffer.reserve(capacity);
        }
        let mut merge_candidates = std::mem::take(&mut self.merge_candidates);
        merge_candidates.clear();
        let mut pc_hints = std::mem::take(&mut self.pc_hints);
        if self.hint_epoch != alloc_epoch {
            pc_hints.iter_mut().for_each(|h| *h = EMPTY_HINT);
            self.hint_epoch = alloc_epoch;
        }
        let mut sink = AccessSink::new(mode, capacity, coalesce, align);
        sink.buffer = buffer;
        sink.merge_candidates = merge_candidates;
        sink.pc_memo = true;
        sink.pc_hints = pc_hints;
        sink.recycled = true;
        sink
    }

    /// Builds a worker-local staging sink for parallel block execution,
    /// reusing a previously returned arena when one is available (unless
    /// `recycle` is off — the slow-path baseline allocates per launch).
    /// Staging sinks never dispatch to tools; their records drain through
    /// [`AccessSink::merge_staged`].
    pub(crate) fn staging_sink(&mut self, mode: PatchMode, recycle: bool) -> AccessSink {
        let mut sink = AccessSink::new(mode, 0, false, 1);
        // A staging sink never flushes mid-kernel.
        sink.capacity = usize::MAX;
        sink.staging = true;
        if recycle {
            sink.staged = self.staged.pop().unwrap_or_default();
            sink.recycled = true;
        }
        sink
    }

    /// Takes a finished sink's storage back for the next launch (a no-op
    /// for per-launch slow-path sinks). The per-pc memo is kept as-is —
    /// entries can only go stale through an allocator mutation, which
    /// bumps the epoch checked at the next [`SinkArena::serial_sink`].
    pub(crate) fn reclaim(&mut self, mut sink: AccessSink) {
        if !sink.recycled {
            return;
        }
        if sink.staging {
            sink.staged.clear();
            self.staged.push(sink.staged);
        } else {
            sink.buffer.clear();
            self.buffer = sink.buffer;
            sink.merge_candidates.clear();
            self.merge_candidates = sink.merge_candidates;
            self.pc_hints = sink.pc_hints;
        }
    }
}

/// Collects memory-access observations during one kernel execution and
/// streams them to the registered tools.
///
/// Created internally by [`crate::DeviceContext::launch`]; kernels interact
/// with it only indirectly through [`crate::ThreadCtx`].
///
/// A sink runs in one of two shapes: the *serial* shape (created by
/// [`SinkArena::serial_sink`]) buffers, coalesces, and streams records to
/// the tools as the kernel executes, while the *staging* shape (created by
/// [`SinkArena::staging_sink`], one per parallel worker) only appends raw
/// records and never talks to the tools; staged records are replayed
/// through a serial sink in flat block order by
/// [`AccessSink::merge_staged`], reproducing the serial byte stream
/// exactly.
pub struct AccessSink {
    mode: PatchMode,
    buffer: Vec<MemAccessRecord>,
    capacity: usize,
    /// When set, merge an incoming access into a recent buffered record
    /// it extends contiguously (same kind, same warp).
    coalesce: bool,
    /// Merge-junction alignment (bytes, relative to the containing
    /// allocation's base); see [`Sanitizer::set_coalesce_alignment`].
    coalesce_align: u64,
    /// Open merge candidates: `(warp, pc)` → buffer index of the record a
    /// neighbouring lane's access at the same instruction would extend.
    /// Rebuilt per flush (indices are invalidated when the buffer drains).
    merge_candidates: CandidateTable,
    /// One-entry cache of the allocation containing the previous access,
    /// mirroring its `touched` flags so repeat hits skip both the binary
    /// search and the map update.
    last_hit: Option<LastHit>,
    /// Per-pc `(start, end)` of the containing allocation (see
    /// [`SinkArena`]). Consulted when `last_hit` misses; hits are validated
    /// by containment, so a stale entry can only cause one extra binary
    /// search, never a wrong attribution.
    pc_hints: Vec<(u64, u64)>,
    /// Whether new lookups populate `pc_hints`.
    pc_memo: bool,
    /// Touched-object hit flags, in first-touch order. A kernel touches few
    /// distinct objects and lookups only happen on `last_hit`/`pc_hints`
    /// misses, so a linear scan beats the `BTreeMap` it replaced;
    /// [`AccessSink::take_touched`] sorts by base, reproducing the map's
    /// iteration order byte-for-byte.
    touched: Vec<TouchedObject>,
    /// Number of buffer flushes performed (for the cost model).
    pub(crate) flushes: u64,
    /// Number of records observed (for the cost model). Counts *raw*
    /// accesses even when coalescing merges them, so the simulated
    /// instrumentation cost — and therefore every simulated timestamp — is
    /// identical with coalescing on or off.
    pub(crate) records_seen: u64,
    /// Number of raw accesses folded into a previous record by coalescing.
    pub(crate) coalesced_away: u64,
    /// First device-side access fault observed during the kernel. Faulting
    /// accesses are skipped (no memory side effect); the launch converts
    /// this into [`SimError::KernelFaulted`] after the partial results have
    /// been delivered to the tools.
    pub(crate) fault: Option<SimError>,
    /// Worker-local staging shape: buffer raw records instead of the
    /// serial coalesce/flush path (see the type-level docs).
    staging: bool,
    /// Raw records staged by this worker, grouped into block spans.
    staged: StagedArena,
    /// Storage was lent by a [`SinkArena`] and must be returned via
    /// [`SinkArena::reclaim`]; per-launch (slow-path) sinks leave it unset
    /// and are simply dropped.
    recycled: bool,
}

impl std::fmt::Debug for AccessSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccessSink")
            .field("mode", &self.mode)
            .field("buffered", &self.buffer.len())
            .field("touched_objects", &self.touched.len())
            .field("records_seen", &self.records_seen)
            .finish()
    }
}

impl AccessSink {
    pub(crate) fn new(mode: PatchMode, capacity: usize, coalesce: bool, align: u32) -> Self {
        AccessSink {
            mode,
            buffer: Vec::with_capacity(if mode == PatchMode::Full { capacity } else { 0 }),
            capacity,
            coalesce,
            coalesce_align: u64::from(align.max(1)),
            merge_candidates: CandidateTable::default(),
            last_hit: None,
            pc_hints: Vec::new(),
            pc_memo: false,
            touched: Vec::new(),
            flushes: 0,
            records_seen: 0,
            coalesced_away: 0,
            fault: None,
            staging: false,
            staged: StagedArena::default(),
            recycled: false,
        }
    }

    /// The patch mode this sink operates in.
    pub fn mode(&self) -> PatchMode {
        self.mode
    }

    /// Opens a staged span for the block with flat index `flat_block`.
    pub(crate) fn begin_block(&mut self, flat_block: u64) {
        debug_assert!(self.staging);
        let at = self.staged.len();
        self.staged.spans.push(BlockSpan {
            flat_block,
            start: at,
            end: at,
            fault: None,
        });
    }

    /// Closes the current staged span, capturing the block's first fault.
    pub(crate) fn end_block(&mut self) {
        let end = self.staged.len();
        let fault = self.fault.take();
        let span = self
            .staged
            .spans
            .last_mut()
            .expect("end_block without a matching begin_block");
        span.end = end;
        span.fault = fault;
    }

    /// Replays the staged records of `workers` into this (serial) sink in
    /// flat block-index order.
    ///
    /// Block assignment to workers is nondeterministic, but every block's
    /// records are contiguous within one worker and labeled with the flat
    /// block index, so a stable sort over spans reconstructs exactly the
    /// record stream the serial loop would have produced — same coalescing
    /// decisions, same flush boundaries, same tool dispatch order. The
    /// surviving fault is the earliest block's (the serial loop executes
    /// blocks in flat order, so its first-fault-wins rule picks the same
    /// one), and touched-sets and `records_seen` are order-independent
    /// unions/sums.
    pub(crate) fn merge_staged(
        &mut self,
        sanitizer: &Sanitizer,
        info: &KernelInfo,
        workers: &[AccessSink],
    ) {
        debug_assert!(!self.staging);
        let mut order: Vec<(u64, usize, usize)> = workers
            .iter()
            .enumerate()
            .flat_map(|(w, sink)| {
                sink.staged
                    .spans
                    .iter()
                    .enumerate()
                    .map(move |(s, span)| (span.flat_block, w, s))
            })
            .collect();
        order.sort_unstable_by_key(|&(flat_block, _, _)| flat_block);
        for (_, w, s) in order {
            let st = &workers[w].staged;
            let span = &st.spans[s];
            if self.fault.is_none() {
                self.fault.clone_from(&span.fault);
            }
            for i in span.start..span.end {
                let alloc_start = st.alloc_starts[i];
                self.push_full_record(
                    sanitizer,
                    info,
                    DevicePtr::new(st.addrs[i]),
                    st.sizes[i],
                    st.kinds[i],
                    st.threads[i],
                    st.pcs[i],
                    (alloc_start != NO_ALLOC).then_some(alloc_start),
                );
            }
        }
        for worker in workers {
            self.records_seen += worker.records_seen;
            for t in &worker.touched {
                let entry = Self::touch_entry(&mut self.touched, t.base);
                entry.read |= t.read;
                entry.written |= t.written;
            }
        }
    }

    pub(crate) fn take_touched(&mut self) -> Vec<TouchedObject> {
        let mut touched = std::mem::take(&mut self.touched);
        touched.sort_unstable_by_key(|t| t.base.addr());
        touched
    }

    /// The hit-flag entry for the allocation based at `base`, created on
    /// first touch.
    fn touch_entry(touched: &mut Vec<TouchedObject>, base: DevicePtr) -> &mut TouchedObject {
        match touched.iter().position(|t| t.base == base) {
            Some(i) => &mut touched[i],
            None => {
                touched.push(TouchedObject {
                    base,
                    read: false,
                    written: false,
                });
                touched.last_mut().expect("entry just pushed")
            }
        }
    }

    /// Resolves and stores one access. The containing object is looked up in
    /// the live-allocation map (the Fig. 5 binary search) and its hit flag is
    /// updated; in [`PatchMode::Full`] the record is also buffered and
    /// streamed to the tools when the device-side buffer fills (serial
    /// shape) or staged raw for later replay (staging shape, where
    /// `sanitizer` may be `None`).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn note_access(
        &mut self,
        alloc: &DeviceAllocator,
        sanitizer: Option<&Sanitizer>,
        info: &KernelInfo,
        addr: DevicePtr,
        size: u32,
        kind: AccessKind,
        flat_thread: u64,
        pc: u32,
    ) {
        if self.mode == PatchMode::None {
            return;
        }
        self.records_seen += 1;
        let alloc_start = self.update_touched(alloc, addr, kind, pc);
        if self.mode == PatchMode::Full {
            if self.staging {
                self.staged
                    .push(addr, size, kind, flat_thread, pc, alloc_start);
            } else {
                let sanitizer = sanitizer.expect("serial sink requires a sanitizer");
                self.push_full_record(
                    sanitizer,
                    info,
                    addr,
                    size,
                    kind,
                    flat_thread,
                    pc,
                    alloc_start,
                );
            }
        }
    }

    /// Updates the touched-object hit flags for one access and returns the
    /// containing allocation's base address, if any.
    fn update_touched(
        &mut self,
        alloc: &DeviceAllocator,
        addr: DevicePtr,
        kind: AccessKind,
        pc: u32,
    ) -> Option<u64> {
        // One-entry cache of the containing allocation. Access streams are
        // bursty per object, so the Fig. 5 binary search and the touched-map
        // update can usually be skipped. The live-allocation map cannot
        // change while a kernel executes, so a cached range stays valid for
        // the sink's lifetime.
        let raw = addr.addr();
        match &mut self.last_hit {
            Some(h) if raw >= h.start && raw < h.end => {
                let flag = match kind {
                    AccessKind::Read => &mut h.read,
                    AccessKind::Write => &mut h.written,
                };
                if !*flag {
                    *flag = true;
                    let entry = Self::touch_entry(&mut self.touched, h.base);
                    match kind {
                        AccessKind::Read => entry.read = true,
                        AccessKind::Write => entry.written = true,
                    }
                }
                Some(h.start)
            }
            _ => {
                // Second level: the per-pc memo. Kernels that alternate
                // between objects (pc 0 reads A, pc 1 writes B) thrash
                // `last_hit`, but every thread repeats the same instruction
                // sequence, so the object seen at this pc by an earlier
                // thread is almost always the right one. Containment makes
                // a hit exact; a stale entry just falls through.
                let (start, end) = match self.pc_hints.get(pc as usize) {
                    Some(&(s, e)) if raw >= s && raw < e => (s, e),
                    _ => {
                        let obj = alloc.find_containing(addr)?;
                        let start = obj.ptr.addr();
                        let end = start + obj.size;
                        if self.pc_memo && (pc as usize) < PC_MEMO_CAP {
                            let i = pc as usize;
                            if i >= self.pc_hints.len() {
                                self.pc_hints.resize(i + 1, EMPTY_HINT);
                            }
                            self.pc_hints[i] = (start, end);
                        }
                        (start, end)
                    }
                };
                let base = DevicePtr::new(start);
                let entry = Self::touch_entry(&mut self.touched, base);
                match kind {
                    AccessKind::Read => entry.read = true,
                    AccessKind::Write => entry.written = true,
                }
                self.last_hit = Some(LastHit {
                    base,
                    start,
                    end,
                    read: entry.read,
                    written: entry.written,
                });
                Some(start)
            }
        }
    }

    /// Pushes one raw record through the serial coalesce/buffer/flush path.
    /// `alloc_start` is the containing allocation's base (precomputed by
    /// [`AccessSink::update_touched`] or carried in a staged record).
    #[allow(clippy::too_many_arguments)]
    fn push_full_record(
        &mut self,
        sanitizer: &Sanitizer,
        info: &KernelInfo,
        addr: DevicePtr,
        size: u32,
        kind: AccessKind,
        flat_thread: u64,
        pc: u32,
        alloc_start: Option<u64>,
    ) {
        let raw = addr.addr();
        if self.coalesce {
            // Merge into a buffered record the incoming access extends
            // contiguously (same kind, same warp, adjacent address, no
            // size overflow). The merged record keeps the first access's
            // thread and pc. All downstream per-object maps (bitmap OR,
            // range insert, per-byte frequency add) see exactly the same
            // byte coverage, so in-place growth cannot change any
            // analysis.
            let warp = flat_thread / WARP_SIZE;
            // (a) Warp-lane merge: an earlier lane of this warp executed
            //     the same instruction (pc) and left an open record; this
            //     mirrors hardware coalescing across a warp and holds
            //     even when other accesses were buffered in between.
            // A record may only grow (a) within the allocation containing
            // the incoming access — adjacent allocations can abut exactly
            // (sizes that are multiples of the 256-byte alignment), and a
            // record spanning two objects would corrupt per-object
            // attribution downstream — and (b) at a junction aligned to
            // the tools' element width, so per-element frequency counts
            // (one per record per overlapped element) stay exact.
            let align = self.coalesce_align;
            let can_grow = |rec: &MemAccessRecord| {
                alloc_start.is_some_and(|s| rec.addr.addr() >= s && (raw - s).is_multiple_of(align))
            };
            if let Some(idx) = self.merge_candidates.get(warp, pc) {
                let rec = &mut self.buffer[idx];
                if rec.kind == kind
                    && rec.addr + u64::from(rec.size) == addr
                    && rec.size.checked_add(size).is_some()
                    && can_grow(rec)
                {
                    rec.size += size;
                    self.coalesced_away += 1;
                    return;
                }
            }
            // (b) Intra-thread run merge: a recent record from the same
            //     warp this access extends (a thread streaming through a
            //     matrix row, with the pc advancing each step).
            let window = self.buffer.len().saturating_sub(COALESCE_WINDOW);
            if let Some(idx) = (window..self.buffer.len()).rev().find(|&i| {
                let rec = &self.buffer[i];
                rec.kind == kind
                    && rec.flat_thread / WARP_SIZE == warp
                    && rec.addr + u64::from(rec.size) == addr
                    && rec.size.checked_add(size).is_some()
                    && can_grow(rec)
            }) {
                self.buffer[idx].size += size;
                self.merge_candidates.insert(warp, pc, idx);
                self.coalesced_away += 1;
                return;
            }
            self.merge_candidates.insert(warp, pc, self.buffer.len());
        }
        self.buffer.push(MemAccessRecord {
            addr,
            size,
            kind,
            flat_thread,
            pc,
        });
        if self.buffer.len() >= self.capacity {
            self.flush(sanitizer, info);
        }
    }

    pub(crate) fn flush(&mut self, sanitizer: &Sanitizer, info: &KernelInfo) {
        if self.buffer.is_empty() {
            return;
        }
        sanitizer.dispatch_buffer(info, &self.buffer);
        self.buffer.clear();
        // Buffer indices held by open merge candidates die with the drain.
        self.merge_candidates.clear();
        self.flushes += 1;
    }
}
