//! Unified (managed) memory: CPU/GPU-shared allocations with page
//! migration — the substrate for the DrGPUM paper's future-work direction
//! ("memory inefficiencies that reside in CPU-GPU interactions, such as
//! page-level false sharing in unified memory", Sec. 8).
//!
//! A managed allocation ([`crate::DeviceContext::malloc_managed`]) is
//! addressable from both sides. Residency is tracked per 4 KiB page: a host
//! access to a device-resident page (or a kernel access to a host-resident
//! page) migrates the page, costs simulated time, and emits a
//! [`PageMigration`] event to the Sanitizer hooks — the raw signal behind
//! page-thrashing and false-sharing analysis.

use crate::mem::{DevicePtr, PAGE_SIZE};
use std::collections::BTreeMap;
use std::fmt;

/// Which processor a page currently resides with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// Resident in host (CPU) memory.
    Host,
    /// Resident in device (GPU) memory.
    Device,
}

impl Side {
    /// The other side.
    pub fn other(self) -> Side {
        match self {
            Side::Host => Side::Device,
            Side::Device => Side::Host,
        }
    }
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::Host => f.write_str("host"),
            Side::Device => f.write_str("device"),
        }
    }
}

/// One page migration event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageMigration {
    /// Base address of the managed region the page belongs to.
    pub region_base: DevicePtr,
    /// Index of the page within the region.
    pub page_index: u32,
    /// The side the page migrated *to* (the accessor).
    pub to: Side,
    /// First byte of the access that triggered the migration.
    pub cause_addr: DevicePtr,
    /// Size of the triggering access.
    pub cause_size: u32,
}

#[derive(Debug)]
struct ManagedRegion {
    base: u64,
    size: u64,
    pages: Vec<Side>,
}

impl ManagedRegion {
    fn page_count(size: u64) -> usize {
        size.div_ceil(PAGE_SIZE) as usize
    }
}

/// The residency tracker for all managed regions of a context.
#[derive(Debug, Default)]
pub struct UnifiedManager {
    regions: BTreeMap<u64, ManagedRegion>,
    total_migrations: u64,
}

impl UnifiedManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        UnifiedManager::default()
    }

    /// Registers a managed region. Pages start host-resident (managed data
    /// is typically initialized by the CPU before the first kernel).
    pub fn register(&mut self, base: DevicePtr, size: u64) {
        self.regions.insert(
            base.addr(),
            ManagedRegion {
                base: base.addr(),
                size,
                pages: vec![Side::Host; ManagedRegion::page_count(size)],
            },
        );
    }

    /// Unregisters a managed region (at free).
    pub fn unregister(&mut self, base: DevicePtr) -> bool {
        self.regions.remove(&base.addr()).is_some()
    }

    /// Returns `true` if `addr` falls inside a managed region.
    pub fn is_managed(&self, addr: DevicePtr) -> bool {
        self.region_of(addr).is_some()
    }

    fn region_of(&self, addr: DevicePtr) -> Option<&ManagedRegion> {
        self.regions
            .range(..=addr.addr())
            .next_back()
            .map(|(_, r)| r)
            .filter(|r| addr.addr() < r.base + r.size)
    }

    /// Number of managed regions currently registered.
    ///
    /// Also consulted by the launch path: any registered region forces the
    /// serial block loop (see [`crate::config::SimConfig::kernel_workers`]),
    /// because migrations dispatch sanitizer hooks from inside threads in
    /// an order the serial schedule defines.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Total page migrations ever performed.
    pub fn total_migrations(&self) -> u64 {
        self.total_migrations
    }

    /// Ensures the pages covering `[addr, addr + size)` are resident on
    /// `side`, migrating as needed. Returns the migrations performed (for
    /// cost accounting and event dispatch). A no-op for unmanaged
    /// addresses.
    pub fn ensure_resident(
        &mut self,
        addr: DevicePtr,
        size: u64,
        side: Side,
    ) -> Vec<PageMigration> {
        let Some((&base, _)) = self
            .regions
            .range(..=addr.addr())
            .next_back()
            .filter(|(_, r)| addr.addr() < r.base + r.size)
        else {
            return Vec::new();
        };
        let Some(region) = self.regions.get_mut(&base) else {
            return Vec::new();
        };
        let mut migrations = Vec::new();
        if size == 0 {
            return migrations;
        }
        let first = (addr.addr() - region.base) / PAGE_SIZE;
        let last = (addr.addr() + size - 1 - region.base) / PAGE_SIZE;
        for page in first..=last.min(region.pages.len() as u64 - 1) {
            let slot = &mut region.pages[page as usize];
            if *slot != side {
                *slot = side;
                migrations.push(PageMigration {
                    region_base: DevicePtr::new(region.base),
                    page_index: u32::try_from(page).unwrap_or(u32::MAX),
                    to: side,
                    cause_addr: addr,
                    cause_size: u32::try_from(size.min(u64::from(u32::MAX))).unwrap_or(u32::MAX),
                });
            }
        }
        self.total_migrations += migrations.len() as u64;
        migrations
    }

    /// Current residency of the page containing `addr`, if managed.
    pub fn residency(&self, addr: DevicePtr) -> Option<Side> {
        let region = self.region_of(addr)?;
        let page = (addr.addr() - region.base) / PAGE_SIZE;
        region.pages.get(page as usize).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> DevicePtr {
        DevicePtr::new(0x7f00_0000_0000)
    }

    #[test]
    fn pages_start_host_resident() {
        let mut m = UnifiedManager::new();
        m.register(base(), 3 * PAGE_SIZE);
        assert_eq!(m.residency(base()), Some(Side::Host));
        assert_eq!(m.residency(base() + 2 * PAGE_SIZE), Some(Side::Host));
        assert_eq!(m.residency(base() + 3 * PAGE_SIZE), None);
    }

    #[test]
    fn device_access_migrates_touched_pages_only() {
        let mut m = UnifiedManager::new();
        m.register(base(), 4 * PAGE_SIZE);
        let migs = m.ensure_resident(base() + PAGE_SIZE + 100, 8, Side::Device);
        assert_eq!(migs.len(), 1);
        assert_eq!(migs[0].page_index, 1);
        assert_eq!(migs[0].to, Side::Device);
        assert_eq!(m.residency(base()), Some(Side::Host));
        assert_eq!(m.residency(base() + PAGE_SIZE), Some(Side::Device));
    }

    #[test]
    fn repeated_same_side_access_is_free() {
        let mut m = UnifiedManager::new();
        m.register(base(), PAGE_SIZE);
        assert_eq!(m.ensure_resident(base(), 4, Side::Device).len(), 1);
        assert_eq!(m.ensure_resident(base() + 8, 4, Side::Device).len(), 0);
        assert_eq!(m.total_migrations(), 1);
    }

    #[test]
    fn ping_pong_counts_every_bounce() {
        let mut m = UnifiedManager::new();
        m.register(base(), PAGE_SIZE);
        for _ in 0..3 {
            m.ensure_resident(base(), 4, Side::Device);
            m.ensure_resident(base() + 2048, 4, Side::Host);
        }
        assert_eq!(m.total_migrations(), 6);
    }

    #[test]
    fn spanning_access_migrates_every_page() {
        let mut m = UnifiedManager::new();
        m.register(base(), 4 * PAGE_SIZE);
        let migs = m.ensure_resident(base() + 100, 3 * PAGE_SIZE, Side::Device);
        assert_eq!(migs.len(), 4, "partial first/last pages still migrate");
    }

    #[test]
    fn unmanaged_addresses_are_noops() {
        let mut m = UnifiedManager::new();
        m.register(base(), PAGE_SIZE);
        assert!(m
            .ensure_resident(base() + 10 * PAGE_SIZE, 4, Side::Device)
            .is_empty());
        assert!(!m.is_managed(base() + PAGE_SIZE));
        assert!(m.is_managed(base() + 100));
    }

    #[test]
    fn unregister_removes_tracking() {
        let mut m = UnifiedManager::new();
        m.register(base(), PAGE_SIZE);
        assert!(m.unregister(base()));
        assert!(!m.unregister(base()));
        assert!(!m.is_managed(base()));
    }
}
