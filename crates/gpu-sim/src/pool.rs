//! A caching memory pool in the style of deep-learning frameworks.
//!
//! PyTorch and TensorFlow pre-allocate large slabs of device memory and carve
//! tensors out of them with custom (non-CUDA) allocation APIs (Sec. 5.4).
//! NVIDIA's Sanitizer API has no visibility into those custom APIs, so
//! DrGPUM registers a dedicated memory-profiling callback with the framework.
//! [`CachingPool`] reproduces that situation: pool-level `alloc`/`free`
//! operations never reach the Sanitizer; tools observe them only through a
//! registered [`PoolObserver`] — the stand-in for PyTorch's
//! `ThreadLocalDebugInfo` hook.

use crate::api::DeviceContext;
use crate::callstack::CallPath;
use crate::error::{Result, SimError};
use crate::fault::RetryPolicy;
use crate::mem::DevicePtr;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Pool-allocator events delivered to a [`PoolObserver`].
#[derive(Debug, Clone, PartialEq)]
pub enum PoolEvent {
    /// A tensor was carved out of the pool.
    Alloc {
        /// Base device address of the tensor.
        ptr: DevicePtr,
        /// Requested size in bytes.
        size: u64,
        /// Tensor label.
        label: String,
        /// Host call path at the allocation.
        call_path: CallPath,
    },
    /// A tensor was returned to the pool.
    Free {
        /// Base device address of the tensor.
        ptr: DevicePtr,
        /// Size of the tensor.
        size: u64,
    },
}

/// Observer of pool-level allocation activity (the Sec. 5.4 interface).
pub trait PoolObserver {
    /// Called on every pool allocation and deallocation.
    fn on_pool_event(&mut self, event: &PoolEvent);
}

/// A shared observer registration.
pub type SharedPoolObserver = Arc<Mutex<dyn PoolObserver>>;

/// Aggregate pool statistics, mirroring `torch.cuda.memory_allocated` /
/// `memory_reserved`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Bytes currently handed out to tensors.
    pub allocated_bytes: u64,
    /// Bytes reserved from the device (slab total).
    pub reserved_bytes: u64,
    /// High-water mark of `allocated_bytes`.
    pub peak_allocated_bytes: u64,
    /// Number of live tensors.
    pub live_tensors: usize,
}

/// A first-fit caching allocator carving tensors out of one device slab.
///
/// # Examples
///
/// ```
/// use gpu_sim::{DeviceContext, pool::CachingPool};
///
/// # fn main() -> Result<(), gpu_sim::SimError> {
/// let mut ctx = DeviceContext::new_default();
/// let mut pool = CachingPool::reserve(&mut ctx, 1 << 20)?;
/// let t = pool.alloc(&mut ctx, 4096, "activations")?;
/// assert_eq!(pool.stats().allocated_bytes, 4096);
/// pool.free(t)?;
/// assert_eq!(pool.stats().allocated_bytes, 0);
/// # Ok(())
/// # }
/// ```
pub struct CachingPool {
    slab: DevicePtr,
    slab_size: u64,
    /// Free regions: start offset → length.
    free: BTreeMap<u64, u64>,
    /// Live tensors: start offset → size.
    live: BTreeMap<u64, u64>,
    stats: PoolStats,
    observers: Vec<SharedPoolObserver>,
}

impl std::fmt::Debug for CachingPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachingPool")
            .field("slab", &self.slab)
            .field("slab_size", &self.slab_size)
            .field("stats", &self.stats)
            .field("observers", &self.observers.len())
            .finish()
    }
}

/// Allocation granularity inside the pool (PyTorch rounds to 512 B blocks).
pub const POOL_ALIGN: u64 = 512;

impl CachingPool {
    /// Reserves a `slab_size`-byte slab from the device and builds a pool
    /// over it. The reservation is one big `cudaMalloc`, which is all the
    /// Sanitizer ever sees of this pool.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] if the slab cannot be allocated.
    pub fn reserve(ctx: &mut DeviceContext, slab_size: u64) -> Result<Self> {
        let slab = ctx.malloc(slab_size, "memory_pool_slab")?;
        let mut free = BTreeMap::new();
        free.insert(0, slab_size);
        Ok(CachingPool {
            slab,
            slab_size,
            free,
            live: BTreeMap::new(),
            stats: PoolStats {
                reserved_bytes: slab_size,
                ..PoolStats::default()
            },
            observers: Vec::new(),
        })
    }

    /// Like [`CachingPool::reserve`], but retries transient out-of-memory
    /// failures with backoff, shrinking the slab request per `policy` — the
    /// degraded-but-working path frameworks take under memory pressure. The
    /// pool is built over whatever slab size was actually granted.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] once retries are exhausted.
    pub fn reserve_with_retry(
        ctx: &mut DeviceContext,
        slab_size: u64,
        policy: RetryPolicy,
    ) -> Result<Self> {
        let (slab, granted) = ctx.malloc_with_retry(slab_size, "memory_pool_slab", policy)?;
        let mut free = BTreeMap::new();
        free.insert(0, granted);
        Ok(CachingPool {
            slab,
            slab_size: granted,
            free,
            live: BTreeMap::new(),
            stats: PoolStats {
                reserved_bytes: granted,
                ..PoolStats::default()
            },
            observers: Vec::new(),
        })
    }

    /// Registers a pool observer (DrGPUM's Sec. 5.4 profiling interface).
    pub fn register_observer(&mut self, observer: SharedPoolObserver) {
        self.observers.push(observer);
    }

    /// Current pool statistics.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Base pointer of the underlying slab.
    pub fn slab(&self) -> DevicePtr {
        self.slab
    }

    fn notify(&self, event: &PoolEvent) {
        for o in &self.observers {
            o.lock().on_pool_event(event);
        }
    }

    /// Carves `size` bytes out of the pool.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] when the pool is exhausted or too
    /// fragmented, and [`SimError::ZeroSizedAllocation`] for `size == 0`.
    pub fn alloc(
        &mut self,
        ctx: &mut DeviceContext,
        size: u64,
        label: impl Into<String>,
    ) -> Result<DevicePtr> {
        if size == 0 {
            return Err(SimError::ZeroSizedAllocation);
        }
        let rounded = size.div_ceil(POOL_ALIGN) * POOL_ALIGN;
        let slot = self
            .free
            .iter()
            .find(|(_, &len)| len >= rounded)
            .map(|(&s, &l)| (s, l));
        let (start, len) = slot.ok_or(SimError::OutOfMemory {
            requested: size,
            largest_free: self.free.values().copied().max().unwrap_or(0),
            total_free: self.free.values().sum(),
        })?;
        self.free.remove(&start);
        if len > rounded {
            self.free.insert(start + rounded, len - rounded);
        }
        self.live.insert(start, size);
        self.stats.allocated_bytes += size;
        self.stats.peak_allocated_bytes = self
            .stats
            .peak_allocated_bytes
            .max(self.stats.allocated_bytes);
        self.stats.live_tensors = self.live.len();
        let ptr = self.slab + start;
        self.notify(&PoolEvent::Alloc {
            ptr,
            size,
            label: label.into(),
            call_path: ctx.call_stack().capture(),
        });
        Ok(ptr)
    }

    /// Returns a tensor to the pool.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidFree`] if `ptr` was not handed out by
    /// [`CachingPool::alloc`].
    pub fn free(&mut self, ptr: DevicePtr) -> Result<()> {
        let start = ptr.offset_from(self.slab);
        let size = self.live.remove(&start).ok_or(SimError::InvalidFree(ptr))?;
        let rounded = size.div_ceil(POOL_ALIGN) * POOL_ALIGN;
        self.insert_free(start, rounded);
        self.stats.allocated_bytes -= size;
        self.stats.live_tensors = self.live.len();
        self.notify(&PoolEvent::Free { ptr, size });
        Ok(())
    }

    fn insert_free(&mut self, mut start: u64, mut len: u64) {
        if let Some((&ps, &pl)) = self.free.range(..start).next_back() {
            if ps + pl == start {
                self.free.remove(&ps);
                start = ps;
                len += pl;
            }
        }
        if let Some((&ns, &nl)) = self.free.range(start + len..).next() {
            if start + len == ns {
                self.free.remove(&ns);
                len += nl;
            }
        }
        self.free.insert(start, len);
    }

    /// Releases the slab back to the device. Call at teardown; leaking the
    /// pool object itself constitutes the paper's *memory leak* pattern at
    /// the CUDA level.
    ///
    /// # Errors
    ///
    /// Returns an error if the slab was already released.
    pub fn release(self, ctx: &mut DeviceContext) -> Result<()> {
        ctx.free(self.slab)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        allocs: usize,
        frees: usize,
        last_label: String,
    }

    impl PoolObserver for Counter {
        fn on_pool_event(&mut self, event: &PoolEvent) {
            match event {
                PoolEvent::Alloc { label, .. } => {
                    self.allocs += 1;
                    self.last_label = label.clone();
                }
                PoolEvent::Free { .. } => self.frees += 1,
            }
        }
    }

    #[test]
    fn pool_allocs_are_invisible_to_the_sanitizer() {
        let mut ctx = DeviceContext::new_default();
        let mut pool = CachingPool::reserve(&mut ctx, 1 << 16).unwrap();
        let api_calls_before = ctx.api_log().len();
        let t = pool.alloc(&mut ctx, 1024, "t").unwrap();
        pool.free(t).unwrap();
        assert_eq!(
            ctx.api_log().len(),
            api_calls_before,
            "pool traffic must not produce GPU API events"
        );
    }

    #[test]
    fn observer_sees_pool_traffic() {
        let mut ctx = DeviceContext::new_default();
        let mut pool = CachingPool::reserve(&mut ctx, 1 << 16).unwrap();
        let counter = Arc::new(Mutex::new(Counter {
            allocs: 0,
            frees: 0,
            last_label: String::new(),
        }));
        pool.register_observer(counter.clone());
        let a = pool.alloc(&mut ctx, 100, "grad").unwrap();
        let b = pool.alloc(&mut ctx, 200, "act").unwrap();
        pool.free(a).unwrap();
        pool.free(b).unwrap();
        let c = counter.lock();
        assert_eq!((c.allocs, c.frees), (2, 2));
        assert_eq!(c.last_label, "act");
    }

    #[test]
    fn pool_reuses_freed_blocks() {
        let mut ctx = DeviceContext::new_default();
        let mut pool = CachingPool::reserve(&mut ctx, 4 * POOL_ALIGN).unwrap();
        let a = pool.alloc(&mut ctx, POOL_ALIGN, "a").unwrap();
        let _b = pool.alloc(&mut ctx, POOL_ALIGN, "b").unwrap();
        pool.free(a).unwrap();
        let c = pool.alloc(&mut ctx, POOL_ALIGN, "c").unwrap();
        assert_eq!(c, a, "first-fit reuse of the freed block");
    }

    #[test]
    fn pool_exhaustion_is_oom() {
        let mut ctx = DeviceContext::new_default();
        let mut pool = CachingPool::reserve(&mut ctx, 2 * POOL_ALIGN).unwrap();
        let _a = pool.alloc(&mut ctx, 2 * POOL_ALIGN, "a").unwrap();
        assert!(matches!(
            pool.alloc(&mut ctx, 1, "b").unwrap_err(),
            SimError::OutOfMemory { .. }
        ));
    }

    #[test]
    fn peak_allocated_tracks_high_water() {
        let mut ctx = DeviceContext::new_default();
        let mut pool = CachingPool::reserve(&mut ctx, 1 << 16).unwrap();
        let a = pool.alloc(&mut ctx, 1000, "a").unwrap();
        let b = pool.alloc(&mut ctx, 2000, "b").unwrap();
        pool.free(a).unwrap();
        pool.free(b).unwrap();
        assert_eq!(pool.stats().peak_allocated_bytes, 3000);
        assert_eq!(pool.stats().allocated_bytes, 0);
    }

    #[test]
    fn release_frees_the_slab() {
        let mut ctx = DeviceContext::new_default();
        let pool = CachingPool::reserve(&mut ctx, 1 << 16).unwrap();
        let slab = pool.slab();
        pool.release(&mut ctx).unwrap();
        assert!(ctx.allocator().get(slab).is_none());
    }
}
