//! The device context: a CUDA-like runtime API over the simulated GPU.
//!
//! [`DeviceContext`] exposes the GPU APIs the DrGPUM paper reasons about —
//! memory allocation, deallocation, copy, and set, plus kernel launches
//! (Sec. 3, footnote 1) — together with streams, events, host call-path
//! tracking, and the Sanitizer-style instrumentation registry.

use crate::callstack::{CallPath, CallStack, SourceLoc};
use crate::config::{PlatformConfig, SimConfig};
use crate::error::{Result, SimError};
use crate::fault::{FaultInjector, FaultKind, FaultPlan, InjectedFault, RetryPolicy};
use crate::kernel::{Dim3, KernelCounters, KernelMem, LaunchConfig, ThreadCtx};
use crate::mem::{DeviceAllocator, DevicePtr, PagedStore};
use crate::sanitizer::{AccessSink, KernelInfo, PatchMode, Sanitizer, SinkArena};
use crate::stream::{EventId, SimTime, StreamId, StreamSet};
use crate::unified::{Side, UnifiedManager};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// The kind (and operands) of one GPU API invocation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ApiKind {
    /// `cudaMalloc`: a new device allocation.
    Malloc {
        /// Base pointer of the allocation.
        ptr: DevicePtr,
        /// Requested size in bytes.
        size: u64,
        /// Human-readable object label supplied by the program.
        label: String,
    },
    /// `cudaFree`.
    Free {
        /// Base pointer being freed.
        ptr: DevicePtr,
        /// Size of the freed allocation.
        size: u64,
        /// Label given at allocation time.
        label: String,
    },
    /// Host-to-device `cudaMemcpy`.
    MemcpyH2D {
        /// Destination device range start.
        dst: DevicePtr,
        /// Bytes copied.
        size: u64,
    },
    /// Device-to-host `cudaMemcpy`.
    MemcpyD2H {
        /// Source device range start.
        src: DevicePtr,
        /// Bytes copied.
        size: u64,
    },
    /// Device-to-device `cudaMemcpy`.
    MemcpyD2D {
        /// Destination device range start.
        dst: DevicePtr,
        /// Source device range start.
        src: DevicePtr,
        /// Bytes copied.
        size: u64,
    },
    /// `cudaMemset`.
    Memset {
        /// Destination device range start.
        dst: DevicePtr,
        /// Bytes set.
        size: u64,
        /// Fill value.
        value: u8,
    },
    /// A kernel launch.
    KernelLaunch {
        /// Kernel name, interned once per launch and shared with the
        /// [`KernelInfo`] handed to the instrumentation hooks.
        name: std::sync::Arc<str>,
        /// Grid extent.
        grid: Dim3,
        /// Block extent.
        block: Dim3,
    },
    /// `cudaStreamCreate`.
    StreamCreate {
        /// The created stream.
        stream: StreamId,
    },
    /// `cudaEventRecord`.
    EventRecord {
        /// The recorded event.
        event: EventId,
    },
    /// `cudaStreamWaitEvent`.
    EventWait {
        /// The awaited event.
        event: EventId,
    },
    /// `cudaStreamSynchronize`.
    StreamSync,
    /// `cudaDeviceSynchronize`.
    DeviceSync,
}

impl ApiKind {
    /// Returns `true` for the five kinds the paper counts as "GPU APIs" for
    /// pattern analysis: allocation, deallocation, copy, set, kernel launch.
    pub fn is_gpu_api(&self) -> bool {
        matches!(
            self,
            ApiKind::Malloc { .. }
                | ApiKind::Free { .. }
                | ApiKind::MemcpyH2D { .. }
                | ApiKind::MemcpyD2H { .. }
                | ApiKind::MemcpyD2D { .. }
                | ApiKind::Memset { .. }
                | ApiKind::KernelLaunch { .. }
        )
    }

    /// Short mnemonic used in traces and the GUI (`ALLOC`, `FREE`, `CPY`,
    /// `SET`, `KERL`, matching the paper's Figure 7 vocabulary).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            ApiKind::Malloc { .. } => "ALLOC",
            ApiKind::Free { .. } => "FREE",
            ApiKind::MemcpyH2D { .. } | ApiKind::MemcpyD2H { .. } | ApiKind::MemcpyD2D { .. } => {
                "CPY"
            }
            ApiKind::Memset { .. } => "SET",
            ApiKind::KernelLaunch { .. } => "KERL",
            ApiKind::StreamCreate { .. } => "STREAM",
            ApiKind::EventRecord { .. } => "EVREC",
            ApiKind::EventWait { .. } => "EVWAIT",
            ApiKind::StreamSync => "SSYNC",
            ApiKind::DeviceSync => "DSYNC",
        }
    }
}

/// One GPU API invocation, as observed by the instrumentation.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiEvent {
    /// Global invocation sequence number (host order).
    pub seq: u64,
    /// Stream the API was dispatched on.
    pub stream: StreamId,
    /// Ordinal of this API within its stream — the `j` of the paper's
    /// `ALLOC(i, j)` naming.
    pub ordinal_in_stream: u64,
    /// The kind and operands.
    pub kind: ApiKind,
    /// Host call path at the invocation.
    pub call_path: CallPath,
    /// Simulated start time.
    pub start: SimTime,
    /// Simulated end time.
    pub end: SimTime,
}

impl ApiEvent {
    /// `MNEMONIC(stream, ordinal)` — the paper's Figure 7 naming.
    pub fn display_name(&self) -> String {
        format!(
            "{}({}, {})",
            self.kind.mnemonic(),
            self.stream.0,
            self.ordinal_in_stream
        )
    }
}

/// Aggregate context statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContextStats {
    /// Number of GPU API invocations (pattern-relevant kinds only).
    pub gpu_api_calls: u64,
    /// Number of kernel launches.
    pub kernel_launches: u64,
    /// Total memory-access records observed by instrumentation.
    pub instrumented_accesses: u64,
    /// Raw accesses folded into a previous record by warp coalescing
    /// (Sec. 5.5). Zero unless [`Sanitizer::set_coalescing`] is on.
    ///
    /// [`Sanitizer::set_coalescing`]: crate::Sanitizer::set_coalescing
    pub coalesced_records: u64,
}

/// A simulated GPU device context — the top-level entry point of `gpu-sim`.
///
/// # Examples
///
/// ```
/// use gpu_sim::{DeviceContext, LaunchConfig};
///
/// # fn main() -> Result<(), gpu_sim::SimError> {
/// let mut ctx = DeviceContext::new_default();
/// let buf = ctx.malloc(4 * 16, "numbers")?;
/// ctx.h2d_f32(buf, &[1.0; 16])?;
/// ctx.launch("double", LaunchConfig::cover(16, 16)?, gpu_sim::StreamId::DEFAULT,
///     |t| {
///         let i = t.global_x();
///         if i < 16 {
///             let p = buf + i * 4;
///             let v = t.load_f32(p);
///             t.store_f32(p, v * 2.0);
///         }
///     })?;
/// let mut out = [0.0f32; 16];
/// ctx.d2h_f32(&mut out, buf)?;
/// assert_eq!(out[7], 2.0);
/// ctx.free(buf)?;
/// # Ok(())
/// # }
/// ```
pub struct DeviceContext {
    config: PlatformConfig,
    mem: PagedStore,
    alloc: DeviceAllocator,
    streams: StreamSet,
    sanitizer: Sanitizer,
    call_stack: CallStack,
    unified: UnifiedManager,
    log: Vec<ApiEvent>,
    seq: u64,
    kernel_instances: HashMap<Arc<str>, u64>,
    labels: HashMap<DevicePtr, String>,
    stats: ContextStats,
    fault: Option<FaultInjector>,
    /// Recycled collection storage (record buffers, staging arenas, the
    /// per-pc allocation memo) lent to each launch's sinks.
    sink_arena: SinkArena,
    /// Worker threads for parallel block execution (1 = serial loop).
    kernel_workers: usize,
    /// Wall-clock deadline applied to each kernel's block loop
    /// (see [`SimConfig::kernel_deadline_ms`]). `None` = unlimited.
    kernel_deadline: Option<Duration>,
}

/// Reads the `DRGPUM_KERNEL_WORKERS` override once per process. Lets CI
/// (and users) run an entire existing test suite or binary with parallel
/// kernel execution without touching any call site.
fn env_kernel_workers() -> Option<usize> {
    static WORKERS: OnceLock<Option<usize>> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::env::var("DRGPUM_KERNEL_WORKERS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
    })
}

/// Reads the `DRGPUM_KERNEL_DEADLINE_MS` override once per process: a
/// wall-clock watchdog deadline for each kernel's block loop, the
/// simulator-side arm of the profiler's resource governor.
fn env_kernel_deadline_ms() -> Option<u64> {
    static DEADLINE: OnceLock<Option<u64>> = OnceLock::new();
    *DEADLINE.get_or_init(|| {
        std::env::var("DRGPUM_KERNEL_DEADLINE_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&ms| ms >= 1)
    })
}

/// How long an injected [`FaultKind::StreamStall`] pushes a stream's tail
/// into the future.
const STREAM_STALL_NS: u64 = 1_000_000;

impl fmt::Debug for DeviceContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeviceContext")
            .field("platform", &self.config.name)
            .field("api_calls", &self.seq)
            .field("in_use_bytes", &self.alloc.stats().in_use_bytes)
            .finish_non_exhaustive()
    }
}

impl DeviceContext {
    /// Creates a context for the given platform.
    ///
    /// Kernel execution is serial unless the `DRGPUM_KERNEL_WORKERS`
    /// environment variable overrides the worker count; use
    /// [`DeviceContext::with_config`] to pin it programmatically.
    pub fn new(config: PlatformConfig) -> Self {
        let mut sim = SimConfig::new(config);
        if let Some(workers) = env_kernel_workers() {
            sim.kernel_workers = workers;
        }
        if let Some(ms) = env_kernel_deadline_ms() {
            sim.kernel_deadline_ms = Some(ms);
        }
        DeviceContext::with_config(sim)
    }

    /// Creates a context from a full [`SimConfig`], taking the worker count
    /// verbatim (no environment override).
    pub fn with_config(sim: SimConfig) -> Self {
        let SimConfig {
            platform: config,
            kernel_workers,
            kernel_deadline_ms,
        } = sim;
        let alloc = DeviceAllocator::new(config.device_memory_bytes);
        DeviceContext {
            config,
            mem: PagedStore::new(),
            alloc,
            streams: StreamSet::new(),
            sanitizer: Sanitizer::new(),
            call_stack: CallStack::new(),
            unified: UnifiedManager::new(),
            log: Vec::new(),
            seq: 0,
            kernel_instances: HashMap::new(),
            labels: HashMap::new(),
            stats: ContextStats::default(),
            fault: None,
            sink_arena: SinkArena::default(),
            kernel_workers: kernel_workers.max(1),
            kernel_deadline: kernel_deadline_ms.map(Duration::from_millis),
        }
    }

    /// Creates a context for the default platform ([`PlatformConfig::rtx3090`]).
    pub fn new_default() -> Self {
        DeviceContext::new(PlatformConfig::default())
    }

    /// The platform configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// Number of worker threads used for kernel block execution
    /// (see [`SimConfig::kernel_workers`]).
    pub fn kernel_workers(&self) -> usize {
        self.kernel_workers
    }

    /// Sets the kernel worker count; `0` is treated as `1` (serial).
    pub fn set_kernel_workers(&mut self, workers: usize) {
        self.kernel_workers = workers.max(1);
    }

    /// The device allocator (live allocations, peak statistics).
    pub fn allocator(&self) -> &DeviceAllocator {
        &self.alloc
    }

    /// Read access to raw device memory (for host-side validation in tests).
    pub fn memory(&self) -> &PagedStore {
        &self.mem
    }

    /// The Sanitizer registry, for registering profiling tools.
    pub fn sanitizer_mut(&mut self) -> &mut Sanitizer {
        &mut self.sanitizer
    }

    /// Read access to the Sanitizer registry.
    pub fn sanitizer(&self) -> &Sanitizer {
        &self.sanitizer
    }

    /// The host call stack (push/pop frames around GPU calls).
    pub fn call_stack(&self) -> &CallStack {
        &self.call_stack
    }

    /// Current simulated host time.
    pub fn now(&self) -> SimTime {
        self.streams.host_now()
    }

    /// The full API log, in host invocation order.
    pub fn api_log(&self) -> &[ApiEvent] {
        &self.log
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> ContextStats {
        self.stats
    }

    /// The per-kernel wall-clock watchdog deadline, if configured.
    pub fn kernel_deadline_ms(&self) -> Option<u64> {
        self.kernel_deadline.map(|d| d.as_millis() as u64)
    }

    /// Sets (or clears) the per-kernel wall-clock watchdog deadline.
    pub fn set_kernel_deadline_ms(&mut self, ms: Option<u64>) {
        self.kernel_deadline = ms.filter(|&ms| ms >= 1).map(Duration::from_millis);
    }

    /// Pushes a host call-stack frame; pair with [`DeviceContext::pop_frame`].
    pub fn push_frame(&mut self, loc: SourceLoc) {
        let id = self.call_stack.push(loc.clone());
        self.sanitizer.dispatch_frame(id, &loc);
    }

    /// Pops the innermost host call-stack frame.
    ///
    /// # Panics
    ///
    /// Panics on pop without a matching push.
    pub fn pop_frame(&mut self) {
        self.call_stack.pop();
    }

    /// Runs `f` inside a host call-stack frame — the ergonomic way for
    /// simulated programs to build realistic call paths.
    pub fn with_frame<R>(&mut self, loc: SourceLoc, f: impl FnOnce(&mut Self) -> R) -> R {
        self.push_frame(loc);
        let r = f(self);
        self.pop_frame();
        r
    }

    fn emit(
        &mut self,
        stream: StreamId,
        ordinal: u64,
        kind: ApiKind,
        start: SimTime,
        end: SimTime,
    ) {
        if kind.is_gpu_api() {
            self.stats.gpu_api_calls += 1;
        }
        let event = ApiEvent {
            seq: self.seq,
            stream,
            ordinal_in_stream: ordinal,
            kind,
            call_path: self.call_stack.capture(),
            start,
            end,
        };
        self.seq += 1;
        self.sanitizer.dispatch_api(&event);
        self.log.push(event);
    }

    // --------------------------------------------------------- fault injection

    /// Installs a [`FaultPlan`]; subsequent operations consult it and may
    /// fail, stall, or misbehave as the plan dictates. Replaces any
    /// previously installed plan.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Some(FaultInjector::new(plan));
    }

    /// Removes the installed fault plan, if any. The log of already-injected
    /// faults is discarded with it.
    pub fn clear_fault_plan(&mut self) {
        self.fault = None;
    }

    /// Every fault injected so far, in firing order (empty when no plan is
    /// installed).
    pub fn fault_log(&self) -> &[InjectedFault] {
        self.fault.as_ref().map(FaultInjector::log).unwrap_or(&[])
    }

    /// Consults the installed injector (if any) for `kind` at the current
    /// API sequence number.
    fn fault_fires(&mut self, kind: FaultKind) -> bool {
        match self.fault.as_mut() {
            Some(inj) => inj.should_inject(kind, self.seq),
            None => false,
        }
    }

    /// Applies stream-level faults before an operation is enqueued on
    /// `stream`: rejects aborted streams, delivers pending stalls/aborts.
    fn apply_stream_faults(&mut self, stream: StreamId) -> Result<()> {
        if self.streams.is_aborted(stream) {
            return Err(SimError::StreamAborted(stream.0));
        }
        if self.fault_fires(FaultKind::StreamStall) {
            self.streams.stall_stream(stream, STREAM_STALL_NS)?;
        }
        if self.fault_fires(FaultKind::StreamAbort) {
            self.streams.abort_stream(stream)?;
            return Err(SimError::StreamAborted(stream.0));
        }
        Ok(())
    }

    // ----------------------------------------------------------------- memory

    /// Allocates `size` bytes of device memory (`cudaMalloc`).
    ///
    /// The `label` names the data object in reports (real DrGPUM recovers
    /// names from call paths; the simulator lets programs pass them
    /// directly while *also* recording the call path).
    ///
    /// On failure — real or injected — registered sanitizer tools are
    /// notified via
    /// [`SanitizerHooks::on_alloc_failure`](crate::SanitizerHooks::on_alloc_failure)
    /// before the error is returned, so profilers can degrade gracefully.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] or [`SimError::ZeroSizedAllocation`].
    pub fn malloc(&mut self, size: u64, label: impl Into<String>) -> Result<DevicePtr> {
        let label = label.into();
        if self.fault_fires(FaultKind::AllocFail) {
            let err = SimError::OutOfMemory {
                requested: size,
                largest_free: self.alloc.largest_free(),
                total_free: self.alloc.total_free(),
            };
            self.sanitizer.dispatch_alloc_failure(size, &label, &err);
            return Err(err);
        }
        let info = match self.alloc.malloc(size) {
            Ok(info) => info,
            Err(err) => {
                if matches!(err, SimError::OutOfMemory { .. }) {
                    self.sanitizer.dispatch_alloc_failure(size, &label, &err);
                }
                return Err(err);
            }
        };
        self.labels.insert(info.ptr, label.clone());
        let dur = self.config.malloc_overhead_ns;
        let (start, end, ordinal) = self.streams.enqueue_sync(StreamId::DEFAULT, dur)?;
        self.emit(
            StreamId::DEFAULT,
            ordinal,
            ApiKind::Malloc {
                ptr: info.ptr,
                size,
                label,
            },
            start,
            end,
        );
        Ok(info.ptr)
    }

    /// Allocates like [`DeviceContext::malloc`], but treats out-of-memory as
    /// transient: each retry charges exponential backoff to the simulated
    /// host clock and may shrink the request per `policy` — the
    /// shrink-and-retry loop real caching allocators run under memory
    /// pressure.
    ///
    /// Returns the pointer and the size actually granted (which is `size`
    /// unless the policy shrank the request).
    ///
    /// # Errors
    ///
    /// Returns the last [`SimError::OutOfMemory`] once retries are
    /// exhausted; any other error is returned immediately without retrying.
    pub fn malloc_with_retry(
        &mut self,
        size: u64,
        label: impl Into<String>,
        policy: RetryPolicy,
    ) -> Result<(DevicePtr, u64)> {
        let label = label.into();
        let mut request = size;
        let mut attempt = 0u32;
        loop {
            match self.malloc(request, label.clone()) {
                Ok(ptr) => return Ok((ptr, request)),
                Err(SimError::OutOfMemory { .. }) if attempt < policy.max_retries => {
                    attempt += 1;
                    self.streams.advance_host(policy.backoff_for(attempt));
                    request = policy.shrink(request);
                }
                Err(err) => return Err(err),
            }
        }
    }

    /// Frees a device allocation (`cudaFree`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidFree`] if `ptr` is not a live allocation
    /// base.
    pub fn free(&mut self, ptr: DevicePtr) -> Result<()> {
        let info = self.alloc.free(ptr)?;
        self.unified.unregister(ptr);
        self.mem.discard(info.ptr, info.size);
        let label = self.labels.remove(&ptr).unwrap_or_default();
        let dur = self.config.free_overhead_ns;
        // Decide before emitting, while `seq` is still this FREE's number.
        let spurious = self.fault_fires(FaultKind::SpuriousFree);
        let (start, end, ordinal) = self.streams.enqueue_sync(StreamId::DEFAULT, dur)?;
        self.emit(
            StreamId::DEFAULT,
            ordinal,
            ApiKind::Free {
                ptr,
                size: info.size,
                label: label.clone(),
            },
            start,
            end,
        );
        if spurious {
            // A misbehaving application frees the pointer a second time. The
            // allocation is already dead, so only the API event is replayed;
            // instrumentation must tolerate a FREE with no live object.
            let (start, end, ordinal) = self.streams.enqueue_sync(StreamId::DEFAULT, dur)?;
            self.emit(
                StreamId::DEFAULT,
                ordinal,
                ApiKind::Free {
                    ptr,
                    size: info.size,
                    label,
                },
                start,
                end,
            );
        }
        Ok(())
    }

    /// The label given to a live allocation, if any.
    pub fn label_of(&self, ptr: DevicePtr) -> Option<&str> {
        self.labels.get(&ptr).map(String::as_str)
    }

    /// The unified-memory residency tracker (for tests and tools).
    pub fn unified(&self) -> &UnifiedManager {
        &self.unified
    }

    /// Allocates `size` bytes of *managed* (unified) memory
    /// (`cudaMallocManaged`): addressable from both host and device, with
    /// per-page residency and migration-on-access (the paper's future-work
    /// substrate, Sec. 8). Pages start host-resident.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] or [`SimError::ZeroSizedAllocation`].
    pub fn malloc_managed(&mut self, size: u64, label: impl Into<String>) -> Result<DevicePtr> {
        let ptr = self.malloc(size, label)?;
        self.unified.register(ptr, size);
        Ok(ptr)
    }

    fn host_touch(&mut self, addr: DevicePtr, size: u64) -> Result<()> {
        self.check_device_range(addr, size)?;
        if !self.unified.is_managed(addr) {
            return Err(SimError::OutOfBounds { addr, size });
        }
        // Host accesses block until the pages fault back.
        let migrations = self.unified.ensure_resident(addr, size, Side::Host);
        for m in &migrations {
            self.sanitizer.dispatch_page_migration(m);
        }
        let cost = migrations.len() as u64 * self.config.page_migration_ns;
        self.streams
            .advance_host((cost as f64 * self.config.cpu_factor) as u64);
        Ok(())
    }

    /// Host-side write of an `f32` slice into managed memory (a plain CPU
    /// store to unified memory — *not* a GPU API; triggers page migration
    /// for device-resident pages).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfBounds`] if the range is not inside a live
    /// managed allocation.
    pub fn managed_write_f32s(&mut self, dst: DevicePtr, values: &[f32]) -> Result<()> {
        self.host_touch(dst, values.len() as u64 * 4)?;
        for (i, v) in values.iter().enumerate() {
            self.mem.write_f32(dst + i as u64 * 4, *v);
        }
        Ok(())
    }

    /// Host-side read of an `f32` slice from managed memory.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfBounds`] if the range is not inside a live
    /// managed allocation.
    pub fn managed_read_f32s(&mut self, out: &mut [f32], src: DevicePtr) -> Result<()> {
        self.host_touch(src, out.len() as u64 * 4)?;
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.mem.read_f32(src + i as u64 * 4);
        }
        Ok(())
    }

    /// Host-side scalar write to managed memory.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfBounds`] for invalid addresses.
    pub fn managed_write_f32(&mut self, dst: DevicePtr, value: f32) -> Result<()> {
        self.host_touch(dst, 4)?;
        self.mem.write_f32(dst, value);
        Ok(())
    }

    /// Host-side scalar read from managed memory.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfBounds`] for invalid addresses.
    pub fn managed_read_f32(&mut self, src: DevicePtr) -> Result<f32> {
        self.host_touch(src, 4)?;
        Ok(self.mem.read_f32(src))
    }

    fn check_device_range(&self, ptr: DevicePtr, size: u64) -> Result<()> {
        if size == 0 || self.alloc.is_valid_access(ptr, size) {
            Ok(())
        } else {
            Err(SimError::OutOfBounds { addr: ptr, size })
        }
    }

    /// Synchronous host→device copy (`cudaMemcpy` H2D).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfBounds`] if the destination range is not
    /// fully inside one live allocation.
    pub fn memcpy_h2d(&mut self, dst: DevicePtr, data: &[u8]) -> Result<()> {
        self.memcpy_h2d_on(dst, data, StreamId::DEFAULT)
    }

    /// Host→device copy on a specific stream (`cudaMemcpyAsync` H2D).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfBounds`] for an invalid destination range or
    /// [`SimError::UnknownStream`].
    pub fn memcpy_h2d_on(&mut self, dst: DevicePtr, data: &[u8], stream: StreamId) -> Result<()> {
        self.apply_stream_faults(stream)?;
        let size = data.len() as u64;
        self.check_device_range(dst, size)?;
        self.mem.write_bytes(dst, data);
        let dur = self.config.transfer_ns(size);
        let (start, end, ordinal) = if stream == StreamId::DEFAULT {
            self.streams.enqueue_sync(stream, dur)?
        } else {
            self.streams.enqueue(stream, dur)?
        };
        self.emit(
            stream,
            ordinal,
            ApiKind::MemcpyH2D { dst, size },
            start,
            end,
        );
        Ok(())
    }

    /// Synchronous device→host copy (`cudaMemcpy` D2H).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfBounds`] if the source range is invalid.
    pub fn memcpy_d2h(&mut self, out: &mut [u8], src: DevicePtr) -> Result<()> {
        self.memcpy_d2h_on(out, src, StreamId::DEFAULT)
    }

    /// Device→host copy on a specific stream (`cudaMemcpyAsync` D2H).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfBounds`] for an invalid source range or
    /// [`SimError::UnknownStream`].
    pub fn memcpy_d2h_on(
        &mut self,
        out: &mut [u8],
        src: DevicePtr,
        stream: StreamId,
    ) -> Result<()> {
        self.apply_stream_faults(stream)?;
        let size = out.len() as u64;
        self.check_device_range(src, size)?;
        self.mem.read_bytes(src, out);
        let dur = self.config.transfer_ns(size);
        let (start, end, ordinal) = if stream == StreamId::DEFAULT {
            self.streams.enqueue_sync(stream, dur)?
        } else {
            self.streams.enqueue(stream, dur)?
        };
        self.emit(
            stream,
            ordinal,
            ApiKind::MemcpyD2H { src, size },
            start,
            end,
        );
        Ok(())
    }

    /// Device→device copy (`cudaMemcpy` D2D) on the default stream.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfBounds`] if either range is invalid.
    pub fn memcpy_d2d(&mut self, dst: DevicePtr, src: DevicePtr, size: u64) -> Result<()> {
        self.memcpy_d2d_on(dst, src, size, StreamId::DEFAULT)
    }

    /// Device→device copy on a specific stream.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfBounds`] for invalid ranges or
    /// [`SimError::UnknownStream`].
    pub fn memcpy_d2d_on(
        &mut self,
        dst: DevicePtr,
        src: DevicePtr,
        size: u64,
        stream: StreamId,
    ) -> Result<()> {
        self.apply_stream_faults(stream)?;
        self.check_device_range(src, size)?;
        self.check_device_range(dst, size)?;
        self.mem.copy_within(dst, src, size);
        let dur = self.config.device_stream_ns(size);
        let (start, end, ordinal) = self.streams.enqueue(stream, dur)?;
        self.emit(
            stream,
            ordinal,
            ApiKind::MemcpyD2D { dst, src, size },
            start,
            end,
        );
        Ok(())
    }

    /// Fills device memory (`cudaMemset`) on the default stream.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfBounds`] if the range is invalid.
    pub fn memset(&mut self, dst: DevicePtr, value: u8, size: u64) -> Result<()> {
        self.memset_on(dst, value, size, StreamId::DEFAULT)
    }

    /// Fills device memory on a specific stream (`cudaMemsetAsync`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfBounds`] for an invalid range or
    /// [`SimError::UnknownStream`].
    pub fn memset_on(
        &mut self,
        dst: DevicePtr,
        value: u8,
        size: u64,
        stream: StreamId,
    ) -> Result<()> {
        self.apply_stream_faults(stream)?;
        self.check_device_range(dst, size)?;
        self.mem.fill(dst, size, value);
        let dur = self.config.device_stream_ns(size);
        let (start, end, ordinal) = self.streams.enqueue(stream, dur)?;
        self.emit(
            stream,
            ordinal,
            ApiKind::Memset { dst, size, value },
            start,
            end,
        );
        Ok(())
    }

    // ------------------------------------------------------------ typed copies

    /// Host→device copy of an `f32` slice.
    ///
    /// # Errors
    ///
    /// See [`DeviceContext::memcpy_h2d`].
    pub fn h2d_f32(&mut self, dst: DevicePtr, src: &[f32]) -> Result<()> {
        let mut bytes = Vec::with_capacity(src.len() * 4);
        for v in src {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.memcpy_h2d(dst, &bytes)
    }

    /// Device→host copy into an `f32` slice.
    ///
    /// # Errors
    ///
    /// See [`DeviceContext::memcpy_d2h`].
    pub fn d2h_f32(&mut self, out: &mut [f32], src: DevicePtr) -> Result<()> {
        let mut bytes = vec![0u8; out.len() * 4];
        self.memcpy_d2h(&mut bytes, src)?;
        for (i, chunk) in bytes.chunks_exact(4).enumerate() {
            out[i] = f32::from_le_bytes(chunk.try_into().expect("chunk size"));
        }
        Ok(())
    }

    /// Host→device copy of a `u32` slice.
    ///
    /// # Errors
    ///
    /// See [`DeviceContext::memcpy_h2d`].
    pub fn h2d_u32(&mut self, dst: DevicePtr, src: &[u32]) -> Result<()> {
        let mut bytes = Vec::with_capacity(src.len() * 4);
        for v in src {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.memcpy_h2d(dst, &bytes)
    }

    /// Device→host copy into a `u32` slice.
    ///
    /// # Errors
    ///
    /// See [`DeviceContext::memcpy_d2h`].
    pub fn d2h_u32(&mut self, out: &mut [u32], src: DevicePtr) -> Result<()> {
        let mut bytes = vec![0u8; out.len() * 4];
        self.memcpy_d2h(&mut bytes, src)?;
        for (i, chunk) in bytes.chunks_exact(4).enumerate() {
            out[i] = u32::from_le_bytes(chunk.try_into().expect("chunk size"));
        }
        Ok(())
    }

    // ---------------------------------------------------------------- streams

    /// Creates a new stream (`cudaStreamCreate`).
    pub fn create_stream(&mut self) -> StreamId {
        let id = self.streams.create_stream();
        let now = self.streams.host_now();
        self.emit(id, 0, ApiKind::StreamCreate { stream: id }, now, now);
        id
    }

    /// Creates an event (`cudaEventCreate`).
    pub fn create_event(&mut self) -> EventId {
        self.streams.create_event()
    }

    /// Records `event` on `stream` (`cudaEventRecord`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownStream`] or [`SimError::UnknownEvent`].
    pub fn record_event(&mut self, event: EventId, stream: StreamId) -> Result<()> {
        let t = self.streams.record_event(event, stream)?;
        let (start, end, ordinal) = (t, t, u64::MAX);
        self.emit(stream, ordinal, ApiKind::EventRecord { event }, start, end);
        Ok(())
    }

    /// Makes `stream` wait for `event` (`cudaStreamWaitEvent`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownStream`] or [`SimError::UnknownEvent`].
    pub fn wait_event(&mut self, stream: StreamId, event: EventId) -> Result<()> {
        self.streams.wait_event(stream, event)?;
        let now = self.streams.host_now();
        self.emit(stream, u64::MAX, ApiKind::EventWait { event }, now, now);
        Ok(())
    }

    /// Blocks the host until `stream` drains (`cudaStreamSynchronize`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownStream`].
    pub fn sync_stream(&mut self, stream: StreamId) -> Result<()> {
        let t = self.streams.sync_stream(stream)?;
        self.emit(stream, u64::MAX, ApiKind::StreamSync, t, t);
        Ok(())
    }

    /// Blocks the host until the device drains (`cudaDeviceSynchronize`).
    pub fn sync_device(&mut self) -> SimTime {
        let t = self.streams.sync_device();
        self.emit(StreamId::DEFAULT, u64::MAX, ApiKind::DeviceSync, t, t);
        t
    }

    // ----------------------------------------------------------------- kernels

    /// Launches a kernel: `body` runs once per logical thread.
    ///
    /// Returns the aggregate work counters of the execution.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyLaunch`] for an empty grid/block,
    /// [`SimError::UnknownStream`] for a bad stream id, and
    /// [`SimError::StreamAborted`] for a stream killed by fault injection.
    ///
    /// # Device faults
    ///
    /// If the kernel accesses memory outside any live allocation (or the
    /// fault injector forces an out-of-bounds access or mid-execution kill),
    /// the launch still emits its API event and delivers whatever partial
    /// results completed — then returns [`SimError::KernelFaulted`]. The
    /// faulting access itself is skipped, not performed.
    pub fn launch<F>(
        &mut self,
        name: &str,
        cfg: LaunchConfig,
        stream: StreamId,
        body: F,
    ) -> Result<KernelCounters>
    where
        F: Fn(&mut ThreadCtx<'_>) + Sync,
    {
        if cfg.total_threads() == 0 {
            return Err(SimError::EmptyLaunch {
                kernel: name.to_owned(),
            });
        }
        // Validate the stream id before doing any work.
        if (stream.0 as usize) >= self.streams.stream_count() {
            return Err(SimError::UnknownStream(stream.0));
        }
        self.apply_stream_faults(stream)?;
        let injected_oob = self.fault_fires(FaultKind::KernelOob);
        let injected_kill = self.fault_fires(FaultKind::KernelKill);
        // One interned name serves the instance counter, the KernelInfo
        // handed to every hook, the API event, and the error paths.
        let name: Arc<str> = Arc::from(name);
        let instance = {
            let counter = self.kernel_instances.entry(name.clone()).or_insert(0);
            let i = *counter;
            *counter += 1;
            i
        };
        let info = KernelInfo {
            name: name.clone(),
            api_seq: self.seq,
            stream,
            grid: cfg.grid,
            block: cfg.block,
            instance,
        };
        let mode = self.sanitizer.dispatch_kernel_begin(&info);

        // A mid-execution kill runs only a prefix of the grid's threads;
        // everything they wrote is still delivered (partial results).
        let total_threads = cfg.total_threads();
        let thread_budget = if injected_kill {
            total_threads.div_ceil(2)
        } else {
            total_threads
        };

        // The parallel path requires block-order-independent execution:
        // an active fault plan (mid-kill thread prefixes, injected faults
        // with per-call triggers) and unified-memory migration (ordered
        // hook dispatch from inside threads) both depend on the serial
        // schedule, so they force the serial loop, as do launches flagged
        // `serial_only` (kernels with cross-block read-modify-write).
        let parallel = self.kernel_workers > 1
            && cfg.grid.count() > 1
            && !cfg.serial_only
            && self.fault.is_none()
            && self.unified.region_count() == 0;
        let (mut sink, counters, executed, deadline_hit) = if parallel {
            self.run_blocks_parallel(&cfg, &info, mode, &body)
        } else {
            self.run_blocks_serial(&cfg, &info, mode, thread_budget, &body)
        };
        if injected_oob && sink.fault.is_none() {
            // Synthesize the access fault the plan asked for: one word just
            // past the end of device memory.
            sink.fault = Some(SimError::OutOfBounds {
                addr: DevicePtr::new(
                    crate::mem::DEVICE_ADDR_BASE + self.config.device_memory_bytes,
                ),
                size: 4,
            });
        }
        let device_fault = sink.fault.take();
        sink.flush(&self.sanitizer, &info);
        let records = sink.records_seen;
        self.stats.instrumented_accesses += records;
        self.stats.coalesced_records += sink.coalesced_away;
        self.stats.kernel_launches += 1;

        let duration = self.kernel_duration_ns(&cfg, &counters, mode, records);
        let (start, end, ordinal) = self.streams.enqueue(stream, duration)?;
        self.emit(
            stream,
            ordinal,
            ApiKind::KernelLaunch {
                name: name.clone(),
                grid: cfg.grid,
                block: cfg.block,
            },
            start,
            end,
        );
        let touched = sink.take_touched();
        self.sink_arena.reclaim(sink);
        self.sanitizer
            .dispatch_kernel_end(&info, &touched, &counters);
        // Faults are reported only after the API event and all hook
        // dispatches, so profilers observe the partial execution.
        if deadline_hit {
            return Err(SimError::KernelFaulted {
                kernel: name.as_ref().to_owned(),
                reason: format!(
                    "exceeded the {}ms kernel watchdog deadline after \
                     {executed} of {total_threads} threads",
                    self.kernel_deadline.map(|d| d.as_millis()).unwrap_or(0)
                ),
            });
        }
        if injected_kill {
            return Err(SimError::KernelFaulted {
                kernel: name.as_ref().to_owned(),
                reason: format!(
                    "killed mid-execution by fault injection after \
                     {executed} of {total_threads} threads"
                ),
            });
        }
        if let Some(fault) = device_fault {
            return Err(SimError::KernelFaulted {
                kernel: name.as_ref().to_owned(),
                reason: fault.to_string(),
            });
        }
        Ok(counters)
    }

    /// The classic serial interpreter loop: every thread of every block in
    /// flat block order, with per-block shared memory re-zeroed between
    /// blocks. Returns the sink, the aggregate counters, and the number of
    /// threads actually executed (short of the grid only under an injected
    /// mid-kill's `thread_budget`).
    fn run_blocks_serial<F>(
        &mut self,
        cfg: &LaunchConfig,
        info: &KernelInfo,
        mode: PatchMode,
        thread_budget: u64,
        body: &F,
    ) -> (AccessSink, KernelCounters, u64, bool)
    where
        F: Fn(&mut ThreadCtx<'_>),
    {
        let mut sink = self.serial_sink(mode);
        let mut counters = KernelCounters::default();
        let mut shared = vec![0u8; cfg.shared_mem_bytes as usize];
        let mut executed: u64 = 0;
        let mut first_block = true;
        let deadline = self.kernel_deadline.map(|d| Instant::now() + d);
        let mut deadline_hit = false;

        let grid = cfg.grid;
        let block = cfg.block;
        'grid: for bz in 0..grid.z {
            for by in 0..grid.y {
                for bx in 0..grid.x {
                    // Cooperative watchdog: checked between blocks, so a
                    // runaway grid stops at the next block boundary with
                    // partial results intact.
                    if deadline.is_some_and(|dl| Instant::now() >= dl) {
                        deadline_hit = true;
                        break 'grid;
                    }
                    let block_idx = Dim3::xyz(bx, by, bz);
                    // The buffer is allocated zeroed; later blocks must not
                    // see the previous block's scratch.
                    if !first_block && !shared.is_empty() {
                        shared.fill(0);
                    }
                    first_block = false;
                    for tz in 0..block.z {
                        for ty in 0..block.y {
                            for tx in 0..block.x {
                                if executed >= thread_budget {
                                    break 'grid;
                                }
                                executed += 1;
                                let thread_idx = Dim3::xyz(tx, ty, tz);
                                let flat_thread = grid.flatten(block_idx) * block.count()
                                    + block.flatten(thread_idx);
                                let mut tctx = ThreadCtx {
                                    mem: KernelMem::Exclusive(&mut self.mem),
                                    alloc: &self.alloc,
                                    sink: &mut sink,
                                    sanitizer: Some(&self.sanitizer),
                                    info,
                                    unified: Some(&mut self.unified),
                                    shared: &mut shared,
                                    counters: &mut counters,
                                    block_idx,
                                    thread_idx,
                                    grid_dim: grid,
                                    block_dim: block,
                                    flat_thread,
                                    pc_counter: 0,
                                };
                                body(&mut tctx);
                            }
                        }
                    }
                }
            }
        }
        (sink, counters, executed, deadline_hit)
    }

    /// Builds the serial-shaped [`AccessSink`] for one kernel, applying any
    /// [`crate::CollectionHint`] backpressure the registered tools request.
    /// With the default hint this is exactly the sanitizer-wide
    /// configuration, so undegraded runs are byte-identical.
    fn serial_sink(&mut self, mode: PatchMode) -> AccessSink {
        let hint = self.sanitizer.dispatch_collection_hint();
        let capacity = hint
            .buffer_capacity
            .map_or(self.sanitizer.buffer_capacity(), |cap| {
                cap.clamp(1, self.sanitizer.buffer_capacity())
            });
        self.sink_arena.serial_sink(
            mode,
            capacity,
            self.sanitizer.coalescing() || hint.coalesce,
            self.sanitizer.coalesce_alignment(),
            self.alloc.epoch(),
            self.sanitizer.pc_memo(),
        )
    }

    /// Executes the grid's blocks on a scoped worker pool and merges the
    /// workers' staged observations back into one serial-shaped sink.
    ///
    /// Workers claim flat block indices from an atomic counter, so block
    /// *assignment* is nondeterministic — but each worker stages raw
    /// records per block and [`AccessSink::merge_staged`] replays them in
    /// flat block-index order through the exact serial coalesce/flush
    /// path, so every tool-visible byte (record buffers, flush boundaries,
    /// touched-sets, counters, and therefore simulated timestamps) is
    /// identical to the serial loop's.
    ///
    /// Only called for fault-free, unified-memory-free launches (see
    /// [`DeviceContext::launch`]), so the thread budget is always the full
    /// grid.
    fn run_blocks_parallel<F>(
        &mut self,
        cfg: &LaunchConfig,
        info: &KernelInfo,
        mode: PatchMode,
        body: &F,
    ) -> (AccessSink, KernelCounters, u64, bool)
    where
        F: Fn(&mut ThreadCtx<'_>) + Sync,
    {
        let grid = cfg.grid;
        let block = cfg.block;
        let grid_blocks = grid.count();
        let workers = self
            .kernel_workers
            .min(usize::try_from(grid_blocks).unwrap_or(usize::MAX));
        // More shards than workers keeps the probability of two workers
        // serializing on one fresh-page shard low.
        let view = self.mem.split_shared(workers * 8);
        let shared_bytes = cfg.shared_mem_bytes as usize;
        let next_block = AtomicU64::new(0);
        let deadline = self.kernel_deadline.map(|d| Instant::now() + d);
        let expired = AtomicBool::new(false);

        // Staging sinks reuse arenas returned by previous launches (unless
        // the slow-path baseline is on); one is handed to each worker
        // thread by value.
        let recycle = self.sanitizer.pc_memo();
        let mut staging: Vec<AccessSink> = (0..workers)
            .map(|_| self.sink_arena.staging_sink(mode, recycle))
            .collect();
        let alloc = &self.alloc;

        let results: Vec<std::thread::Result<(AccessSink, KernelCounters, u64)>> =
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let view = &view;
                        let next_block = &next_block;
                        let expired = &expired;
                        let body = &body;
                        let mut sink = staging.pop().expect("one staging sink per worker");
                        s.spawn(move || {
                            let mut counters = KernelCounters::default();
                            let mut shared = vec![0u8; shared_bytes];
                            let mut first_block = true;
                            let mut executed: u64 = 0;
                            loop {
                                // Cooperative watchdog, checked before
                                // claiming each block; once one worker sees
                                // the deadline pass, every worker stops at
                                // its next claim.
                                if expired.load(Ordering::Relaxed)
                                    || deadline.is_some_and(|dl| Instant::now() >= dl)
                                {
                                    expired.store(true, Ordering::Relaxed);
                                    break;
                                }
                                let flat_block = next_block.fetch_add(1, Ordering::Relaxed);
                                if flat_block >= grid_blocks {
                                    break;
                                }
                                let gx = u64::from(grid.x);
                                let gy = u64::from(grid.y);
                                let block_idx = Dim3::xyz(
                                    (flat_block % gx) as u32,
                                    ((flat_block / gx) % gy) as u32,
                                    (flat_block / (gx * gy)) as u32,
                                );
                                if !first_block && !shared.is_empty() {
                                    shared.fill(0);
                                }
                                first_block = false;
                                sink.begin_block(flat_block);
                                for tz in 0..block.z {
                                    for ty in 0..block.y {
                                        for tx in 0..block.x {
                                            let thread_idx = Dim3::xyz(tx, ty, tz);
                                            let flat_thread = flat_block * block.count()
                                                + block.flatten(thread_idx);
                                            let mut tctx = ThreadCtx {
                                                mem: KernelMem::Shared(view),
                                                alloc,
                                                sink: &mut sink,
                                                sanitizer: None,
                                                info,
                                                unified: None,
                                                shared: &mut shared,
                                                counters: &mut counters,
                                                block_idx,
                                                thread_idx,
                                                grid_dim: grid,
                                                block_dim: block,
                                                flat_thread,
                                                pc_counter: 0,
                                            };
                                            body(&mut tctx);
                                        }
                                    }
                                }
                                sink.end_block();
                                executed += block.count();
                            }
                            (sink, counters, executed)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join()).collect()
            });
        // Re-absorb the pages before anything can unwind, so a worker
        // panic cannot lose device memory.
        self.mem.absorb_shared(view);

        let mut worker_sinks = Vec::with_capacity(results.len());
        let mut counters = KernelCounters::default();
        let mut executed: u64 = 0;
        let mut panic_payload = None;
        for result in results {
            match result {
                Ok((sink, c, e)) => {
                    counters.merge(&c);
                    executed += e;
                    worker_sinks.push(sink);
                }
                Err(p) => panic_payload = Some(p),
            }
        }
        if let Some(p) = panic_payload {
            std::panic::resume_unwind(p);
        }
        let mut sink = self.serial_sink(mode);
        sink.merge_staged(&self.sanitizer, info, &worker_sinks);
        for worker in worker_sinks {
            self.sink_arena.reclaim(worker);
        }
        let deadline_hit = expired.load(Ordering::Relaxed);
        (sink, counters, executed, deadline_hit)
    }

    /// Simulated kernel duration from the work counters plus the
    /// instrumentation surcharge for the chosen [`PatchMode`].
    fn kernel_duration_ns(
        &self,
        cfg: &LaunchConfig,
        counters: &KernelCounters,
        mode: PatchMode,
        records: u64,
    ) -> u64 {
        let c = &self.config;
        let parallel = c
            .effective_parallelism()
            .min(cfg.total_threads() as f64)
            .max(1.0);
        let latency_work = counters.global_accesses() as f64 * c.global_latency_ns
            + counters.shared_accesses as f64 * c.shared_latency_ns
            + counters.flops as f64 * c.flop_ns;
        let migration_ns = counters.page_migrations * c.page_migration_ns;
        let bandwidth_ns = counters.global_bytes as f64 / c.global_bandwidth_bpns;
        let compute_ns = (latency_work / parallel).max(bandwidth_ns);
        let o = self.sanitizer.overhead_model();
        let instr_ns = match mode {
            PatchMode::None => 0.0,
            PatchMode::HitFlags => {
                records as f64 * o.hitflag_access_ns
                    + self.alloc.stats().live_allocations as f64 * o.map_copy_ns_per_entry
            }
            PatchMode::Full => {
                records as f64 * o.full_access_ns
                    + self.alloc.stats().live_allocations as f64 * o.map_copy_ns_per_entry
                    + (records * o.record_bytes) as f64 / c.interconnect_bandwidth_bpns
            }
        };
        c.launch_overhead_ns + compute_ns as u64 + instr_ns as u64 + migration_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sanitizer::{MemAccessRecord, SanitizerHooks, TouchedObject};
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[test]
    fn malloc_free_emit_events_with_labels() {
        let mut ctx = DeviceContext::new_default();
        let p = ctx.malloc(1024, "weights").unwrap();
        assert_eq!(ctx.label_of(p), Some("weights"));
        ctx.free(p).unwrap();
        let kinds: Vec<&'static str> = ctx.api_log().iter().map(|e| e.kind.mnemonic()).collect();
        assert_eq!(kinds, ["ALLOC", "FREE"]);
        match &ctx.api_log()[1].kind {
            ApiKind::Free { size, label, .. } => {
                assert_eq!(*size, 1024);
                assert_eq!(label, "weights");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn memcpy_round_trip_preserves_data() {
        let mut ctx = DeviceContext::new_default();
        let p = ctx.malloc(64, "buf").unwrap();
        ctx.memcpy_h2d(p, &[5u8; 64]).unwrap();
        let mut out = [0u8; 64];
        ctx.memcpy_d2h(&mut out, p).unwrap();
        assert_eq!(out, [5u8; 64]);
    }

    #[test]
    fn oob_memcpy_is_rejected() {
        let mut ctx = DeviceContext::new_default();
        let p = ctx.malloc(16, "buf").unwrap();
        let err = ctx.memcpy_h2d(p, &[0u8; 32]).unwrap_err();
        assert!(matches!(err, SimError::OutOfBounds { .. }));
    }

    #[test]
    fn kernel_computes_real_results() {
        let mut ctx = DeviceContext::new_default();
        let n = 100u64;
        let p = ctx.malloc(n * 4, "v").unwrap();
        let host: Vec<f32> = (0..n).map(|i| i as f32).collect();
        ctx.h2d_f32(p, &host).unwrap();
        ctx.launch(
            "scale",
            LaunchConfig::cover(n, 32).unwrap(),
            StreamId::DEFAULT,
            |t| {
                let i = t.global_x();
                if i < n {
                    let a = p + i * 4;
                    let v = t.load_f32(a);
                    t.flop(1);
                    t.store_f32(a, v * 3.0);
                }
            },
        )
        .unwrap();
        let mut out = vec![0.0f32; n as usize];
        ctx.d2h_f32(&mut out, p).unwrap();
        assert_eq!(out[10], 30.0);
        assert_eq!(out[99], 297.0);
    }

    #[test]
    fn empty_launch_is_an_error() {
        let mut ctx = DeviceContext::new_default();
        let cfg = LaunchConfig::new(Dim3::x(0), Dim3::x(32));
        assert!(matches!(
            ctx.launch("nop", cfg, StreamId::DEFAULT, |_| {})
                .unwrap_err(),
            SimError::EmptyLaunch { .. }
        ));
    }

    #[test]
    fn kernel_oob_access_faults() {
        let mut ctx = DeviceContext::new_default();
        let p = ctx.malloc(4, "tiny").unwrap();
        let err = ctx
            .launch(
                "bad",
                LaunchConfig::cover(1, 1).unwrap(),
                StreamId::DEFAULT,
                |t| {
                    t.store_f32(p + 4, 1.0);
                },
            )
            .unwrap_err();
        match err {
            SimError::KernelFaulted { kernel, reason } => {
                assert_eq!(kernel, "bad");
                assert!(reason.contains("out-of-bounds"), "reason: {reason}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // The launch still produced its API event despite the fault.
        assert_eq!(ctx.api_log().last().unwrap().kind.mnemonic(), "KERL");
    }

    #[test]
    fn injected_alloc_failure_is_transient_and_retryable() {
        use crate::fault::{FaultKind, FaultPlan, RetryPolicy};
        let mut ctx = DeviceContext::new_default();
        // seq 0 is the first malloc.
        ctx.set_fault_plan(FaultPlan::new(1).at_api(0, FaultKind::AllocFail));
        let err = ctx.malloc(64, "a").unwrap_err();
        assert!(matches!(err, SimError::OutOfMemory { .. }));
        // The failed call consumed no sequence number; a plain retry works.
        let p = ctx.malloc(64, "a").unwrap();
        ctx.free(p).unwrap();
        assert_eq!(ctx.fault_log().len(), 1);

        // And malloc_with_retry hides the transient failure entirely.
        let mut ctx = DeviceContext::new_default();
        ctx.set_fault_plan(FaultPlan::new(1).at_api(0, FaultKind::AllocFail));
        let before = ctx.now().as_ns();
        let (p, granted) = ctx
            .malloc_with_retry(1024, "b", RetryPolicy::default())
            .unwrap();
        assert_eq!(granted, 512, "one shrink step before success");
        assert!(ctx.now().as_ns() > before, "backoff charged host time");
        ctx.free(p).unwrap();
    }

    #[test]
    fn injected_spurious_free_duplicates_the_event() {
        use crate::fault::{FaultKind, FaultPlan};
        let mut ctx = DeviceContext::new_default();
        let p = ctx.malloc(32, "x").unwrap();
        // The FREE is API seq 1.
        ctx.set_fault_plan(FaultPlan::new(0).at_api(1, FaultKind::SpuriousFree));
        ctx.free(p).unwrap();
        let frees: Vec<_> = ctx
            .api_log()
            .iter()
            .filter(|e| matches!(e.kind, ApiKind::Free { .. }))
            .collect();
        assert_eq!(frees.len(), 2, "one real free + one spurious event");
        assert_eq!(ctx.allocator().stats().live_allocations, 0);
    }

    #[test]
    fn injected_kernel_kill_delivers_partial_results() {
        use crate::fault::{FaultKind, FaultPlan};
        let mut ctx = DeviceContext::new_default();
        let n = 64u64;
        let p = ctx.malloc(n * 4, "v").unwrap();
        ctx.memset(p, 0, n * 4).unwrap();
        // seqs: 0 = malloc, 1 = memset, 2 = launch.
        ctx.set_fault_plan(FaultPlan::new(0).at_api(2, FaultKind::KernelKill));
        let err = ctx
            .launch(
                "half",
                LaunchConfig::cover(n, 32).unwrap(),
                StreamId::DEFAULT,
                |t| {
                    let i = t.global_x();
                    if i < n {
                        t.store_f32(p + i * 4, 1.0);
                    }
                },
            )
            .unwrap_err();
        assert!(matches!(err, SimError::KernelFaulted { .. }));
        let mut out = vec![0.0f32; n as usize];
        ctx.d2h_f32(&mut out, p).unwrap();
        let written = out.iter().filter(|&&v| v == 1.0).count();
        assert!(written > 0 && written < n as usize, "partial: {written}");
    }

    #[test]
    fn injected_stream_abort_rejects_current_and_later_work() {
        use crate::fault::{FaultKind, FaultPlan};
        let mut ctx = DeviceContext::new_default();
        let p = ctx.malloc(64, "p").unwrap();
        let s = ctx.create_stream();
        // seqs: 0 = malloc, 1 = stream create, 2 = first memset.
        ctx.set_fault_plan(FaultPlan::new(0).at_api(2, FaultKind::StreamAbort));
        let err = ctx.memset_on(p, 0, 64, s).unwrap_err();
        assert!(matches!(err, SimError::StreamAborted(_)));
        let err = ctx.memset_on(p, 0, 64, s).unwrap_err();
        assert!(matches!(err, SimError::StreamAborted(_)), "abort is sticky");
        // The default stream is unaffected.
        ctx.memset(p, 0, 64).unwrap();
    }

    #[test]
    fn injected_stream_stall_delays_the_stream() {
        use crate::fault::{FaultKind, FaultPlan};
        let mut ctx = DeviceContext::new_default();
        let p = ctx.malloc(64, "p").unwrap();
        let s = ctx.create_stream();
        ctx.set_fault_plan(FaultPlan::new(0).at_api(2, FaultKind::StreamStall));
        ctx.memset_on(p, 0, 64, s).unwrap();
        let stalled = ctx.api_log().last().unwrap().start.as_ns();
        assert!(stalled >= STREAM_STALL_NS, "start at {stalled}");
    }

    /// A hook that records everything it sees, for asserting on the
    /// Sanitizer contract.
    #[derive(Default)]
    struct Recorder {
        apis: Vec<String>,
        records: Vec<MemAccessRecord>,
        touched: Vec<TouchedObject>,
        mode: Option<PatchMode>,
    }

    impl SanitizerHooks for Recorder {
        fn on_api(&mut self, event: &ApiEvent) {
            self.apis.push(event.display_name());
        }
        fn on_kernel_begin(&mut self, _info: &KernelInfo) -> PatchMode {
            self.mode.unwrap_or(PatchMode::Full)
        }
        fn on_mem_access_buffer(&mut self, _info: &KernelInfo, records: &[MemAccessRecord]) {
            self.records.extend_from_slice(records);
        }
        fn on_kernel_end(
            &mut self,
            _info: &KernelInfo,
            touched: &[TouchedObject],
            _counters: &KernelCounters,
        ) {
            self.touched.extend_from_slice(touched);
        }
    }

    #[test]
    fn sanitizer_sees_api_events_and_access_records() {
        let recorder = Arc::new(Mutex::new(Recorder::default()));
        let mut ctx = DeviceContext::new_default();
        ctx.sanitizer_mut().register(recorder.clone());

        let a = ctx.malloc(64, "a").unwrap();
        let b = ctx.malloc(64, "b").unwrap();
        ctx.memset(a, 0, 64).unwrap();
        ctx.launch(
            "reader",
            LaunchConfig::cover(4, 4).unwrap(),
            StreamId::DEFAULT,
            |t| {
                let i = t.global_x();
                if i < 4 {
                    let v = t.load_f32(a + i * 4);
                    t.store_f32(b + i * 4, v + 1.0);
                }
            },
        )
        .unwrap();
        ctx.free(a).unwrap();

        let r = recorder.lock();
        assert_eq!(
            r.apis,
            vec![
                "ALLOC(0, 0)",
                "ALLOC(0, 1)",
                "SET(0, 2)",
                "KERL(0, 3)",
                "FREE(0, 4)"
            ]
        );
        assert_eq!(r.records.len(), 8, "4 loads + 4 stores");
        assert_eq!(r.touched.len(), 2);
        let ta = r.touched.iter().find(|t| t.base == a).unwrap();
        assert!(ta.read && !ta.written);
        let tb = r.touched.iter().find(|t| t.base == b).unwrap();
        assert!(!tb.read && tb.written);
    }

    #[test]
    fn hitflags_mode_summarizes_without_records() {
        let recorder = Arc::new(Mutex::new(Recorder {
            mode: Some(PatchMode::HitFlags),
            ..Recorder::default()
        }));
        let mut ctx = DeviceContext::new_default();
        ctx.sanitizer_mut().register(recorder.clone());
        let a = ctx.malloc(16, "a").unwrap();
        ctx.launch(
            "w",
            LaunchConfig::cover(4, 4).unwrap(),
            StreamId::DEFAULT,
            |t| {
                let i = t.global_x();
                if i < 4 {
                    t.store_f32(a + i * 4, 1.0);
                }
            },
        )
        .unwrap();
        let r = recorder.lock();
        assert!(r.records.is_empty(), "no record streaming in hit-flag mode");
        assert_eq!(r.touched.len(), 1);
        assert!(r.touched[0].written);
    }

    #[test]
    fn instrumentation_increases_simulated_kernel_time() {
        let run = |mode: Option<PatchMode>| {
            let mut ctx = DeviceContext::new_default();
            if let Some(m) = mode {
                let rec = Arc::new(Mutex::new(Recorder {
                    mode: Some(m),
                    ..Recorder::default()
                }));
                ctx.sanitizer_mut().register(rec);
            }
            let a = ctx.malloc(4096 * 4, "a").unwrap();
            ctx.launch(
                "k",
                LaunchConfig::cover(4096, 128).unwrap(),
                StreamId::DEFAULT,
                |t| {
                    let i = t.global_x();
                    if i < 4096 {
                        t.store_f32(a + i * 4, i as f32);
                    }
                },
            )
            .unwrap();
            ctx.sync_device().as_ns()
        };
        let native = run(None);
        let hit = run(Some(PatchMode::HitFlags));
        let full = run(Some(PatchMode::Full));
        assert!(native < hit, "hit-flag mode must cost simulated time");
        assert!(hit < full, "full patching must cost more than hit flags");
    }

    #[test]
    fn call_paths_are_captured_per_api() {
        let mut ctx = DeviceContext::new_default();
        ctx.with_frame(SourceLoc::new("main", "app.rs", 1), |ctx| {
            ctx.with_frame(SourceLoc::new("init", "app.rs", 10), |ctx| {
                ctx.malloc(16, "x").unwrap();
            });
        });
        let path = &ctx.api_log()[0].call_path;
        assert_eq!(path.depth(), 2);
        let rendered = ctx.call_stack().table().render(path);
        assert!(rendered.contains("init"));
        assert!(rendered.contains("main"));
    }

    #[test]
    fn multi_stream_kernels_overlap_in_time() {
        let mut ctx = DeviceContext::new_default();
        let s1 = ctx.create_stream();
        let s2 = ctx.create_stream();
        let a = ctx.malloc(1024 * 4, "a").unwrap();
        let b = ctx.malloc(1024 * 4, "b").unwrap();
        let body_a = move |t: &mut ThreadCtx<'_>| {
            let i = t.global_x();
            if i < 1024 {
                t.store_f32(a + i * 4, 0.0);
            }
        };
        let body_b = move |t: &mut ThreadCtx<'_>| {
            let i = t.global_x();
            if i < 1024 {
                t.store_f32(b + i * 4, 0.0);
            }
        };
        ctx.launch("ka", LaunchConfig::cover(1024, 128).unwrap(), s1, body_a)
            .unwrap();
        ctx.launch("kb", LaunchConfig::cover(1024, 128).unwrap(), s2, body_b)
            .unwrap();
        let log = ctx.api_log();
        let ka = log
            .iter()
            .find(|e| e.display_name() == "KERL(1, 0)")
            .unwrap();
        let kb = log
            .iter()
            .find(|e| e.display_name() == "KERL(2, 0)")
            .unwrap();
        assert_eq!(ka.start, kb.start, "independent streams start together");
    }

    #[test]
    fn stats_count_gpu_apis() {
        let mut ctx = DeviceContext::new_default();
        let p = ctx.malloc(16, "p").unwrap();
        ctx.memset(p, 0, 16).unwrap();
        ctx.sync_device();
        let s = ctx.stats();
        assert_eq!(s.gpu_api_calls, 2, "sync is not a pattern-relevant GPU API");
    }

    #[test]
    fn coalescing_merges_contiguous_warp_accesses() {
        let recorder = Arc::new(Mutex::new(Recorder::default()));
        let mut ctx = DeviceContext::new_default();
        ctx.sanitizer_mut().register(recorder.clone());
        ctx.sanitizer_mut().set_coalescing(true);
        let n = 64u64; // two warps
        let a = ctx.malloc(n * 4, "a").unwrap();
        ctx.launch(
            "w",
            LaunchConfig::cover(n, 64).unwrap(),
            StreamId::DEFAULT,
            |t| {
                let i = t.global_x();
                if i < n {
                    t.store_f32(a + i * 4, 1.0);
                }
            },
        )
        .unwrap();
        let r = recorder.lock();
        assert_eq!(
            r.records.len(),
            2,
            "one merged record per warp: {:?}",
            r.records
        );
        for rec in &r.records {
            assert_eq!(rec.size, 32 * 4, "a full warp's contiguous stores");
        }
        assert_eq!(r.records[0].addr + 32 * 4, r.records[1].addr);
        let s = ctx.stats();
        assert_eq!(s.instrumented_accesses, n, "cost model sees raw accesses");
        assert_eq!(s.coalesced_records, n - 2);
        // The hit-flag summary is unaffected by coalescing.
        assert_eq!(r.touched.len(), 1);
        assert!(r.touched[0].written);
    }

    #[test]
    fn coalescing_does_not_change_simulated_time() {
        let run = |coalesce: bool| {
            let recorder = Arc::new(Mutex::new(Recorder::default()));
            let mut ctx = DeviceContext::new_default();
            ctx.sanitizer_mut().register(recorder);
            ctx.sanitizer_mut().set_coalescing(coalesce);
            let a = ctx.malloc(4096, "a").unwrap();
            ctx.launch(
                "k",
                LaunchConfig::cover(1024, 128).unwrap(),
                StreamId::DEFAULT,
                |t| {
                    let i = t.global_x();
                    if i < 1024 {
                        t.store_f32(a + i * 4, 2.0);
                    }
                },
            )
            .unwrap();
            let last = ctx.api_log().last().unwrap().clone();
            (last.start, last.end, ctx.stats().instrumented_accesses)
        };
        assert_eq!(run(false), run(true), "timestamps must be mode-invariant");
    }

    #[test]
    fn shared_oob_is_a_device_fault_not_a_panic() {
        let mut ctx = DeviceContext::new_default();
        let a = ctx.malloc(64, "a").unwrap();
        let cfg = LaunchConfig::cover(4, 4).unwrap().with_shared_mem(16);
        let err = ctx
            .launch("oob_shared", cfg, StreamId::DEFAULT, |t| {
                let i = t.global_x();
                t.shared_store_f32(i as u32 * 8, 1.0); // i=2,3 exceed 16 bytes
                let v = t.shared_load_f32(i as u32 * 8);
                t.store_f32(a + i * 4, v);
            })
            .unwrap_err();
        match err {
            SimError::KernelFaulted { kernel, reason } => {
                assert_eq!(kernel, "oob_shared");
                assert!(reason.contains("shared"), "reason: {reason}");
            }
            other => panic!("expected KernelFaulted, got {other:?}"),
        }
        // In-bounds global stores before the fault are preserved.
        let mut out = vec![0.0f32; 4];
        ctx.d2h_f32(&mut out, a).unwrap();
        assert_eq!(&out[..2], &[1.0, 1.0], "threads 0 and 1 were in bounds");
    }
}
