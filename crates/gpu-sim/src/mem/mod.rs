//! Simulated device memory: address space, sparse paged backing store, and a
//! CUDA-style device allocator.
//!
//! The memory subsystem keeps *real bytes* for every touched 4 KiB page, so
//! simulated kernels compute real results and value-aware baseline tools can
//! inspect real data. Pages are materialized lazily: a workload may allocate
//! gigabytes of address space (as XSBench does) while the host process only
//! pays for the pages it actually touches — precisely the situation the
//! paper's *overallocation* pattern describes.

mod allocator;
pub(crate) mod paged;

pub use allocator::{AllocationInfo, AllocatorStats, DeviceAllocator, ALLOC_ALIGN};
pub use paged::{PagedStore, PAGE_SIZE};

use std::fmt;
use std::ops::{Add, Sub};

/// Base of the simulated device address space.
///
/// Chosen to resemble real CUDA virtual addresses and to make device pointers
/// visually distinct from host addresses in traces.
pub const DEVICE_ADDR_BASE: u64 = 0x7f00_0000_0000;

/// A pointer into simulated device memory.
///
/// A transparent newtype over the raw 64-bit device address
/// ([C-NEWTYPE]: it cannot be confused with host pointers or plain sizes).
///
/// # Examples
///
/// ```
/// use gpu_sim::DevicePtr;
///
/// let p = DevicePtr::new(0x7f00_0000_1000);
/// assert_eq!(p.addr(), 0x7f00_0000_1000);
/// assert_eq!((p + 16).addr() - p.addr(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DevicePtr(u64);

impl DevicePtr {
    /// A null device pointer.
    pub const NULL: DevicePtr = DevicePtr(0);

    /// Creates a device pointer from a raw address.
    pub fn new(addr: u64) -> Self {
        DevicePtr(addr)
    }

    /// Returns the raw 64-bit address.
    pub fn addr(self) -> u64 {
        self.0
    }

    /// Returns `true` if this is the null pointer.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Byte offset of `self` within an allocation starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `self < base`.
    pub fn offset_from(self, base: DevicePtr) -> u64 {
        assert!(
            self.0 >= base.0,
            "pointer {self} is below allocation base {base}"
        );
        self.0 - base.0
    }
}

impl fmt::Display for DevicePtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:012x}", self.0)
    }
}

impl fmt::LowerHex for DevicePtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for DevicePtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl Add<u64> for DevicePtr {
    type Output = DevicePtr;

    fn add(self, rhs: u64) -> DevicePtr {
        DevicePtr(self.0 + rhs)
    }
}

impl Sub<u64> for DevicePtr {
    type Output = DevicePtr;

    fn sub(self, rhs: u64) -> DevicePtr {
        DevicePtr(self.0 - rhs)
    }
}

impl From<DevicePtr> for u64 {
    fn from(p: DevicePtr) -> u64 {
        p.0
    }
}

/// A half-open device address range `[start, start + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddrRange {
    /// First address in the range.
    pub start: DevicePtr,
    /// Length of the range in bytes.
    pub len: u64,
}

impl AddrRange {
    /// Creates a range from a base pointer and length.
    pub fn new(start: DevicePtr, len: u64) -> Self {
        AddrRange { start, len }
    }

    /// One-past-the-end address.
    pub fn end(&self) -> DevicePtr {
        self.start + self.len
    }

    /// Returns `true` if `addr` lies inside the range.
    pub fn contains(&self, addr: DevicePtr) -> bool {
        addr >= self.start && addr < self.end()
    }

    /// Returns `true` if the two ranges share at least one byte.
    pub fn overlaps(&self, other: &AddrRange) -> bool {
        self.start < other.end() && other.start < self.end()
    }
}

impl fmt::Display for AddrRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointer_arithmetic() {
        let p = DevicePtr::new(100);
        assert_eq!((p + 28).addr(), 128);
        assert_eq!((p + 28 - 28), p);
        assert_eq!((p + 28).offset_from(p), 28);
    }

    #[test]
    #[should_panic(expected = "below allocation base")]
    fn offset_from_panics_below_base() {
        DevicePtr::new(10).offset_from(DevicePtr::new(20));
    }

    #[test]
    fn null_pointer() {
        assert!(DevicePtr::NULL.is_null());
        assert!(!DevicePtr::new(1).is_null());
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(DevicePtr::new(0xabc).to_string(), "0x000000000abc");
    }

    #[test]
    fn range_contains_and_overlaps() {
        let r = AddrRange::new(DevicePtr::new(100), 50);
        assert!(r.contains(DevicePtr::new(100)));
        assert!(r.contains(DevicePtr::new(149)));
        assert!(!r.contains(DevicePtr::new(150)));
        assert!(r.overlaps(&AddrRange::new(DevicePtr::new(149), 1)));
        assert!(!r.overlaps(&AddrRange::new(DevicePtr::new(150), 10)));
        assert!(!r.overlaps(&AddrRange::new(DevicePtr::new(50), 50)));
    }

    #[test]
    fn range_display() {
        let r = AddrRange::new(DevicePtr::new(0x10), 0x10);
        assert_eq!(r.to_string(), "[0x000000000010, 0x000000000020)");
    }
}
