//! Sparse, lazily-materialized backing store for device memory.

use super::DevicePtr;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::BuildHasherDefault;

/// Size of one backing page in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// One backing page.
type Page = [u8; PAGE_SIZE as usize];

/// Cheap deterministic hasher for page indices. Page indices are dense
/// small integers derived from simulated addresses, so SipHash's flooding
/// resistance buys nothing and its cost shows up on every kernel access.
#[derive(Default)]
struct PageIndexHasher(u64);

impl std::hash::Hasher for PageIndexHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 32;
    }
}

type PagePtrMap = HashMap<u64, *mut Page, BuildHasherDefault<PageIndexHasher>>;

/// A sparse byte store covering the whole simulated device address space.
///
/// Pages are allocated on first touch and zero-filled, matching the behaviour
/// most workloads rely on after `cudaMemset(ptr, 0, size)`. Untouched pages
/// cost nothing, so simulated programs may overallocate wildly (the paper's
/// *overallocation* pattern) without bloating the host process.
///
/// # Examples
///
/// ```
/// use gpu_sim::mem::{PagedStore, DevicePtr};
///
/// let mut store = PagedStore::new();
/// let p = DevicePtr::new(0x7f00_0000_0000);
/// store.write_bytes(p, &[1, 2, 3]);
/// let mut buf = [0u8; 3];
/// store.read_bytes(p, &mut buf);
/// assert_eq!(buf, [1, 2, 3]);
/// ```
#[derive(Debug, Default)]
pub struct PagedStore {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
}

impl PagedStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        PagedStore::default()
    }

    /// Number of pages that have been materialized so far.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Number of resident bytes (pages × page size).
    pub fn resident_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_SIZE
    }

    /// Returns `true` if the page containing `addr` has been materialized.
    pub fn is_resident(&self, addr: DevicePtr) -> bool {
        self.pages.contains_key(&(addr.addr() / PAGE_SIZE))
    }

    fn page_mut(&mut self, index: u64) -> &mut [u8; PAGE_SIZE as usize] {
        self.pages
            .entry(index)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE as usize]))
    }

    /// Writes `data` starting at `addr`, materializing pages as needed.
    pub fn write_bytes(&mut self, addr: DevicePtr, data: &[u8]) {
        let mut offset = 0usize;
        let mut cur = addr.addr();
        while offset < data.len() {
            let page = cur / PAGE_SIZE;
            let in_page = (cur % PAGE_SIZE) as usize;
            let n = usize::min(PAGE_SIZE as usize - in_page, data.len() - offset);
            self.page_mut(page)[in_page..in_page + n].copy_from_slice(&data[offset..offset + n]);
            offset += n;
            cur += n as u64;
        }
    }

    /// Reads into `buf` starting at `addr`. Unmaterialized pages read as zero.
    pub fn read_bytes(&self, addr: DevicePtr, buf: &mut [u8]) {
        let mut offset = 0usize;
        let mut cur = addr.addr();
        while offset < buf.len() {
            let page = cur / PAGE_SIZE;
            let in_page = (cur % PAGE_SIZE) as usize;
            let n = usize::min(PAGE_SIZE as usize - in_page, buf.len() - offset);
            match self.pages.get(&page) {
                Some(p) => buf[offset..offset + n].copy_from_slice(&p[in_page..in_page + n]),
                None => buf[offset..offset + n].fill(0),
            }
            offset += n;
            cur += n as u64;
        }
    }

    /// Fills `len` bytes starting at `addr` with `value`.
    ///
    /// A `value` of zero on fully unmaterialized pages is a no-op, mirroring
    /// how real `cudaMemset` to zero leaves untouched physical pages zero.
    pub fn fill(&mut self, addr: DevicePtr, len: u64, value: u8) {
        if value == 0 {
            // Only touch pages that already exist; virgin pages are zero.
            let first = addr.addr() / PAGE_SIZE;
            let last = (addr.addr() + len.saturating_sub(1)) / PAGE_SIZE;
            for page in first..=last {
                if let Some(p) = self.pages.get_mut(&page) {
                    let page_start = page * PAGE_SIZE;
                    let s = u64::max(addr.addr(), page_start) - page_start;
                    let e = u64::min(addr.addr() + len, page_start + PAGE_SIZE) - page_start;
                    p[s as usize..e as usize].fill(0);
                }
            }
            return;
        }
        let mut remaining = len;
        let mut cur = addr.addr();
        while remaining > 0 {
            let page = cur / PAGE_SIZE;
            let in_page = (cur % PAGE_SIZE) as usize;
            let n = u64::min(PAGE_SIZE - in_page as u64, remaining) as usize;
            self.page_mut(page)[in_page..in_page + n].fill(value);
            remaining -= n as u64;
            cur += n as u64;
        }
    }

    /// Copies `len` bytes from `src` to `dst` within the device.
    pub fn copy_within(&mut self, dst: DevicePtr, src: DevicePtr, len: u64) {
        // Simple and correct for overlapping ranges: stage through a buffer.
        let mut buf = vec![0u8; len as usize];
        self.read_bytes(src, &mut buf);
        self.write_bytes(dst, &buf);
    }

    /// Reads a little-endian `u32` at `addr`.
    pub fn read_u32(&self, addr: DevicePtr) -> u32 {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian `u32` at `addr`.
    pub fn write_u32(&mut self, addr: DevicePtr, v: u32) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Reads a little-endian `u64` at `addr`.
    pub fn read_u64(&self, addr: DevicePtr) -> u64 {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` at `addr`.
    pub fn write_u64(&mut self, addr: DevicePtr, v: u64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Reads an `f32` at `addr`.
    pub fn read_f32(&self, addr: DevicePtr) -> f32 {
        f32::from_le_bytes({
            let mut b = [0u8; 4];
            self.read_bytes(addr, &mut b);
            b
        })
    }

    /// Writes an `f32` at `addr`.
    pub fn write_f32(&mut self, addr: DevicePtr, v: f32) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Reads an `f64` at `addr`.
    pub fn read_f64(&self, addr: DevicePtr) -> f64 {
        f64::from_le_bytes({
            let mut b = [0u8; 8];
            self.read_bytes(addr, &mut b);
            b
        })
    }

    /// Writes an `f64` at `addr`.
    pub fn write_f64(&mut self, addr: DevicePtr, v: f64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Moves every materialized page into a [`SharedPagedView`] that worker
    /// threads can read and write concurrently during one parallel kernel
    /// execution. The store is left empty; [`PagedStore::absorb_shared`]
    /// must be called afterwards to take the pages back.
    pub(crate) fn split_shared(&mut self, shards: usize) -> SharedPagedView {
        let shard_count = shards.max(1).next_power_of_two();
        let mut snapshot = PagePtrMap::default();
        snapshot.reserve(self.pages.len());
        for (index, page) in self.pages.drain() {
            snapshot.insert(index, Box::into_raw(page));
        }
        let fresh = (0..shard_count)
            .map(|_| Mutex::new(PagePtrMap::default()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SharedPagedView {
            snapshot,
            fresh,
            shard_mask: shard_count as u64 - 1,
        }
    }

    /// Takes back all pages handed out by [`PagedStore::split_shared`],
    /// including pages the kernel materialized while the view was live.
    pub(crate) fn absorb_shared(&mut self, mut view: SharedPagedView) {
        self.pages.reserve(view.snapshot.len());
        for (index, raw) in std::mem::take(&mut view.snapshot) {
            // SAFETY: `raw` came from `Box::into_raw` in `split_shared` and
            // is removed from the map here, so it is reboxed exactly once.
            self.pages.insert(index, unsafe { Box::from_raw(raw) });
        }
        for shard in view.fresh.iter() {
            for (index, raw) in std::mem::take(&mut *shard.lock()) {
                // SAFETY: as above, for pages materialized through the view.
                self.pages.insert(index, unsafe { Box::from_raw(raw) });
            }
        }
    }

    /// Discards all materialized pages whose addresses fall entirely inside
    /// `[start, start + len)`, releasing host memory for freed allocations.
    pub fn discard(&mut self, start: DevicePtr, len: u64) {
        if len == 0 {
            return;
        }
        let first_full = start.addr().div_ceil(PAGE_SIZE);
        let end = start.addr() + len;
        let last_full = end / PAGE_SIZE; // exclusive
        for page in first_full..last_full {
            self.pages.remove(&page);
        }
    }
}

/// A concurrent view over a [`PagedStore`]'s pages, alive for the duration
/// of one parallel kernel execution.
///
/// Pages that existed when the view was built sit in a read-only pointer
/// map and are reached without any locking; pages materialized by the
/// kernel go through small per-shard mutexes (sharded by page index) that
/// guard only the map insert/lookup — the byte copies themselves run on
/// raw page pointers after the lock is dropped, which is sound because the
/// boxed pages never move.
///
/// Absent pages read as zero *without* materializing, exactly like
/// [`PagedStore::read_bytes`], so parallel execution leaves residency
/// statistics identical to the serial loop's.
///
/// # Safety contract
///
/// The view performs plain (non-atomic) loads and stores through raw page
/// pointers. This is only sound under the parallel launch path's contract:
/// kernels executed with `kernel_workers > 1` must be race-free — any two
/// concurrently executing blocks touch disjoint byte ranges or access
/// shared ranges read-only. The serial path (the default) imposes no such
/// requirement.
pub(crate) struct SharedPagedView {
    /// Pages resident at split time; never mutated structurally, so reads
    /// and writes need no lock.
    snapshot: PagePtrMap,
    /// Pages materialized during the kernel, sharded by page index.
    fresh: Box<[Mutex<PagePtrMap>]>,
    shard_mask: u64,
}

// SAFETY: all interior mutation of the shard maps goes through their
// mutexes; page bytes are raced only if the kernel itself is racy, which
// the parallel launch contract forbids (see the type-level docs).
unsafe impl Send for SharedPagedView {}
unsafe impl Sync for SharedPagedView {}

impl std::fmt::Debug for SharedPagedView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedPagedView")
            .field("snapshot_pages", &self.snapshot.len())
            .field("shards", &self.fresh.len())
            .finish()
    }
}

impl Drop for SharedPagedView {
    fn drop(&mut self) {
        // Normally `absorb_shared` empties the maps; this only frees pages
        // when a worker panic unwinds past the view.
        for (_, raw) in std::mem::take(&mut self.snapshot) {
            // SAFETY: pointer from `Box::into_raw`, removed from the map.
            drop(unsafe { Box::from_raw(raw) });
        }
        for shard in self.fresh.iter() {
            for (_, raw) in std::mem::take(&mut *shard.lock()) {
                // SAFETY: as above.
                drop(unsafe { Box::from_raw(raw) });
            }
        }
    }
}

impl SharedPagedView {
    /// Resolves the page containing `index`, optionally materializing a
    /// zeroed page. The returned pointer stays valid for the view's whole
    /// lifetime (pages are heap blocks that never move).
    fn page_ptr(&self, index: u64, materialize: bool) -> Option<*mut Page> {
        if let Some(&p) = self.snapshot.get(&index) {
            return Some(p);
        }
        let shard = &self.fresh[(index & self.shard_mask) as usize];
        let mut map = shard.lock();
        if let Some(&p) = map.get(&index) {
            return Some(p);
        }
        if materialize {
            let p = Box::into_raw(Box::new([0u8; PAGE_SIZE as usize]));
            map.insert(index, p);
            Some(p)
        } else {
            None
        }
    }

    /// Reads into `buf` starting at `addr`. Unmaterialized pages read as
    /// zero without being materialized.
    pub(crate) fn read_bytes(&self, addr: DevicePtr, buf: &mut [u8]) {
        let mut offset = 0usize;
        let mut cur = addr.addr();
        while offset < buf.len() {
            let page = cur / PAGE_SIZE;
            let in_page = (cur % PAGE_SIZE) as usize;
            let n = usize::min(PAGE_SIZE as usize - in_page, buf.len() - offset);
            match self.page_ptr(page, false) {
                // SAFETY: `p` points to a live page; `in_page + n` is
                // bounded by PAGE_SIZE. Concurrent access to these bytes is
                // excluded by the race-free-kernel contract.
                Some(p) => unsafe {
                    std::ptr::copy_nonoverlapping(
                        (*p).as_ptr().add(in_page),
                        buf.as_mut_ptr().add(offset),
                        n,
                    );
                },
                None => buf[offset..offset + n].fill(0),
            }
            offset += n;
            cur += n as u64;
        }
    }

    /// Writes `data` starting at `addr`, materializing pages as needed.
    pub(crate) fn write_bytes(&self, addr: DevicePtr, data: &[u8]) {
        let mut offset = 0usize;
        let mut cur = addr.addr();
        while offset < data.len() {
            let page = cur / PAGE_SIZE;
            let in_page = (cur % PAGE_SIZE) as usize;
            let n = usize::min(PAGE_SIZE as usize - in_page, data.len() - offset);
            let p = self
                .page_ptr(page, true)
                .expect("materializing page_ptr always returns a page");
            // SAFETY: as in `read_bytes`; the write stays inside one page.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    data.as_ptr().add(offset),
                    (*p).as_mut_ptr().add(in_page),
                    n,
                );
            }
            offset += n;
            cur += n as u64;
        }
    }

    /// Reads an `f32` at `addr`.
    pub(crate) fn read_f32(&self, addr: DevicePtr) -> f32 {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b);
        f32::from_le_bytes(b)
    }

    /// Writes an `f32` at `addr`.
    pub(crate) fn write_f32(&self, addr: DevicePtr, v: f32) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Reads an `f64` at `addr`.
    pub(crate) fn read_f64(&self, addr: DevicePtr) -> f64 {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b);
        f64::from_le_bytes(b)
    }

    /// Writes an `f64` at `addr`.
    pub(crate) fn write_f64(&self, addr: DevicePtr, v: f64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Reads a little-endian `u32` at `addr`.
    pub(crate) fn read_u32(&self, addr: DevicePtr) -> u32 {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian `u32` at `addr`.
    pub(crate) fn write_u32(&self, addr: DevicePtr, v: u32) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Reads a little-endian `u64` at `addr`.
    pub(crate) fn read_u64(&self, addr: DevicePtr) -> u64 {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` at `addr`.
    pub(crate) fn write_u64(&self, addr: DevicePtr, v: u64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> DevicePtr {
        DevicePtr::new(super::super::DEVICE_ADDR_BASE)
    }

    #[test]
    fn read_unwritten_memory_is_zero() {
        let store = PagedStore::new();
        let mut buf = [7u8; 16];
        store.read_bytes(base(), &mut buf);
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(store.resident_pages(), 0);
    }

    #[test]
    fn write_read_round_trip_across_page_boundary() {
        let mut store = PagedStore::new();
        let p = base() + (PAGE_SIZE - 3);
        let data: Vec<u8> = (0..10).collect();
        store.write_bytes(p, &data);
        let mut out = vec![0u8; 10];
        store.read_bytes(p, &mut out);
        assert_eq!(out, data);
        assert_eq!(store.resident_pages(), 2);
    }

    #[test]
    fn zero_fill_does_not_materialize_pages() {
        let mut store = PagedStore::new();
        store.fill(base(), 1 << 20, 0);
        assert_eq!(store.resident_pages(), 0);
    }

    #[test]
    fn nonzero_fill_materializes_pages() {
        let mut store = PagedStore::new();
        store.fill(base(), 2 * PAGE_SIZE, 0xAB);
        assert_eq!(store.resident_pages(), 2);
        let mut b = [0u8; 1];
        store.read_bytes(base() + PAGE_SIZE + 7, &mut b);
        assert_eq!(b[0], 0xAB);
    }

    #[test]
    fn zero_fill_clears_existing_data() {
        let mut store = PagedStore::new();
        store.write_bytes(base(), &[9u8; 32]);
        store.fill(base() + 8, 16, 0);
        let mut out = [0u8; 32];
        store.read_bytes(base(), &mut out);
        assert_eq!(&out[..8], &[9u8; 8]);
        assert_eq!(&out[8..24], &[0u8; 16]);
        assert_eq!(&out[24..], &[9u8; 8]);
    }

    #[test]
    fn typed_accessors_round_trip() {
        let mut store = PagedStore::new();
        store.write_u32(base(), 0xDEAD_BEEF);
        assert_eq!(store.read_u32(base()), 0xDEAD_BEEF);
        store.write_u64(base() + 8, u64::MAX - 5);
        assert_eq!(store.read_u64(base() + 8), u64::MAX - 5);
        store.write_f32(base() + 16, 3.25);
        assert_eq!(store.read_f32(base() + 16), 3.25);
        store.write_f64(base() + 24, -1.5e300);
        assert_eq!(store.read_f64(base() + 24), -1.5e300);
    }

    #[test]
    fn copy_within_handles_overlap() {
        let mut store = PagedStore::new();
        let data: Vec<u8> = (0..64).collect();
        store.write_bytes(base(), &data);
        store.copy_within(base() + 8, base(), 64);
        let mut out = vec![0u8; 64];
        store.read_bytes(base() + 8, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn shared_view_round_trips_and_restores_pages() {
        let mut store = PagedStore::new();
        store.write_bytes(base(), &[7u8; 64]);
        let view = store.split_shared(4);
        assert_eq!(store.resident_pages(), 0);
        // Snapshot page readable and writable through the view.
        let mut out = [0u8; 64];
        view.read_bytes(base(), &mut out);
        assert_eq!(out, [7u8; 64]);
        view.write_bytes(base() + 8, &[9u8; 8]);
        // Fresh page materialized across a page boundary.
        view.write_u64(base() + 3 * PAGE_SIZE - 4, 0x0123_4567_89AB_CDEF);
        assert_eq!(
            view.read_u64(base() + 3 * PAGE_SIZE - 4),
            0x0123_4567_89AB_CDEF
        );
        // Absent pages read as zero without materializing.
        let mut b = [5u8; 4];
        view.read_bytes(base() + 100 * PAGE_SIZE, &mut b);
        assert_eq!(b, [0u8; 4]);
        store.absorb_shared(view);
        assert_eq!(store.resident_pages(), 3);
        assert_eq!(
            store.read_u64(base() + 3 * PAGE_SIZE - 4),
            0x0123_4567_89AB_CDEF
        );
        let mut out = [0u8; 16];
        store.read_bytes(base(), &mut out);
        assert_eq!(&out[..8], &[7u8; 8]);
        assert_eq!(&out[8..], &[9u8; 8]);
    }

    #[test]
    fn shared_view_is_safe_to_drop_without_absorb() {
        let mut store = PagedStore::new();
        store.write_bytes(base(), &[1u8; 32]);
        let view = store.split_shared(2);
        view.write_bytes(base() + 8 * PAGE_SIZE, &[2u8; 4]);
        drop(view); // must free both snapshot and fresh pages
        assert_eq!(store.resident_pages(), 0);
    }

    #[test]
    fn discard_releases_full_pages_only() {
        let mut store = PagedStore::new();
        store.write_bytes(base(), &[1u8; (3 * PAGE_SIZE) as usize]);
        assert_eq!(store.resident_pages(), 3);
        // Range covers the middle page fully, the outer two partially.
        store.discard(base() + 100, 2 * PAGE_SIZE);
        assert_eq!(store.resident_pages(), 2);
        assert!(store.is_resident(base()));
        assert!(!store.is_resident(base() + PAGE_SIZE));
    }
}
