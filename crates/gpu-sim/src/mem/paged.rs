//! Sparse, lazily-materialized backing store for device memory.

use super::DevicePtr;
use std::collections::HashMap;

/// Size of one backing page in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// A sparse byte store covering the whole simulated device address space.
///
/// Pages are allocated on first touch and zero-filled, matching the behaviour
/// most workloads rely on after `cudaMemset(ptr, 0, size)`. Untouched pages
/// cost nothing, so simulated programs may overallocate wildly (the paper's
/// *overallocation* pattern) without bloating the host process.
///
/// # Examples
///
/// ```
/// use gpu_sim::mem::{PagedStore, DevicePtr};
///
/// let mut store = PagedStore::new();
/// let p = DevicePtr::new(0x7f00_0000_0000);
/// store.write_bytes(p, &[1, 2, 3]);
/// let mut buf = [0u8; 3];
/// store.read_bytes(p, &mut buf);
/// assert_eq!(buf, [1, 2, 3]);
/// ```
#[derive(Debug, Default)]
pub struct PagedStore {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
}

impl PagedStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        PagedStore::default()
    }

    /// Number of pages that have been materialized so far.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Number of resident bytes (pages × page size).
    pub fn resident_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_SIZE
    }

    /// Returns `true` if the page containing `addr` has been materialized.
    pub fn is_resident(&self, addr: DevicePtr) -> bool {
        self.pages.contains_key(&(addr.addr() / PAGE_SIZE))
    }

    fn page_mut(&mut self, index: u64) -> &mut [u8; PAGE_SIZE as usize] {
        self.pages
            .entry(index)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE as usize]))
    }

    /// Writes `data` starting at `addr`, materializing pages as needed.
    pub fn write_bytes(&mut self, addr: DevicePtr, data: &[u8]) {
        let mut offset = 0usize;
        let mut cur = addr.addr();
        while offset < data.len() {
            let page = cur / PAGE_SIZE;
            let in_page = (cur % PAGE_SIZE) as usize;
            let n = usize::min(PAGE_SIZE as usize - in_page, data.len() - offset);
            self.page_mut(page)[in_page..in_page + n].copy_from_slice(&data[offset..offset + n]);
            offset += n;
            cur += n as u64;
        }
    }

    /// Reads into `buf` starting at `addr`. Unmaterialized pages read as zero.
    pub fn read_bytes(&self, addr: DevicePtr, buf: &mut [u8]) {
        let mut offset = 0usize;
        let mut cur = addr.addr();
        while offset < buf.len() {
            let page = cur / PAGE_SIZE;
            let in_page = (cur % PAGE_SIZE) as usize;
            let n = usize::min(PAGE_SIZE as usize - in_page, buf.len() - offset);
            match self.pages.get(&page) {
                Some(p) => buf[offset..offset + n].copy_from_slice(&p[in_page..in_page + n]),
                None => buf[offset..offset + n].fill(0),
            }
            offset += n;
            cur += n as u64;
        }
    }

    /// Fills `len` bytes starting at `addr` with `value`.
    ///
    /// A `value` of zero on fully unmaterialized pages is a no-op, mirroring
    /// how real `cudaMemset` to zero leaves untouched physical pages zero.
    pub fn fill(&mut self, addr: DevicePtr, len: u64, value: u8) {
        if value == 0 {
            // Only touch pages that already exist; virgin pages are zero.
            let first = addr.addr() / PAGE_SIZE;
            let last = (addr.addr() + len.saturating_sub(1)) / PAGE_SIZE;
            for page in first..=last {
                if let Some(p) = self.pages.get_mut(&page) {
                    let page_start = page * PAGE_SIZE;
                    let s = u64::max(addr.addr(), page_start) - page_start;
                    let e = u64::min(addr.addr() + len, page_start + PAGE_SIZE) - page_start;
                    p[s as usize..e as usize].fill(0);
                }
            }
            return;
        }
        let mut remaining = len;
        let mut cur = addr.addr();
        while remaining > 0 {
            let page = cur / PAGE_SIZE;
            let in_page = (cur % PAGE_SIZE) as usize;
            let n = u64::min(PAGE_SIZE - in_page as u64, remaining) as usize;
            self.page_mut(page)[in_page..in_page + n].fill(value);
            remaining -= n as u64;
            cur += n as u64;
        }
    }

    /// Copies `len` bytes from `src` to `dst` within the device.
    pub fn copy_within(&mut self, dst: DevicePtr, src: DevicePtr, len: u64) {
        // Simple and correct for overlapping ranges: stage through a buffer.
        let mut buf = vec![0u8; len as usize];
        self.read_bytes(src, &mut buf);
        self.write_bytes(dst, &buf);
    }

    /// Reads a little-endian `u32` at `addr`.
    pub fn read_u32(&self, addr: DevicePtr) -> u32 {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian `u32` at `addr`.
    pub fn write_u32(&mut self, addr: DevicePtr, v: u32) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Reads a little-endian `u64` at `addr`.
    pub fn read_u64(&self, addr: DevicePtr) -> u64 {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` at `addr`.
    pub fn write_u64(&mut self, addr: DevicePtr, v: u64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Reads an `f32` at `addr`.
    pub fn read_f32(&self, addr: DevicePtr) -> f32 {
        f32::from_le_bytes({
            let mut b = [0u8; 4];
            self.read_bytes(addr, &mut b);
            b
        })
    }

    /// Writes an `f32` at `addr`.
    pub fn write_f32(&mut self, addr: DevicePtr, v: f32) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Reads an `f64` at `addr`.
    pub fn read_f64(&self, addr: DevicePtr) -> f64 {
        f64::from_le_bytes({
            let mut b = [0u8; 8];
            self.read_bytes(addr, &mut b);
            b
        })
    }

    /// Writes an `f64` at `addr`.
    pub fn write_f64(&mut self, addr: DevicePtr, v: f64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Discards all materialized pages whose addresses fall entirely inside
    /// `[start, start + len)`, releasing host memory for freed allocations.
    pub fn discard(&mut self, start: DevicePtr, len: u64) {
        if len == 0 {
            return;
        }
        let first_full = start.addr().div_ceil(PAGE_SIZE);
        let end = start.addr() + len;
        let last_full = end / PAGE_SIZE; // exclusive
        for page in first_full..last_full {
            self.pages.remove(&page);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> DevicePtr {
        DevicePtr::new(super::super::DEVICE_ADDR_BASE)
    }

    #[test]
    fn read_unwritten_memory_is_zero() {
        let store = PagedStore::new();
        let mut buf = [7u8; 16];
        store.read_bytes(base(), &mut buf);
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(store.resident_pages(), 0);
    }

    #[test]
    fn write_read_round_trip_across_page_boundary() {
        let mut store = PagedStore::new();
        let p = base() + (PAGE_SIZE - 3);
        let data: Vec<u8> = (0..10).collect();
        store.write_bytes(p, &data);
        let mut out = vec![0u8; 10];
        store.read_bytes(p, &mut out);
        assert_eq!(out, data);
        assert_eq!(store.resident_pages(), 2);
    }

    #[test]
    fn zero_fill_does_not_materialize_pages() {
        let mut store = PagedStore::new();
        store.fill(base(), 1 << 20, 0);
        assert_eq!(store.resident_pages(), 0);
    }

    #[test]
    fn nonzero_fill_materializes_pages() {
        let mut store = PagedStore::new();
        store.fill(base(), 2 * PAGE_SIZE, 0xAB);
        assert_eq!(store.resident_pages(), 2);
        let mut b = [0u8; 1];
        store.read_bytes(base() + PAGE_SIZE + 7, &mut b);
        assert_eq!(b[0], 0xAB);
    }

    #[test]
    fn zero_fill_clears_existing_data() {
        let mut store = PagedStore::new();
        store.write_bytes(base(), &[9u8; 32]);
        store.fill(base() + 8, 16, 0);
        let mut out = [0u8; 32];
        store.read_bytes(base(), &mut out);
        assert_eq!(&out[..8], &[9u8; 8]);
        assert_eq!(&out[8..24], &[0u8; 16]);
        assert_eq!(&out[24..], &[9u8; 8]);
    }

    #[test]
    fn typed_accessors_round_trip() {
        let mut store = PagedStore::new();
        store.write_u32(base(), 0xDEAD_BEEF);
        assert_eq!(store.read_u32(base()), 0xDEAD_BEEF);
        store.write_u64(base() + 8, u64::MAX - 5);
        assert_eq!(store.read_u64(base() + 8), u64::MAX - 5);
        store.write_f32(base() + 16, 3.25);
        assert_eq!(store.read_f32(base() + 16), 3.25);
        store.write_f64(base() + 24, -1.5e300);
        assert_eq!(store.read_f64(base() + 24), -1.5e300);
    }

    #[test]
    fn copy_within_handles_overlap() {
        let mut store = PagedStore::new();
        let data: Vec<u8> = (0..64).collect();
        store.write_bytes(base(), &data);
        store.copy_within(base() + 8, base(), 64);
        let mut out = vec![0u8; 64];
        store.read_bytes(base() + 8, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn discard_releases_full_pages_only() {
        let mut store = PagedStore::new();
        store.write_bytes(base(), &[1u8; (3 * PAGE_SIZE) as usize]);
        assert_eq!(store.resident_pages(), 3);
        // Range covers the middle page fully, the outer two partially.
        store.discard(base() + 100, 2 * PAGE_SIZE);
        assert_eq!(store.resident_pages(), 2);
        assert!(store.is_resident(base()));
        assert!(!store.is_resident(base() + PAGE_SIZE));
    }
}
