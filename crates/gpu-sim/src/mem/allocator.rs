//! First-fit device memory allocator with CUDA-style alignment and peak
//! tracking.
//!
//! Peak-usage statistics from this allocator back the paper's Table 4
//! ("peak memory reductions"): running a workload's unoptimized and optimized
//! variants against two fresh allocators and comparing
//! [`AllocatorStats::peak_bytes`] reproduces the reduction percentages.

use super::{AddrRange, DevicePtr, DEVICE_ADDR_BASE};
use crate::error::{Result, SimError};
use std::collections::BTreeMap;

/// Allocation granularity; real `cudaMalloc` returns 256-byte-aligned
/// pointers.
pub const ALLOC_ALIGN: u64 = 256;

/// Metadata about one live allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocationInfo {
    /// Base address of the allocation.
    pub ptr: DevicePtr,
    /// Requested size in bytes (not rounded up).
    pub size: u64,
    /// Monotonic id: the n-th allocation made through this allocator.
    pub alloc_index: u64,
}

impl AllocationInfo {
    /// The address range covered by this allocation.
    pub fn range(&self) -> AddrRange {
        AddrRange::new(self.ptr, self.size)
    }
}

/// Aggregate allocator statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocatorStats {
    /// Bytes currently allocated (sum of live requested sizes).
    pub in_use_bytes: u64,
    /// High-water mark of `in_use_bytes` over the allocator's lifetime.
    pub peak_bytes: u64,
    /// Number of live allocations.
    pub live_allocations: usize,
    /// Total number of `malloc` calls ever made.
    pub total_allocations: u64,
    /// Total number of `free` calls ever made.
    pub total_frees: u64,
}

/// A first-fit free-list allocator over the simulated device address space.
///
/// # Examples
///
/// ```
/// use gpu_sim::mem::DeviceAllocator;
///
/// # fn main() -> Result<(), gpu_sim::SimError> {
/// let mut alloc = DeviceAllocator::new(1 << 20);
/// let a = alloc.malloc(1000)?;
/// let b = alloc.malloc(2000)?;
/// assert_ne!(a.ptr, b.ptr);
/// assert_eq!(alloc.stats().peak_bytes, 3000);
/// alloc.free(a.ptr)?;
/// assert_eq!(alloc.stats().in_use_bytes, 2000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DeviceAllocator {
    capacity: u64,
    /// Free regions keyed by start address → length. Invariant: regions are
    /// non-empty, non-overlapping, and never adjacent (adjacent regions are
    /// coalesced on free).
    free: BTreeMap<u64, u64>,
    /// Live allocations keyed by base address.
    live: BTreeMap<u64, AllocationInfo>,
    stats: AllocatorStats,
    next_index: u64,
    /// Mutation epoch: bumped by every successful `malloc`/`free`. Callers
    /// that cache lookup results (the sanitizer's per-pc allocation memo)
    /// compare epochs to decide whether their cache still describes the
    /// live map.
    epoch: u64,
}

impl DeviceAllocator {
    /// Creates an allocator managing `capacity` bytes of device memory.
    pub fn new(capacity: u64) -> Self {
        let mut free = BTreeMap::new();
        if capacity > 0 {
            free.insert(DEVICE_ADDR_BASE, capacity);
        }
        DeviceAllocator {
            capacity,
            free,
            live: BTreeMap::new(),
            stats: AllocatorStats::default(),
            next_index: 0,
            epoch: 0,
        }
    }

    /// The mutation epoch: changes exactly when the live-allocation map
    /// does, so two equal epochs guarantee identical lookup results.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total managed capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Current aggregate statistics.
    pub fn stats(&self) -> AllocatorStats {
        self.stats
    }

    /// Total free bytes (possibly fragmented).
    pub fn total_free(&self) -> u64 {
        self.free.values().sum()
    }

    /// Largest single free region.
    pub fn largest_free(&self) -> u64 {
        self.free.values().copied().max().unwrap_or(0)
    }

    /// Allocates `size` bytes, first-fit, aligned to [`ALLOC_ALIGN`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ZeroSizedAllocation`] for `size == 0` and
    /// [`SimError::OutOfMemory`] when no free region can hold the rounded-up
    /// request.
    pub fn malloc(&mut self, size: u64) -> Result<AllocationInfo> {
        if size == 0 {
            return Err(SimError::ZeroSizedAllocation);
        }
        let rounded = size
            .checked_next_multiple_of(ALLOC_ALIGN)
            .ok_or(SimError::OutOfMemory {
                requested: size,
                largest_free: self.largest_free(),
                total_free: self.total_free(),
            })?;
        let slot = self
            .free
            .iter()
            .find(|(_, &len)| len >= rounded)
            .map(|(&start, &len)| (start, len));
        let (start, len) = slot.ok_or(SimError::OutOfMemory {
            requested: size,
            largest_free: self.largest_free(),
            total_free: self.total_free(),
        })?;
        self.free.remove(&start);
        if len > rounded {
            self.free.insert(start + rounded, len - rounded);
        }
        let info = AllocationInfo {
            ptr: DevicePtr::new(start),
            size,
            alloc_index: self.next_index,
        };
        self.next_index += 1;
        self.epoch = self.epoch.wrapping_add(1);
        self.live.insert(start, info.clone());
        self.stats.in_use_bytes += size;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.in_use_bytes);
        self.stats.live_allocations = self.live.len();
        self.stats.total_allocations += 1;
        Ok(info)
    }

    /// Frees the allocation based at `ptr`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidFree`] if `ptr` is not the base of a live
    /// allocation.
    pub fn free(&mut self, ptr: DevicePtr) -> Result<AllocationInfo> {
        let info = self
            .live
            .remove(&ptr.addr())
            .ok_or(SimError::InvalidFree(ptr))?;
        let rounded = info.size.div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
        self.epoch = self.epoch.wrapping_add(1);
        self.insert_free(ptr.addr(), rounded);
        self.stats.in_use_bytes -= info.size;
        self.stats.live_allocations = self.live.len();
        self.stats.total_frees += 1;
        Ok(info)
    }

    fn insert_free(&mut self, mut start: u64, mut len: u64) {
        // Coalesce with the predecessor if adjacent.
        if let Some((&prev_start, &prev_len)) = self.free.range(..start).next_back() {
            debug_assert!(prev_start + prev_len <= start, "free list overlap");
            if prev_start + prev_len == start {
                self.free.remove(&prev_start);
                start = prev_start;
                len += prev_len;
            }
        }
        // Coalesce with the successor if adjacent.
        if let Some((&next_start, &next_len)) = self.free.range(start + len..).next() {
            if start + len == next_start {
                self.free.remove(&next_start);
                len += next_len;
            }
        }
        self.free.insert(start, len);
    }

    /// Looks up the live allocation containing `addr`, if any.
    ///
    /// This is the allocator-side analogue of DrGPUM's memory map `M`
    /// (Sec. 5.1): a binary search over live ranges.
    pub fn find_containing(&self, addr: DevicePtr) -> Option<&AllocationInfo> {
        self.live
            .range(..=addr.addr())
            .next_back()
            .map(|(_, info)| info)
            .filter(|info| info.range().contains(addr))
    }

    /// Returns the live allocation based exactly at `ptr`, if any.
    pub fn get(&self, ptr: DevicePtr) -> Option<&AllocationInfo> {
        self.live.get(&ptr.addr())
    }

    /// Iterates over live allocations in address order.
    pub fn iter(&self) -> impl Iterator<Item = &AllocationInfo> {
        self.live.values()
    }

    /// Returns `true` if the byte range `[addr, addr + size)` lies fully
    /// inside one live allocation.
    pub fn is_valid_access(&self, addr: DevicePtr, size: u64) -> bool {
        match self.find_containing(addr) {
            Some(info) => addr.addr() + size <= info.range().end().addr(),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malloc_returns_aligned_pointers() {
        let mut a = DeviceAllocator::new(1 << 20);
        for size in [1u64, 255, 256, 257, 4097] {
            let info = a.malloc(size).unwrap();
            assert_eq!(info.ptr.addr() % ALLOC_ALIGN, 0, "size {size}");
        }
    }

    #[test]
    fn zero_sized_allocation_is_an_error() {
        let mut a = DeviceAllocator::new(1024);
        assert_eq!(a.malloc(0).unwrap_err(), SimError::ZeroSizedAllocation);
    }

    #[test]
    fn out_of_memory_reports_free_space() {
        let mut a = DeviceAllocator::new(1024);
        let _ = a.malloc(512).unwrap();
        match a.malloc(1024).unwrap_err() {
            SimError::OutOfMemory {
                requested,
                largest_free,
                total_free,
            } => {
                assert_eq!(requested, 1024);
                assert_eq!(largest_free, 512);
                assert_eq!(total_free, 512);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn free_and_reuse() {
        let mut a = DeviceAllocator::new(4096);
        let x = a.malloc(1024).unwrap();
        let y = a.malloc(1024).unwrap();
        a.free(x.ptr).unwrap();
        // First-fit should hand the freed region back.
        let z = a.malloc(1024).unwrap();
        assert_eq!(z.ptr, x.ptr);
        assert_ne!(z.ptr, y.ptr);
    }

    #[test]
    fn invalid_free_detected() {
        let mut a = DeviceAllocator::new(4096);
        let x = a.malloc(100).unwrap();
        assert!(matches!(
            a.free(x.ptr + 8).unwrap_err(),
            SimError::InvalidFree(_)
        ));
        a.free(x.ptr).unwrap();
        assert!(matches!(
            a.free(x.ptr).unwrap_err(),
            SimError::InvalidFree(_)
        ));
    }

    #[test]
    fn coalescing_restores_contiguity() {
        let mut a = DeviceAllocator::new(3 * ALLOC_ALIGN);
        let x = a.malloc(ALLOC_ALIGN).unwrap();
        let y = a.malloc(ALLOC_ALIGN).unwrap();
        let z = a.malloc(ALLOC_ALIGN).unwrap();
        a.free(x.ptr).unwrap();
        a.free(z.ptr).unwrap();
        a.free(y.ptr).unwrap();
        // After freeing everything the full capacity must be one region.
        assert_eq!(a.largest_free(), 3 * ALLOC_ALIGN);
        let w = a.malloc(3 * ALLOC_ALIGN).unwrap();
        assert_eq!(w.ptr.addr(), DEVICE_ADDR_BASE);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut a = DeviceAllocator::new(1 << 20);
        let x = a.malloc(1000).unwrap();
        let y = a.malloc(500).unwrap();
        a.free(x.ptr).unwrap();
        let _z = a.malloc(200).unwrap();
        let s = a.stats();
        assert_eq!(s.peak_bytes, 1500);
        assert_eq!(s.in_use_bytes, 700);
        assert_eq!(s.total_allocations, 3);
        assert_eq!(s.total_frees, 1);
        let _ = y;
    }

    #[test]
    fn find_containing_is_interval_lookup() {
        let mut a = DeviceAllocator::new(1 << 20);
        let x = a.malloc(100).unwrap();
        let y = a.malloc(100).unwrap();
        assert_eq!(a.find_containing(x.ptr + 50).unwrap().ptr, x.ptr);
        assert_eq!(a.find_containing(y.ptr).unwrap().ptr, y.ptr);
        // Rounded-up padding after the requested 100 bytes is not valid.
        assert!(a.find_containing(x.ptr + 100).is_none());
    }

    #[test]
    fn is_valid_access_bounds() {
        let mut a = DeviceAllocator::new(1 << 20);
        let x = a.malloc(128).unwrap();
        assert!(a.is_valid_access(x.ptr, 128));
        assert!(a.is_valid_access(x.ptr + 120, 8));
        assert!(!a.is_valid_access(x.ptr + 120, 9));
        assert!(!a.is_valid_access(x.ptr + 128, 1));
    }
}
