//! Cross-module integration tests for the simulated runtime: instrumentation
//! contracts, stream/event semantics, buffer chunking, and fault behaviour.

use gpu_sim::sanitizer::{KernelInfo, MemAccessRecord, PatchMode, SanitizerHooks};
use gpu_sim::{
    ApiKind, DeviceContext, Dim3, KernelCounters, LaunchConfig, PlatformConfig, SimError, StreamId,
    TouchedObject,
};
use parking_lot::Mutex;
use std::sync::Arc;

#[derive(Default)]
struct Probe {
    mode: Option<PatchMode>,
    buffers: Vec<usize>,
    kernels_seen: u64,
    touched: Vec<TouchedObject>,
    counters: Vec<KernelCounters>,
}

impl SanitizerHooks for Probe {
    fn on_kernel_begin(&mut self, _info: &KernelInfo) -> PatchMode {
        self.kernels_seen += 1;
        self.mode.unwrap_or(PatchMode::None)
    }
    fn on_mem_access_buffer(&mut self, _info: &KernelInfo, records: &[MemAccessRecord]) {
        self.buffers.push(records.len());
    }
    fn on_kernel_end(
        &mut self,
        _info: &KernelInfo,
        touched: &[TouchedObject],
        counters: &KernelCounters,
    ) {
        self.touched.extend_from_slice(touched);
        self.counters.push(*counters);
    }
}

fn probe(mode: PatchMode) -> Arc<Mutex<Probe>> {
    Arc::new(Mutex::new(Probe {
        mode: Some(mode),
        ..Probe::default()
    }))
}

#[test]
fn record_buffers_are_chunked_at_capacity() {
    let p = probe(PatchMode::Full);
    let mut ctx = DeviceContext::new_default();
    ctx.sanitizer_mut().register(p.clone());
    ctx.sanitizer_mut().set_buffer_capacity(100);
    let n = 512u64;
    let a = ctx.malloc(n * 4, "a").unwrap();
    ctx.launch(
        "w",
        LaunchConfig::cover(n, 64).unwrap(),
        StreamId::DEFAULT,
        move |t| {
            let i = t.global_x();
            if i < n {
                t.store_f32(a + i * 4, 0.0);
            }
        },
    )
    .unwrap();
    let p = p.lock();
    // 512 records in ≤100-record chunks: five full + one remainder.
    assert_eq!(p.buffers.iter().sum::<usize>(), 512);
    assert!(p.buffers.len() >= 6, "buffers: {:?}", p.buffers);
    assert!(p.buffers.iter().all(|&len| len <= 100));
}

#[test]
fn most_demanding_patch_mode_wins_across_tools() {
    let lazy = probe(PatchMode::None);
    let eager = probe(PatchMode::Full);
    let mut ctx = DeviceContext::new_default();
    ctx.sanitizer_mut().register(lazy.clone());
    ctx.sanitizer_mut().register(eager.clone());
    let a = ctx.malloc(64, "a").unwrap();
    ctx.launch(
        "k",
        LaunchConfig::cover(4, 4).unwrap(),
        StreamId::DEFAULT,
        move |t| {
            let i = t.global_x();
            if i < 4 {
                t.store_f32(a + i * 4, 1.0);
            }
        },
    )
    .unwrap();
    // Both tools receive the record stream even though one asked for None.
    assert_eq!(lazy.lock().buffers.iter().sum::<usize>(), 4);
    assert_eq!(eager.lock().buffers.iter().sum::<usize>(), 4);
}

#[test]
fn counters_report_exact_work() {
    let p = probe(PatchMode::HitFlags);
    let mut ctx = DeviceContext::new_default();
    ctx.sanitizer_mut().register(p.clone());
    let n = 100u64;
    let a = ctx.malloc(n * 4, "a").unwrap();
    let b = ctx.malloc(n * 4, "b").unwrap();
    ctx.memset(a, 0, n * 4).unwrap();
    ctx.launch(
        "axpy",
        LaunchConfig::cover(n, 32).unwrap(),
        StreamId::DEFAULT,
        move |t| {
            let i = t.global_x();
            if i < n {
                let v = t.load_f32(a + i * 4);
                t.store_f32(b + i * 4, v + 1.0);
                t.flop(1);
            }
        },
    )
    .unwrap();
    let p = p.lock();
    let c = p.counters[0];
    assert_eq!(c.global_reads, n);
    assert_eq!(c.global_writes, n);
    assert_eq!(c.global_bytes, n * 8);
    assert_eq!(c.flops, n);
    assert_eq!(c.page_migrations, 0);
    let reads: Vec<&TouchedObject> = p.touched.iter().filter(|t| t.read).collect();
    assert_eq!(reads.len(), 1);
}

#[test]
fn per_stream_ordinals_follow_figure7_naming() {
    let mut ctx = DeviceContext::new_default();
    let s1 = ctx.create_stream();
    let a = ctx.malloc(256, "a").unwrap();
    ctx.memset_on(a, 0, 256, s1).unwrap();
    ctx.memset_on(a, 1, 256, s1).unwrap();
    ctx.memset(a, 2, 256).unwrap();
    let names: Vec<String> = ctx
        .api_log()
        .iter()
        .filter(|e| e.kind.is_gpu_api())
        .map(|e| e.display_name())
        .collect();
    assert_eq!(
        names,
        ["ALLOC(0, 0)", "SET(1, 0)", "SET(1, 1)", "SET(0, 1)"],
        "ordinals count per stream"
    );
}

#[test]
fn event_chain_orders_three_streams() {
    let mut ctx = DeviceContext::new_default();
    let s1 = ctx.create_stream();
    let s2 = ctx.create_stream();
    let s3 = ctx.create_stream();
    let n = 8 * 1024u64;
    let buf = ctx.malloc(n * 4, "buf").unwrap();
    ctx.memset_on(buf, 0, n * 4, s1).unwrap();
    let e1 = ctx.create_event();
    ctx.record_event(e1, s1).unwrap();
    ctx.wait_event(s2, e1).unwrap();
    ctx.memset_on(buf, 1, n * 4, s2).unwrap();
    let e2 = ctx.create_event();
    ctx.record_event(e2, s2).unwrap();
    ctx.wait_event(s3, e2).unwrap();
    ctx.memset_on(buf, 2, n * 4, s3).unwrap();
    ctx.sync_device();
    let sets: Vec<_> = ctx
        .api_log()
        .iter()
        .filter(|e| matches!(e.kind, ApiKind::Memset { .. }))
        .collect();
    assert_eq!(sets.len(), 3);
    assert!(
        sets[0].end <= sets[1].start,
        "event chains serialize streams"
    );
    assert!(sets[1].end <= sets[2].start);
    // The last write wins in memory.
    let mut out = [0u8; 4];
    ctx.memcpy_d2h(&mut out, buf).unwrap();
    assert_eq!(out, [2, 2, 2, 2]);
}

#[test]
fn freed_memory_faults_on_kernel_access() {
    let mut ctx = DeviceContext::new_default();
    let a = ctx.malloc(64, "a").unwrap();
    ctx.free(a).unwrap();
    let err = ctx
        .launch(
            "bad",
            LaunchConfig::cover(1, 1).unwrap(),
            StreamId::DEFAULT,
            move |t| {
                t.load_f32(a);
            },
        )
        .unwrap_err();
    match err {
        SimError::KernelFaulted { reason, .. } => {
            assert!(
                reason.contains("out-of-bounds"),
                "use-after-free must fault: {reason}"
            );
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn d2d_copy_moves_data_between_objects() {
    let mut ctx = DeviceContext::new_default();
    let src = ctx.malloc(1024, "src").unwrap();
    let dst = ctx.malloc(1024, "dst").unwrap();
    ctx.memcpy_h2d(src, &[0xAB; 1024]).unwrap();
    ctx.memcpy_d2d(dst, src, 1024).unwrap();
    let mut out = [0u8; 1024];
    ctx.memcpy_d2h(&mut out, dst).unwrap();
    assert_eq!(out, [0xAB; 1024]);
    // And shows up as read-src/write-dst in the log.
    let d2d = ctx
        .api_log()
        .iter()
        .find(|e| matches!(e.kind, ApiKind::MemcpyD2D { .. }))
        .unwrap();
    match d2d.kind {
        ApiKind::MemcpyD2D {
            dst: d,
            src: s,
            size,
        } => {
            assert_eq!((d, s, size), (dst, src, 1024));
        }
        _ => unreachable!(),
    }
}

#[test]
fn shared_memory_is_per_block() {
    let mut ctx = DeviceContext::new_default();
    let out = ctx.malloc(8 * 4, "out").unwrap();
    // Two blocks of four threads; thread 0 writes shared[0], others read
    // it. Values must not leak across blocks (shared memory is zeroed per
    // block).
    let cfg = LaunchConfig::new(Dim3::x(2), Dim3::x(4)).with_shared_mem(16);
    ctx.launch("shmem", cfg, StreamId::DEFAULT, move |t| {
        if t.thread_idx.x == 0 {
            t.shared_store_f32(0, (t.block_idx.x + 1) as f32 * 10.0);
        }
        let v = t.shared_load_f32(0);
        t.store_f32(out + t.global_thread_id() * 4, v);
    })
    .unwrap();
    let mut host = [0.0f32; 8];
    ctx.d2h_f32(&mut host, out).unwrap();
    assert_eq!(&host[0..4], &[10.0; 4]);
    assert_eq!(&host[4..8], &[20.0; 4]);
}

#[test]
fn instrumentation_cost_model_is_tunable() {
    use gpu_sim::sanitizer::OverheadModel;
    let run = |model: OverheadModel| {
        let p = probe(PatchMode::Full);
        let mut ctx = DeviceContext::new_default();
        ctx.sanitizer_mut().register(p);
        ctx.sanitizer_mut().set_overhead_model(model);
        let n = 4096u64;
        let a = ctx.malloc(n * 4, "a").unwrap();
        ctx.launch(
            "k",
            LaunchConfig::cover(n, 128).unwrap(),
            StreamId::DEFAULT,
            move |t| {
                let i = t.global_x();
                if i < n {
                    t.store_f32(a + i * 4, 0.0);
                }
            },
        )
        .unwrap();
        ctx.sync_device().as_ns()
    };
    let cheap = run(OverheadModel {
        full_access_ns: 1.0,
        ..OverheadModel::default()
    });
    let pricey = run(OverheadModel {
        full_access_ns: 100.0,
        ..OverheadModel::default()
    });
    assert!(pricey > cheap);
}

#[test]
fn tiny_platform_forces_oom_then_recovers() {
    let mut ctx = DeviceContext::new(PlatformConfig::test_tiny());
    let a = ctx.malloc(900 * 1024, "big").unwrap();
    assert!(matches!(
        ctx.malloc(900 * 1024, "too_much"),
        Err(SimError::OutOfMemory { .. })
    ));
    ctx.free(a).unwrap();
    // Space is back.
    let b = ctx.malloc(900 * 1024, "big_again").unwrap();
    ctx.free(b).unwrap();
}
