//! Self-contained HTML report: the memory-usage curve with peaks marked
//! (inline SVG) plus the prioritized findings table — a no-dependency
//! complement to the Perfetto GUI feed.

use crate::peaks::UsageSample;
use crate::report::Report;
use std::fmt::Write as _;

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Renders the usage curve as an inline SVG line chart with the top peaks
/// marked. Returns an empty string for an empty curve.
pub fn usage_svg(usage: &[UsageSample], peaks: &[(usize, u64)]) -> String {
    if usage.is_empty() {
        return String::new();
    }
    let (w, h, pad) = (640.0f64, 180.0f64, 24.0f64);
    let max_bytes = usage
        .iter()
        .map(|s| s.bytes_in_use)
        .max()
        .unwrap_or(1)
        .max(1) as f64;
    let max_idx = usage.last().map(|s| s.api_idx).unwrap_or(0).max(1) as f64;
    let x = |idx: usize| pad + (idx as f64 / max_idx) * (w - 2.0 * pad);
    let y = |bytes: u64| h - pad - (bytes as f64 / max_bytes) * (h - 2.0 * pad);
    let mut points = String::new();
    // Step chart: memory changes at API boundaries.
    let mut prev_y = y(0);
    for s in usage {
        let _ = write!(points, "{:.1},{:.1} ", x(s.api_idx), prev_y);
        prev_y = y(s.bytes_in_use);
        let _ = write!(points, "{:.1},{:.1} ", x(s.api_idx), prev_y);
    }
    let mut svg = format!(
        r##"<svg viewBox="0 0 {w} {h}" width="{w}" height="{h}" role="img" aria-label="memory usage over GPU APIs">
<rect width="{w}" height="{h}" fill="#fafafa"/>
<polyline points="{points}" fill="none" stroke="#3465a4" stroke-width="1.5"/>
"##
    );
    for (idx, bytes) in peaks {
        let _ = write!(
            svg,
            r##"<circle cx="{:.1}" cy="{:.1}" r="4" fill="#cc0000"/>
<text x="{:.1}" y="{:.1}" font-size="10" fill="#cc0000">{} B</text>
"##,
            x(*idx),
            y(*bytes),
            x(*idx) + 6.0,
            y(*bytes) - 4.0,
            bytes
        );
    }
    svg.push_str("</svg>");
    svg
}

/// Renders a complete standalone HTML report.
pub fn report_html(report: &Report, usage: &[UsageSample]) -> String {
    let peaks: Vec<(usize, u64)> = report.peaks.iter().map(|p| (p.api_idx, p.bytes)).collect();
    let mut html = String::new();
    let _ = write!(
        html,
        r#"<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>DrGPUM report — {platform}</title>
<style>
body {{ font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 60rem; color: #222; }}
table {{ border-collapse: collapse; width: 100%; }}
th, td {{ border: 1px solid #ddd; padding: 0.4rem 0.6rem; text-align: left; vertical-align: top; }}
th {{ background: #f0f0f0; }}
code {{ background: #f5f5f5; padding: 0 0.2rem; }}
.peak {{ color: #cc0000; font-weight: 600; }}
.code {{ font-family: ui-monospace, monospace; }}
</style></head><body>
<h1>DrGPUM report</h1>
<p>platform <code>{platform}</code> · {apis} GPU APIs · {objects} data objects ·
peak memory <strong>{peak} bytes</strong>{leaks}</p>
"#,
        platform = escape(&report.platform),
        apis = report.stats.gpu_apis,
        objects = report.stats.objects,
        peak = report.stats.peak_bytes,
        leaks = if report.stats.leaked_objects > 0 {
            format!(
                " · <span class=\"peak\">{} leaked objects ({} bytes)</span>",
                report.stats.leaked_objects, report.stats.leaked_bytes
            )
        } else {
            String::new()
        },
    );
    let _ = write!(
        html,
        "<h2>Memory usage</h2>\n{}\n",
        usage_svg(usage, &peaks)
    );
    for (i, p) in report.peaks.iter().enumerate() {
        let objs: Vec<String> = p
            .objects
            .iter()
            .take(6)
            .map(|(l, s)| format!("<code>{}</code> ({s} B)", escape(l)))
            .collect();
        let _ = writeln!(
            html,
            "<p>peak #{}: <strong>{} bytes</strong> at <code>{}</code> — live: {}</p>",
            i + 1,
            p.bytes,
            escape(&p.api_name),
            objs.join(", ")
        );
    }
    let _ = write!(
        html,
        "<h2>Findings ({})</h2>\n<table>\n<tr><th>pattern</th><th>object</th>\
         <th>wasted</th><th>suggestion</th><th>allocated at</th></tr>\n",
        report.findings.len()
    );
    for f in &report.findings {
        let _ = writeln!(
            html,
            "<tr><td class=\"code\">{}{}</td><td><code>{}</code> ({} B)</td>\
             <td>{}</td><td>{}</td><td class=\"code\">{}</td></tr>",
            f.kind().code(),
            if f.at_peak {
                " <span class=\"peak\">@peak</span>"
            } else {
                ""
            },
            escape(&f.object.label),
            f.object.size,
            if f.wasted_bytes > 0 {
                format!("{} B", f.wasted_bytes)
            } else {
                "—".to_owned()
            },
            escape(&f.suggestion),
            escape(f.object.alloc_site().unwrap_or("-")),
        );
    }
    html.push_str("</table>\n</body></html>\n");
    html
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::ProfilerOptions;
    use crate::profiler::Profiler;
    use gpu_sim::DeviceContext;

    #[test]
    fn html_report_contains_findings_and_svg() {
        let mut ctx = DeviceContext::new_default();
        let profiler = Profiler::attach(&mut ctx, ProfilerOptions::object_level());
        let a = ctx.malloc(5000, "big_buffer").unwrap();
        let b = ctx.malloc(1000, "<script>alert(1)</script>").unwrap();
        ctx.memset(a, 0, 5000).unwrap();
        ctx.memset(b, 0, 1000).unwrap();
        ctx.free(a).unwrap();
        // b leaks.
        let report = profiler.report(&ctx);
        let collector = profiler.collector();
        let collector = collector.lock();
        let html = report_html(&report, collector.usage_curve());
        assert!(html.contains("<!DOCTYPE html>"));
        assert!(html.contains("big_buffer"));
        assert!(html.contains("<svg"));
        assert!(html.contains("peak #1"));
        // Labels are escaped.
        assert!(!html.contains("<script>alert"));
        assert!(html.contains("&lt;script&gt;"));
    }

    #[test]
    fn empty_curve_renders_no_svg() {
        assert!(usage_svg(&[], &[]).is_empty());
    }

    #[test]
    fn svg_marks_every_peak() {
        let usage: Vec<UsageSample> = [10u64, 50, 10, 90, 10]
            .iter()
            .enumerate()
            .map(|(i, &b)| UsageSample {
                api_idx: i,
                bytes_in_use: b,
            })
            .collect();
        let svg = usage_svg(&usage, &[(1, 50), (3, 90)]);
        assert_eq!(svg.matches("<circle").count(), 2);
        assert!(svg.contains("90 B"));
    }
}
