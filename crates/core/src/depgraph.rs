//! The dependency graph and topological timestamps for multi-stream programs
//! (Sec. 5.3, Fig. 4).
//!
//! Vertices are GPU API invocations. Edges are:
//!
//! * intra-stream program order (GPU APIs execute in order within a stream);
//! * read-after-write (RAW), write-after-write (WAW), and write-after-read
//!   (WAR) data dependencies on data objects, where allocation counts as a
//!   write-like *def* and deallocation as a write-like final use
//!   (Def. 5.1).
//!
//! Kahn's algorithm then annotates every vertex with a *topological
//! timestamp*: all vertices removed in the same wave share a timestamp, and
//! the timestamp increases by one per wave. For a single-stream program this
//! degenerates to the invocation order. The difference between two dependent
//! vertices' timestamps is the paper's *inefficiency distance*.

use crate::object::ObjectId;
use gpu_sim::StreamId;
use std::collections::HashMap;

/// Why an edge exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Intra-stream execution order.
    ProgramOrder,
    /// Read-after-write data dependency.
    Raw,
    /// Write-after-write data dependency.
    Waw,
    /// Write-after-read data dependency.
    War,
    /// Cross-stream ordering established by `cudaEventRecord` /
    /// `cudaStreamWaitEvent` (an extension beyond Def. 5.1, which only
    /// tracks data and program order; without it, event-synchronized APIs
    /// with no shared data would appear falsely concurrent).
    EventSync,
}

/// One edge of the dependency graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Source vertex (earlier GPU API).
    pub from: usize,
    /// Destination vertex (later GPU API).
    pub to: usize,
    /// Dependency kind.
    pub kind: EdgeKind,
}

/// How one GPU API touches data objects, for dependency construction.
#[derive(Debug, Clone, Default)]
pub struct VertexAccess {
    /// Stream of the invocation.
    pub stream: StreamId,
    /// Objects read (kernel loads, memcpy sources).
    pub reads: Vec<ObjectId>,
    /// Objects written or allocated (kernel stores, memcpy destinations,
    /// memsets, `cudaMalloc` defs).
    pub writes: Vec<ObjectId>,
    /// Objects freed (`cudaFree`), treated as write-like final uses.
    pub frees: Vec<ObjectId>,
    /// Explicit predecessor vertices (event-synchronization ordering).
    pub after: Vec<usize>,
}

/// The dependency graph over one program's GPU API invocations.
///
/// # Examples
///
/// ```
/// use drgpum_core::depgraph::{DependencyGraph, VertexAccess};
/// use drgpum_core::object::ObjectId;
/// use gpu_sim::StreamId;
///
/// let o = ObjectId(0);
/// // Two APIs on one stream: an alloc-write then a read.
/// let vertices = vec![
///     VertexAccess { stream: StreamId(0), writes: vec![o], ..Default::default() },
///     VertexAccess { stream: StreamId(0), reads: vec![o], ..Default::default() },
/// ];
/// let g = DependencyGraph::build(&vertices);
/// assert_eq!(g.timestamps(), &[0, 1]);
/// ```
#[derive(Debug)]
pub struct DependencyGraph {
    n: usize,
    edges: Vec<Edge>,
    timestamps: Vec<u64>,
}

impl DependencyGraph {
    /// Builds the graph from per-vertex access sets (in invocation order)
    /// and computes topological timestamps.
    pub fn build(vertices: &[VertexAccess]) -> Self {
        let n = vertices.len();
        let mut edges = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut push = |edges: &mut Vec<Edge>, from: usize, to: usize, kind: EdgeKind| {
            debug_assert!(from < to, "dependency edges must point forward");
            if seen.insert((from, to, kind)) {
                edges.push(Edge { from, to, kind });
            }
        };

        // Intra-stream program order, plus explicit event-sync predecessors.
        let mut last_on_stream: HashMap<StreamId, usize> = HashMap::new();
        for (v, va) in vertices.iter().enumerate() {
            if let Some(&prev) = last_on_stream.get(&va.stream) {
                push(&mut edges, prev, v, EdgeKind::ProgramOrder);
            }
            last_on_stream.insert(va.stream, v);
            for &pred in &va.after {
                if pred < v {
                    push(&mut edges, pred, v, EdgeKind::EventSync);
                }
            }
        }

        // Data dependencies, tracked per object.
        #[derive(Default)]
        struct ObjState {
            last_writer: Option<usize>,
            readers_since_write: Vec<usize>,
        }
        let mut state: HashMap<ObjectId, ObjState> = HashMap::new();
        for (v, va) in vertices.iter().enumerate() {
            for &o in &va.reads {
                let st = state.entry(o).or_default();
                if let Some(w) = st.last_writer {
                    if w != v {
                        push(&mut edges, w, v, EdgeKind::Raw);
                    }
                }
                st.readers_since_write.push(v);
            }
            for (objs, _free) in [(&va.writes, false), (&va.frees, true)] {
                for &o in objs {
                    let st = state.entry(o).or_default();
                    if st.readers_since_write.is_empty() {
                        if let Some(w) = st.last_writer {
                            if w != v {
                                push(&mut edges, w, v, EdgeKind::Waw);
                            }
                        }
                    } else {
                        for &r in &st.readers_since_write {
                            if r != v {
                                push(&mut edges, r, v, EdgeKind::War);
                            }
                        }
                    }
                    st.last_writer = Some(v);
                    st.readers_since_write.clear();
                }
            }
        }

        let timestamps = Self::kahn_timestamps(n, &edges);
        DependencyGraph {
            n,
            edges,
            timestamps,
        }
    }

    /// Kahn's algorithm with wave-shared timestamps: every vertex removed in
    /// the same wave receives the same `T`; `T` increments per wave.
    fn kahn_timestamps(n: usize, edges: &[Edge]) -> Vec<u64> {
        let mut indeg = vec![0usize; n];
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in edges {
            indeg[e.to] += 1;
            succ[e.from].push(e.to);
        }
        let mut ts = vec![0u64; n];
        let mut wave: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut t = 0u64;
        let mut assigned = 0usize;
        while !wave.is_empty() {
            let mut next = Vec::new();
            for &v in &wave {
                ts[v] = t;
                assigned += 1;
                for &s in &succ[v] {
                    indeg[s] -= 1;
                    if indeg[s] == 0 {
                        next.push(s);
                    }
                }
            }
            next.sort_unstable();
            wave = next;
            t += 1;
        }
        assert_eq!(assigned, n, "dependency graph must be acyclic");
        ts
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for an empty graph.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Topological timestamp of every vertex, indexed by invocation order.
    pub fn timestamps(&self) -> &[u64] {
        &self.timestamps
    }

    /// Timestamp of one vertex.
    pub fn timestamp(&self, vertex: usize) -> u64 {
        self.timestamps[vertex]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(stream: u32) -> VertexAccess {
        VertexAccess {
            stream: StreamId(stream),
            ..Default::default()
        }
    }

    fn o(i: u64) -> ObjectId {
        ObjectId(i)
    }

    #[test]
    fn single_stream_is_invocation_order() {
        let vertices: Vec<VertexAccess> = (0..5).map(|_| v(0)).collect();
        let g = DependencyGraph::build(&vertices);
        assert_eq!(g.timestamps(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn independent_streams_share_timestamps() {
        // Two streams, two APIs each, no shared data.
        let vertices = vec![v(0), v(1), v(0), v(1)];
        let g = DependencyGraph::build(&vertices);
        assert_eq!(g.timestamps(), &[0, 0, 1, 1]);
    }

    #[test]
    fn raw_dependency_orders_across_streams() {
        // Stream 0 writes O, stream 1 reads O.
        let mut w = v(0);
        w.writes.push(o(1));
        let mut r = v(1);
        r.reads.push(o(1));
        let g = DependencyGraph::build(&[w, r]);
        assert_eq!(g.timestamps(), &[0, 1]);
        assert!(g.edges().iter().any(|e| e.kind == EdgeKind::Raw));
    }

    #[test]
    fn war_blocks_premature_free() {
        // v0 writes O; v1 reads O (other stream); v2 frees O (third stream).
        let mut v0 = v(0);
        v0.writes.push(o(7));
        let mut v1 = v(1);
        v1.reads.push(o(7));
        let mut v2 = v(2);
        v2.frees.push(o(7));
        let g = DependencyGraph::build(&[v0, v1, v2]);
        assert_eq!(g.timestamps(), &[0, 1, 2]);
        let kinds: Vec<EdgeKind> = g.edges().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EdgeKind::Raw));
        assert!(kinds.contains(&EdgeKind::War));
        // The free depends on the reader, not only the writer.
        assert!(g
            .edges()
            .iter()
            .any(|e| e.from == 1 && e.to == 2 && e.kind == EdgeKind::War));
    }

    #[test]
    fn waw_between_consecutive_writes() {
        let mut a = v(0);
        a.writes.push(o(3));
        let mut b = v(1);
        b.writes.push(o(3));
        let g = DependencyGraph::build(&[a, b]);
        assert!(g
            .edges()
            .iter()
            .any(|e| e.from == 0 && e.to == 1 && e.kind == EdgeKind::Waw));
    }

    #[test]
    fn multiple_readers_all_get_raw_edges() {
        let mut w = v(0);
        w.writes.push(o(1));
        let mut r1 = v(1);
        r1.reads.push(o(1));
        let mut r2 = v(2);
        r2.reads.push(o(1));
        let g = DependencyGraph::build(&[w, r1, r2]);
        let raw: Vec<&Edge> = g
            .edges()
            .iter()
            .filter(|e| e.kind == EdgeKind::Raw)
            .collect();
        assert_eq!(raw.len(), 2);
        assert_eq!(g.timestamps(), &[0, 1, 1], "independent reads share a wave");
    }

    #[test]
    fn figure4_style_inefficiency_distance() {
        // O1 allocated first on stream 1; three unrelated APIs execute on
        // stream 2 before a copy on stream 1 first touches O1 — the early
        // allocation has inefficiency distance T[CPY] - T[ALLOC].
        let mut alloc = v(1);
        alloc.writes.push(o(1)); // allocation defs O1
        let u1 = v(2);
        let u2 = v(2);
        let u3 = v(2);
        let mut cpy = v(1);
        cpy.writes.push(o(1));
        let g = DependencyGraph::build(&[alloc, u1, u2, u3, cpy]);
        let distance = g.timestamp(4) - g.timestamp(0);
        // ALLOC is wave 0; stream-2 APIs occupy waves 0,1,2; CPY waits only
        // on its own stream (wave 1)… program order puts it after ALLOC.
        assert_eq!(g.timestamp(0), 0);
        assert!(distance >= 1);
    }

    #[test]
    fn dedup_edges() {
        // Same object read and written by same pair: only one edge per kind.
        let mut a = v(0);
        a.writes.push(o(1));
        a.writes.push(o(1));
        let mut b = v(0);
        b.reads.push(o(1));
        b.reads.push(o(1));
        let g = DependencyGraph::build(&[a, b]);
        let raw_count = g.edges().iter().filter(|e| e.kind == EdgeKind::Raw).count();
        assert_eq!(raw_count, 1);
    }

    #[test]
    fn event_sync_orders_streams_without_shared_data() {
        // Two APIs on different streams touching different objects, but the
        // second waits on an event recorded after the first.
        let mut a = v(0);
        a.writes.push(o(1));
        let mut b = v(1);
        b.writes.push(o(2));
        b.after.push(0);
        let g = DependencyGraph::build(&[a, b]);
        assert_eq!(g.timestamps(), &[0, 1]);
        assert!(g.edges().iter().any(|e| e.kind == EdgeKind::EventSync));
    }

    #[test]
    fn empty_graph() {
        let g = DependencyGraph::build(&[]);
        assert!(g.is_empty());
        assert!(g.timestamps().is_empty());
    }

    #[test]
    fn self_access_does_not_create_self_edge() {
        // An API that both reads and writes the same object (e.g. an
        // in-place kernel) must not generate a self edge.
        let mut a = v(0);
        a.reads.push(o(1));
        a.writes.push(o(1));
        let g = DependencyGraph::build(&[a.clone(), a]);
        assert!(g.edges().iter().all(|e| e.from != e.to));
        assert_eq!(g.timestamps(), &[0, 1]);
    }
}
