//! The savings advisor: predicts the peak-memory reduction achievable by
//! applying a report's suggestions.
//!
//! The paper's users "make optimization choices" from DrGPUM's findings and
//! then measure the result (Table 4). The advisor closes that loop ahead of
//! time: it replays the recorded memory-usage curve with each fix modelled
//! as a byte reduction over an API-index interval —
//!
//! * **unused allocation** — the object never exists;
//! * **early allocation** — the object exists only from its first touch;
//! * **late deallocation** — the object dies at its last touch;
//! * **memory leak** — treated as a free at the last touch;
//! * **overallocation** — the object shrinks to its accessed bytes;
//! * **temporary idleness** — the object is offloaded across each idle span;
//! * **redundant allocation** — the object occupies its reuse source's
//!   memory instead of new space.
//!
//! The resulting estimate is an *upper bound* (fixes are assumed perfectly
//! composable) but lands close to the measured Table 4 reductions on the
//! paper's workloads — see `table4`'s "est." column.

use crate::analyzer::ObjectMeta;
use crate::object::ObjectId;
use crate::patterns::{PatternEvidence, PatternKind};
use crate::peaks::UsageSample;
use crate::report::{Finding, Report};
use std::collections::HashMap;

/// One modelled fix: subtract `bytes` from the usage curve over the
/// half-open API-index interval `[from, to)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModeledFix {
    /// The fixed object.
    pub object: ObjectId,
    /// Pattern the fix addresses.
    pub pattern: PatternKind,
    /// Bytes saved while the fix is active.
    pub bytes: u64,
    /// First API index the saving applies to.
    pub from: usize,
    /// One-past-last API index the saving applies to.
    pub to: usize,
}

/// The advisor's prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct SavingsEstimate {
    /// Peak of the recorded run.
    pub original_peak: u64,
    /// Predicted peak with all suggestions applied.
    pub estimated_peak: u64,
    /// The individual modelled fixes.
    pub fixes: Vec<ModeledFix>,
}

impl SavingsEstimate {
    /// Predicted reduction in percent.
    pub fn reduction_pct(&self) -> f64 {
        if self.original_peak == 0 {
            return 0.0;
        }
        100.0 * (1.0 - self.estimated_peak as f64 / self.original_peak as f64)
    }
}

fn lifetime_end(meta: &ObjectMeta, curve_len: usize) -> usize {
    meta.free_api.unwrap_or(curve_len)
}

fn fix_for(finding: &Finding, meta: &ObjectMeta, curve_len: usize) -> Vec<ModeledFix> {
    let whole_life = (meta.alloc_api, lifetime_end(meta, curve_len));
    match &finding.evidence {
        PatternEvidence::UnusedAllocation => vec![ModeledFix {
            object: meta.id,
            pattern: PatternKind::UnusedAllocation,
            bytes: meta.size,
            from: whole_life.0,
            to: whole_life.1,
        }],
        PatternEvidence::MemoryLeak => {
            // Free at the last touch; without one the object is unused and
            // the UA fix already removes it.
            Vec::new()
        }
        PatternEvidence::EarlyAllocation { first_access, .. } => vec![ModeledFix {
            object: meta.id,
            pattern: PatternKind::EarlyAllocation,
            bytes: meta.size,
            from: meta.alloc_api,
            to: first_access.idx,
        }],
        PatternEvidence::LateDeallocation { last_access, .. } => vec![ModeledFix {
            object: meta.id,
            pattern: PatternKind::LateDeallocation,
            bytes: meta.size,
            from: last_access.idx + 1,
            to: lifetime_end(meta, curve_len),
        }],
        PatternEvidence::Overallocation { wasted_bytes, .. } => vec![ModeledFix {
            object: meta.id,
            pattern: PatternKind::Overallocation,
            bytes: *wasted_bytes,
            from: whole_life.0,
            to: whole_life.1,
        }],
        PatternEvidence::TemporaryIdleness { spans } => spans
            .iter()
            .map(|s| ModeledFix {
                object: meta.id,
                pattern: PatternKind::TemporaryIdleness,
                bytes: meta.size,
                from: s.from.idx + 1,
                to: s.to.idx,
            })
            .collect(),
        PatternEvidence::RedundantAllocation { .. } => vec![ModeledFix {
            object: meta.id,
            pattern: PatternKind::RedundantAllocation,
            bytes: meta.size,
            from: whole_life.0,
            to: whole_life.1,
        }],
        PatternEvidence::StructuredAccess {
            max_slice_bytes, ..
        } => vec![ModeledFix {
            // The Sec. 7.3 fix: allocate one slice and reuse it across
            // kernel instances instead of the whole object.
            object: meta.id,
            pattern: PatternKind::StructuredAccess,
            bytes: meta.size.saturating_sub(*max_slice_bytes),
            from: whole_life.0,
            to: whole_life.1,
        }],
        // Dead writes, NUAF, and the unified-memory patterns save time,
        // not curve bytes.
        _ => Vec::new(),
    }
}

/// Predicts the achievable peak from a report and the recording it came
/// from.
///
/// A leak also reported as a late deallocation is only modelled once; for
/// each object and API index, the subtracted bytes are capped at the
/// object's size (overlapping fixes on one object do not double-count).
pub fn estimate(report: &Report, usage: &[UsageSample], objects: &[ObjectMeta]) -> SavingsEstimate {
    let by_id: HashMap<ObjectId, &ObjectMeta> = objects.iter().map(|o| (o.id, o)).collect();
    let curve_len = usage.len();
    let mut fixes: Vec<ModeledFix> = Vec::new();
    for finding in &report.findings {
        if let Some(meta) = by_id.get(&finding.object.id) {
            fixes.extend(fix_for(finding, meta, curve_len));
        }
    }

    // Per-object, per-index saving, capped at the object's size.
    let mut savings: HashMap<ObjectId, Vec<u64>> = HashMap::new();
    for fix in &fixes {
        let per_obj = savings
            .entry(fix.object)
            .or_insert_with(|| vec![0u64; curve_len]);
        let cap = by_id.get(&fix.object).map(|m| m.size).unwrap_or(fix.bytes);
        for slot in per_obj
            .iter_mut()
            .take(fix.to.min(curve_len))
            .skip(fix.from)
        {
            *slot = (*slot + fix.bytes).min(cap);
        }
    }
    let mut total = vec![0u64; curve_len];
    for per_obj in savings.values() {
        for (t, s) in total.iter_mut().zip(per_obj) {
            *t += s;
        }
    }

    let original_peak = usage.iter().map(|s| s.bytes_in_use).max().unwrap_or(0);
    let estimated_peak = usage
        .iter()
        .map(|s| {
            s.bytes_in_use
                .saturating_sub(total.get(s.api_idx).copied().unwrap_or(0))
        })
        .max()
        .unwrap_or(0);
    SavingsEstimate {
        original_peak,
        estimated_peak,
        fixes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::{analyze, object_metas};
    use crate::collector::Collector;
    use crate::options::ProfilerOptions;
    use gpu_sim::{DeviceContext, SourceLoc};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn profile(body: impl FnOnce(&mut DeviceContext)) -> SavingsEstimate {
        let mut ctx = DeviceContext::new_default();
        let c = Arc::new(Mutex::new(Collector::new(
            ProfilerOptions::intra_object(),
            ctx.config().device_memory_bytes,
        )));
        ctx.sanitizer_mut().register(c.clone());
        body(&mut ctx);
        let col = c.lock();
        let report = analyze(&col, ctx.call_stack().table(), "rtx3090");
        let metas = object_metas(&col, ctx.call_stack().table());
        estimate(&report, col.usage_curve(), &metas)
    }

    #[test]
    fn unused_allocation_is_fully_reclaimed() {
        let est = profile(|ctx| {
            ctx.push_frame(SourceLoc::new("main", "m.rs", 1));
            let used = ctx.malloc(1000, "used").unwrap();
            let _unused = ctx.malloc(3000, "unused").unwrap();
            ctx.memset(used, 0, 1000).unwrap();
            ctx.free(used).unwrap();
            ctx.pop_frame();
        });
        assert_eq!(est.original_peak, 4000);
        // The unused 3000 bytes disappear entirely.
        assert!(
            est.estimated_peak <= 1000,
            "estimated {}",
            est.estimated_peak
        );
        assert!(est.reduction_pct() >= 75.0);
    }

    #[test]
    fn early_allocation_saving_covers_only_the_gap() {
        let est = profile(|ctx| {
            let early = ctx.malloc(1000, "early").unwrap();
            let other = ctx.malloc(1000, "other").unwrap();
            ctx.memset(other, 0, 1000).unwrap();
            ctx.memset(early, 0, 1000).unwrap(); // first touch
            ctx.free(other).unwrap();
            ctx.free(early).unwrap();
        });
        // Peak is 2000 with both live; deferring `early` to its first touch
        // does not help the peak because `other` is still live then…
        // but the LD fix on `other` (freed after early's touch? no — other
        // is freed right after) interplays. The net estimate must never
        // exceed the original peak and the EA fix must appear.
        assert!(est.estimated_peak <= est.original_peak);
        assert!(est
            .fixes
            .iter()
            .any(|f| f.pattern == PatternKind::EarlyAllocation));
    }

    #[test]
    fn overlapping_fixes_do_not_double_count() {
        let est = profile(|ctx| {
            // One object that is early-allocated AND late-deallocated AND
            // temporarily idle: fixes overlap across its whole life.
            let victim = ctx.malloc(1000, "victim").unwrap();
            let a = ctx.malloc(100, "a").unwrap();
            let b = ctx.malloc(100, "b").unwrap();
            ctx.memset(a, 0, 100).unwrap();
            ctx.memset(b, 0, 100).unwrap();
            ctx.memset(victim, 0, 1000).unwrap();
            ctx.memset(a, 1, 100).unwrap();
            ctx.memset(b, 1, 100).unwrap();
            ctx.memset(victim, 1, 1000).unwrap();
            ctx.memset(a, 2, 100).unwrap();
            ctx.memset(b, 2, 100).unwrap();
            ctx.free(victim).unwrap();
            ctx.free(a).unwrap();
            ctx.free(b).unwrap();
        });
        // Savings on `victim` can never exceed its 1000 bytes at any point.
        assert!(est.original_peak - est.estimated_peak <= 1200);
        assert!(est.estimated_peak >= 200, "a and b remain live");
    }

    #[test]
    fn clean_program_estimates_zero_savings() {
        let est = profile(|ctx| {
            let a = ctx.malloc(500, "a").unwrap();
            ctx.memset(a, 0, 500).unwrap();
            ctx.free(a).unwrap();
        });
        assert_eq!(est.original_peak, est.estimated_peak);
        assert_eq!(est.reduction_pct(), 0.0);
    }
}
