//! The profiler facade: attach to a device context, run the program, get a
//! report.
//!
//! Ties together the online data collector, the offline analyzer, and the
//! GUI exporter — the complete DrGPUM workflow of Fig. 1.

use crate::analyzer;
use crate::collector::Collector;
use crate::error::ProfilerError;
use crate::options::ProfilerOptions;
use crate::report::Report;
use crate::trace_stream::{StreamState, StreamingTraceWriter};
use gpu_sim::pool::CachingPool;
use gpu_sim::DeviceContext;
use parking_lot::Mutex;
use serde_json::Value;
use std::path::Path;
use std::sync::Arc;

/// An attached DrGPUM profiler.
///
/// # Examples
///
/// ```
/// use drgpum_core::{Profiler, ProfilerOptions};
/// use gpu_sim::DeviceContext;
///
/// # fn main() -> Result<(), gpu_sim::SimError> {
/// let mut ctx = DeviceContext::new_default();
/// let profiler = Profiler::attach(&mut ctx, ProfilerOptions::object_level());
///
/// let leak = ctx.malloc(1024, "leak")?;
/// ctx.memset(leak, 0, 1024)?;
/// // ... never freed ...
///
/// let report = profiler.report(&ctx);
/// assert!(report.has_pattern(drgpum_core::PatternKind::MemoryLeak));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Profiler {
    collector: Arc<Mutex<Collector>>,
}

impl Profiler {
    /// Attaches a profiler to `ctx` via the Sanitizer-style instrumentation
    /// API. All GPU APIs invoked on `ctx` from this point on are observed.
    pub fn attach(ctx: &mut DeviceContext, options: ProfilerOptions) -> Self {
        ctx.sanitizer_mut()
            .set_coalescing(options.coalesce_accesses);
        // Pin merge junctions to the element grid so per-element access
        // frequencies (the NUAF detector's input) are identical with and
        // without coalescing.
        ctx.sanitizer_mut()
            .set_coalesce_alignment(options.elem_size.max(1));
        // The slow-path hook measures the unmemoized baseline end to end,
        // so it also disables the simulator-side per-pc allocation memo.
        ctx.sanitizer_mut().set_pc_memo(!options.slow_path);
        let collector = Arc::new(Mutex::new(Collector::new(
            options,
            ctx.config().device_memory_bytes,
        )));
        ctx.sanitizer_mut().register(collector.clone());
        Profiler { collector }
    }

    /// Like [`Profiler::attach`], with a crash-consistent streaming trace:
    /// every API event is appended to `path` as an fsynced delta frame, so
    /// a `kill -9` loses at most the events after the last fsync.
    /// [`crate::trace_io::salvage`] (or `drgpum run --resume`) recovers the
    /// prefix. Call [`Profiler::finish_stream`] for a clean finish marker.
    ///
    /// # Errors
    ///
    /// Returns [`ProfilerError::Stream`] when the trace file cannot be
    /// created or its header cannot be written.
    pub fn attach_streaming(
        ctx: &mut DeviceContext,
        options: ProfilerOptions,
        path: impl AsRef<Path>,
    ) -> Result<Self, ProfilerError> {
        let writer = StreamingTraceWriter::create(path, &ctx.config().name)?;
        let profiler = Profiler::attach(ctx, options);
        profiler
            .collector
            .lock()
            .start_stream(StreamState::new(writer));
        Ok(profiler)
    }

    /// Writes the final checkpoint and clean-finish marker to the
    /// streaming trace, if one is attached. Idempotent.
    ///
    /// # Errors
    ///
    /// Returns [`ProfilerError::Stream`] when the final frames cannot be
    /// written and synced.
    pub fn finish_stream(&self) -> Result<(), ProfilerError> {
        self.collector.lock().finish_stream()
    }

    /// Additionally observes a caching pool's custom allocation APIs
    /// (Sec. 5.4). Requires `track_pool_tensors` in the options for the
    /// tensors to become first-class data objects.
    pub fn observe_pool(&self, pool: &mut CachingPool) {
        pool.register_observer(self.collector.clone());
    }

    /// Shared handle to the underlying collector (for custom analyses).
    pub fn collector(&self) -> Arc<Mutex<Collector>> {
        self.collector.clone()
    }

    /// Runs the offline analysis and produces the report.
    ///
    /// Call after the profiled program finished (the simulated analogue of
    /// process exit).
    pub fn report(&self, ctx: &DeviceContext) -> Report {
        let collector = self.collector.lock();
        analyzer::analyze(&collector, ctx.call_stack().table(), &ctx.config().name)
    }

    /// Predicts the peak-memory reduction achievable by applying the
    /// report's suggestions (the advisor; see [`crate::advisor`]).
    pub fn estimate_savings(&self, ctx: &DeviceContext) -> crate::advisor::SavingsEstimate {
        let collector = self.collector.lock();
        let report = analyzer::analyze(&collector, ctx.call_stack().table(), &ctx.config().name);
        let metas = analyzer::object_metas(&collector, ctx.call_stack().table());
        crate::advisor::estimate(&report, collector.usage_curve(), &metas)
    }

    /// Builds the Perfetto GUI trace (Fig. 7) for the profiled run.
    pub fn perfetto_trace(&self, ctx: &DeviceContext) -> Value {
        let collector = self.collector.lock();
        let report = analyzer::analyze(&collector, ctx.call_stack().table(), &ctx.config().name);
        crate::perfetto::trace_json(&collector, ctx.call_stack().table(), &report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::PatternKind;
    use gpu_sim::{LaunchConfig, StreamId};

    #[test]
    fn facade_end_to_end() {
        let mut ctx = DeviceContext::new_default();
        let profiler = Profiler::attach(&mut ctx, ProfilerOptions::object_level());
        let a = ctx.malloc(1000, "a").unwrap();
        let b = ctx.malloc(1000, "b").unwrap();
        ctx.memset(a, 0, 1000).unwrap();
        ctx.memset(b, 0, 1000).unwrap();
        ctx.launch(
            "k",
            LaunchConfig::cover(16, 16).unwrap(),
            StreamId::DEFAULT,
            |t| {
                let i = t.global_x();
                if i < 16 {
                    let v = t.load_f32(a + i * 4);
                    t.store_f32(b + i * 4, v);
                }
            },
        )
        .unwrap();
        ctx.free(a).unwrap();
        ctx.free(b).unwrap();
        let report = profiler.report(&ctx);
        assert_eq!(report.stats.gpu_apis, 7);
        assert_eq!(report.stats.objects, 2);
        assert_eq!(report.stats.leaked_objects, 0);
        assert_eq!(report.platform, "rtx3090");
    }

    #[test]
    fn pool_profiling_via_facade() {
        let mut ctx = DeviceContext::new_default();
        let profiler = Profiler::attach(
            &mut ctx,
            ProfilerOptions::object_level().with_pool_tracking(),
        );
        let mut pool = CachingPool::reserve(&mut ctx, 1 << 16).unwrap();
        profiler.observe_pool(&mut pool);
        let t = pool.alloc(&mut ctx, 512, "unused_tensor").unwrap();
        // Run an unrelated GPU API so the tensor has trace context.
        let a = ctx.malloc(64, "a").unwrap();
        ctx.memset(a, 0, 64).unwrap();
        ctx.free(a).unwrap();
        pool.free(t).unwrap();
        pool.release(&mut ctx).unwrap();
        let report = profiler.report(&ctx);
        // The tensor is an unused allocation; the slab itself is excluded.
        let ua: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.kind() == PatternKind::UnusedAllocation)
            .collect();
        assert_eq!(ua.len(), 1);
        assert_eq!(ua[0].object.label, "unused_tensor");
    }

    #[test]
    fn profiler_is_cloneable_and_shares_state() {
        let mut ctx = DeviceContext::new_default();
        let p1 = Profiler::attach(&mut ctx, ProfilerOptions::object_level());
        let p2 = p1.clone();
        let a = ctx.malloc(64, "a").unwrap();
        ctx.free(a).unwrap();
        assert_eq!(p2.report(&ctx).stats.objects, 1);
    }
}
