//! Memory-usage timeline and peak analysis.
//!
//! DrGPUM's offline analyzer "pinpoints data objects involved in memory
//! peaks" and highlights the top two peaks in the GUI (Sec. 4). The
//! collector records device memory in use after every GPU API; this module
//! finds the local maxima of that curve, ranks them, and reports the data
//! objects live at each peak.

use crate::object::{ObjectId, ObjectRegistry};

/// One sample of the usage curve: bytes in use after GPU API `api_idx`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UsageSample {
    /// Trace position of the GPU API.
    pub api_idx: usize,
    /// Device bytes allocated after the API completed.
    pub bytes_in_use: u64,
}

/// One memory peak.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryPeak {
    /// Trace position at which the peak occurred.
    pub api_idx: usize,
    /// Peak size in bytes.
    pub bytes: u64,
    /// Objects live at the peak, largest first.
    pub live_objects: Vec<(ObjectId, u64)>,
}

/// Finds the `top_k` highest *local maxima* of the usage curve.
///
/// A sample is a local maximum if it is strictly greater than the previous
/// distinct value and at least as large as the next distinct value. Plateaus
/// report their first sample. Peaks are returned highest-first.
///
/// # Examples
///
/// ```
/// use drgpum_core::peaks::{find_peaks, UsageSample};
///
/// let curve: Vec<UsageSample> = [100u64, 300, 200, 500, 100]
///     .iter()
///     .enumerate()
///     .map(|(i, &b)| UsageSample { api_idx: i, bytes_in_use: b })
///     .collect();
/// let peaks = find_peaks(&curve, 2);
/// assert_eq!(peaks[0], (3, 500));
/// assert_eq!(peaks[1], (1, 300));
/// ```
pub fn find_peaks(curve: &[UsageSample], top_k: usize) -> Vec<(usize, u64)> {
    if curve.is_empty() || top_k == 0 {
        return Vec::new();
    }
    let mut maxima: Vec<(usize, u64)> = Vec::new();
    let n = curve.len();
    for i in 0..n {
        let b = curve[i].bytes_in_use;
        if b == 0 {
            continue;
        }
        // Previous distinct value.
        let rising = {
            let mut j = i;
            loop {
                if j == 0 {
                    break true;
                }
                j -= 1;
                let pb = curve[j].bytes_in_use;
                if pb < b {
                    break true;
                }
                if pb > b {
                    break false;
                }
            }
        };
        // Skip non-first samples of a plateau.
        let plateau_follower = i > 0 && curve[i - 1].bytes_in_use == b;
        let falling_after = {
            let mut j = i + 1;
            loop {
                if j >= n {
                    break true;
                }
                let nb = curve[j].bytes_in_use;
                if nb < b {
                    break true;
                }
                if nb > b {
                    break false;
                }
                j += 1;
            }
        };
        if rising && falling_after && !plateau_follower {
            maxima.push((curve[i].api_idx, b));
        }
    }
    maxima.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    maxima.truncate(top_k);
    maxima
}

/// Resolves the objects live at each peak: those whose lifetime (in trace
/// positions) covers the peak's API index.
pub fn peaks_with_objects(
    curve: &[UsageSample],
    registry: &ObjectRegistry,
    top_k: usize,
) -> Vec<MemoryPeak> {
    find_peaks(curve, top_k)
        .into_iter()
        .map(|(api_idx, bytes)| {
            let mut live: Vec<(ObjectId, u64)> = registry
                .iter()
                .filter(|o| {
                    o.alloc_api <= api_idx && o.free_api.map(|f| f > api_idx).unwrap_or(true)
                })
                .map(|o| (o.id, o.size()))
                .collect();
            live.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            MemoryPeak {
                api_idx,
                bytes,
                live_objects: live,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectSource;
    use gpu_sim::{AddrRange, CallPath, DevicePtr};

    fn curve(values: &[u64]) -> Vec<UsageSample> {
        values
            .iter()
            .enumerate()
            .map(|(i, &b)| UsageSample {
                api_idx: i,
                bytes_in_use: b,
            })
            .collect()
    }

    #[test]
    fn single_ramp_has_one_peak() {
        let peaks = find_peaks(&curve(&[10, 20, 30, 20, 10]), 2);
        assert_eq!(peaks, vec![(2, 30)]);
    }

    #[test]
    fn two_distinct_peaks_ranked_by_height() {
        let peaks = find_peaks(&curve(&[10, 50, 10, 90, 10]), 2);
        assert_eq!(peaks, vec![(3, 90), (1, 50)]);
    }

    #[test]
    fn top_k_truncates() {
        let peaks = find_peaks(&curve(&[1, 5, 1, 9, 1, 7, 1]), 2);
        assert_eq!(peaks.len(), 2);
        assert_eq!(peaks[0].1, 9);
        assert_eq!(peaks[1].1, 7);
    }

    #[test]
    fn plateau_reports_first_sample() {
        let peaks = find_peaks(&curve(&[1, 5, 5, 5, 1]), 3);
        assert_eq!(peaks, vec![(1, 5)]);
    }

    #[test]
    fn monotone_rise_peaks_at_the_end() {
        let peaks = find_peaks(&curve(&[1, 2, 3]), 1);
        assert_eq!(peaks, vec![(2, 3)]);
    }

    #[test]
    fn empty_and_zero_curves() {
        assert!(find_peaks(&[], 2).is_empty());
        assert!(find_peaks(&curve(&[0, 0, 0]), 2).is_empty());
    }

    #[test]
    fn live_objects_resolved_at_peak() {
        let mut reg = ObjectRegistry::new();
        // Object a: alive [0, 3); object b: alive [1, ∞); object c: [4, ∞).
        let a = reg.on_alloc(
            "a",
            AddrRange::new(DevicePtr::new(0x1000), 100),
            ObjectSource::Cuda,
            0,
            true,
            CallPath::empty(),
        );
        let b = reg.on_alloc(
            "b",
            AddrRange::new(DevicePtr::new(0x2000), 300),
            ObjectSource::Cuda,
            1,
            true,
            CallPath::empty(),
        );
        reg.on_free(DevicePtr::new(0x1000), 3);
        let _c = reg.on_alloc(
            "c",
            AddrRange::new(DevicePtr::new(0x3000), 50),
            ObjectSource::Cuda,
            4,
            true,
            CallPath::empty(),
        );
        // Usage peaks at api 1 (a+b live).
        let samples = curve(&[100, 400, 400, 300, 350]);
        let peaks = peaks_with_objects(&samples, &reg, 1);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].api_idx, 1);
        let ids: Vec<ObjectId> = peaks[0].live_objects.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![b, a], "largest first");
    }
}
