//! The offline analyzer (Sec. 4): builds the timestamp-augmented trace from
//! collected data, runs every pattern detector, resolves call paths to
//! source locations (the DWARF step), pinpoints memory peaks, and assembles
//! the final [`Report`].

use crate::collector::Collector;
use crate::depgraph::DependencyGraph;
use crate::governor::CancelToken;
use crate::object::ObjectSource;
use crate::patterns::{
    intra, object_level, redundant, ObjectAccess, ObjectView, PatternFinding, TraceView,
};
use crate::peaks;
use crate::report::{
    suggestion_for, wasted_bytes_estimate, DegradationRecord, DetectorOutcome, DetectorStatus,
    Finding, ObjectSummary, PeakSummary, Report, ReportStats,
};
use gpu_sim::{CallPath, FrameTable};
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Builds the [`TraceView`] — the timestamp-augmented object-level memory
/// access trace of Fig. 2 — from the collector's raw data.
pub fn build_trace_view(collector: &Collector) -> TraceView {
    let apis = collector.gpu_apis();
    let vertices: Vec<_> = apis.iter().map(|a| a.vertex.clone()).collect();
    let graph = DependencyGraph::build(&vertices);
    let api_ts = graph.timestamps().to_vec();
    let api_names: Vec<String> = apis.iter().map(|a| a.name.clone()).collect();
    let api_kernels: Vec<Option<String>> = apis
        .iter()
        .map(|a| (a.mnemonic == "KERL").then(|| a.detail.clone()))
        .collect();
    let api_is_dealloc: Vec<bool> = apis.iter().map(|a| a.mnemonic == "FREE").collect();

    // Group accesses per object. An access with a dangling API index (which
    // a faulting run can produce) is dropped rather than panicking.
    let mut per_object: HashMap<_, Vec<ObjectAccess>> = HashMap::new();
    for acc in collector.accesses() {
        let (Some(&ts), Some(name)) = (api_ts.get(acc.api_idx), api_names.get(acc.api_idx)) else {
            continue;
        };
        per_object
            .entry(acc.object)
            .or_default()
            .push(ObjectAccess {
                api: crate::patterns::ApiRef {
                    idx: acc.api_idx,
                    ts,
                    name: name.clone(),
                },
                read: acc.read,
                write: acc.write,
                via: acc.via,
            });
    }

    let objects: Vec<ObjectView> = collector
        .registry()
        .iter()
        .map(|obj| {
            let mut accesses = per_object.remove(&obj.id).unwrap_or_default();
            accesses.sort_by_key(|a| (a.api.ts, a.api.idx));
            let mk_ref = |idx: usize| crate::patterns::ApiRef {
                idx,
                ts: api_ts.get(idx).copied().unwrap_or(0),
                name: api_names
                    .get(idx)
                    .cloned()
                    .unwrap_or_else(|| format!("<api {idx}>")),
            };
            let (alloc, alloc_anchor) = if obj.alloc_is_api {
                (Some(mk_ref(obj.alloc_api)), obj.alloc_api)
            } else {
                (None, obj.alloc_api)
            };
            let (free, free_anchor) = match obj.free_api {
                Some(idx) if obj.free_is_api => (Some(mk_ref(idx)), None),
                Some(idx) => (None, Some(idx)),
                None => (None, None),
            };
            ObjectView {
                id: obj.id,
                label: obj.label.clone(),
                size: obj.size(),
                alloc,
                alloc_anchor,
                free,
                free_anchor,
                accesses,
                analyzable: obj.source.is_analyzable(),
            }
        })
        .collect();

    TraceView {
        api_ts,
        api_names,
        api_kernels,
        api_is_dealloc,
        objects,
    }
}

/// Resolves a call path to strings, innermost frame first.
fn resolve_path(path: &CallPath, frames: &FrameTable) -> Vec<String> {
    path.frames()
        .iter()
        .rev()
        .map(|id| {
            frames
                .resolve(*id)
                .map(|loc| loc.to_string())
                .unwrap_or_else(|| format!("<unknown frame {}>", id.0))
        })
        .collect()
}

/// Everything the assembly stage needs to know about one data object,
/// with call paths already resolved to source strings. Both the live path
/// ([`analyze`]) and the offline replay path ([`crate::trace_io`]) produce
/// this form.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectMeta {
    /// Stable id.
    pub id: crate::object::ObjectId,
    /// Program label.
    pub label: String,
    /// Size in bytes.
    pub size: u64,
    /// Provenance.
    pub source: ObjectSource,
    /// Resolved allocation call path, innermost frame first.
    pub alloc_path: Vec<String>,
    /// Trace position after which the object existed.
    pub alloc_api: usize,
    /// Trace position of the deallocation, `None` if leaked.
    pub free_api: Option<usize>,
}

impl ObjectMeta {
    /// Returns `true` if the object was never deallocated.
    pub fn leaked(&self) -> bool {
        self.free_api.is_none()
    }
}

/// Recovers a human-readable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Outcome of one isolated detector run: findings, `None` if the detector
/// observed cancellation (watchdog deadline), or the panic payload.
type DetectorResult =
    std::result::Result<Option<Vec<PatternFinding>>, Box<dyn std::any::Any + Send>>;

/// Runs one detector family under panic isolation. Safe to call from a
/// worker thread; pair with [`record_detector`] on the owning thread.
fn run_detector(body: impl FnOnce() -> Option<Vec<PatternFinding>>) -> DetectorResult {
    catch_unwind(AssertUnwindSafe(body))
}

/// Fault-injection hook for the watchdog tests: when
/// `DRGPUM_FAULT_STALL_DETECTOR` is set to `<name>:<millis>`, the named
/// detector family busy-waits that long (polling its cancel token) before
/// doing any real work — a deterministic stand-in for a wedged detector.
fn injected_stall(name: &str) -> Option<u64> {
    let spec = std::env::var("DRGPUM_FAULT_STALL_DETECTOR").ok()?;
    let (who, millis) = spec.split_once(':')?;
    if who != name {
        return None;
    }
    millis.trim().parse().ok()
}

/// Cooperatively sleeps through an injected stall. Returns `None` (the
/// cancelled outcome) if the token is cancelled before the stall elapses.
fn serve_stall(name: &str, cancel: &CancelToken) -> Option<()> {
    let millis = match injected_stall(name) {
        Some(ms) => ms,
        None => return Some(()),
    };
    let until = Instant::now() + Duration::from_millis(millis);
    while Instant::now() < until {
        if cancel.is_cancelled() {
            return None;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    Some(())
}

/// Folds one detector outcome into the report accumulators, appending its
/// findings (if it succeeded) and recording its status either way.
fn record_detector(
    name: &str,
    result: DetectorResult,
    deadline_ms: Option<u64>,
    raw: &mut Vec<PatternFinding>,
    statuses: &mut Vec<DetectorStatus>,
) {
    match result {
        Ok(Some(found)) => {
            statuses.push(DetectorStatus {
                name: name.to_owned(),
                outcome: DetectorOutcome::Ok {
                    findings: found.len(),
                },
            });
            raw.extend(found);
        }
        Ok(None) => {
            statuses.push(DetectorStatus {
                name: name.to_owned(),
                outcome: DetectorOutcome::TimedOut {
                    deadline_ms: deadline_ms.unwrap_or(0),
                },
            });
        }
        Err(payload) => {
            statuses.push(DetectorStatus {
                name: name.to_owned(),
                outcome: DetectorOutcome::Failed {
                    message: panic_message(payload),
                },
            });
        }
    }
}

/// Runs all detectors over prepared inputs and assembles the final report.
///
/// Shared by the online path (profiling a live context) and the offline
/// path (re-analyzing a saved trace, possibly with different thresholds).
/// Each detector family runs under panic isolation: one crashing detector
/// loses only its own findings and is marked `Failed` in the report's
/// detector statuses. `degradations` carries downgrade records accumulated
/// upstream (collector fallbacks, trace salvage losses).
#[allow(clippy::too_many_arguments)] // the two call sites pass through prepared inputs 1:1
pub fn assemble_report(
    trace: &TraceView,
    intra: &[crate::patterns::intra::IntraObjectData],
    usage: &[crate::peaks::UsageSample],
    objects: &[ObjectMeta],
    unified: &[crate::patterns::unified::UnifiedPageStats],
    thresholds: &crate::options::Thresholds,
    platform: &str,
    degradations: Vec<DegradationRecord>,
) -> Report {
    // The offline path (reanalysis of a saved trace) honors the same env
    // knobs as a live session; an explicit budget is threaded through
    // `assemble_report_governed` by `analyze`.
    let budget = crate::governor::ResourceBudget::default().apply_env();
    assemble_report_governed(
        trace,
        intra,
        usage,
        objects,
        unified,
        thresholds,
        platform,
        degradations,
        budget.detector_deadline_ms,
    )
}

/// [`assemble_report`] with an explicit per-detector watchdog deadline.
///
/// When `detector_deadline_ms` is set, a watchdog polls the four detector
/// threads; any family still running at the deadline has its
/// [`CancelToken`] cancelled and is recorded as
/// [`DetectorOutcome::TimedOut`]. Families that finished in time are
/// unaffected — their findings land in the report exactly as without a
/// deadline.
#[allow(clippy::too_many_arguments)] // pass-through of prepared inputs, same as assemble_report
pub fn assemble_report_governed(
    trace: &TraceView,
    intra: &[crate::patterns::intra::IntraObjectData],
    usage: &[crate::peaks::UsageSample],
    objects: &[ObjectMeta],
    unified: &[crate::patterns::unified::UnifiedPageStats],
    thresholds: &crate::options::Thresholds,
    platform: &str,
    degradations: Vec<DegradationRecord>,
    detector_deadline_ms: Option<u64>,
) -> Report {
    // Pattern detection. The four families are independent, so they run on
    // scoped worker threads, each under the same per-family panic isolation
    // as before. Results are folded in a fixed order (the serial order), so
    // the report — findings, statuses, serialization — is identical to a
    // single-threaded run.
    let mut raw: Vec<PatternFinding> = Vec::new();
    let mut detectors: Vec<DetectorStatus> = Vec::new();
    let cancels: [CancelToken; 4] = std::array::from_fn(|_| CancelToken::new());
    let (c_obj, c_red, c_intra, c_uni) = (&cancels[0], &cancels[1], &cancels[2], &cancels[3]);
    let (r_obj, r_red, r_intra, r_uni) = std::thread::scope(|s| {
        let obj = s.spawn(|| {
            run_detector(|| {
                serve_stall("object_level", c_obj)?;
                object_level::detect_all_cancellable(trace, thresholds, c_obj)
            })
        });
        let red = s.spawn(|| {
            run_detector(|| {
                serve_stall("redundant", c_red)?;
                redundant::detect_redundant_allocations_cancellable(
                    trace,
                    thresholds.redundant_size_pct,
                    c_red,
                )
            })
        });
        let intra_h = s.spawn(|| {
            run_detector(|| {
                serve_stall("intra", c_intra)?;
                intra::detect_all_cancellable(intra, trace, thresholds, c_intra)
            })
        });
        let uni = s.spawn(|| {
            run_detector(|| {
                serve_stall("unified", c_uni)?;
                crate::patterns::unified::detect_all_cancellable(unified, thresholds, c_uni)
            })
        });
        // Watchdog: poll until every family finished or the deadline
        // passed, then cancel only the stragglers. Cancellation is
        // cooperative — the join below still waits for the detector to
        // observe its token, which the polling loops do within one
        // iteration.
        if let Some(ms) = detector_deadline_ms {
            let deadline = Instant::now() + Duration::from_millis(ms);
            let unfinished = || {
                !(obj.is_finished()
                    && red.is_finished()
                    && intra_h.is_finished()
                    && uni.is_finished())
            };
            while unfinished() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            if !obj.is_finished() {
                c_obj.cancel();
            }
            if !red.is_finished() {
                c_red.cancel();
            }
            if !intra_h.is_finished() {
                c_intra.cancel();
            }
            if !uni.is_finished() {
                c_uni.cancel();
            }
        }
        // A detector panic is caught *inside* the worker; a join error can
        // only be a secondary panic (e.g. in a Drop) — treat its payload
        // the same way.
        let join =
            |h: std::thread::ScopedJoinHandle<'_, DetectorResult>| h.join().unwrap_or_else(Err);
        (join(obj), join(red), join(intra_h), join(uni))
    });
    let ms = detector_deadline_ms;
    record_detector("object_level", r_obj, ms, &mut raw, &mut detectors);
    record_detector("redundant", r_red, ms, &mut raw, &mut detectors);
    record_detector("intra", r_intra, ms, &mut raw, &mut detectors);
    record_detector("unified", r_uni, ms, &mut raw, &mut detectors);

    // Peak analysis over the object metadata.
    let by_id: HashMap<_, &ObjectMeta> = objects.iter().map(|o| (o.id, o)).collect();
    let peak_points = peaks::find_peaks(usage, thresholds.top_peaks);
    let peak_list: Vec<(usize, u64, Vec<&ObjectMeta>)> = peak_points
        .into_iter()
        .map(|(api_idx, bytes)| {
            let mut live: Vec<&ObjectMeta> = objects
                .iter()
                .filter(|o| {
                    o.alloc_api <= api_idx && o.free_api.map(|f| f > api_idx).unwrap_or(true)
                })
                .collect();
            live.sort_by(|a, b| b.size.cmp(&a.size).then(a.id.cmp(&b.id)));
            (api_idx, bytes, live)
        })
        .collect();
    let peak_objects: HashSet<_> = peak_list
        .iter()
        .flat_map(|(_, _, live)| live.iter().map(|o| o.id))
        .collect();
    let peaks: Vec<PeakSummary> = peak_list
        .iter()
        .map(|(api_idx, bytes, live)| PeakSummary {
            api_name: trace.api_names.get(*api_idx).cloned().unwrap_or_default(),
            api_idx: *api_idx,
            bytes: *bytes,
            objects: live.iter().map(|o| (o.label.clone(), o.size)).collect(),
        })
        .collect();

    // Assemble findings with suggestions.
    let mut findings: Vec<Finding> = raw
        .into_iter()
        .filter_map(|pf| {
            let obj = by_id.get(&pf.object)?;
            let summary = ObjectSummary {
                id: obj.id,
                label: obj.label.clone(),
                size: obj.size,
                source: obj.source,
                alloc_path: obj.alloc_path.clone(),
            };
            let suggestion = suggestion_for(&pf, &summary.label);
            let wasted = wasted_bytes_estimate(&pf, summary.size);
            Some(Finding {
                object: summary,
                suggestion,
                wasted_bytes: wasted,
                at_peak: peak_objects.contains(&pf.object),
                evidence: pf.evidence,
            })
        })
        .collect();
    findings.sort_by(|a, b| {
        b.priority()
            .cmp(&a.priority())
            .then(a.object.id.cmp(&b.object.id))
    });

    // Statistics.
    let leaked: Vec<&ObjectMeta> = objects
        .iter()
        .filter(|o| o.leaked() && o.source != ObjectSource::PoolSlab)
        .collect();
    let stats = ReportStats {
        gpu_apis: trace.api_ts.len() as u64,
        objects: objects.len() as u64,
        peak_bytes: usage.iter().map(|s| s.bytes_in_use).max().unwrap_or(0),
        leaked_objects: leaked.len() as u64,
        leaked_bytes: leaked.iter().map(|o| o.size).sum(),
    };

    Report {
        platform: platform.to_owned(),
        findings,
        peaks,
        stats,
        detectors,
        degradations,
    }
}

/// Extracts the resolved [`ObjectMeta`] list from a collector.
pub fn object_metas(collector: &Collector, frames: &FrameTable) -> Vec<ObjectMeta> {
    collector
        .registry()
        .iter()
        .map(|o| ObjectMeta {
            id: o.id,
            label: o.label.clone(),
            size: o.size(),
            source: o.source,
            alloc_path: resolve_path(&o.alloc_path, frames),
            alloc_api: o.alloc_api,
            free_api: o.free_api,
        })
        .collect()
}

/// Runs the complete offline analysis and assembles the report.
///
/// `frames` is the frame table of the profiled context (the stand-in for
/// DWARF debugging sections); `platform` names the machine for the report
/// header.
pub fn analyze(collector: &Collector, frames: &FrameTable, platform: &str) -> Report {
    let trace = build_trace_view(collector);
    let intra_data: Vec<_> = collector.intra_data().into_iter().cloned().collect();
    let objects = object_metas(collector, frames);
    assemble_report_governed(
        &trace,
        &intra_data,
        collector.usage_curve(),
        &objects,
        &collector.unified_page_stats(),
        &collector.options().thresholds,
        platform,
        collector.degradations().to_vec(),
        collector.budget().detector_deadline_ms,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::ProfilerOptions;
    use crate::patterns::PatternKind;
    use gpu_sim::sanitizer::SanitizerHooks;
    use gpu_sim::{DeviceContext, LaunchConfig, SourceLoc, StreamId};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn run_and_analyze(opts: ProfilerOptions, body: impl FnOnce(&mut DeviceContext)) -> Report {
        let mut ctx = DeviceContext::new_default();
        let c = Arc::new(Mutex::new(Collector::new(
            opts,
            ctx.config().device_memory_bytes,
        )));
        ctx.sanitizer_mut().register(c.clone());
        body(&mut ctx);
        let col = c.lock();
        analyze(&col, ctx.call_stack().table(), &ctx.config().name)
    }

    #[test]
    fn end_to_end_early_allocation_and_leak() {
        let report = run_and_analyze(ProfilerOptions::object_level(), |ctx| {
            ctx.with_frame(SourceLoc::new("main", "app.rs", 1), |ctx| {
                let early = ctx.malloc(4096, "early").unwrap(); // EA victim
                let other = ctx.malloc(4096, "other").unwrap();
                ctx.memset(other, 0, 4096).unwrap(); // intervening API
                ctx.memset(early, 0, 4096).unwrap(); // first touch of early
                ctx.free(other).unwrap();
                // `early` is never freed → memory leak.
            });
        });
        assert!(report.has_pattern(PatternKind::EarlyAllocation));
        assert!(report.has_pattern(PatternKind::MemoryLeak));
        let ea = report.findings_for("early");
        assert!(ea.iter().any(|f| f.kind() == PatternKind::EarlyAllocation));
        assert_eq!(report.stats.leaked_objects, 1);
        assert_eq!(report.stats.leaked_bytes, 4096);
        // Call paths resolved through the frame table.
        let leak = report
            .findings_for("early")
            .into_iter()
            .find(|f| f.kind() == PatternKind::MemoryLeak)
            .unwrap();
        assert!(leak.object.alloc_path[0].contains("main"));
    }

    #[test]
    fn end_to_end_intra_object_overallocation() {
        let report = run_and_analyze(ProfilerOptions::intra_object(), |ctx| {
            let big = ctx.malloc(100_000, "big").unwrap();
            ctx.launch(
                "touch_little",
                LaunchConfig::cover(16, 16).unwrap(),
                StreamId::DEFAULT,
                |t| {
                    let i = t.global_x();
                    if i < 16 {
                        t.store_f32(big + i * 4, 1.0);
                    }
                },
            )
            .unwrap();
            ctx.free(big).unwrap();
        });
        assert!(report.has_pattern(PatternKind::Overallocation));
        let f = &report.findings_for("big")[0];
        match &f.evidence {
            crate::patterns::PatternEvidence::Overallocation { accessed_pct, .. } => {
                assert!(*accessed_pct < 1.0);
            }
            _ => {
                // Overallocation may not be the first finding; search it.
                assert!(report
                    .findings_for("big")
                    .iter()
                    .any(|f| f.kind() == PatternKind::Overallocation));
            }
        }
    }

    #[test]
    fn peak_objects_are_flagged() {
        let report = run_and_analyze(ProfilerOptions::object_level(), |ctx| {
            let a = ctx.malloc(10_000, "a").unwrap();
            let b = ctx.malloc(20_000, "b").unwrap();
            ctx.memset(a, 0, 10_000).unwrap();
            ctx.memset(b, 0, 20_000).unwrap();
            ctx.free(a).unwrap();
            ctx.free(b).unwrap();
        });
        assert!(!report.peaks.is_empty());
        assert_eq!(report.peaks[0].bytes, 30_000);
        assert_eq!(report.stats.peak_bytes, 30_000);
        let labels: Vec<&str> = report.peaks[0]
            .objects
            .iter()
            .map(|(l, _)| l.as_str())
            .collect();
        assert_eq!(labels, ["b", "a"], "largest first");
    }

    #[test]
    fn trace_view_timestamps_are_invocation_order_single_stream() {
        let mut ctx = DeviceContext::new_default();
        let c = Arc::new(Mutex::new(Collector::new(
            ProfilerOptions::object_level(),
            ctx.config().device_memory_bytes,
        )));
        ctx.sanitizer_mut().register(c.clone());
        let a = ctx.malloc(64, "a").unwrap();
        ctx.memset(a, 0, 64).unwrap();
        ctx.free(a).unwrap();
        let col = c.lock();
        let tv = build_trace_view(&col);
        assert_eq!(tv.api_ts, vec![0, 1, 2]);
        assert_eq!(tv.objects.len(), 1);
        assert_eq!(tv.objects[0].accesses.len(), 1);
    }

    /// Verify the hooks trait is object-safe the way the profiler uses it.
    #[test]
    fn collector_is_sanitizer_hooks() {
        fn takes_hooks<T: SanitizerHooks>(_t: &T) {}
        let c = Collector::new(ProfilerOptions::object_level(), 1 << 30);
        takes_hooks(&c);
    }
}
