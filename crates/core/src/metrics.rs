//! Metrics quantifying inefficiency severity.
//!
//! * fragmentation — Eq. (1) of the paper;
//! * coefficient of variation — the variance measure behind *non-uniform
//!   access frequency* (Def. 3.9, footnote 3);
//! * inefficiency distance — the timestamp gap between dependent GPU APIs
//!   (Sec. 5.3).

use crate::accessmap::AccessBitmap;

/// Coefficient of variation (stddev / mean) of `values`, as a percentage.
///
/// Returns 0.0 for fewer than two values or a zero mean.
///
/// # Examples
///
/// ```
/// use drgpum_core::metrics::coefficient_of_variation_pct;
///
/// let uniform = coefficient_of_variation_pct([4.0, 4.0, 4.0]);
/// assert_eq!(uniform, 0.0);
/// let skewed = coefficient_of_variation_pct([1.0, 1.0, 10.0]);
/// assert!(skewed > 100.0);
/// ```
pub fn coefficient_of_variation_pct(values: impl IntoIterator<Item = f64>) -> f64 {
    // Non-finite samples are dropped up front: one NaN would otherwise
    // poison the mean, propagate to the result, and make every threshold
    // compare downstream (`cov > nuaf_cov_pct`) silently false.
    let values: Vec<f64> = values.into_iter().filter(|v| v.is_finite()).collect();
    if values.len() < 2 {
        return 0.0;
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let cov = (var.sqrt() / mean) * 100.0;
    // Overflowed intermediates (inf - inf, inf / inf) must not escape as
    // NaN; report 0 ("no evidence of skew") rather than a poisoned value.
    if cov.is_finite() {
        cov
    } else {
        0.0
    }
}

/// Memory fragmentation of the unaccessed portion of a data object — the
/// paper's Eq. (1):
///
/// ```text
/// Frag_O = 1 - largest unaccessed chunk / total unaccessed bytes
/// ```
///
/// Returns 0.0 when nothing is unaccessed (nothing to shrink — and nothing
/// fragmented). A value near 0 means the waste is one big chunk (easy to
/// shrink or free); a value near 1 means the waste is scattered.
pub fn fragmentation_pct(bitmap: &AccessBitmap) -> f64 {
    let unaccessed = bitmap.count_clear();
    if unaccessed == 0 {
        return 0.0;
    }
    let largest = bitmap.largest_clear_run();
    (1.0 - largest as f64 / unaccessed as f64) * 100.0
}

/// Percentage of bytes of a data object accessed at least once.
pub fn accessed_pct(bitmap: &AccessBitmap) -> f64 {
    bitmap.accessed_fraction() * 100.0
}

/// Inefficiency distance: the difference between the topological timestamps
/// of two dependent GPU APIs (Sec. 5.3). Larger distances mean the wasted
/// memory was held across more of the execution.
pub fn inefficiency_distance(earlier_ts: u64, later_ts: u64) -> u64 {
    later_ts.saturating_sub(earlier_ts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cov_edge_cases() {
        assert_eq!(coefficient_of_variation_pct([]), 0.0);
        assert_eq!(coefficient_of_variation_pct([5.0]), 0.0);
        assert_eq!(coefficient_of_variation_pct([0.0, 0.0]), 0.0);
    }

    #[test]
    fn cov_never_returns_nan() {
        for values in [
            vec![f64::NAN, 1.0, 2.0],
            vec![f64::INFINITY, 1.0],
            vec![f64::NEG_INFINITY, f64::INFINITY],
            vec![f64::MAX, f64::MAX, f64::MAX],
            vec![-1.0, 1.0], // mean exactly zero
        ] {
            let cov = coefficient_of_variation_pct(values.iter().copied());
            assert!(cov.is_finite(), "{values:?} -> {cov}");
        }
        // Dropping the NaN leaves [1.0, 2.0], which has a real CoV.
        assert!(coefficient_of_variation_pct([f64::NAN, 1.0, 2.0]) > 0.0);
    }

    #[test]
    fn cov_known_value() {
        // values 2, 4: mean 3, population stddev 1 → CoV 33.33%.
        let cov = coefficient_of_variation_pct([2.0, 4.0]);
        assert!((cov - 33.333).abs() < 0.01, "got {cov}");
    }

    #[test]
    fn fragmentation_single_chunk_is_zero() {
        let mut bm = AccessBitmap::new(100);
        bm.set_range(0, 50); // one clear chunk [50, 100)
        assert_eq!(fragmentation_pct(&bm), 0.0);
    }

    #[test]
    fn fragmentation_scattered_waste_is_high() {
        let mut bm = AccessBitmap::new(100);
        // Access every other byte: 50 clear chunks of 1 byte each.
        for i in (0..100).step_by(2) {
            bm.set_range(i, i + 1);
        }
        let frag = fragmentation_pct(&bm);
        assert!((frag - 98.0).abs() < 1e-9, "1 - 1/50 = 98%, got {frag}");
    }

    #[test]
    fn fragmentation_fully_accessed_is_zero() {
        let mut bm = AccessBitmap::new(10);
        bm.set_range(0, 10);
        assert_eq!(fragmentation_pct(&bm), 0.0);
    }

    #[test]
    fn minimdock_like_numbers() {
        // Paper Sec. 7.6: 2.4e-3 % accessed, 4.89e-3 % fragmentation —
        // a giant object with one tiny accessed prefix.
        let mut bm = AccessBitmap::new(1_000_000);
        bm.set_range(0, 24);
        assert!(accessed_pct(&bm) < 0.01);
        assert!(fragmentation_pct(&bm) < 0.01);
    }

    #[test]
    fn distance_saturates() {
        assert_eq!(inefficiency_distance(5, 9), 4);
        assert_eq!(inefficiency_distance(9, 5), 0);
    }
}
