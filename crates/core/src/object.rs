//! Data objects and the memory map `M` (Sec. 5.1).
//!
//! DrGPUM maintains a memory map from live address ranges to data objects.
//! At each allocation the range and the unwound call path are inserted; at
//! each deallocation the record is retired (never discarded — retired objects
//! still carry findings). Lookups by address are interval searches, exactly
//! the binary search the paper offloads to the GPU in Fig. 5.

use gpu_sim::{AddrRange, CallPath, DevicePtr};
use std::collections::BTreeMap;
use std::fmt;

/// Stable identity of a data object across its whole lifetime.
///
/// Device addresses are reused after `cudaFree`; object ids are not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u64);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// Where an object's memory came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectSource {
    /// A direct `cudaMalloc` allocation.
    Cuda,
    /// The backing slab of a caching pool (excluded from pattern findings;
    /// its tensors are analyzed instead).
    PoolSlab,
    /// A tensor carved out of a caching pool via custom allocator APIs
    /// (Sec. 5.4).
    PoolTensor,
}

impl ObjectSource {
    /// Whether objects from this source participate in pattern detection.
    pub fn is_analyzable(self) -> bool {
        !matches!(self, ObjectSource::PoolSlab)
    }
}

/// One data object: an allocation observed by the collector.
#[derive(Debug, Clone)]
pub struct DataObject {
    /// Stable id.
    pub id: ObjectId,
    /// Program-supplied label (variable name), e.g. `"q_dx"`.
    pub label: String,
    /// Base address and requested size.
    pub range: AddrRange,
    /// Provenance of the memory.
    pub source: ObjectSource,
    /// Index into the GPU-API trace *after* which the object existed: the
    /// allocation API's own index for CUDA objects, or the number of GPU
    /// APIs seen so far for pool tensors (whose allocs are not GPU APIs).
    pub alloc_api: usize,
    /// Like `alloc_api`, but for the deallocation; `None` while live — and,
    /// at the end of a run, `None` means the paper's *memory leak* pattern.
    pub free_api: Option<usize>,
    /// Host call path at allocation.
    pub alloc_path: CallPath,
    /// Whether the allocation API itself is a GPU API in the trace (true for
    /// `cudaMalloc`, false for pool tensors).
    pub alloc_is_api: bool,
    /// Whether the deallocation is a GPU API (`cudaFree`) rather than a
    /// pool-level free anchored between GPU APIs.
    pub free_is_api: bool,
}

impl DataObject {
    /// Requested size in bytes.
    pub fn size(&self) -> u64 {
        self.range.len
    }

    /// Returns `true` if the object was never deallocated.
    pub fn leaked(&self) -> bool {
        self.free_api.is_none()
    }
}

/// The memory map `M`: all data objects ever observed, with interval lookup
/// over the currently-live ones.
///
/// # Examples
///
/// ```
/// use drgpum_core::object::{ObjectRegistry, ObjectSource};
/// use gpu_sim::{AddrRange, CallPath, DevicePtr};
///
/// let mut reg = ObjectRegistry::new();
/// let id = reg.on_alloc(
///     "weights",
///     AddrRange::new(DevicePtr::new(0x1000), 64),
///     ObjectSource::Cuda,
///     0,
///     true,
///     CallPath::empty(),
/// );
/// assert_eq!(reg.resolve(DevicePtr::new(0x1020)), Some(id));
/// reg.on_free(DevicePtr::new(0x1000), 5);
/// assert_eq!(reg.resolve(DevicePtr::new(0x1020)), None);
/// assert!(reg.get(id).unwrap().free_api.is_some());
/// ```
#[derive(Debug, Default)]
pub struct ObjectRegistry {
    objects: Vec<DataObject>,
    /// Live interval index: base address → object id.
    live: BTreeMap<u64, ObjectId>,
}

impl ObjectRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ObjectRegistry::default()
    }

    /// Records an allocation and returns the new object's id.
    pub fn on_alloc(
        &mut self,
        label: impl Into<String>,
        range: AddrRange,
        source: ObjectSource,
        alloc_api: usize,
        alloc_is_api: bool,
        alloc_path: CallPath,
    ) -> ObjectId {
        let id = ObjectId(self.objects.len() as u64);
        self.objects.push(DataObject {
            id,
            label: label.into(),
            range,
            source,
            alloc_api,
            free_api: None,
            alloc_path,
            alloc_is_api,
            free_is_api: true,
        });
        self.live.insert(range.start.addr(), id);
        id
    }

    /// Records a deallocation of the object based at `base`.
    ///
    /// Returns the retired object's id, or `None` if no live object starts
    /// at `base` (e.g. a pool-internal pointer).
    pub fn on_free(&mut self, base: DevicePtr, free_api: usize) -> Option<ObjectId> {
        self.on_free_with(base, free_api, true)
    }

    /// Records a pool-level deallocation anchored *before* GPU API
    /// `anchor`; the free itself is not a GPU API (Sec. 5.4).
    pub fn on_pool_free(&mut self, base: DevicePtr, anchor: usize) -> Option<ObjectId> {
        self.on_free_with(base, anchor, false)
    }

    fn on_free_with(&mut self, base: DevicePtr, free_api: usize, is_api: bool) -> Option<ObjectId> {
        let id = self.live.remove(&base.addr())?;
        let obj = &mut self.objects[id.0 as usize];
        obj.free_api = Some(free_api);
        obj.free_is_api = is_api;
        Some(id)
    }

    /// Interval lookup: the live object containing `addr`, innermost wins.
    ///
    /// When a pool tensor and its backing slab both cover `addr`, the tensor
    /// (whose base is ≥ the slab's base, and which is registered later) is
    /// preferred so that accesses attribute to tensors, not slabs.
    pub fn resolve(&self, addr: DevicePtr) -> Option<ObjectId> {
        // Walk candidate bases at or below `addr`, nearest first. The first
        // candidate containing `addr` is the innermost allocation because
        // inner objects (pool tensors) start at higher-or-equal bases than
        // their enclosing slab.
        for (_, &id) in self.live.range(..=addr.addr()).rev() {
            let obj = &self.objects[id.0 as usize];
            if obj.range.contains(addr) {
                return Some(id);
            }
            // Bases strictly below a non-containing object can still contain
            // `addr` (the enclosing slab), so keep scanning a few steps.
            // Ranges never partially overlap, so once we pass an object whose
            // *end* is at or below `addr`'s containing slab start we could
            // stop; in practice nesting depth is ≤ 2, so the scan is short.
            if obj.range.end().addr() <= addr.addr() && obj.source != ObjectSource::PoolTensor {
                // A non-tensor object entirely below addr: only an enclosing
                // slab could still match, keep going.
                continue;
            }
        }
        None
    }

    /// The object record for `id`.
    pub fn get(&self, id: ObjectId) -> Option<&DataObject> {
        self.objects.get(id.0 as usize)
    }

    /// Reclassifies an object's provenance. Used when the profiler learns
    /// that a `cudaMalloc` allocation is actually a pool's backing slab
    /// (the first pool tensor carved inside it reveals this, Sec. 5.4).
    pub fn reclassify(&mut self, id: ObjectId, source: ObjectSource) {
        if let Some(obj) = self.objects.get_mut(id.0 as usize) {
            obj.source = source;
        }
    }

    /// Iterates over all objects ever observed, in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = &DataObject> {
        self.objects.iter()
    }

    /// Number of objects ever observed.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Returns `true` if no objects were observed.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Number of currently-live objects.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Iterates over currently-live objects in address order.
    pub fn live_objects(&self) -> impl Iterator<Item = &DataObject> + '_ {
        self.live.values().map(|id| &self.objects[id.0 as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range(base: u64, len: u64) -> AddrRange {
        AddrRange::new(DevicePtr::new(base), len)
    }

    fn alloc(reg: &mut ObjectRegistry, label: &str, base: u64, len: u64, api: usize) -> ObjectId {
        reg.on_alloc(
            label,
            range(base, len),
            ObjectSource::Cuda,
            api,
            true,
            CallPath::empty(),
        )
    }

    #[test]
    fn ids_survive_address_reuse() {
        let mut reg = ObjectRegistry::new();
        let a = alloc(&mut reg, "a", 0x1000, 64, 0);
        reg.on_free(DevicePtr::new(0x1000), 1);
        let b = alloc(&mut reg, "b", 0x1000, 64, 2);
        assert_ne!(a, b);
        assert_eq!(reg.resolve(DevicePtr::new(0x1000)), Some(b));
        assert_eq!(reg.len(), 2);
        assert!(!reg.get(a).unwrap().leaked());
    }

    #[test]
    fn resolve_prefers_inner_pool_tensor() {
        let mut reg = ObjectRegistry::new();
        let slab = reg.on_alloc(
            "slab",
            range(0x1000, 0x1000),
            ObjectSource::PoolSlab,
            0,
            true,
            CallPath::empty(),
        );
        let tensor = reg.on_alloc(
            "t",
            range(0x1200, 0x100),
            ObjectSource::PoolTensor,
            1,
            false,
            CallPath::empty(),
        );
        assert_eq!(reg.resolve(DevicePtr::new(0x1250)), Some(tensor));
        assert_eq!(reg.resolve(DevicePtr::new(0x1100)), Some(slab));
        // After the tensor is freed, the slab reclaims the range.
        reg.on_free(DevicePtr::new(0x1200), 2);
        assert_eq!(reg.resolve(DevicePtr::new(0x1250)), Some(slab));
    }

    #[test]
    fn resolve_misses_outside_any_object() {
        let mut reg = ObjectRegistry::new();
        alloc(&mut reg, "a", 0x1000, 64, 0);
        assert_eq!(reg.resolve(DevicePtr::new(0xFFF)), None);
        assert_eq!(reg.resolve(DevicePtr::new(0x1040)), None);
    }

    #[test]
    fn free_of_unknown_base_is_none() {
        let mut reg = ObjectRegistry::new();
        alloc(&mut reg, "a", 0x1000, 64, 0);
        assert_eq!(reg.on_free(DevicePtr::new(0x1008), 1), None);
        assert_eq!(reg.live_count(), 1);
    }

    #[test]
    fn leaked_objects_detected() {
        let mut reg = ObjectRegistry::new();
        let a = alloc(&mut reg, "a", 0x1000, 64, 0);
        let b = alloc(&mut reg, "b", 0x2000, 64, 1);
        reg.on_free(DevicePtr::new(0x1000), 2);
        assert!(!reg.get(a).unwrap().leaked());
        assert!(reg.get(b).unwrap().leaked());
    }

    #[test]
    fn pool_slab_not_analyzable() {
        assert!(!ObjectSource::PoolSlab.is_analyzable());
        assert!(ObjectSource::Cuda.is_analyzable());
        assert!(ObjectSource::PoolTensor.is_analyzable());
    }
}
