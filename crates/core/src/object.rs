//! Data objects and the memory map `M` (Sec. 5.1).
//!
//! DrGPUM maintains a memory map from live address ranges to data objects.
//! At each allocation the range and the unwound call path are inserted; at
//! each deallocation the record is retired (never discarded — retired objects
//! still carry findings). Lookups by address are interval searches, exactly
//! the binary search the paper offloads to the GPU in Fig. 5.

use gpu_sim::{AddrRange, CallPath, DevicePtr};
use std::collections::BTreeMap;
use std::fmt;

/// Stable identity of a data object across its whole lifetime.
///
/// Device addresses are reused after `cudaFree`; object ids are not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u64);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// Where an object's memory came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectSource {
    /// A direct `cudaMalloc` allocation.
    Cuda,
    /// The backing slab of a caching pool (excluded from pattern findings;
    /// its tensors are analyzed instead).
    PoolSlab,
    /// A tensor carved out of a caching pool via custom allocator APIs
    /// (Sec. 5.4).
    PoolTensor,
}

impl ObjectSource {
    /// Whether objects from this source participate in pattern detection.
    pub fn is_analyzable(self) -> bool {
        !matches!(self, ObjectSource::PoolSlab)
    }
}

/// One data object: an allocation observed by the collector.
#[derive(Debug, Clone)]
pub struct DataObject {
    /// Stable id.
    pub id: ObjectId,
    /// Program-supplied label (variable name), e.g. `"q_dx"`.
    pub label: String,
    /// Base address and requested size.
    pub range: AddrRange,
    /// Provenance of the memory.
    pub source: ObjectSource,
    /// Index into the GPU-API trace *after* which the object existed: the
    /// allocation API's own index for CUDA objects, or the number of GPU
    /// APIs seen so far for pool tensors (whose allocs are not GPU APIs).
    pub alloc_api: usize,
    /// Like `alloc_api`, but for the deallocation; `None` while live — and,
    /// at the end of a run, `None` means the paper's *memory leak* pattern.
    pub free_api: Option<usize>,
    /// Host call path at allocation.
    pub alloc_path: CallPath,
    /// Whether the allocation API itself is a GPU API in the trace (true for
    /// `cudaMalloc`, false for pool tensors).
    pub alloc_is_api: bool,
    /// Whether the deallocation is a GPU API (`cudaFree`) rather than a
    /// pool-level free anchored between GPU APIs.
    pub free_is_api: bool,
}

impl DataObject {
    /// Requested size in bytes.
    pub fn size(&self) -> u64 {
        self.range.len
    }

    /// Returns `true` if the object was never deallocated.
    pub fn leaked(&self) -> bool {
        self.free_api.is_none()
    }
}

/// The memory map `M`: all data objects ever observed, with interval lookup
/// over the currently-live ones.
///
/// # Examples
///
/// ```
/// use drgpum_core::object::{ObjectRegistry, ObjectSource};
/// use gpu_sim::{AddrRange, CallPath, DevicePtr};
///
/// let mut reg = ObjectRegistry::new();
/// let id = reg.on_alloc(
///     "weights",
///     AddrRange::new(DevicePtr::new(0x1000), 64),
///     ObjectSource::Cuda,
///     0,
///     true,
///     CallPath::empty(),
/// );
/// assert_eq!(reg.resolve(DevicePtr::new(0x1020)), Some(id));
/// reg.on_free(DevicePtr::new(0x1000), 5);
/// assert_eq!(reg.resolve(DevicePtr::new(0x1020)), None);
/// assert!(reg.get(id).unwrap().free_api.is_some());
/// ```
#[derive(Debug, Default)]
pub struct ObjectRegistry {
    objects: Vec<DataObject>,
    /// Live interval index: base address → object id. Source of truth for
    /// alloc/free semantics; the flat `index` below is rebuilt from it.
    live: BTreeMap<u64, ObjectId>,
    /// Epoch-tagged flat snapshot of `live`, sorted by base address.
    /// Rebuilt on every alloc/free (rare); queried by binary search on the
    /// per-access hot path (frequent). The `epoch` counter invalidates any
    /// [`ResolveCache`] or downstream hint memo filled under an older
    /// snapshot.
    index: Vec<IndexEntry>,
    epoch: u64,
}

/// One live interval in the flat snapshot index.
#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    start: u64,
    end: u64,
    /// Maximum `end` over this entry and all entries at lower indices.
    /// Lets the backward containment scan stop as soon as no earlier
    /// interval can still cover the probe address.
    prefix_max_end: u64,
    id: ObjectId,
}

/// Per-resolver-thread last-hit cache for [`ObjectRegistry::resolve_cached`].
///
/// Holds the address window `[lo, hi)` inside which every address resolves
/// to `id` (the window is clamped to exclude nested pool tensors), plus the
/// registry epoch the entry was filled under. A stale epoch — any alloc or
/// free since the fill — misses and refills; a hit never consults the index.
#[derive(Debug, Clone, Copy)]
pub struct ResolveCache {
    epoch: u64,
    lo: u64,
    hi: u64,
    /// Base address of the cached object (offsets are relative to this, not
    /// to `lo`, which may sit past a nested tensor).
    base: u64,
    id: ObjectId,
}

impl Default for ResolveCache {
    fn default() -> Self {
        // An empty window under an impossible epoch: always misses.
        ResolveCache {
            epoch: u64::MAX,
            lo: 1,
            hi: 0,
            base: 0,
            id: ObjectId(u64::MAX),
        }
    }
}

impl ResolveCache {
    /// Creates an empty (always-miss) cache.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One contiguous piece of a resolved address span: `len` bytes at `offset`
/// within `object`. See [`ObjectRegistry::resolve_span`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanSegment {
    /// The innermost live object covering this piece.
    pub object: ObjectId,
    /// Byte offset of the piece within the object.
    pub offset: u64,
    /// Length of the piece in bytes.
    pub len: u64,
}

impl ObjectRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ObjectRegistry::default()
    }

    /// Records an allocation and returns the new object's id.
    pub fn on_alloc(
        &mut self,
        label: impl Into<String>,
        range: AddrRange,
        source: ObjectSource,
        alloc_api: usize,
        alloc_is_api: bool,
        alloc_path: CallPath,
    ) -> ObjectId {
        let id = ObjectId(self.objects.len() as u64);
        self.objects.push(DataObject {
            id,
            label: label.into(),
            range,
            source,
            alloc_api,
            free_api: None,
            alloc_path,
            alloc_is_api,
            free_is_api: true,
        });
        self.live.insert(range.start.addr(), id);
        self.rebuild_index();
        id
    }

    /// Records a deallocation of the object based at `base`.
    ///
    /// Returns the retired object's id, or `None` if no live object starts
    /// at `base` (e.g. a pool-internal pointer).
    pub fn on_free(&mut self, base: DevicePtr, free_api: usize) -> Option<ObjectId> {
        self.on_free_with(base, free_api, true)
    }

    /// Records a pool-level deallocation anchored *before* GPU API
    /// `anchor`; the free itself is not a GPU API (Sec. 5.4).
    pub fn on_pool_free(&mut self, base: DevicePtr, anchor: usize) -> Option<ObjectId> {
        self.on_free_with(base, anchor, false)
    }

    fn on_free_with(&mut self, base: DevicePtr, free_api: usize, is_api: bool) -> Option<ObjectId> {
        let id = self.live.remove(&base.addr())?;
        let obj = &mut self.objects[id.0 as usize];
        obj.free_api = Some(free_api);
        obj.free_is_api = is_api;
        self.rebuild_index();
        Some(id)
    }

    /// Rebuilds the flat snapshot from the live map and bumps the epoch,
    /// invalidating every cache filled under the previous snapshot.
    fn rebuild_index(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        self.index.clear();
        let mut max_end = 0u64;
        for (&start, &id) in &self.live {
            let end = self.objects[id.0 as usize].range.end().addr();
            max_end = max_end.max(end);
            self.index.push(IndexEntry {
                start,
                end,
                prefix_max_end: max_end,
                id,
            });
        }
    }

    /// The current snapshot epoch. Bumped on every allocation and free;
    /// caches carrying an older epoch must treat their contents as stale.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Interval lookup: the live object containing `addr`, innermost wins.
    ///
    /// When a pool tensor and its backing slab both cover `addr`, the tensor
    /// (whose base is ≥ the slab's base, and which is registered later) is
    /// preferred so that accesses attribute to tensors, not slabs.
    ///
    /// Queries the flat snapshot index: binary search for the last interval
    /// starting at or below `addr`, then a short backward containment scan
    /// that stops as soon as the prefix-max end rules out every earlier
    /// interval. Semantically identical to [`ObjectRegistry::resolve_slow`].
    pub fn resolve(&self, addr: DevicePtr) -> Option<ObjectId> {
        self.resolve_window(addr.addr()).map(|(e, _, _)| e.id)
    }

    /// The pre-snapshot interval lookup: a descending walk over the live
    /// `BTreeMap`. Kept as the `slow-path` baseline hook (determinism tests
    /// pin the new hot path against it) and as the reference semantics for
    /// the registry property tests.
    pub fn resolve_slow(&self, addr: DevicePtr) -> Option<ObjectId> {
        // Walk candidate bases at or below `addr`, nearest first. The first
        // candidate containing `addr` is the innermost allocation because
        // inner objects (pool tensors) start at higher-or-equal bases than
        // their enclosing slab.
        for (_, &id) in self.live.range(..=addr.addr()).rev() {
            let obj = &self.objects[id.0 as usize];
            if obj.range.contains(addr) {
                return Some(id);
            }
            // Bases strictly below a non-containing object can still contain
            // `addr` (the enclosing slab), so keep scanning a few steps.
            // Ranges never partially overlap, so once we pass an object whose
            // *end* is at or below `addr`'s containing slab start we could
            // stop; in practice nesting depth is ≤ 2, so the scan is short.
            if obj.range.end().addr() <= addr.addr() && obj.source != ObjectSource::PoolTensor {
                // A non-tensor object entirely below addr: only an enclosing
                // slab could still match, keep going.
                continue;
            }
        }
        None
    }

    /// Cache-assisted interval lookup returning `(object, byte offset)`.
    ///
    /// On a hit — same epoch, address inside the cached window — this is a
    /// pair of comparisons; allocation locality makes hits the common case.
    /// On a miss the snapshot index is searched and the cache refilled with
    /// the containing window.
    pub fn resolve_cached(
        &self,
        addr: DevicePtr,
        cache: &mut ResolveCache,
    ) -> Option<(ObjectId, u64)> {
        let a = addr.addr();
        if cache.epoch == self.epoch && cache.lo <= a && a < cache.hi {
            return Some((cache.id, a - cache.base));
        }
        let (e, lo, hi) = self.resolve_window(a)?;
        *cache = ResolveCache {
            epoch: self.epoch,
            lo,
            hi,
            base: e.start,
            id: e.id,
        };
        Some((e.id, a - e.start))
    }

    /// Finds the innermost interval containing `a` plus the widest window
    /// `[lo, hi)` around `a` in which every address resolves to that same
    /// interval (i.e. no other live boundary falls inside the window).
    fn resolve_window(&self, a: u64) -> Option<(IndexEntry, u64, u64)> {
        // First index whose start is strictly above `a`: bounds the window
        // from above, and the backward scan starts just below it.
        let j = self.index.partition_point(|e| e.start <= a);
        let mut lo_bound = 0u64;
        let mut i = j;
        while i > 0 {
            i -= 1;
            let e = self.index[i];
            if e.prefix_max_end <= a {
                // No interval here or earlier reaches past `a`.
                return None;
            }
            if a < e.end {
                // `e.start <= a` by construction: innermost match. Intervals
                // never partially overlap, so the window is clipped only by
                // the nearest boundaries: ends of the (nested) intervals we
                // skipped below `a`, and the next start above `a`.
                let lo = lo_bound.max(e.start);
                let mut hi = e.end;
                if let Some(nxt) = self.index.get(j) {
                    hi = hi.min(nxt.start);
                }
                return Some((e, lo, hi));
            }
            lo_bound = lo_bound.max(e.end);
        }
        None
    }

    /// Resolves the byte span `[start, start + len)` to the sequence of
    /// innermost objects covering it, in address order. A span crossing an
    /// object's end is split at the boundary; bytes covered by no live
    /// object are omitted. A zero-length span resolves like a point.
    pub fn resolve_span(&self, start: DevicePtr, len: u64) -> Vec<SpanSegment> {
        let mut out = Vec::new();
        let mut a = start.addr();
        if len == 0 {
            if let Some((e, _, _)) = self.resolve_window(a) {
                out.push(SpanSegment {
                    object: e.id,
                    offset: a - e.start,
                    len: 0,
                });
            }
            return out;
        }
        let span_end = a.saturating_add(len);
        while a < span_end {
            match self.resolve_window(a) {
                Some((e, _, hi)) => {
                    let seg_end = hi.min(span_end);
                    out.push(SpanSegment {
                        object: e.id,
                        offset: a - e.start,
                        len: seg_end - a,
                    });
                    a = seg_end;
                }
                None => {
                    // Gap: skip to the next live base, if it is in the span.
                    let j = self.index.partition_point(|e| e.start <= a);
                    match self.index.get(j) {
                        Some(e) if e.start < span_end => a = e.start,
                        _ => break,
                    }
                }
            }
        }
        out
    }

    /// The object record for `id`.
    pub fn get(&self, id: ObjectId) -> Option<&DataObject> {
        self.objects.get(id.0 as usize)
    }

    /// Reclassifies an object's provenance. Used when the profiler learns
    /// that a `cudaMalloc` allocation is actually a pool's backing slab
    /// (the first pool tensor carved inside it reveals this, Sec. 5.4).
    pub fn reclassify(&mut self, id: ObjectId, source: ObjectSource) {
        if let Some(obj) = self.objects.get_mut(id.0 as usize) {
            obj.source = source;
        }
    }

    /// Iterates over all objects ever observed, in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = &DataObject> {
        self.objects.iter()
    }

    /// Number of objects ever observed.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Returns `true` if no objects were observed.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Number of currently-live objects.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Iterates over currently-live objects in address order.
    pub fn live_objects(&self) -> impl Iterator<Item = &DataObject> + '_ {
        self.live.values().map(|id| &self.objects[id.0 as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range(base: u64, len: u64) -> AddrRange {
        AddrRange::new(DevicePtr::new(base), len)
    }

    fn alloc(reg: &mut ObjectRegistry, label: &str, base: u64, len: u64, api: usize) -> ObjectId {
        reg.on_alloc(
            label,
            range(base, len),
            ObjectSource::Cuda,
            api,
            true,
            CallPath::empty(),
        )
    }

    #[test]
    fn ids_survive_address_reuse() {
        let mut reg = ObjectRegistry::new();
        let a = alloc(&mut reg, "a", 0x1000, 64, 0);
        reg.on_free(DevicePtr::new(0x1000), 1);
        let b = alloc(&mut reg, "b", 0x1000, 64, 2);
        assert_ne!(a, b);
        assert_eq!(reg.resolve(DevicePtr::new(0x1000)), Some(b));
        assert_eq!(reg.len(), 2);
        assert!(!reg.get(a).unwrap().leaked());
    }

    #[test]
    fn resolve_prefers_inner_pool_tensor() {
        let mut reg = ObjectRegistry::new();
        let slab = reg.on_alloc(
            "slab",
            range(0x1000, 0x1000),
            ObjectSource::PoolSlab,
            0,
            true,
            CallPath::empty(),
        );
        let tensor = reg.on_alloc(
            "t",
            range(0x1200, 0x100),
            ObjectSource::PoolTensor,
            1,
            false,
            CallPath::empty(),
        );
        assert_eq!(reg.resolve(DevicePtr::new(0x1250)), Some(tensor));
        assert_eq!(reg.resolve(DevicePtr::new(0x1100)), Some(slab));
        // After the tensor is freed, the slab reclaims the range.
        reg.on_free(DevicePtr::new(0x1200), 2);
        assert_eq!(reg.resolve(DevicePtr::new(0x1250)), Some(slab));
    }

    #[test]
    fn resolve_misses_outside_any_object() {
        let mut reg = ObjectRegistry::new();
        alloc(&mut reg, "a", 0x1000, 64, 0);
        assert_eq!(reg.resolve(DevicePtr::new(0xFFF)), None);
        assert_eq!(reg.resolve(DevicePtr::new(0x1040)), None);
    }

    #[test]
    fn free_of_unknown_base_is_none() {
        let mut reg = ObjectRegistry::new();
        alloc(&mut reg, "a", 0x1000, 64, 0);
        assert_eq!(reg.on_free(DevicePtr::new(0x1008), 1), None);
        assert_eq!(reg.live_count(), 1);
    }

    #[test]
    fn leaked_objects_detected() {
        let mut reg = ObjectRegistry::new();
        let a = alloc(&mut reg, "a", 0x1000, 64, 0);
        let b = alloc(&mut reg, "b", 0x2000, 64, 1);
        reg.on_free(DevicePtr::new(0x1000), 2);
        assert!(!reg.get(a).unwrap().leaked());
        assert!(reg.get(b).unwrap().leaked());
    }

    #[test]
    fn resolve_cache_invalidated_across_free_and_address_reuse() {
        let mut reg = ObjectRegistry::new();
        let a = alloc(&mut reg, "a", 0x1000, 64, 0);
        let mut cache = ResolveCache::new();
        assert_eq!(
            reg.resolve_cached(DevicePtr::new(0x1020), &mut cache),
            Some((a, 0x20))
        );
        // A second probe hits the cached window and must agree.
        assert_eq!(
            reg.resolve_cached(DevicePtr::new(0x1010), &mut cache),
            Some((a, 0x10))
        );
        // Free bumps the epoch: the stale window must miss, not serve `a`.
        reg.on_free(DevicePtr::new(0x1000), 1);
        assert_eq!(reg.resolve_cached(DevicePtr::new(0x1020), &mut cache), None);
        // Address reuse: a new object at the same base must resolve to the
        // new id even though the dead cache window still covers the address.
        let b = alloc(&mut reg, "b", 0x1000, 64, 2);
        assert_ne!(a, b);
        assert_eq!(
            reg.resolve_cached(DevicePtr::new(0x1020), &mut cache),
            Some((b, 0x20))
        );
    }

    #[test]
    fn resolve_span_splits_at_object_boundaries() {
        let mut reg = ObjectRegistry::new();
        let a = alloc(&mut reg, "a", 0x1000, 0x100, 0);
        let b = alloc(&mut reg, "b", 0x1100, 0x100, 1);
        // Span covering the tail of `a` and the head of `b`.
        let segs = reg.resolve_span(DevicePtr::new(0x10C0), 0x80);
        assert_eq!(
            segs,
            vec![
                SpanSegment {
                    object: a,
                    offset: 0xC0,
                    len: 0x40
                },
                SpanSegment {
                    object: b,
                    offset: 0,
                    len: 0x40
                },
            ]
        );
        // Span running past the last live byte: the overhang is dropped.
        let segs = reg.resolve_span(DevicePtr::new(0x11F0), 0x40);
        assert_eq!(
            segs,
            vec![SpanSegment {
                object: b,
                offset: 0xF0,
                len: 0x10
            }]
        );
        // Span across a gap between objects skips the dead bytes.
        let c = alloc(&mut reg, "c", 0x1300, 0x100, 2);
        let segs = reg.resolve_span(DevicePtr::new(0x11F0), 0x200);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].object, b);
        assert_eq!(
            segs[1],
            SpanSegment {
                object: c,
                offset: 0,
                len: 0xF0
            }
        );
    }

    #[test]
    fn pool_slab_not_analyzable() {
        assert!(!ObjectSource::PoolSlab.is_analyzable());
        assert!(ObjectSource::Cuda.is_analyzable());
        assert!(ObjectSource::PoolTensor.is_analyzable());
    }
}
