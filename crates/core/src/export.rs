//! Machine-readable report export.
//!
//! The GUI consumes Perfetto JSON ([`crate::perfetto`]); CI pipelines and
//! scripts consume this flat JSON form of the [`Report`]. Field names are
//! stable; unknown fields may be added in minor releases.

use crate::guidance::OverallocGuidance;
use crate::patterns::{NuafScope, PatternEvidence};
use crate::report::{DetectorOutcome, DetectorStatus, Finding, Report};
use serde_json::{json, Value};

fn guidance_str(g: OverallocGuidance) -> &'static str {
    match g {
        OverallocGuidance::EasyWin => "easy_win",
        OverallocGuidance::LittleBenefit => "little_benefit",
        OverallocGuidance::DifficultScattered => "difficult_scattered",
        OverallocGuidance::NoAction => "no_action",
    }
}

fn evidence_json(evidence: &PatternEvidence) -> Value {
    match evidence {
        PatternEvidence::EarlyAllocation {
            intervening,
            distance,
            first_access,
        } => json!({
            "intervening_apis": intervening,
            "inefficiency_distance": distance,
            "first_access": first_access.name,
        }),
        PatternEvidence::LateDeallocation {
            intervening,
            distance,
            last_access,
        } => json!({
            "intervening_apis": intervening,
            "inefficiency_distance": distance,
            "last_access": last_access.name,
        }),
        PatternEvidence::RedundantAllocation {
            reuse_label,
            size_diff_pct,
            ..
        } => json!({
            "reuse_of": reuse_label,
            "size_diff_pct": size_diff_pct,
        }),
        PatternEvidence::UnusedAllocation => json!({}),
        PatternEvidence::MemoryLeak => json!({}),
        PatternEvidence::TemporaryIdleness { spans } => json!({
            "idle_spans": spans.iter().map(|s| json!({
                "from": s.from.name,
                "to": s.to.name,
                "intervening_apis": s.intervening,
            })).collect::<Vec<_>>(),
        }),
        PatternEvidence::DeadWrite { first, second } => json!({
            "dead_write": first.name,
            "overwritten_by": second.name,
        }),
        PatternEvidence::Overallocation {
            accessed_pct,
            fragmentation_pct,
            guidance,
            wasted_bytes,
        } => json!({
            "accessed_pct": accessed_pct,
            "fragmentation_pct": fragmentation_pct,
            "guidance": guidance_str(*guidance),
            "wasted_bytes": wasted_bytes,
        }),
        PatternEvidence::NonUniformAccessFrequency {
            cov_pct,
            at_api,
            scope,
            ..
        } => json!({
            "cov_pct": cov_pct,
            "at_api": at_api.name,
            "scope": match scope {
                NuafScope::PerApi => "per_api",
                NuafScope::Lifetime => "lifetime",
            },
        }),
        PatternEvidence::StructuredAccess {
            kernel,
            slices,
            max_slice_bytes,
        } => json!({
            "kernel": kernel,
            "slices": slices,
            "max_slice_bytes": max_slice_bytes,
        }),
        PatternEvidence::PageThrashing {
            page_index,
            migrations,
        } => json!({
            "page_index": page_index,
            "migrations": migrations,
        }),
        PatternEvidence::PageFalseSharing {
            page_index,
            migrations,
            host_bytes,
            device_bytes,
        } => json!({
            "page_index": page_index,
            "migrations": migrations,
            "host_bytes": host_bytes,
            "device_bytes": device_bytes,
        }),
    }
}

fn finding_json(f: &Finding) -> Value {
    json!({
        "pattern": f.kind().name(),
        "code": f.kind().code(),
        "object": {
            "label": f.object.label,
            "size_bytes": f.object.size,
            "alloc_path": f.object.alloc_path,
        },
        "suggestion": f.suggestion,
        "wasted_bytes": f.wasted_bytes,
        "at_peak": f.at_peak,
        "evidence": evidence_json(&f.evidence),
    })
}

fn detector_json(d: &DetectorStatus) -> Value {
    match &d.outcome {
        DetectorOutcome::Ok { findings } => json!({
            "name": d.name,
            "status": "ok",
            "findings": findings,
        }),
        DetectorOutcome::Failed { message } => json!({
            "name": d.name,
            "status": "failed",
            "message": message,
        }),
        DetectorOutcome::Skipped { reason } => json!({
            "name": d.name,
            "status": "skipped",
            "reason": reason,
        }),
        DetectorOutcome::TimedOut { deadline_ms } => json!({
            "name": d.name,
            "status": "timed_out",
            "deadline_ms": deadline_ms,
        }),
    }
}

/// Serializes a report to stable JSON.
pub fn report_json(report: &Report) -> Value {
    json!({
        "tool": "drgpum",
        "platform": report.platform,
        "degraded": report.is_degraded(),
        "detectors": report.detectors.iter().map(detector_json).collect::<Vec<_>>(),
        "degradations": report.degradations.iter().map(|d| json!({
            "stage": d.stage,
            "detail": d.detail,
            "at_ms": d.at_ms,
        })).collect::<Vec<_>>(),
        "stats": {
            "gpu_apis": report.stats.gpu_apis,
            "objects": report.stats.objects,
            "peak_bytes": report.stats.peak_bytes,
            "leaked_objects": report.stats.leaked_objects,
            "leaked_bytes": report.stats.leaked_bytes,
        },
        "peaks": report.peaks.iter().map(|p| json!({
            "api": p.api_name,
            "bytes": p.bytes,
            "objects": p.objects.iter().map(|(l, s)| json!({
                "label": l, "size_bytes": s,
            })).collect::<Vec<_>>(),
        })).collect::<Vec<_>>(),
        "findings": report.findings.iter().map(finding_json).collect::<Vec<_>>(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::ProfilerOptions;
    use crate::profiler::Profiler;
    use gpu_sim::{DeviceContext, LaunchConfig, StreamId};

    #[test]
    fn report_json_round_trips_and_carries_findings() {
        let mut ctx = DeviceContext::new_default();
        let profiler = Profiler::attach(&mut ctx, ProfilerOptions::intra_object());
        let big = ctx.malloc(100_000, "big").unwrap();
        let small = ctx.malloc(64, "small").unwrap();
        ctx.memset(small, 0, 64).unwrap();
        ctx.launch(
            "touch",
            LaunchConfig::cover(4, 4).unwrap(),
            StreamId::DEFAULT,
            move |t| {
                let i = t.global_x();
                if i < 4 {
                    t.store_f32(big + i * 4, 0.0);
                }
            },
        )
        .unwrap();
        ctx.free(big).unwrap();
        // `small` leaks.
        let report = profiler.report(&ctx);
        let v = report_json(&report);
        let text = serde_json::to_string(&v).unwrap();
        let parsed: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(parsed["tool"], "drgpum");
        assert_eq!(parsed["stats"]["leaked_objects"], 1);
        let findings = parsed["findings"].as_array().unwrap();
        assert!(!findings.is_empty());
        let oa = findings
            .iter()
            .find(|f| f["code"] == "OA")
            .expect("overallocation present");
        assert!(oa["evidence"]["accessed_pct"].as_f64().unwrap() < 1.0);
        assert_eq!(oa["evidence"]["guidance"], "easy_win");
        let ml = findings.iter().find(|f| f["code"] == "ML").expect("leak");
        assert_eq!(ml["object"]["label"], "small");
    }

    #[test]
    fn every_pattern_serializes() {
        // Exercise all evidence arms through a synthetic report.
        use crate::object::{ObjectId, ObjectSource};
        use crate::patterns::{ApiRef, IdleSpan};
        use crate::report::ObjectSummary;
        let api = |name: &str| ApiRef {
            idx: 0,
            ts: 0,
            name: name.to_owned(),
        };
        let object = ObjectSummary {
            id: ObjectId(0),
            label: "x".to_owned(),
            size: 128,
            source: ObjectSource::Cuda,
            alloc_path: vec![],
        };
        let evidences = vec![
            PatternEvidence::EarlyAllocation {
                intervening: 2,
                distance: 3,
                first_access: api("KERL(0, 0)"),
            },
            PatternEvidence::LateDeallocation {
                intervening: 1,
                distance: 1,
                last_access: api("CPY(0, 0)"),
            },
            PatternEvidence::RedundantAllocation {
                reuse_of: ObjectId(1),
                reuse_label: "y".to_owned(),
                size_diff_pct: 0.0,
            },
            PatternEvidence::UnusedAllocation,
            PatternEvidence::MemoryLeak,
            PatternEvidence::TemporaryIdleness {
                spans: vec![IdleSpan {
                    from: api("A"),
                    to: api("B"),
                    intervening: 5,
                }],
            },
            PatternEvidence::DeadWrite {
                first: api("SET(0, 0)"),
                second: api("CPY(0, 1)"),
            },
            PatternEvidence::Overallocation {
                accessed_pct: 5.0,
                fragmentation_pct: 1.0,
                guidance: OverallocGuidance::EasyWin,
                wasted_bytes: 100,
            },
            PatternEvidence::NonUniformAccessFrequency {
                cov_pct: 58.0,
                at_api: api("KERL(0, 3)"),
                histogram: vec![(1, 10)],
                scope: NuafScope::Lifetime,
            },
            PatternEvidence::StructuredAccess {
                kernel: "k3".to_owned(),
                slices: 8,
                max_slice_bytes: 128,
            },
        ];
        let report = Report {
            platform: "rtx3090".to_owned(),
            findings: evidences
                .into_iter()
                .map(|evidence| Finding {
                    object: object.clone(),
                    suggestion: "fix it".to_owned(),
                    wasted_bytes: 0,
                    at_peak: false,
                    evidence,
                })
                .collect(),
            peaks: vec![],
            stats: Default::default(),
            detectors: vec![],
            degradations: vec![],
        };
        let v = report_json(&report);
        assert_eq!(v["findings"].as_array().unwrap().len(), 10);
        let codes: Vec<&str> = v["findings"]
            .as_array()
            .unwrap()
            .iter()
            .map(|f| f["code"].as_str().unwrap())
            .collect();
        assert_eq!(
            codes,
            ["EA", "LD", "RA", "UA", "ML", "TI", "DW", "OA", "NUAF", "SA"]
        );
    }
}
