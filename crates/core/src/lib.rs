//! # drgpum-core: an object-centric GPU memory profiler
//!
//! A Rust reproduction of **DrGPUM** (*DrGPUM: Guiding Memory Optimization
//! for GPU-Accelerated Applications*, ASPLOS 2023): the first profiler that
//! systematically investigates patterns of memory inefficiencies in
//! GPU-accelerated applications, correlating problematic memory usage with
//! data objects and GPU APIs.
//!
//! The profiler runs against the simulated CUDA-like runtime in
//! [`gpu_sim`], observing the same event stream NVIDIA's Sanitizer API
//! provides on real hardware. It performs:
//!
//! * **macroscopic object-level analysis** — a timestamp-augmented memory
//!   access trace over data objects and GPU APIs, with a dependency graph
//!   and Kahn topological timestamps for multi-stream programs (see
//!   [`depgraph`] and [`analyzer`]), detecting early allocation, late
//!   deallocation, redundant allocation, unused allocation, memory leak,
//!   temporary idleness, and dead write;
//! * **microscopic intra-object analysis** — per-element bitmaps, per-API
//!   footprints, and access-frequency maps, detecting overallocation (with
//!   the Eq. 1 fragmentation metric and Table 2 guidance), non-uniform
//!   access frequency (coefficient of variation), and structured access;
//! * **offline analysis** — call-path resolution to source locations,
//!   memory-peak pinpointing, prioritized findings with optimization
//!   suggestions, and a Perfetto GUI export (Fig. 7).
//!
//! # Quick start
//!
//! ```
//! use drgpum_core::{PatternKind, Profiler, ProfilerOptions};
//! use gpu_sim::DeviceContext;
//!
//! # fn main() -> Result<(), gpu_sim::SimError> {
//! let mut ctx = DeviceContext::new_default();
//! let profiler = Profiler::attach(&mut ctx, ProfilerOptions::object_level());
//!
//! // The profiled "application":
//! let early = ctx.malloc(1 << 20, "early_buffer")?;
//! let other = ctx.malloc(1 << 10, "other")?;
//! ctx.memset(other, 0, 1 << 10)?;          // two APIs run before
//! ctx.memcpy_h2d(other, &[1u8; 1 << 10])?; // early_buffer is touched…
//! ctx.memset(early, 0, 1 << 20)?;          // …here
//! ctx.free(early)?;
//! ctx.free(other)?;
//!
//! let report = profiler.report(&ctx);
//! assert!(report.has_pattern(PatternKind::EarlyAllocation));
//! println!("{}", report.render_text());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod accessmap;
pub mod advisor;
pub mod analyzer;
pub mod collector;
pub mod depgraph;
pub mod error;
pub mod export;
pub mod governor;
pub mod guidance;
pub mod html;
pub mod metrics;
pub mod object;
pub mod options;
pub mod patterns;
pub mod peaks;
pub mod perfetto;
pub mod profiler;
pub mod report;
pub mod trace_io;
pub mod trace_stream;

pub use advisor::{estimate as estimate_savings, SavingsEstimate};
pub use analyzer::{analyze, build_trace_view};
pub use collector::{Collector, PhaseTimings};
pub use error::{ProfilerError, TraceError};
pub use governor::{CancelToken, CollectionRung, ResourceBudget, SessionGovernor};
pub use guidance::OverallocGuidance;
pub use object::{DataObject, ObjectId, ObjectRegistry, ObjectSource};
pub use options::{AnalysisLevel, ProfilerOptions, SamplingPolicy, Thresholds};
pub use patterns::{PatternEvidence, PatternFinding, PatternKind};
pub use profiler::Profiler;
pub use report::{DegradationRecord, DetectorOutcome, DetectorStatus, Finding, Report};
pub use trace_io::SavedTrace;
pub use trace_stream::StreamingTraceWriter;
