//! Saving and re-analyzing traces offline.
//!
//! DrGPUM's workflow splits online collection from offline analysis
//! (Fig. 1). This module makes that split durable: [`save`] serializes
//! everything the offline analyzer consumes — the GPU-API trace with object
//! def/use sets, object metadata with resolved call paths, the usage curve,
//! and the intra-object access maps — and [`SavedTrace::reanalyze`] re-runs
//! the detectors on the saved data, possibly with *different thresholds*,
//! without re-running the program. That is how a user tunes the paper's
//! user-tunable `X` parameters (Sec. 3) interactively over one recording.

use crate::accessmap::{AccessBitmap, FreqMap, RangeSet};
use crate::analyzer::{self, ObjectMeta};
use crate::collector::Collector;
use crate::depgraph::{DependencyGraph, VertexAccess};
use crate::object::{ObjectId, ObjectSource};
use crate::options::Thresholds;
use crate::patterns::intra::IntraObjectData;
use crate::patterns::unified::UnifiedPageStats;
use crate::patterns::{ApiRef, ObjectAccess, ObjectView, TraceView};
use crate::peaks::UsageSample;
use crate::report::Report;
use gpu_sim::{FrameTable, StreamId};
use serde::{Deserialize, Serialize};

/// Serialization format version.
pub const FORMAT_VERSION: u32 = 1;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct SavedApi {
    name: String,
    detail: String,
    mnemonic: String,
    stream: u32,
    reads: Vec<u64>,
    writes: Vec<u64>,
    frees: Vec<u64>,
    #[serde(default)]
    after: Vec<usize>,
    start_ns: u64,
    end_ns: u64,
    call_path: Vec<String>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct SavedAccess {
    api_idx: usize,
    object: u64,
    read: bool,
    write: bool,
    via: String,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct SavedObject {
    id: u64,
    label: String,
    size: u64,
    source: String,
    alloc_api: usize,
    alloc_is_api: bool,
    free_api: Option<usize>,
    free_is_api: bool,
    alloc_path: Vec<String>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct SavedIntra {
    object: u64,
    size: u64,
    /// Accessed byte ranges (the bitmap, run-length encoded).
    accessed_ranges: Vec<(u64, u64)>,
    per_api: Vec<(usize, Vec<(u64, u64)>)>,
    nuaf_peak: Option<crate::patterns::intra::NuafObservation>,
    lifetime_elem_size: Option<u32>,
    /// Sparse nonzero lifetime counts `(element index, count)`.
    lifetime_counts: Vec<(u64, u32)>,
}

/// A complete, self-contained recording of one profiled run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SavedTrace {
    /// Format version ([`FORMAT_VERSION`]).
    pub version: u32,
    /// Platform name of the recorded run.
    pub platform: String,
    apis: Vec<SavedApi>,
    accesses: Vec<SavedAccess>,
    objects: Vec<SavedObject>,
    usage: Vec<(usize, u64)>,
    intra: Vec<SavedIntra>,
    #[serde(default)]
    unified: Vec<SavedUnifiedPage>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct SavedUnifiedPage {
    object: u64,
    page_index: u32,
    migrations: u64,
    host_ranges: Vec<(u64, u64)>,
    device_ranges: Vec<(u64, u64)>,
}

fn via_str(via: crate::patterns::AccessVia) -> &'static str {
    match via {
        crate::patterns::AccessVia::Memcpy => "memcpy",
        crate::patterns::AccessVia::Memset => "memset",
        crate::patterns::AccessVia::Kernel => "kernel",
    }
}

fn via_parse(s: &str) -> crate::patterns::AccessVia {
    match s {
        "memcpy" => crate::patterns::AccessVia::Memcpy,
        "memset" => crate::patterns::AccessVia::Memset,
        _ => crate::patterns::AccessVia::Kernel,
    }
}

fn source_str(s: ObjectSource) -> &'static str {
    match s {
        ObjectSource::Cuda => "cuda",
        ObjectSource::PoolSlab => "pool_slab",
        ObjectSource::PoolTensor => "pool_tensor",
    }
}

fn source_parse(s: &str) -> ObjectSource {
    match s {
        "pool_slab" => ObjectSource::PoolSlab,
        "pool_tensor" => ObjectSource::PoolTensor,
        _ => ObjectSource::Cuda,
    }
}

/// Serializes a collector's recording.
pub fn save(collector: &Collector, frames: &FrameTable, platform: &str) -> SavedTrace {
    let resolve = |path: &gpu_sim::CallPath| -> Vec<String> {
        path.frames()
            .iter()
            .rev()
            .map(|id| {
                frames
                    .resolve(*id)
                    .map(|l| l.to_string())
                    .unwrap_or_else(|| format!("<unknown frame {}>", id.0))
            })
            .collect()
    };
    let apis = collector
        .gpu_apis()
        .iter()
        .map(|a| SavedApi {
            name: a.name.clone(),
            detail: a.detail.clone(),
            mnemonic: a.mnemonic.to_owned(),
            stream: a.stream.0,
            reads: a.vertex.reads.iter().map(|o| o.0).collect(),
            writes: a.vertex.writes.iter().map(|o| o.0).collect(),
            frees: a.vertex.frees.iter().map(|o| o.0).collect(),
            after: a.vertex.after.clone(),
            start_ns: a.start_ns,
            end_ns: a.end_ns,
            call_path: resolve(&a.call_path),
        })
        .collect();
    let accesses = collector
        .accesses()
        .iter()
        .map(|a| SavedAccess {
            api_idx: a.api_idx,
            object: a.object.0,
            read: a.read,
            write: a.write,
            via: via_str(a.via).to_owned(),
        })
        .collect();
    let objects = collector
        .registry()
        .iter()
        .map(|o| SavedObject {
            id: o.id.0,
            label: o.label.clone(),
            size: o.size(),
            source: source_str(o.source).to_owned(),
            alloc_api: o.alloc_api,
            alloc_is_api: o.alloc_is_api,
            free_api: o.free_api,
            free_is_api: o.free_is_api,
            alloc_path: resolve(&o.alloc_path),
        })
        .collect();
    let usage = collector
        .usage_curve()
        .iter()
        .map(|s| (s.api_idx, s.bytes_in_use))
        .collect();
    let intra = collector
        .intra_data()
        .iter()
        .map(|d| {
            // Run-length encode the bitmap as its accessed ranges.
            let mut accessed_ranges = Vec::new();
            let mut run: Option<u64> = None;
            for i in 0..=d.bitmap.len() {
                let set = i < d.bitmap.len() && d.bitmap.is_set(i);
                match (set, run) {
                    (true, None) => run = Some(i),
                    (false, Some(s)) => {
                        accessed_ranges.push((s, i));
                        run = None;
                    }
                    _ => {}
                }
            }
            SavedIntra {
                object: d.object.0,
                size: d.bitmap.len(),
                accessed_ranges,
                per_api: d
                    .per_api
                    .iter()
                    .map(|(idx, rs)| (*idx, rs.ranges().to_vec()))
                    .collect(),
                nuaf_peak: d.nuaf_peak.clone(),
                lifetime_elem_size: d.lifetime_freq.as_ref().map(FreqMap::elem_size),
                lifetime_counts: d
                    .lifetime_freq
                    .as_ref()
                    .map(|f| {
                        f.counts()
                            .iter()
                            .enumerate()
                            .filter(|(_, &c)| c > 0)
                            .map(|(i, &c)| (i as u64, c))
                            .collect()
                    })
                    .unwrap_or_default(),
            }
        })
        .collect();
    let unified = collector
        .unified_page_stats()
        .iter()
        .map(|p| SavedUnifiedPage {
            object: p.object.0,
            page_index: p.page_index,
            migrations: p.migrations,
            host_ranges: p.host_ranges.ranges().to_vec(),
            device_ranges: p.device_ranges.ranges().to_vec(),
        })
        .collect();
    SavedTrace {
        version: FORMAT_VERSION,
        platform: platform.to_owned(),
        apis,
        accesses,
        objects,
        usage,
        intra,
        unified,
    }
}

impl SavedTrace {
    /// Number of GPU APIs in the recording.
    pub fn api_count(&self) -> usize {
        self.apis.len()
    }

    /// Number of data objects in the recording.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Rebuilds the trace view (with fresh topological timestamps) from
    /// the recording.
    fn rebuild(&self) -> (TraceView, Vec<IntraObjectData>, Vec<UsageSample>, Vec<ObjectMeta>) {
        let vertices: Vec<VertexAccess> = self
            .apis
            .iter()
            .map(|a| VertexAccess {
                stream: StreamId(a.stream),
                reads: a.reads.iter().map(|&o| ObjectId(o)).collect(),
                writes: a.writes.iter().map(|&o| ObjectId(o)).collect(),
                frees: a.frees.iter().map(|&o| ObjectId(o)).collect(),
                after: a.after.clone(),
            })
            .collect();
        let graph = DependencyGraph::build(&vertices);
        let api_ts = graph.timestamps().to_vec();
        let api_names: Vec<String> = self.apis.iter().map(|a| a.name.clone()).collect();
        let api_kernels: Vec<Option<String>> = self
            .apis
            .iter()
            .map(|a| (a.mnemonic == "KERL").then(|| a.detail.clone()))
            .collect();
        let api_is_dealloc: Vec<bool> = self.apis.iter().map(|a| a.mnemonic == "FREE").collect();

        let mut per_object: std::collections::HashMap<u64, Vec<ObjectAccess>> =
            std::collections::HashMap::new();
        for acc in &self.accesses {
            per_object.entry(acc.object).or_default().push(ObjectAccess {
                api: ApiRef {
                    idx: acc.api_idx,
                    ts: api_ts[acc.api_idx],
                    name: api_names[acc.api_idx].clone(),
                },
                read: acc.read,
                write: acc.write,
                via: via_parse(&acc.via),
            });
        }
        let objects: Vec<ObjectView> = self
            .objects
            .iter()
            .map(|o| {
                let mut accesses = per_object.remove(&o.id).unwrap_or_default();
                accesses.sort_by_key(|a| (a.api.ts, a.api.idx));
                let mk_ref = |idx: usize| ApiRef {
                    idx,
                    ts: api_ts[idx],
                    name: api_names[idx].clone(),
                };
                let source = source_parse(&o.source);
                ObjectView {
                    id: ObjectId(o.id),
                    label: o.label.clone(),
                    size: o.size,
                    alloc: o.alloc_is_api.then(|| mk_ref(o.alloc_api)),
                    alloc_anchor: o.alloc_api,
                    free: match (o.free_api, o.free_is_api) {
                        (Some(idx), true) => Some(mk_ref(idx)),
                        _ => None,
                    },
                    free_anchor: match (o.free_api, o.free_is_api) {
                        (Some(idx), false) => Some(idx),
                        _ => None,
                    },
                    accesses,
                    analyzable: source.is_analyzable(),
                }
            })
            .collect();
        let trace = TraceView {
            api_ts,
            api_names,
            api_kernels,
            api_is_dealloc,
            objects,
        };

        let intra: Vec<IntraObjectData> = self
            .intra
            .iter()
            .map(|s| {
                let mut bitmap = AccessBitmap::new(s.size);
                for &(a, b) in &s.accessed_ranges {
                    bitmap.set_range(a, b);
                }
                let per_api = s
                    .per_api
                    .iter()
                    .map(|(idx, ranges)| {
                        let rs: RangeSet = ranges.iter().copied().collect();
                        (*idx, rs)
                    })
                    .collect();
                let lifetime_freq = s.lifetime_elem_size.map(|elem| {
                    let mut f = FreqMap::new(s.size, elem);
                    for &(i, c) in &s.lifetime_counts {
                        for _ in 0..c {
                            f.record(i * u64::from(elem), 1);
                        }
                    }
                    f
                });
                IntraObjectData {
                    object: ObjectId(s.object),
                    bitmap,
                    per_api,
                    nuaf_peak: s.nuaf_peak.clone(),
                    lifetime_freq,
                }
            })
            .collect();

        let usage: Vec<UsageSample> = self
            .usage
            .iter()
            .map(|&(api_idx, bytes_in_use)| UsageSample {
                api_idx,
                bytes_in_use,
            })
            .collect();

        let metas: Vec<ObjectMeta> = self
            .objects
            .iter()
            .map(|o| ObjectMeta {
                id: ObjectId(o.id),
                label: o.label.clone(),
                size: o.size,
                source: source_parse(&o.source),
                alloc_path: o.alloc_path.clone(),
                alloc_api: o.alloc_api,
                free_api: o.free_api,
            })
            .collect();

        (trace, intra, usage, metas)
    }

    /// Re-runs the full offline analysis on the recording, with arbitrary
    /// thresholds — no program re-run needed.
    pub fn reanalyze(&self, thresholds: &Thresholds) -> Report {
        let (trace, intra, usage, metas) = self.rebuild();
        let unified: Vec<UnifiedPageStats> = self
            .unified
            .iter()
            .map(|p| UnifiedPageStats {
                object: ObjectId(p.object),
                page_index: p.page_index,
                migrations: p.migrations,
                host_ranges: p.host_ranges.iter().copied().collect(),
                device_ranges: p.device_ranges.iter().copied().collect(),
            })
            .collect();
        analyzer::assemble_report(&trace, &intra, &usage, &metas, &unified, thresholds, &self.platform)
    }

    /// Serializes to a JSON string.
    ///
    /// # Errors
    ///
    /// Returns a serialization error (never expected for valid traces).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserializes from a JSON string.
    ///
    /// # Errors
    ///
    /// Returns a parse error on malformed input or a future format version.
    pub fn from_json(text: &str) -> serde_json::Result<Self> {
        let t: SavedTrace = serde_json::from_str(text)?;
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::ProfilerOptions;
    use crate::profiler::Profiler;
    use gpu_sim::{DeviceContext, LaunchConfig, StreamId};

    fn record() -> (SavedTrace, Report) {
        let mut ctx = DeviceContext::new_default();
        let profiler = Profiler::attach(&mut ctx, ProfilerOptions::intra_object());
        let early = ctx.malloc(4096, "early").unwrap();
        let other = ctx.malloc(4096, "other").unwrap();
        ctx.memset(other, 0, 4096).unwrap();
        ctx.memset(other, 1, 4096).unwrap();
        ctx.launch("k", LaunchConfig::cover(16, 16), StreamId::DEFAULT, move |t| {
            let i = t.global_x();
            if i < 16 {
                t.store_f32(early + i * 4, 1.0);
            }
        })
        .unwrap();
        ctx.free(other).unwrap();
        // `early` leaks.
        let live_report = profiler.report(&ctx);
        let collector = profiler.collector();
        let collector = collector.lock();
        let saved = save(&collector, ctx.call_stack().table(), "rtx3090");
        (saved, live_report)
    }

    #[test]
    fn reanalysis_reproduces_the_live_report() {
        let (saved, live) = record();
        let replayed = saved.reanalyze(&Thresholds::default());
        assert_eq!(live.stats, replayed.stats);
        assert_eq!(live.patterns_present(), replayed.patterns_present());
        assert_eq!(live.findings.len(), replayed.findings.len());
        for (a, b) in live.findings.iter().zip(&replayed.findings) {
            assert_eq!(a.kind(), b.kind());
            assert_eq!(a.object.label, b.object.label);
            assert_eq!(a.suggestion, b.suggestion);
        }
    }

    #[test]
    fn json_round_trip() {
        let (saved, _) = record();
        let text = saved.to_json().unwrap();
        let back = SavedTrace::from_json(&text).unwrap();
        assert_eq!(back.api_count(), saved.api_count());
        assert_eq!(back.object_count(), saved.object_count());
        let a = saved.reanalyze(&Thresholds::default());
        let b = back.reanalyze(&Thresholds::default());
        assert_eq!(a, b);
    }

    #[test]
    fn thresholds_can_be_retuned_offline() {
        let (saved, _) = record();
        // Default idleness threshold (2) sees the `early` object idle
        // between its kernel write and… nothing; instead tune the
        // early-allocation-adjacent knob: the overallocation threshold.
        let strict = saved.reanalyze(&Thresholds::default());
        let lax = Thresholds {
            overalloc_accessed_pct: 0.0, // nothing is overallocated now
            ..Thresholds::default()
        };
        let relaxed = saved.reanalyze(&lax);
        use crate::patterns::PatternKind;
        assert!(strict.has_pattern(PatternKind::Overallocation));
        assert!(!relaxed.has_pattern(PatternKind::Overallocation));
    }

    #[test]
    fn version_is_stamped() {
        let (saved, _) = record();
        assert_eq!(saved.version, FORMAT_VERSION);
        let text = saved.to_json().unwrap();
        assert!(text.contains("\"version\":1"));
    }
}
