//! Saving, loading, and re-analyzing traces offline — resiliently.
//!
//! DrGPUM's workflow splits online collection from offline analysis
//! (Fig. 1). This module makes that split durable: [`save`] serializes
//! everything the offline analyzer consumes — the GPU-API trace with object
//! def/use sets, object metadata with resolved call paths, the usage curve,
//! and the intra-object access maps — and [`SavedTrace::reanalyze`] re-runs
//! the detectors on the saved data, possibly with *different thresholds*,
//! without re-running the program. That is how a user tunes the paper's
//! user-tunable `X` parameters (Sec. 3) interactively over one recording.
//!
//! # On-disk format (version 2)
//!
//! Traces written by crashing or fault-injected runs are routinely cut
//! short, so the format is framed for damage containment:
//!
//! ```text
//! DRGPUM-TRACE 2
//! section meta <byte-len> <crc32>
//! {...json payload, exactly byte-len bytes...}
//! section apis <byte-len> <crc32>
//! [...]
//! ...
//! end
//! ```
//!
//! Every section carries its own length and CRC-32, so a reader can tell
//! exactly which sections of a damaged file are intact. Two readers exist:
//!
//! * [`load`] is **strict**: any framing damage, checksum mismatch, version
//!   skew, or dangling cross-reference is a typed [`TraceError`].
//! * [`salvage`] **never fails**: it keeps every section that checks out,
//!   drops damaged sections and dangling records, and reports what was
//!   lost as [`DegradationRecord`]s so a partial report is honest about
//!   being partial.

use crate::accessmap::{AccessBitmap, FreqMap, RangeSet};
use crate::analyzer::{self, ObjectMeta};
use crate::collector::{Collector, GpuApi, RawAccess};
use crate::depgraph::{DependencyGraph, VertexAccess};
use crate::error::TraceError;
use crate::object::{DataObject, ObjectId, ObjectSource};
use crate::options::Thresholds;
use crate::patterns::intra::{IntraObjectData, NuafObservation};
use crate::patterns::unified::UnifiedPageStats;
use crate::patterns::{ApiRef, ObjectAccess, ObjectView, TraceView};
use crate::peaks::UsageSample;
use crate::report::{DegradationRecord, Report};
use gpu_sim::{FrameTable, StreamId};
use serde_json::{Map, ToJson, Value};
use std::collections::{HashMap, HashSet};

/// Serialization format version this build writes and reads strictly.
pub const FORMAT_VERSION: u32 = 2;

/// Magic word opening every trace file.
const MAGIC: &str = "DRGPUM-TRACE";

#[derive(Debug, Clone)]
struct SavedApi {
    name: String,
    detail: String,
    mnemonic: String,
    stream: u32,
    reads: Vec<u64>,
    writes: Vec<u64>,
    frees: Vec<u64>,
    after: Vec<usize>,
    start_ns: u64,
    end_ns: u64,
    call_path: Vec<String>,
}

#[derive(Debug, Clone)]
struct SavedAccess {
    api_idx: usize,
    object: u64,
    read: bool,
    write: bool,
    via: String,
}

#[derive(Debug, Clone)]
struct SavedObject {
    id: u64,
    label: String,
    size: u64,
    source: String,
    alloc_api: usize,
    alloc_is_api: bool,
    free_api: Option<usize>,
    free_is_api: bool,
    alloc_path: Vec<String>,
}

#[derive(Debug, Clone)]
struct SavedIntra {
    object: u64,
    size: u64,
    /// Accessed byte ranges (the bitmap, run-length encoded).
    accessed_ranges: Vec<(u64, u64)>,
    per_api: Vec<(usize, Vec<(u64, u64)>)>,
    nuaf_peak: Option<NuafObservation>,
    lifetime_elem_size: Option<u32>,
    /// Sparse nonzero lifetime counts `(element index, count)`.
    lifetime_counts: Vec<(u64, u32)>,
}

#[derive(Debug, Clone)]
struct SavedUnifiedPage {
    object: u64,
    page_index: u32,
    migrations: u64,
    host_ranges: Vec<(u64, u64)>,
    device_ranges: Vec<(u64, u64)>,
}

/// A complete, self-contained recording of one profiled run.
#[derive(Debug, Clone)]
pub struct SavedTrace {
    /// Format version ([`FORMAT_VERSION`]).
    pub version: u32,
    /// Platform name of the recorded run.
    pub platform: String,
    apis: Vec<SavedApi>,
    accesses: Vec<SavedAccess>,
    objects: Vec<SavedObject>,
    usage: Vec<(usize, u64)>,
    intra: Vec<SavedIntra>,
    unified: Vec<SavedUnifiedPage>,
}

fn via_str(via: crate::patterns::AccessVia) -> &'static str {
    match via {
        crate::patterns::AccessVia::Memcpy => "memcpy",
        crate::patterns::AccessVia::Memset => "memset",
        crate::patterns::AccessVia::Kernel => "kernel",
    }
}

fn via_parse(s: &str) -> crate::patterns::AccessVia {
    match s {
        "memcpy" => crate::patterns::AccessVia::Memcpy,
        "memset" => crate::patterns::AccessVia::Memset,
        _ => crate::patterns::AccessVia::Kernel,
    }
}

fn source_str(s: ObjectSource) -> &'static str {
    match s {
        ObjectSource::Cuda => "cuda",
        ObjectSource::PoolSlab => "pool_slab",
        ObjectSource::PoolTensor => "pool_tensor",
    }
}

fn source_parse(s: &str) -> ObjectSource {
    match s {
        "pool_slab" => ObjectSource::PoolSlab,
        "pool_tensor" => ObjectSource::PoolTensor,
        _ => ObjectSource::Cuda,
    }
}

/// Builds one serializable API row from the collector's in-memory record
/// and its already-resolved call path. Shared by [`save`] and the
/// streaming-delta writer.
fn api_row(a: &GpuApi, call_path: Vec<String>) -> SavedApi {
    SavedApi {
        name: a.name.clone(),
        detail: a.detail.clone(),
        mnemonic: a.mnemonic.to_owned(),
        stream: a.stream.0,
        reads: a.vertex.reads.iter().map(|o| o.0).collect(),
        writes: a.vertex.writes.iter().map(|o| o.0).collect(),
        frees: a.vertex.frees.iter().map(|o| o.0).collect(),
        after: a.vertex.after.clone(),
        start_ns: a.start_ns,
        end_ns: a.end_ns,
        call_path,
    }
}

fn access_row(a: &RawAccess) -> SavedAccess {
    SavedAccess {
        api_idx: a.api_idx,
        object: a.object.0,
        read: a.read,
        write: a.write,
        via: via_str(a.via).to_owned(),
    }
}

fn object_row(o: &DataObject, alloc_path: Vec<String>) -> SavedObject {
    SavedObject {
        id: o.id.0,
        label: o.label.clone(),
        size: o.size(),
        source: source_str(o.source).to_owned(),
        alloc_api: o.alloc_api,
        alloc_is_api: o.alloc_is_api,
        free_api: o.free_api,
        free_is_api: o.free_is_api,
        alloc_path,
    }
}

fn intra_row(d: &IntraObjectData) -> SavedIntra {
    // Run-length encode the bitmap as its accessed ranges (word-scan:
    // the former per-bit loop dominated export of large objects).
    SavedIntra {
        object: d.object.0,
        size: d.bitmap.len(),
        accessed_ranges: d.bitmap.accessed_ranges(),
        per_api: d
            .per_api
            .iter()
            .map(|(idx, rs)| (*idx, rs.ranges().to_vec()))
            .collect(),
        nuaf_peak: d.nuaf_peak.clone(),
        lifetime_elem_size: d.lifetime_freq.as_ref().map(FreqMap::elem_size),
        lifetime_counts: d
            .lifetime_freq
            .as_ref()
            .map(|f| {
                f.counts()
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(i, &c)| (i as u64, c))
                    .collect()
            })
            .unwrap_or_default(),
    }
}

fn unified_row(p: &UnifiedPageStats) -> SavedUnifiedPage {
    SavedUnifiedPage {
        object: p.object.0,
        page_index: p.page_index,
        migrations: p.migrations,
        host_ranges: p.host_ranges.ranges().to_vec(),
        device_ranges: p.device_ranges.ranges().to_vec(),
    }
}

/// Serializes a collector's recording.
pub fn save(collector: &Collector, frames: &FrameTable, platform: &str) -> SavedTrace {
    let resolve = |path: &gpu_sim::CallPath| -> Vec<String> {
        path.frames()
            .iter()
            .rev()
            .map(|id| {
                frames
                    .resolve(*id)
                    .map(|l| l.to_string())
                    .unwrap_or_else(|| format!("<unknown frame {}>", id.0))
            })
            .collect()
    };
    let apis = collector
        .gpu_apis()
        .iter()
        .map(|a| api_row(a, resolve(&a.call_path)))
        .collect();
    let accesses = collector.accesses().iter().map(access_row).collect();
    let objects = collector
        .registry()
        .iter()
        .map(|o| object_row(o, resolve(&o.alloc_path)))
        .collect();
    let usage = collector
        .usage_curve()
        .iter()
        .map(|s| (s.api_idx, s.bytes_in_use))
        .collect();
    let intra = collector
        .intra_data()
        .iter()
        .map(|d| intra_row(d))
        .collect();
    let unified = collector
        .unified_page_stats()
        .iter()
        .map(unified_row)
        .collect();
    SavedTrace {
        version: FORMAT_VERSION,
        platform: platform.to_owned(),
        apis,
        accesses,
        objects,
        usage,
        intra,
        unified,
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// CRC-32 (IEEE 802.3 polynomial, reflected), bitwise.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn pairs_value(pairs: &[(u64, u64)]) -> Value {
    Value::Array(
        pairs
            .iter()
            .map(|&(a, b)| Value::Array(vec![a.to_json(), b.to_json()]))
            .collect(),
    )
}

fn api_value(a: &SavedApi) -> Value {
    let mut m = Map::new();
    m.insert("name".into(), a.name.to_json());
    m.insert("detail".into(), a.detail.to_json());
    m.insert("mnemonic".into(), a.mnemonic.to_json());
    m.insert("stream".into(), a.stream.to_json());
    m.insert("reads".into(), a.reads.to_json());
    m.insert("writes".into(), a.writes.to_json());
    m.insert("frees".into(), a.frees.to_json());
    m.insert("after".into(), a.after.to_json());
    m.insert("start_ns".into(), a.start_ns.to_json());
    m.insert("end_ns".into(), a.end_ns.to_json());
    m.insert("call_path".into(), a.call_path.to_json());
    Value::Object(m)
}

fn access_value(a: &SavedAccess) -> Value {
    Value::Array(vec![
        a.api_idx.to_json(),
        a.object.to_json(),
        a.read.to_json(),
        a.write.to_json(),
        a.via.to_json(),
    ])
}

fn object_value(o: &SavedObject) -> Value {
    let mut m = Map::new();
    m.insert("id".into(), o.id.to_json());
    m.insert("label".into(), o.label.to_json());
    m.insert("size".into(), o.size.to_json());
    m.insert("source".into(), o.source.to_json());
    m.insert("alloc_api".into(), o.alloc_api.to_json());
    m.insert("alloc_is_api".into(), o.alloc_is_api.to_json());
    m.insert("free_api".into(), o.free_api.to_json());
    m.insert("free_is_api".into(), o.free_is_api.to_json());
    m.insert("alloc_path".into(), o.alloc_path.to_json());
    Value::Object(m)
}

fn intra_value(s: &SavedIntra) -> Value {
    let mut m = Map::new();
    m.insert("object".into(), s.object.to_json());
    m.insert("size".into(), s.size.to_json());
    m.insert("accessed_ranges".into(), pairs_value(&s.accessed_ranges));
    m.insert(
        "per_api".into(),
        Value::Array(
            s.per_api
                .iter()
                .map(|(idx, ranges)| Value::Array(vec![idx.to_json(), pairs_value(ranges)]))
                .collect(),
        ),
    );
    m.insert(
        "nuaf_peak".into(),
        match &s.nuaf_peak {
            Some((idx, cov, hist)) => Value::Array(vec![
                idx.to_json(),
                cov.to_json(),
                Value::Array(
                    hist.iter()
                        .map(|&(c, n)| Value::Array(vec![c.to_json(), n.to_json()]))
                        .collect(),
                ),
            ]),
            None => Value::Null,
        },
    );
    m.insert("lifetime_elem_size".into(), s.lifetime_elem_size.to_json());
    m.insert(
        "lifetime_counts".into(),
        Value::Array(
            s.lifetime_counts
                .iter()
                .map(|&(i, c)| Value::Array(vec![i.to_json(), c.to_json()]))
                .collect(),
        ),
    );
    Value::Object(m)
}

fn unified_value(p: &SavedUnifiedPage) -> Value {
    let mut m = Map::new();
    m.insert("object".into(), p.object.to_json());
    m.insert("page_index".into(), p.page_index.to_json());
    m.insert("migrations".into(), p.migrations.to_json());
    m.insert("host_ranges".into(), pairs_value(&p.host_ranges));
    m.insert("device_ranges".into(), pairs_value(&p.device_ranges));
    Value::Object(m)
}

fn write_section(out: &mut String, name: &str, payload: &Value) {
    let text =
        serde_json::to_string(payload).expect("serializing an in-memory JSON value cannot fail");
    out.push_str(&format!(
        "section {name} {} {}\n",
        text.len(),
        crc32(text.as_bytes())
    ));
    out.push_str(&text);
    out.push('\n');
}

// ---------------------------------------------------------------------------
// Decoding helpers (shape checks over parsed JSON)
// ---------------------------------------------------------------------------

fn need<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing key `{key}`"))
}

fn get_u64(v: &Value, key: &str) -> Result<u64, String> {
    need(v, key)?
        .as_u64()
        .ok_or_else(|| format!("`{key}` is not a non-negative integer"))
}

fn get_u32(v: &Value, key: &str) -> Result<u32, String> {
    u32::try_from(get_u64(v, key)?).map_err(|_| format!("`{key}` exceeds u32"))
}

fn get_usize(v: &Value, key: &str) -> Result<usize, String> {
    usize::try_from(get_u64(v, key)?).map_err(|_| format!("`{key}` exceeds usize"))
}

fn get_str(v: &Value, key: &str) -> Result<String, String> {
    need(v, key)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| format!("`{key}` is not a string"))
}

fn get_bool(v: &Value, key: &str) -> Result<bool, String> {
    need(v, key)?
        .as_bool()
        .ok_or_else(|| format!("`{key}` is not a boolean"))
}

fn get_arr<'a>(v: &'a Value, key: &str) -> Result<&'a Vec<Value>, String> {
    need(v, key)?
        .as_array()
        .ok_or_else(|| format!("`{key}` is not an array"))
}

fn as_u64_item(v: &Value, what: &str) -> Result<u64, String> {
    v.as_u64()
        .ok_or_else(|| format!("{what} is not a non-negative integer"))
}

fn get_u64_vec(v: &Value, key: &str) -> Result<Vec<u64>, String> {
    get_arr(v, key)?
        .iter()
        .map(|x| as_u64_item(x, key))
        .collect()
}

fn get_usize_vec(v: &Value, key: &str) -> Result<Vec<usize>, String> {
    get_u64_vec(v, key)?
        .into_iter()
        .map(|x| usize::try_from(x).map_err(|_| format!("`{key}` element exceeds usize")))
        .collect()
}

fn get_string_vec(v: &Value, key: &str) -> Result<Vec<String>, String> {
    get_arr(v, key)?
        .iter()
        .map(|x| {
            x.as_str()
                .map(str::to_owned)
                .ok_or_else(|| format!("`{key}` element is not a string"))
        })
        .collect()
}

fn parse_pair(v: &Value, what: &str) -> Result<(u64, u64), String> {
    let arr = v
        .as_array()
        .filter(|a| a.len() == 2)
        .ok_or_else(|| format!("{what} is not a two-element array"))?;
    Ok((as_u64_item(&arr[0], what)?, as_u64_item(&arr[1], what)?))
}

fn get_pairs(v: &Value, key: &str) -> Result<Vec<(u64, u64)>, String> {
    get_arr(v, key)?
        .iter()
        .map(|x| parse_pair(x, key))
        .collect()
}

fn parse_api(v: &Value) -> Result<SavedApi, String> {
    Ok(SavedApi {
        name: get_str(v, "name")?,
        detail: get_str(v, "detail")?,
        mnemonic: get_str(v, "mnemonic")?,
        stream: get_u32(v, "stream")?,
        reads: get_u64_vec(v, "reads")?,
        writes: get_u64_vec(v, "writes")?,
        frees: get_u64_vec(v, "frees")?,
        after: get_usize_vec(v, "after")?,
        start_ns: get_u64(v, "start_ns")?,
        end_ns: get_u64(v, "end_ns")?,
        call_path: get_string_vec(v, "call_path")?,
    })
}

fn parse_access(v: &Value) -> Result<SavedAccess, String> {
    let arr = v
        .as_array()
        .filter(|a| a.len() == 5)
        .ok_or("access is not a five-element array")?;
    Ok(SavedAccess {
        api_idx: usize::try_from(as_u64_item(&arr[0], "api_idx")?)
            .map_err(|_| "api_idx exceeds usize".to_owned())?,
        object: as_u64_item(&arr[1], "object")?,
        read: arr[2].as_bool().ok_or("read is not a boolean")?,
        write: arr[3].as_bool().ok_or("write is not a boolean")?,
        via: arr[4].as_str().ok_or("via is not a string")?.to_owned(),
    })
}

fn parse_object(v: &Value) -> Result<SavedObject, String> {
    let free_api = match need(v, "free_api")? {
        Value::Null => None,
        other => Some(
            other
                .as_u64()
                .and_then(|x| usize::try_from(x).ok())
                .ok_or("`free_api` is not an index or null")?,
        ),
    };
    Ok(SavedObject {
        id: get_u64(v, "id")?,
        label: get_str(v, "label")?,
        size: get_u64(v, "size")?,
        source: get_str(v, "source")?,
        alloc_api: get_usize(v, "alloc_api")?,
        alloc_is_api: get_bool(v, "alloc_is_api")?,
        free_api,
        free_is_api: get_bool(v, "free_is_api")?,
        alloc_path: get_string_vec(v, "alloc_path")?,
    })
}

fn parse_intra(v: &Value) -> Result<SavedIntra, String> {
    let per_api = get_arr(v, "per_api")?
        .iter()
        .map(|entry| {
            let arr = entry
                .as_array()
                .filter(|a| a.len() == 2)
                .ok_or("per_api entry is not a two-element array")?;
            let idx = usize::try_from(as_u64_item(&arr[0], "per_api idx")?)
                .map_err(|_| "per_api idx exceeds usize".to_owned())?;
            let ranges = arr[1]
                .as_array()
                .ok_or("per_api ranges is not an array")?
                .iter()
                .map(|p| parse_pair(p, "per_api range"))
                .collect::<Result<Vec<_>, _>>()?;
            Ok::<_, String>((idx, ranges))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let nuaf_peak = match need(v, "nuaf_peak")? {
        Value::Null => None,
        other => {
            let arr = other
                .as_array()
                .filter(|a| a.len() == 3)
                .ok_or("nuaf_peak is not a three-element array")?;
            let idx = usize::try_from(as_u64_item(&arr[0], "nuaf_peak idx")?)
                .map_err(|_| "nuaf_peak idx exceeds usize".to_owned())?;
            let cov = arr[1].as_f64().ok_or("nuaf_peak cov is not a number")?;
            let hist = arr[2]
                .as_array()
                .ok_or("nuaf_peak histogram is not an array")?
                .iter()
                .map(|p| {
                    let (c, n) = parse_pair(p, "nuaf_peak histogram entry")?;
                    Ok::<_, String>((
                        u32::try_from(c).map_err(|_| "histogram count exceeds u32".to_owned())?,
                        usize::try_from(n)
                            .map_err(|_| "histogram bucket exceeds usize".to_owned())?,
                    ))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Some((idx, cov, hist))
        }
    };
    let lifetime_elem_size = match need(v, "lifetime_elem_size")? {
        Value::Null => None,
        other => Some(
            other
                .as_u64()
                .and_then(|x| u32::try_from(x).ok())
                .ok_or("`lifetime_elem_size` is not a u32 or null")?,
        ),
    };
    let lifetime_counts = get_arr(v, "lifetime_counts")?
        .iter()
        .map(|p| {
            let (i, c) = parse_pair(p, "lifetime_counts entry")?;
            Ok::<_, String>((
                i,
                u32::try_from(c).map_err(|_| "lifetime count exceeds u32".to_owned())?,
            ))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SavedIntra {
        object: get_u64(v, "object")?,
        size: get_u64(v, "size")?,
        accessed_ranges: get_pairs(v, "accessed_ranges")?,
        per_api,
        nuaf_peak,
        lifetime_elem_size,
        lifetime_counts,
    })
}

fn parse_unified(v: &Value) -> Result<SavedUnifiedPage, String> {
    Ok(SavedUnifiedPage {
        object: get_u64(v, "object")?,
        page_index: get_u32(v, "page_index")?,
        migrations: get_u64(v, "migrations")?,
        host_ranges: get_pairs(v, "host_ranges")?,
        device_ranges: get_pairs(v, "device_ranges")?,
    })
}

fn parse_list<T>(
    section: &str,
    v: &Value,
    item: impl Fn(&Value) -> Result<T, String>,
) -> Result<Vec<T>, TraceError> {
    let arr = v.as_array().ok_or_else(|| TraceError::Malformed {
        section: section.to_owned(),
        reason: "payload is not an array".to_owned(),
    })?;
    arr.iter()
        .enumerate()
        .map(|(i, x)| {
            item(x).map_err(|reason| TraceError::Malformed {
                section: section.to_owned(),
                reason: format!("record #{i}: {reason}"),
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// One successfully framed section: name plus parsed JSON payload.
type Frames = HashMap<String, Value>;

/// Reads the next `\n`-terminated line as bytes, advancing `pos`.
fn read_line<'a>(bytes: &'a [u8], pos: &mut usize) -> Option<&'a [u8]> {
    if *pos >= bytes.len() {
        return None;
    }
    let start = *pos;
    match bytes[start..].iter().position(|&b| b == b'\n') {
        Some(i) => {
            *pos = start + i + 1;
            Some(&bytes[start..start + i])
        }
        None => {
            *pos = bytes.len();
            Some(&bytes[start..])
        }
    }
}

/// Parses the header line, returning the declared version.
fn parse_header(line: Option<&[u8]>) -> Result<u32, TraceError> {
    let line = line.ok_or(TraceError::MissingHeader)?;
    let text = std::str::from_utf8(line).map_err(|_| TraceError::MissingHeader)?;
    let mut words = text.split_ascii_whitespace();
    if words.next() != Some(MAGIC) {
        return Err(TraceError::MissingHeader);
    }
    words
        .next()
        .and_then(|w| w.parse::<u32>().ok())
        .ok_or(TraceError::MissingHeader)
}

/// One step of the frame walk: either a parsed section, the `end` marker,
/// or a framing error naming the section it occurred in.
enum FrameStep {
    Section(String, Value),
    End,
}

fn next_frame(bytes: &[u8], pos: &mut usize) -> Result<FrameStep, TraceError> {
    let malformed = |reason: &str| TraceError::Malformed {
        section: "frame".to_owned(),
        reason: reason.to_owned(),
    };
    let Some(line) = read_line(bytes, pos) else {
        return Err(malformed("missing `end` marker"));
    };
    let text = std::str::from_utf8(line).map_err(|_| malformed("frame line is not UTF-8"))?;
    let words: Vec<&str> = text.split_ascii_whitespace().collect();
    match words.as_slice() {
        ["end"] => Ok(FrameStep::End),
        ["section", name, len, crc] => {
            let name = (*name).to_owned();
            let len: usize = len
                .parse()
                .map_err(|_| malformed("section length is not a number"))?;
            let expected_crc: u32 = crc
                .parse()
                .map_err(|_| malformed("section checksum is not a number"))?;
            let available = bytes.len().saturating_sub(*pos);
            if len > available {
                return Err(TraceError::Truncated {
                    section: name,
                    expected: len,
                    available,
                });
            }
            let payload = &bytes[*pos..*pos + len];
            *pos += len;
            // Consume the newline separating payload from the next frame.
            if bytes.get(*pos) == Some(&b'\n') {
                *pos += 1;
            }
            let actual = crc32(payload);
            if actual != expected_crc {
                return Err(TraceError::ChecksumMismatch {
                    section: name,
                    expected: expected_crc,
                    actual,
                });
            }
            let text = std::str::from_utf8(payload).map_err(|_| TraceError::Malformed {
                section: name.clone(),
                reason: "payload is not UTF-8".to_owned(),
            })?;
            let value = serde_json::from_str(text).map_err(|e| TraceError::Malformed {
                section: name.clone(),
                reason: e.to_string(),
            })?;
            Ok(FrameStep::Section(name, value))
        }
        [] => Ok(FrameStep::End), // tolerate a trailing blank line
        _ => Err(malformed("unrecognized frame line")),
    }
}

fn decode_sections(frames: &Frames) -> Result<SavedTrace, TraceError> {
    let section = |name: &str| -> Result<&Value, TraceError> {
        frames.get(name).ok_or_else(|| TraceError::Malformed {
            section: name.to_owned(),
            reason: "section missing".to_owned(),
        })
    };
    let meta = section("meta")?;
    let platform = get_str(meta, "platform").map_err(|reason| TraceError::Malformed {
        section: "meta".to_owned(),
        reason,
    })?;
    Ok(SavedTrace {
        version: FORMAT_VERSION,
        platform,
        apis: parse_list("apis", section("apis")?, parse_api)?,
        accesses: parse_list("accesses", section("accesses")?, parse_access)?,
        objects: parse_list("objects", section("objects")?, parse_object)?,
        usage: parse_list("usage", section("usage")?, |v| {
            let (idx, bytes) = parse_pair(v, "usage sample")?;
            Ok((
                usize::try_from(idx).map_err(|_| "usage api_idx exceeds usize".to_owned())?,
                bytes,
            ))
        })?,
        intra: parse_list("intra", section("intra")?, parse_intra)?,
        unified: parse_list("unified", section("unified")?, parse_unified)?,
    })
}

/// Validates every cross-reference in the trace, strictly.
fn validate(t: &SavedTrace) -> Result<(), TraceError> {
    let bad = |section: &str, reason: String| TraceError::BadReference {
        section: section.to_owned(),
        reason,
    };
    let n = t.apis.len();
    let ids: HashSet<u64> = t.objects.iter().map(|o| o.id).collect();
    for (i, a) in t.apis.iter().enumerate() {
        for &dep in &a.after {
            if dep >= n {
                return Err(bad("apis", format!("api #{i} after {dep} >= {n} apis")));
            }
        }
        for obj in a.reads.iter().chain(&a.writes).chain(&a.frees) {
            if !ids.contains(obj) {
                return Err(bad(
                    "apis",
                    format!("api #{i} references unknown object {obj}"),
                ));
            }
        }
    }
    for (i, a) in t.accesses.iter().enumerate() {
        if a.api_idx >= n {
            return Err(bad(
                "accesses",
                format!("access #{i} api_idx {} >= {n} apis", a.api_idx),
            ));
        }
        if !ids.contains(&a.object) {
            return Err(bad(
                "accesses",
                format!("access #{i} references unknown object {}", a.object),
            ));
        }
    }
    for (i, o) in t.objects.iter().enumerate() {
        if o.alloc_api > n {
            return Err(bad(
                "objects",
                format!("object #{i} alloc_api {} > {n} apis", o.alloc_api),
            ));
        }
        if let Some(f) = o.free_api {
            if f > n {
                return Err(bad(
                    "objects",
                    format!("object #{i} free_api {f} > {n} apis"),
                ));
            }
        }
    }
    for (i, &(idx, _)) in t.usage.iter().enumerate() {
        if idx >= n {
            return Err(bad(
                "usage",
                format!("sample #{i} api_idx {idx} >= {n} apis"),
            ));
        }
    }
    for (i, s) in t.intra.iter().enumerate() {
        if !ids.contains(&s.object) {
            return Err(bad(
                "intra",
                format!("entry #{i} references unknown object {}", s.object),
            ));
        }
        for &(idx, _) in &s.per_api {
            if idx >= n {
                return Err(bad(
                    "intra",
                    format!("entry #{i} per_api index {idx} >= {n} apis"),
                ));
            }
        }
        if let Some((idx, _, _)) = &s.nuaf_peak {
            if *idx >= n {
                return Err(bad(
                    "intra",
                    format!("entry #{i} nuaf_peak index {idx} >= {n} apis"),
                ));
            }
        }
    }
    for (i, p) in t.unified.iter().enumerate() {
        if !ids.contains(&p.object) {
            return Err(bad(
                "unified",
                format!("page #{i} references unknown object {}", p.object),
            ));
        }
    }
    Ok(())
}

/// Drops every dangling record from the trace, returning human-readable
/// notes about what was removed. Used by [`salvage`].
fn scrub(t: &mut SavedTrace) -> Vec<String> {
    let mut notes = Vec::new();
    let n = t.apis.len();
    let ids: HashSet<u64> = t.objects.iter().map(|o| o.id).collect();
    let mut clamped_objects = 0usize;
    for o in &mut t.objects {
        if o.alloc_api > n || o.free_api.map(|f| f > n).unwrap_or(false) {
            o.alloc_api = o.alloc_api.min(n);
            o.free_api = o.free_api.map(|f| f.min(n));
            clamped_objects += 1;
        }
    }
    if clamped_objects > 0 {
        notes.push(format!(
            "clamped {clamped_objects} object lifetime anchor(s) past the end of the API trace"
        ));
    }
    let mut dropped_edges = 0usize;
    for a in &mut t.apis {
        let before = a.after.len() + a.reads.len() + a.writes.len() + a.frees.len();
        a.after.retain(|&dep| dep < n);
        a.reads.retain(|obj| ids.contains(obj));
        a.writes.retain(|obj| ids.contains(obj));
        a.frees.retain(|obj| ids.contains(obj));
        dropped_edges += before - (a.after.len() + a.reads.len() + a.writes.len() + a.frees.len());
    }
    if dropped_edges > 0 {
        notes.push(format!(
            "dropped {dropped_edges} dangling dependency edge(s)"
        ));
    }
    let before = t.accesses.len();
    t.accesses
        .retain(|a| a.api_idx < n && ids.contains(&a.object));
    if t.accesses.len() < before {
        notes.push(format!(
            "dropped {} dangling access record(s)",
            before - t.accesses.len()
        ));
    }
    let before = t.usage.len();
    t.usage.retain(|&(idx, _)| idx < n);
    if t.usage.len() < before {
        notes.push(format!(
            "dropped {} dangling usage sample(s)",
            before - t.usage.len()
        ));
    }
    let before = t.intra.len();
    t.intra.retain(|s| ids.contains(&s.object));
    if t.intra.len() < before {
        notes.push(format!(
            "dropped {} orphaned intra-object map(s)",
            before - t.intra.len()
        ));
    }
    let mut dropped_intra_refs = 0usize;
    for s in &mut t.intra {
        let before = s.per_api.len();
        s.per_api.retain(|&(idx, _)| idx < n);
        dropped_intra_refs += before - s.per_api.len();
        if s.nuaf_peak
            .as_ref()
            .map(|(idx, _, _)| *idx >= n)
            .unwrap_or(false)
        {
            s.nuaf_peak = None;
            dropped_intra_refs += 1;
        }
    }
    if dropped_intra_refs > 0 {
        notes.push(format!(
            "dropped {dropped_intra_refs} dangling intra-object record(s)"
        ));
    }
    let before = t.unified.len();
    t.unified.retain(|p| ids.contains(&p.object));
    if t.unified.len() < before {
        notes.push(format!(
            "dropped {} orphaned unified-memory page(s)",
            before - t.unified.len()
        ));
    }
    notes
}

const SECTION_ORDER: [&str; 7] = [
    "meta", "apis", "accesses", "objects", "usage", "intra", "unified",
];

/// Strictly loads a trace from its text serialization.
///
/// # Errors
///
/// Returns a typed [`TraceError`] for a missing or foreign header, a
/// version this build does not read, truncation, checksum mismatches,
/// malformed payloads, and dangling cross-references (an access pointing
/// at a GPU API or object that does not exist). Use [`salvage`] to read
/// as much as possible of a damaged trace instead.
pub fn load(text: &str) -> Result<SavedTrace, TraceError> {
    if is_stream_trace(text) {
        return Err(TraceError::Malformed {
            section: "header".to_owned(),
            reason: "this is a streaming trace (DRGPUM-STREAM); recover it with \
                     salvage or `drgpum run --resume`"
                .to_owned(),
        });
    }
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let version = parse_header(read_line(bytes, &mut pos))?;
    if version != FORMAT_VERSION {
        return Err(TraceError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let mut frames = Frames::new();
    while let FrameStep::Section(name, value) = next_frame(bytes, &mut pos)? {
        frames.insert(name, value);
    }
    let trace = decode_sections(&frames)?;
    validate(&trace)?;
    Ok(trace)
}

/// What a [`salvage`] pass lost.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SalvageReport {
    /// Human-readable notes, one per loss or repair (empty = lossless).
    pub notes: Vec<String>,
}

impl SalvageReport {
    /// `true` if the trace was read back without any loss.
    pub fn is_lossless(&self) -> bool {
        self.notes.is_empty()
    }

    /// Converts the losses into report degradation records.
    pub fn to_degradations(&self) -> Vec<DegradationRecord> {
        self.notes
            .iter()
            .map(|n| DegradationRecord::new("trace-salvage", n.clone()))
            .collect()
    }
}

/// Reads as much of a (possibly damaged) trace as possible. Never fails.
///
/// Sections that frame and checksum correctly are kept; damaged sections
/// are dropped whole; records that reference data lost with a damaged
/// section are dropped individually. Everything dropped is described in
/// the returned [`SalvageReport`] so the eventual report can carry
/// explicit [`DegradationRecord`]s instead of silently analyzing less.
pub fn salvage(text: &str) -> (SavedTrace, SalvageReport) {
    if is_stream_trace(text) {
        return salvage_stream(text);
    }
    let mut notes = Vec::new();
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    match parse_header(read_line(bytes, &mut pos)) {
        Ok(v) if v == FORMAT_VERSION => {}
        Ok(v) => notes.push(format!(
            "trace declares format version {v} (this build writes {FORMAT_VERSION}); \
             attempting best-effort read"
        )),
        Err(_) => {
            notes.push("missing trace header; nothing could be recovered".to_owned());
            return (empty_trace(), SalvageReport { notes });
        }
    }
    let mut frames = Frames::new();
    loop {
        match next_frame(bytes, &mut pos) {
            Ok(FrameStep::Section(name, value)) => {
                frames.insert(name, value);
            }
            Ok(FrameStep::End) => break,
            Err(e) => {
                let boundary_lost = matches!(e, TraceError::Truncated { .. })
                    || matches!(&e, TraceError::Malformed { section, .. } if section == "frame");
                if boundary_lost {
                    // Without an intact frame header + length we cannot find
                    // the next frame boundary: stop at the longest valid
                    // prefix.
                    notes.push(format!("stopped at damaged framing: {e}"));
                    break;
                }
                // The frame itself was intact (length known), so the payload
                // was skipped in full; later sections are still reachable.
                notes.push(format!("dropped section: {e}"));
            }
        }
    }
    for name in SECTION_ORDER {
        if !frames.contains_key(name) && !notes.iter().any(|n| n.contains(&format!("`{name}`"))) {
            notes.push(format!("section `{name}` absent; treated as empty"));
        }
    }
    let mut trace = salvage_decode(&frames, &mut notes);
    notes.extend(scrub(&mut trace));
    (trace, SalvageReport { notes })
}

fn empty_trace() -> SavedTrace {
    SavedTrace {
        version: FORMAT_VERSION,
        platform: "<unknown>".to_owned(),
        apis: Vec::new(),
        accesses: Vec::new(),
        objects: Vec::new(),
        usage: Vec::new(),
        intra: Vec::new(),
        unified: Vec::new(),
    }
}

/// Decodes whatever sections survived framing, treating each decode
/// failure as one more loss instead of an error.
fn salvage_decode(frames: &Frames, notes: &mut Vec<String>) -> SavedTrace {
    fn take<T>(
        frames: &Frames,
        notes: &mut Vec<String>,
        name: &str,
        item: impl Fn(&Value) -> Result<T, String>,
    ) -> Vec<T> {
        let Some(v) = frames.get(name) else {
            return Vec::new();
        };
        match parse_list(name, v, item) {
            Ok(list) => list,
            Err(e) => {
                notes.push(format!("dropped section: {e}"));
                Vec::new()
            }
        }
    }
    let platform = frames
        .get("meta")
        .and_then(|m| get_str(m, "platform").ok())
        .unwrap_or_else(|| {
            notes.push("platform name lost with the meta section".to_owned());
            "<unknown>".to_owned()
        });
    SavedTrace {
        version: FORMAT_VERSION,
        platform,
        apis: take(frames, notes, "apis", parse_api),
        accesses: take(frames, notes, "accesses", parse_access),
        objects: take(frames, notes, "objects", parse_object),
        usage: take(frames, notes, "usage", |v| {
            let (idx, bytes) = parse_pair(v, "usage sample")?;
            Ok((
                usize::try_from(idx).map_err(|_| "usage api_idx exceeds usize".to_owned())?,
                bytes,
            ))
        }),
        intra: take(frames, notes, "intra", parse_intra),
        unified: take(frames, notes, "unified", parse_unified),
    }
}

/// Salvages a damaged trace and re-analyzes what survived; the report's
/// degradation records describe everything that was lost.
pub fn reanalyze_salvaged(text: &str, thresholds: &Thresholds) -> Report {
    let (trace, losses) = salvage(text);
    trace.reanalyze_with(thresholds, losses.to_degradations())
}

// ---------------------------------------------------------------------------
// Streaming (crash-consistent) format
// ---------------------------------------------------------------------------
//
// A streaming trace shares the section framing of the batch format but is
// append-only and fsynced at API-event granularity:
//
// ```text
// DRGPUM-STREAM 2
// section meta <len> <crc>
// {"platform": ...}
// section delta <len> <crc>
// {"apis": [...], "api_updates": [[idx, row], ...], "accesses": [...],
//  "objects": [...], "object_updates": [row, ...], "usage": [[idx, bytes], ...]}
// section checkpoint <len> <crc>
// {"api_count": N, "intra": [...], "unified": [...]}
// ...
// end
// ```
//
// Deltas are strictly positional (API rows append in trace order), so
// recovery is prefix-shaped: everything up to the last intact, fsynced
// frame is recovered exactly; the first damaged frame ends the replay.
// Intra-object and unified-memory maps are mutated in place by collection,
// so they travel in periodic `checkpoint` snapshots (latest wins) rather
// than deltas.

/// Magic word opening every streaming trace file.
pub(crate) const STREAM_MAGIC: &str = "DRGPUM-STREAM";

/// Whether `text` is a streaming trace (as opposed to the batch format).
pub fn is_stream_trace(text: &str) -> bool {
    text.starts_with(STREAM_MAGIC)
}

/// The header + meta section every streaming trace starts with.
pub(crate) fn stream_header(platform: &str) -> String {
    let mut out = format!("{STREAM_MAGIC} {FORMAT_VERSION}\n");
    let mut meta = Map::new();
    meta.insert("platform".into(), platform.to_json());
    write_section(&mut out, "meta", &Value::Object(meta));
    out
}

/// High-water marks of what a streaming writer has already emitted, plus
/// per-object fingerprints for update detection.
#[derive(Debug, Default)]
pub(crate) struct StreamCursor {
    apis: usize,
    accesses: usize,
    objects: usize,
    usage: usize,
    /// `(free_api, free_is_api, source)` per emitted object row; a change
    /// (free observed, pool-slab reclassification) re-emits the row.
    fingerprints: Vec<(Option<usize>, bool, String)>,
}

/// Encodes everything the collector gathered since `cur` as one framed
/// `delta` section, advancing the cursor. Returns `None` when nothing new
/// happened (no section is written).
pub(crate) fn delta_section(collector: &Collector, cur: &mut StreamCursor) -> Option<String> {
    let apis = collector.gpu_apis();
    let accesses = collector.accesses();
    let usage = collector.usage_curve();
    let objects: Vec<&DataObject> = collector.registry().iter().collect();

    // A new access attributed to an already-emitted API row means its
    // def/use sets changed at kernel end: re-emit the row as an update.
    let mut updated: Vec<usize> = accesses[cur.accesses.min(accesses.len())..]
        .iter()
        .map(|a| a.api_idx)
        .filter(|&i| i < cur.apis)
        .collect();
    updated.sort_unstable();
    updated.dedup();

    // Call paths come back memoized as shared `Arc<str>` frames; rows only
    // materialize `String`s at the serialization boundary.
    let path_vec = |p: &gpu_sim::CallPath| -> Vec<String> {
        collector
            .resolve_call_path(p)
            .iter()
            .map(|s| s.to_string())
            .collect()
    };
    let row = |a: &GpuApi| api_value(&api_row(a, path_vec(&a.call_path)));
    let new_apis: Vec<Value> = apis[cur.apis.min(apis.len())..].iter().map(row).collect();
    let api_updates: Vec<Value> = updated
        .iter()
        .map(|&i| Value::Array(vec![i.to_json(), row(&apis[i])]))
        .collect();
    let new_accesses: Vec<Value> = accesses[cur.accesses.min(accesses.len())..]
        .iter()
        .map(|a| access_value(&access_row(a)))
        .collect();

    let fingerprint = |o: &DataObject| (o.free_api, o.free_is_api, source_str(o.source).to_owned());
    let mut object_updates = Vec::new();
    for (i, o) in objects.iter().enumerate().take(cur.objects) {
        let fp = fingerprint(o);
        if cur.fingerprints.get(i) != Some(&fp) {
            object_updates.push(object_value(&object_row(o, path_vec(&o.alloc_path))));
            if let Some(slot) = cur.fingerprints.get_mut(i) {
                *slot = fp;
            }
        }
    }
    let mut new_objects = Vec::new();
    for o in objects.iter().skip(cur.objects) {
        cur.fingerprints.push(fingerprint(o));
        new_objects.push(object_value(&object_row(o, path_vec(&o.alloc_path))));
    }
    let new_usage: Vec<Value> = usage[cur.usage.min(usage.len())..]
        .iter()
        .map(|s| Value::Array(vec![s.api_idx.to_json(), s.bytes_in_use.to_json()]))
        .collect();

    cur.apis = apis.len();
    cur.accesses = accesses.len();
    cur.objects = objects.len();
    cur.usage = usage.len();

    if new_apis.is_empty()
        && api_updates.is_empty()
        && new_accesses.is_empty()
        && new_objects.is_empty()
        && object_updates.is_empty()
        && new_usage.is_empty()
    {
        return None;
    }
    let mut m = Map::new();
    m.insert("apis".into(), Value::Array(new_apis));
    m.insert("api_updates".into(), Value::Array(api_updates));
    m.insert("accesses".into(), Value::Array(new_accesses));
    m.insert("objects".into(), Value::Array(new_objects));
    m.insert("object_updates".into(), Value::Array(object_updates));
    m.insert("usage".into(), Value::Array(new_usage));
    let mut out = String::new();
    write_section(&mut out, "delta", &Value::Object(m));
    Some(out)
}

/// Encodes the collector's full intra-object and unified-memory state as
/// one framed `checkpoint` section.
pub(crate) fn checkpoint_section(collector: &Collector) -> String {
    let mut m = Map::new();
    m.insert("api_count".into(), collector.gpu_apis().len().to_json());
    m.insert(
        "intra".into(),
        Value::Array(
            collector
                .intra_data()
                .iter()
                .map(|d| intra_value(&intra_row(d)))
                .collect(),
        ),
    );
    m.insert(
        "unified".into(),
        Value::Array(
            collector
                .unified_page_stats()
                .iter()
                .map(|p| unified_value(&unified_row(p)))
                .collect(),
        ),
    );
    let mut out = String::new();
    write_section(&mut out, "checkpoint", &Value::Object(m));
    out
}

/// Applies one decoded `delta` payload to the accumulating trace.
fn apply_stream_delta(trace: &mut SavedTrace, v: &Value) -> Result<(), String> {
    for row in get_arr(v, "apis")? {
        trace.apis.push(parse_api(row)?);
    }
    for upd in get_arr(v, "api_updates")? {
        let arr = upd
            .as_array()
            .filter(|a| a.len() == 2)
            .ok_or("api update is not a [index, row] pair")?;
        let idx = usize::try_from(as_u64_item(&arr[0], "api update index")?)
            .map_err(|_| "api update index exceeds usize".to_owned())?;
        let row = parse_api(&arr[1])?;
        let slot = trace
            .apis
            .get_mut(idx)
            .ok_or("api update index out of range")?;
        *slot = row;
    }
    for row in get_arr(v, "accesses")? {
        trace.accesses.push(parse_access(row)?);
    }
    for row in get_arr(v, "objects")? {
        trace.objects.push(parse_object(row)?);
    }
    for row in get_arr(v, "object_updates")? {
        let o = parse_object(row)?;
        match trace.objects.iter_mut().find(|x| x.id == o.id) {
            Some(slot) => *slot = o,
            None => trace.objects.push(o),
        }
    }
    for p in get_arr(v, "usage")? {
        let (idx, bytes) = parse_pair(p, "usage sample")?;
        trace.usage.push((
            usize::try_from(idx).map_err(|_| "usage api_idx exceeds usize".to_owned())?,
            bytes,
        ));
    }
    Ok(())
}

fn parse_stream_checkpoint(
    v: &Value,
) -> Result<(usize, Vec<SavedIntra>, Vec<SavedUnifiedPage>), String> {
    let api_count = usize::try_from(get_u64(v, "api_count")?)
        .map_err(|_| "api_count exceeds usize".to_owned())?;
    let intra = get_arr(v, "intra")?
        .iter()
        .map(parse_intra)
        .collect::<Result<Vec<_>, _>>()?;
    let unified = get_arr(v, "unified")?
        .iter()
        .map(parse_unified)
        .collect::<Result<Vec<_>, _>>()?;
    Ok((api_count, intra, unified))
}

/// Recovers a streaming trace: replays every intact, fsynced frame in
/// order, stopping at the first damaged one (crash-consistent prefix
/// semantics). Never fails; [`salvage`] dispatches here on the
/// `DRGPUM-STREAM` magic.
fn salvage_stream(text: &str) -> (SavedTrace, SalvageReport) {
    let mut notes = Vec::new();
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let header_ok = read_line(bytes, &mut pos)
        .and_then(|line| std::str::from_utf8(line).ok())
        .map(|text| {
            let mut words = text.split_ascii_whitespace();
            let magic = words.next() == Some(STREAM_MAGIC);
            match words.next().and_then(|w| w.parse::<u32>().ok()) {
                Some(v) if v != FORMAT_VERSION => notes.push(format!(
                    "stream declares format version {v} (this build writes \
                     {FORMAT_VERSION}); attempting best-effort read"
                )),
                _ => {}
            }
            magic
        })
        .unwrap_or(false);
    if !header_ok {
        notes.push("missing stream header; nothing could be recovered".to_owned());
        return (empty_trace(), SalvageReport { notes });
    }
    let mut trace = empty_trace();
    let mut clean_end = false;
    let mut deltas = 0usize;
    let mut checkpoint: Option<(usize, Vec<SavedIntra>, Vec<SavedUnifiedPage>)> = None;
    loop {
        match next_frame(bytes, &mut pos) {
            Ok(FrameStep::End) => {
                clean_end = true;
                break;
            }
            Ok(FrameStep::Section(name, value)) => match name.as_str() {
                "meta" => match get_str(&value, "platform") {
                    Ok(p) => trace.platform = p,
                    Err(_) => notes.push("platform name lost with the meta section".to_owned()),
                },
                "delta" => {
                    deltas += 1;
                    if let Err(reason) = apply_stream_delta(&mut trace, &value) {
                        // Positional replay cannot continue past a bad
                        // delta: later rows would land at wrong indices.
                        notes.push(format!("stopped at undecodable delta: {reason}"));
                        break;
                    }
                }
                "checkpoint" => match parse_stream_checkpoint(&value) {
                    Ok(cp) if cp.0 <= trace.apis.len() => checkpoint = Some(cp),
                    Ok(cp) => notes.push(format!(
                        "ignored checkpoint claiming {} APIs (only {} replayed)",
                        cp.0,
                        trace.apis.len()
                    )),
                    Err(reason) => notes.push(format!("dropped undecodable checkpoint: {reason}")),
                },
                other => notes.push(format!("ignored unknown streaming section `{other}`")),
            },
            Err(e) => {
                notes.push(format!("stopped at damaged streaming frame: {e}"));
                break;
            }
        }
    }
    if !clean_end {
        notes.push(format!(
            "stream has no clean-finish marker; recovered the fsynced prefix \
             ({} APIs, {} delta frames)",
            trace.apis.len(),
            deltas
        ));
    }
    match checkpoint {
        Some((api_count, intra, unified)) => {
            if api_count < trace.apis.len() {
                notes.push(format!(
                    "intra-object and unified-memory maps are as of the last \
                     checkpoint (API {api_count} of {})",
                    trace.apis.len()
                ));
            }
            trace.intra = intra;
            trace.unified = unified;
        }
        None if !trace.apis.is_empty() => {
            notes.push(
                "no checkpoint recovered; intra-object and unified-memory maps lost".to_owned(),
            );
        }
        None => {}
    }
    notes.extend(scrub(&mut trace));
    (trace, SalvageReport { notes })
}

impl SavedTrace {
    /// Number of GPU APIs in the recording.
    pub fn api_count(&self) -> usize {
        self.apis.len()
    }

    /// Number of data objects in the recording.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Serializes to the framed, checksummed text format.
    pub fn to_text(&self) -> String {
        let mut out = format!("{MAGIC} {}\n", self.version);
        let mut meta = Map::new();
        meta.insert("platform".into(), self.platform.to_json());
        write_section(&mut out, "meta", &Value::Object(meta));
        write_section(
            &mut out,
            "apis",
            &Value::Array(self.apis.iter().map(api_value).collect()),
        );
        write_section(
            &mut out,
            "accesses",
            &Value::Array(self.accesses.iter().map(access_value).collect()),
        );
        write_section(
            &mut out,
            "objects",
            &Value::Array(self.objects.iter().map(object_value).collect()),
        );
        write_section(
            &mut out,
            "usage",
            &Value::Array(
                self.usage
                    .iter()
                    .map(|&(idx, bytes)| Value::Array(vec![idx.to_json(), bytes.to_json()]))
                    .collect(),
            ),
        );
        write_section(
            &mut out,
            "intra",
            &Value::Array(self.intra.iter().map(intra_value).collect()),
        );
        write_section(
            &mut out,
            "unified",
            &Value::Array(self.unified.iter().map(unified_value).collect()),
        );
        out.push_str("end\n");
        out
    }

    /// Rebuilds the trace view (with fresh topological timestamps) from
    /// the recording.
    fn rebuild(
        &self,
    ) -> (
        TraceView,
        Vec<IntraObjectData>,
        Vec<UsageSample>,
        Vec<ObjectMeta>,
    ) {
        let vertices: Vec<VertexAccess> = self
            .apis
            .iter()
            .map(|a| VertexAccess {
                stream: StreamId(a.stream),
                reads: a.reads.iter().map(|&o| ObjectId(o)).collect(),
                writes: a.writes.iter().map(|&o| ObjectId(o)).collect(),
                frees: a.frees.iter().map(|&o| ObjectId(o)).collect(),
                after: a.after.clone(),
            })
            .collect();
        let graph = DependencyGraph::build(&vertices);
        let api_ts = graph.timestamps().to_vec();
        let api_names: Vec<String> = self.apis.iter().map(|a| a.name.clone()).collect();
        let api_kernels: Vec<Option<String>> = self
            .apis
            .iter()
            .map(|a| (a.mnemonic == "KERL").then(|| a.detail.clone()))
            .collect();
        let api_is_dealloc: Vec<bool> = self.apis.iter().map(|a| a.mnemonic == "FREE").collect();

        let mut per_object: HashMap<u64, Vec<ObjectAccess>> = HashMap::new();
        for acc in &self.accesses {
            // Loaded traces are validated, but a hand-built or salvaged one
            // could still dangle: drop, don't panic.
            let (Some(&ts), Some(name)) = (api_ts.get(acc.api_idx), api_names.get(acc.api_idx))
            else {
                continue;
            };
            per_object
                .entry(acc.object)
                .or_default()
                .push(ObjectAccess {
                    api: ApiRef {
                        idx: acc.api_idx,
                        ts,
                        name: name.clone(),
                    },
                    read: acc.read,
                    write: acc.write,
                    via: via_parse(&acc.via),
                });
        }
        let objects: Vec<ObjectView> = self
            .objects
            .iter()
            .map(|o| {
                let mut accesses = per_object.remove(&o.id).unwrap_or_default();
                accesses.sort_by_key(|a| (a.api.ts, a.api.idx));
                let mk_ref = |idx: usize| ApiRef {
                    idx,
                    ts: api_ts.get(idx).copied().unwrap_or(0),
                    name: api_names
                        .get(idx)
                        .cloned()
                        .unwrap_or_else(|| format!("<api {idx}>")),
                };
                let source = source_parse(&o.source);
                ObjectView {
                    id: ObjectId(o.id),
                    label: o.label.clone(),
                    size: o.size,
                    alloc: o.alloc_is_api.then(|| mk_ref(o.alloc_api)),
                    alloc_anchor: o.alloc_api,
                    free: match (o.free_api, o.free_is_api) {
                        (Some(idx), true) => Some(mk_ref(idx)),
                        _ => None,
                    },
                    free_anchor: match (o.free_api, o.free_is_api) {
                        (Some(idx), false) => Some(idx),
                        _ => None,
                    },
                    accesses,
                    analyzable: source.is_analyzable(),
                }
            })
            .collect();
        let trace = TraceView {
            api_ts,
            api_names,
            api_kernels,
            api_is_dealloc,
            objects,
        };

        let intra: Vec<IntraObjectData> = self
            .intra
            .iter()
            .map(|s| {
                let mut bitmap = AccessBitmap::new(s.size);
                for &(a, b) in &s.accessed_ranges {
                    bitmap.set_range(a, b);
                }
                let per_api = s
                    .per_api
                    .iter()
                    .map(|(idx, ranges)| {
                        let rs: RangeSet = ranges.iter().copied().collect();
                        (*idx, rs)
                    })
                    .collect();
                let lifetime_freq = s.lifetime_elem_size.map(|elem| {
                    let mut f = FreqMap::new(s.size, elem);
                    for &(i, c) in &s.lifetime_counts {
                        for _ in 0..c {
                            f.record(i * u64::from(elem), 1);
                        }
                    }
                    f
                });
                IntraObjectData {
                    object: ObjectId(s.object),
                    bitmap,
                    per_api,
                    nuaf_peak: s.nuaf_peak.clone(),
                    lifetime_freq,
                }
            })
            .collect();

        let usage: Vec<UsageSample> = self
            .usage
            .iter()
            .map(|&(api_idx, bytes_in_use)| UsageSample {
                api_idx,
                bytes_in_use,
            })
            .collect();

        let metas: Vec<ObjectMeta> = self
            .objects
            .iter()
            .map(|o| ObjectMeta {
                id: ObjectId(o.id),
                label: o.label.clone(),
                size: o.size,
                source: source_parse(&o.source),
                alloc_path: o.alloc_path.clone(),
                alloc_api: o.alloc_api,
                free_api: o.free_api,
            })
            .collect();

        (trace, intra, usage, metas)
    }

    /// Re-runs the full offline analysis on the recording, with arbitrary
    /// thresholds — no program re-run needed.
    pub fn reanalyze(&self, thresholds: &Thresholds) -> Report {
        self.reanalyze_with(thresholds, Vec::new())
    }

    /// Like [`SavedTrace::reanalyze`], but carrying degradation records
    /// (e.g. from a [`salvage`] pass) into the produced report.
    pub fn reanalyze_with(
        &self,
        thresholds: &Thresholds,
        degradations: Vec<DegradationRecord>,
    ) -> Report {
        let (trace, intra, usage, metas) = self.rebuild();
        let unified: Vec<UnifiedPageStats> = self
            .unified
            .iter()
            .map(|p| UnifiedPageStats {
                object: ObjectId(p.object),
                page_index: p.page_index,
                migrations: p.migrations,
                host_ranges: p.host_ranges.iter().copied().collect(),
                device_ranges: p.device_ranges.iter().copied().collect(),
            })
            .collect();
        analyzer::assemble_report(
            &trace,
            &intra,
            &usage,
            &metas,
            &unified,
            thresholds,
            &self.platform,
            degradations,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::ProfilerOptions;
    use crate::profiler::Profiler;
    use gpu_sim::{DeviceContext, LaunchConfig, StreamId};

    fn record() -> (SavedTrace, Report) {
        let mut ctx = DeviceContext::new_default();
        let profiler = Profiler::attach(&mut ctx, ProfilerOptions::intra_object());
        let early = ctx.malloc(4096, "early").unwrap();
        let other = ctx.malloc(4096, "other").unwrap();
        ctx.memset(other, 0, 4096).unwrap();
        ctx.memset(other, 1, 4096).unwrap();
        ctx.launch(
            "k",
            LaunchConfig::cover(16, 16).unwrap(),
            StreamId::DEFAULT,
            move |t| {
                let i = t.global_x();
                if i < 16 {
                    t.store_f32(early + i * 4, 1.0);
                }
            },
        )
        .unwrap();
        ctx.free(other).unwrap();
        // `early` leaks.
        let live_report = profiler.report(&ctx);
        let collector = profiler.collector();
        let collector = collector.lock();
        let saved = save(&collector, ctx.call_stack().table(), "rtx3090");
        (saved, live_report)
    }

    #[test]
    fn reanalysis_reproduces_the_live_report() {
        let (saved, live) = record();
        let replayed = saved.reanalyze(&Thresholds::default());
        assert_eq!(live.stats, replayed.stats);
        assert_eq!(live.patterns_present(), replayed.patterns_present());
        assert_eq!(live.findings.len(), replayed.findings.len());
        for (a, b) in live.findings.iter().zip(&replayed.findings) {
            assert_eq!(a.kind(), b.kind());
            assert_eq!(a.object.label, b.object.label);
            assert_eq!(a.suggestion, b.suggestion);
        }
    }

    #[test]
    fn text_round_trip() {
        let (saved, _) = record();
        let text = saved.to_text();
        let back = load(&text).expect("clean trace loads");
        assert_eq!(back.api_count(), saved.api_count());
        assert_eq!(back.object_count(), saved.object_count());
        let a = saved.reanalyze(&Thresholds::default());
        let b = back.reanalyze(&Thresholds::default());
        assert_eq!(a, b);
    }

    #[test]
    fn thresholds_can_be_retuned_offline() {
        let (saved, _) = record();
        // Default idleness threshold (2) sees the `early` object idle
        // between its kernel write and… nothing; instead tune the
        // early-allocation-adjacent knob: the overallocation threshold.
        let strict = saved.reanalyze(&Thresholds::default());
        let lax = Thresholds {
            overalloc_accessed_pct: 0.0, // nothing is overallocated now
            ..Thresholds::default()
        };
        let relaxed = saved.reanalyze(&lax);
        use crate::patterns::PatternKind;
        assert!(strict.has_pattern(PatternKind::Overallocation));
        assert!(!relaxed.has_pattern(PatternKind::Overallocation));
    }

    #[test]
    fn version_is_stamped() {
        let (saved, _) = record();
        assert_eq!(saved.version, FORMAT_VERSION);
        let text = saved.to_text();
        assert!(text.starts_with("DRGPUM-TRACE 2\n"));
    }

    #[test]
    fn load_rejects_unknown_version() {
        let (saved, _) = record();
        let text = saved.to_text().replace("DRGPUM-TRACE 2", "DRGPUM-TRACE 99");
        match load(&text) {
            Err(TraceError::UnsupportedVersion {
                found: 99,
                supported,
            }) => {
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn load_rejects_missing_header() {
        assert!(matches!(load(""), Err(TraceError::MissingHeader)));
        assert!(matches!(
            load("not a trace\n"),
            Err(TraceError::MissingHeader)
        ));
    }

    #[test]
    fn load_rejects_corrupted_payload() {
        let (saved, _) = record();
        let text = saved.to_text();
        // Flip one character inside the apis payload (its label `"early"`),
        // keeping the byte length identical.
        let corrupted = text.replacen("rtx3090", "rtx0000", 1);
        assert_ne!(text, corrupted);
        match load(&corrupted) {
            Err(TraceError::ChecksumMismatch { section, .. }) => assert_eq!(section, "meta"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn load_rejects_truncation() {
        let (saved, _) = record();
        let text = saved.to_text();
        let cut = &text[..text.len() / 2];
        match load(cut) {
            Err(TraceError::Truncated { .. }) | Err(TraceError::Malformed { .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn load_rejects_dangling_references() {
        let (saved, _) = record();
        let mut broken = saved.clone();
        broken.accesses.push(SavedAccess {
            api_idx: 9999,
            object: 0,
            read: true,
            write: false,
            via: "kernel".to_owned(),
        });
        let text = broken.to_text();
        match load(&text) {
            Err(TraceError::BadReference { section, reason }) => {
                assert_eq!(section, "accesses");
                assert!(reason.contains("9999"), "{reason}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn salvage_of_clean_trace_is_lossless() {
        let (saved, _) = record();
        let (back, report) = salvage(&saved.to_text());
        assert!(report.is_lossless(), "notes: {:?}", report.notes);
        assert_eq!(back.api_count(), saved.api_count());
        assert_eq!(back.object_count(), saved.object_count());
    }

    #[test]
    fn salvage_survives_truncation_and_reports_losses() {
        let (saved, _) = record();
        let text = saved.to_text();
        for cut in [0, 1, text.len() / 4, text.len() / 2, text.len() - 1] {
            let (trace, report) = salvage(&text[..cut]);
            if cut < text.len() - 1 {
                assert!(!report.is_lossless(), "cut {cut} must lose something");
            }
            // Whatever survived must re-analyze without panicking, and the
            // report must carry the losses.
            let r = trace.reanalyze_with(&Thresholds::default(), report.to_degradations());
            assert_eq!(r.is_degraded(), !report.is_lossless());
        }
    }

    #[test]
    fn salvage_skips_damaged_section_but_keeps_the_rest() {
        let (saved, _) = record();
        // Damage only the meta payload (same length, wrong bytes).
        let text = saved.to_text().replacen("rtx3090", "rtx0000", 1);
        let (trace, report) = salvage(&text);
        assert!(!report.is_lossless());
        assert_eq!(trace.platform, "<unknown>");
        // Later sections survived the damaged one.
        assert_eq!(trace.api_count(), saved.api_count());
        assert_eq!(trace.object_count(), saved.object_count());
    }
}
