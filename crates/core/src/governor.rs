//! The session governor: resource budgets, the adaptive degradation
//! ladder, and cooperative cancellation.
//!
//! DrGPUM profiles *other* programs' memory excess, but its own collector
//! can grow without bound (per-kernel access maps, raw access records, the
//! in-memory trace), and a wedged detector can hang the whole session. The
//! governor defends the profiler against itself:
//!
//! * a [`ResourceBudget`] caps profiler-resident bytes, trace bytes, and
//!   per-detector / per-kernel wall-clock;
//! * a [`SessionGovernor`] meters collector allocations through a counting
//!   layer ([`SessionGovernor::charge`] / [`SessionGovernor::credit`]) and,
//!   when the resident budget trips, walks the adaptive degradation ladder
//!   of [`CollectionRung`]s — full access maps → coalesced-only → sampled →
//!   counters-only — recording each demotion as a timestamped
//!   [`DegradationRecord`] so reports stay honest;
//! * a [`CancelToken`] carries watchdog deadlines to detectors (and any
//!   other cooperative loop): the offender polls the token, the watchdog
//!   cancels it on deadline, and the run continues with the offender marked
//!   `TimedOut`.
//!
//! When no budget ever trips the governor is inert: it never mutates
//! collector state and reports are byte-identical to an ungoverned run.

use crate::report::DegradationRecord;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shared cooperative-cancellation flag.
///
/// Cheap to clone (one `Arc<AtomicBool>`); all clones observe the same
/// flag. Long-running loops poll [`is_cancelled`](Self::is_cancelled) and
/// bail out promptly when a watchdog calls [`cancel`](Self::cancel).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// `true` once any clone has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Parses a human byte size: decimal digits with an optional `K`/`M`/`G`
/// suffix (powers of two, case-insensitive), e.g. `"32M"` or `"4096"`.
pub fn parse_byte_size(s: &str) -> Result<u64, String> {
    let s = s.trim();
    if s.is_empty() {
        return Err("empty byte size".to_owned());
    }
    let (digits, shift) = match s.as_bytes()[s.len() - 1].to_ascii_uppercase() {
        b'K' => (&s[..s.len() - 1], 10),
        b'M' => (&s[..s.len() - 1], 20),
        b'G' => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    let n: u64 = digits
        .trim()
        .parse()
        .map_err(|_| format!("invalid byte size `{s}` (expected digits with optional K/M/G)"))?;
    n.checked_shl(shift)
        .filter(|v| shift == 0 || *v >> shift == n)
        .ok_or_else(|| format!("byte size `{s}` overflows u64"))
}

/// Resource limits for one profiling session. Every field defaults to
/// unlimited (`None`); [`apply_env`](Self::apply_env) fills *unset* fields
/// from the environment, so explicit settings always win.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResourceBudget {
    /// Maximum profiler-resident bytes (access maps, raw records, usage
    /// curve). When exceeded the governor demotes collection one rung at a
    /// time until the footprint fits or the ladder bottoms out.
    pub max_resident_bytes: Option<u64>,
    /// Maximum bytes a streaming trace may occupy on disk. When exceeded
    /// the stream writer stops appending (after a final checkpoint) and the
    /// loss is recorded as a degradation.
    pub max_trace_bytes: Option<u64>,
    /// Watchdog deadline per pattern-detector family, in milliseconds.
    /// A detector still running at the deadline is cooperatively cancelled
    /// and reported `TimedOut`; the other detectors are unaffected.
    pub detector_deadline_ms: Option<u64>,
    /// Cooperative deadline per simulated kernel launch, in milliseconds
    /// (enforced by `gpu_sim` via `SimConfig::kernel_deadline_ms`).
    pub kernel_deadline_ms: Option<u64>,
}

/// Environment variable read by [`ResourceBudget::apply_env`] for the
/// resident-bytes limit (a byte size such as `32M`).
pub const ENV_MEM_BUDGET: &str = "DRGPUM_MEM_BUDGET";
/// Environment variable read by [`ResourceBudget::apply_env`] for the
/// per-detector watchdog deadline, in milliseconds.
pub const ENV_DETECTOR_DEADLINE: &str = "DRGPUM_DETECTOR_DEADLINE_MS";

impl ResourceBudget {
    /// An explicitly unlimited budget (the default).
    pub fn unlimited() -> Self {
        ResourceBudget::default()
    }

    /// `true` when no limit is set at all.
    pub fn is_unlimited(&self) -> bool {
        *self == ResourceBudget::default()
    }

    /// Sets the resident-bytes limit (builder style).
    pub fn with_resident_bytes(mut self, bytes: u64) -> Self {
        self.max_resident_bytes = Some(bytes);
        self
    }

    /// Sets the trace-bytes limit (builder style).
    pub fn with_trace_bytes(mut self, bytes: u64) -> Self {
        self.max_trace_bytes = Some(bytes);
        self
    }

    /// Sets the per-detector watchdog deadline (builder style).
    pub fn with_detector_deadline_ms(mut self, ms: u64) -> Self {
        self.detector_deadline_ms = Some(ms);
        self
    }

    /// Sets the per-kernel cooperative deadline (builder style).
    pub fn with_kernel_deadline_ms(mut self, ms: u64) -> Self {
        self.kernel_deadline_ms = Some(ms);
        self
    }

    /// Fills unset fields from `DRGPUM_MEM_BUDGET` (byte size) and
    /// `DRGPUM_DETECTOR_DEADLINE_MS` (milliseconds). Unparsable values are
    /// ignored — a malformed env var must not change profiling behavior.
    pub fn apply_env(mut self) -> Self {
        if self.max_resident_bytes.is_none() {
            if let Ok(v) = std::env::var(ENV_MEM_BUDGET) {
                if let Ok(n) = parse_byte_size(&v) {
                    self.max_resident_bytes = Some(n);
                }
            }
        }
        if self.detector_deadline_ms.is_none() {
            if let Ok(v) = std::env::var(ENV_DETECTOR_DEADLINE) {
                if let Ok(n) = v.trim().parse() {
                    self.detector_deadline_ms = Some(n);
                }
            }
        }
        self
    }
}

/// One rung of the adaptive degradation ladder, in decreasing fidelity
/// (and decreasing memory footprint). The governor starts at
/// [`FullAccessMaps`](Self::FullAccessMaps) and only ever moves down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CollectionRung {
    /// Everything the options ask for: per-element bitmaps, per-API range
    /// sets, and access-frequency maps.
    FullAccessMaps,
    /// Frequency maps are dropped and warp-level coalescing is requested
    /// from the sanitizer; bitmaps and range sets survive, so
    /// overallocation and structured-access detection still work (NUAF
    /// does not). Modeled on CUTHERMO's aggregate fallback.
    CoalescedOnly,
    /// Intra-object collection is additionally thinned by multiplying the
    /// sampling period by [`SAMPLING_DEMOTION_SCALE`] — GPA-style
    /// sampling to bound overhead.
    Sampled,
    /// Intra-object state is dropped entirely; kernels are patched with
    /// cheap hit flags only, so object-level detection (touched / not
    /// touched per API) is all that remains.
    CountersOnly,
}

/// Factor applied to the sampling period on the `Sampled` rung.
pub const SAMPLING_DEMOTION_SCALE: u64 = 16;

impl CollectionRung {
    /// The next rung down, or `None` at the bottom of the ladder.
    pub fn demote(self) -> Option<CollectionRung> {
        match self {
            CollectionRung::FullAccessMaps => Some(CollectionRung::CoalescedOnly),
            CollectionRung::CoalescedOnly => Some(CollectionRung::Sampled),
            CollectionRung::Sampled => Some(CollectionRung::CountersOnly),
            CollectionRung::CountersOnly => None,
        }
    }

    /// Stable display name, used in degradation records.
    pub fn name(self) -> &'static str {
        match self {
            CollectionRung::FullAccessMaps => "full-access-maps",
            CollectionRung::CoalescedOnly => "coalesced-only",
            CollectionRung::Sampled => "sampled",
            CollectionRung::CountersOnly => "counters-only",
        }
    }
}

/// Meters the collector's resident footprint against a [`ResourceBudget`]
/// and drives the degradation ladder.
///
/// The governor is a passive counting layer: the collector calls
/// [`charge`](Self::charge) when it allocates trace state and
/// [`credit`](Self::credit) when it sheds it, then asks
/// [`over_resident_budget`](Self::over_resident_budget) at deterministic
/// checkpoints (API boundaries, kernel end). Demotions themselves are
/// applied by the collector — the governor only decides *when* and records
/// *what*.
#[derive(Debug, Clone)]
pub struct SessionGovernor {
    budget: ResourceBudget,
    rung: CollectionRung,
    resident_bytes: u64,
    trace_bytes: u64,
    started: Instant,
    /// Set once the ladder bottomed out while still over budget, so the
    /// "nothing left to shed" record is emitted exactly once.
    exhausted: bool,
    /// Set once the trace-bytes limit tripped, so streaming stops once.
    trace_stopped: bool,
}

impl SessionGovernor {
    /// A governor enforcing `budget`, starting at full fidelity.
    pub fn new(budget: ResourceBudget) -> Self {
        SessionGovernor {
            budget,
            rung: CollectionRung::FullAccessMaps,
            resident_bytes: 0,
            trace_bytes: 0,
            started: Instant::now(),
            exhausted: false,
            trace_stopped: false,
        }
    }

    /// The budget being enforced.
    pub fn budget(&self) -> &ResourceBudget {
        &self.budget
    }

    /// The current rung of the degradation ladder.
    pub fn rung(&self) -> CollectionRung {
        self.rung
    }

    /// Metered profiler-resident bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Milliseconds elapsed since the governor (session) was created.
    pub fn elapsed_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Records `bytes` of new profiler-resident state.
    pub fn charge(&mut self, bytes: u64) {
        self.resident_bytes = self.resident_bytes.saturating_add(bytes);
    }

    /// Records that `bytes` of profiler-resident state were shed.
    pub fn credit(&mut self, bytes: u64) {
        self.resident_bytes = self.resident_bytes.saturating_sub(bytes);
    }

    /// `true` while the metered footprint exceeds the resident budget.
    pub fn over_resident_budget(&self) -> bool {
        self.budget
            .max_resident_bytes
            .is_some_and(|max| self.resident_bytes > max)
    }

    /// Effective sampling-period scale for the current rung (`1` above the
    /// `Sampled` rung).
    pub fn sampling_scale(&self) -> u64 {
        if self.rung >= CollectionRung::Sampled {
            SAMPLING_DEMOTION_SCALE
        } else {
            1
        }
    }

    /// Takes one step down the ladder, returning the new rung and the
    /// degradation record to attach to the report. Returns `None` at the
    /// bottom; the first such call while still over budget yields a single
    /// "budget exhausted" record via [`exhaustion_record`](Self::exhaustion_record).
    pub fn demote(&mut self, cause: &str) -> Option<(CollectionRung, DegradationRecord)> {
        let next = self.rung.demote()?;
        let record = DegradationRecord::at(
            "governor",
            format!(
                "{cause}: demoted collection {} -> {} (resident {} bytes, budget {} bytes)",
                self.rung.name(),
                next.name(),
                self.resident_bytes,
                self.budget
                    .max_resident_bytes
                    .expect("demotion implies a resident budget"),
            ),
            self.elapsed_ms(),
        );
        self.rung = next;
        Some((next, record))
    }

    /// The one-time record emitted when the ladder bottoms out while still
    /// over budget. Returns `None` on every call after the first.
    pub fn exhaustion_record(&mut self) -> Option<DegradationRecord> {
        if self.exhausted {
            return None;
        }
        self.exhausted = true;
        Some(DegradationRecord::at(
            "governor",
            format!(
                "resident budget still exceeded at the {} rung ({} bytes over); \
                 nothing further to shed",
                self.rung.name(),
                self.resident_bytes
                    .saturating_sub(self.budget.max_resident_bytes.unwrap_or(0)),
            ),
            self.elapsed_ms(),
        ))
    }

    /// Records `bytes` appended to the streaming trace. Returns the
    /// degradation record the first time the trace budget trips (the
    /// caller stops streaming); `None` otherwise.
    pub fn note_trace_bytes(&mut self, total_bytes: u64) -> Option<DegradationRecord> {
        self.trace_bytes = total_bytes;
        let max = self.budget.max_trace_bytes?;
        if self.trace_bytes <= max || self.trace_stopped {
            return None;
        }
        self.trace_stopped = true;
        Some(DegradationRecord::at(
            "governor",
            format!(
                "trace budget exceeded ({} of {max} bytes written); streaming \
                 stopped after a final checkpoint",
                self.trace_bytes
            ),
            self.elapsed_ms(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!u.is_cancelled());
        t.cancel();
        assert!(u.is_cancelled());
    }

    #[test]
    fn byte_sizes_parse_with_suffixes() {
        assert_eq!(parse_byte_size("4096"), Ok(4096));
        assert_eq!(parse_byte_size("32K"), Ok(32 << 10));
        assert_eq!(parse_byte_size("32M"), Ok(32 << 20));
        assert_eq!(parse_byte_size("2g"), Ok(2 << 30));
        assert_eq!(parse_byte_size(" 8M "), Ok(8 << 20));
        assert!(parse_byte_size("").is_err());
        assert!(parse_byte_size("12T").is_err());
        assert!(parse_byte_size("M").is_err());
        assert!(parse_byte_size("999999999999999999999G").is_err());
    }

    #[test]
    fn ladder_walks_down_and_stops() {
        let mut r = CollectionRung::FullAccessMaps;
        let mut names = vec![r.name()];
        while let Some(next) = r.demote() {
            r = next;
            names.push(r.name());
        }
        assert_eq!(
            names,
            [
                "full-access-maps",
                "coalesced-only",
                "sampled",
                "counters-only"
            ]
        );
    }

    #[test]
    fn governor_meters_and_demotes() {
        let mut g = SessionGovernor::new(ResourceBudget::default().with_resident_bytes(100));
        g.charge(80);
        assert!(!g.over_resident_budget());
        g.charge(40);
        assert!(g.over_resident_budget());
        let (rung, rec) = g.demote("resident budget exceeded").unwrap();
        assert_eq!(rung, CollectionRung::CoalescedOnly);
        assert_eq!(rec.stage, "governor");
        assert!(rec.detail.contains("full-access-maps -> coalesced-only"));
        assert!(rec.at_ms.is_some());
        g.credit(40);
        assert!(!g.over_resident_budget());
    }

    #[test]
    fn exhaustion_record_is_emitted_once() {
        let mut g = SessionGovernor::new(ResourceBudget::default().with_resident_bytes(1));
        g.charge(10);
        while g.demote("x").is_some() {}
        assert_eq!(g.rung(), CollectionRung::CountersOnly);
        assert!(g.exhaustion_record().is_some());
        assert!(g.exhaustion_record().is_none());
    }

    #[test]
    fn sampling_scale_follows_rung() {
        let mut g = SessionGovernor::new(ResourceBudget::default().with_resident_bytes(0));
        assert_eq!(g.sampling_scale(), 1);
        g.demote("t");
        assert_eq!(g.sampling_scale(), 1);
        g.demote("t");
        assert_eq!(g.sampling_scale(), SAMPLING_DEMOTION_SCALE);
        g.demote("t");
        assert_eq!(g.sampling_scale(), SAMPLING_DEMOTION_SCALE);
    }

    #[test]
    fn trace_budget_trips_once() {
        let mut g = SessionGovernor::new(ResourceBudget::default().with_trace_bytes(100));
        assert!(g.note_trace_bytes(50).is_none());
        let rec = g.note_trace_bytes(150).unwrap();
        assert!(rec.detail.contains("trace budget exceeded"));
        assert!(g.note_trace_bytes(200).is_none());
    }

    #[test]
    fn unlimited_budget_never_trips() {
        let mut g = SessionGovernor::new(ResourceBudget::unlimited());
        g.charge(u64::MAX);
        assert!(!g.over_resident_budget());
        assert!(g.note_trace_bytes(u64::MAX).is_none());
    }

    #[test]
    fn budget_builders_and_env_precedence() {
        let b = ResourceBudget::unlimited()
            .with_resident_bytes(1)
            .with_trace_bytes(2)
            .with_detector_deadline_ms(3)
            .with_kernel_deadline_ms(4);
        assert!(!b.is_unlimited());
        assert_eq!(b.max_resident_bytes, Some(1));
        assert_eq!(b.max_trace_bytes, Some(2));
        assert_eq!(b.detector_deadline_ms, Some(3));
        assert_eq!(b.kernel_deadline_ms, Some(4));
        // apply_env never overrides explicit fields (whatever the env says).
        let same = b.clone().apply_env();
        assert_eq!(same.max_resident_bytes, Some(1));
        assert_eq!(same.detector_deadline_ms, Some(3));
    }
}
