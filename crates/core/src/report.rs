//! The profiler's output: findings with call paths, metrics, optimization
//! suggestions, and memory-peak context.
//!
//! DrGPUM's GUI (Sec. 4, Fig. 7) presents, per GPU API and data object:
//! call paths, inefficiency patterns, inefficiency distances, and
//! optimization suggestions, with data objects involved in the top memory
//! peaks highlighted. This module is the structured form of that output; the
//! text renderer produces a terminal-friendly equivalent and
//! [`crate::perfetto`] the GUI feed.

use crate::object::{ObjectId, ObjectSource};
use crate::patterns::{PatternEvidence, PatternFinding, PatternKind};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// A data object as it appears in the report, with resolved call path.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectSummary {
    /// Stable id.
    pub id: ObjectId,
    /// Program label (variable name).
    pub label: String,
    /// Size in bytes.
    pub size: u64,
    /// Provenance.
    pub source: ObjectSource,
    /// Resolved allocation call path, innermost frame first.
    pub alloc_path: Vec<String>,
}

impl ObjectSummary {
    /// The innermost allocation frame, if a call path was captured.
    pub fn alloc_site(&self) -> Option<&str> {
        self.alloc_path.first().map(String::as_str)
    }
}

/// One reported inefficiency.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// The affected object.
    pub object: ObjectSummary,
    /// The pattern and its evidence.
    pub evidence: PatternEvidence,
    /// Actionable suggestion, in the paper's voice.
    pub suggestion: String,
    /// Estimated wasted bytes (prioritization key).
    pub wasted_bytes: u64,
    /// Whether the object is live at one of the top memory peaks.
    pub at_peak: bool,
}

impl Finding {
    /// The pattern kind.
    pub fn kind(&self) -> PatternKind {
        self.evidence.kind()
    }

    /// Ranking key: peak involvement first, then wasted bytes.
    pub fn priority(&self) -> (bool, u64) {
        (self.at_peak, self.wasted_bytes)
    }
}

/// One memory peak in the report.
#[derive(Debug, Clone, PartialEq)]
pub struct PeakSummary {
    /// Display name of the GPU API at the peak.
    pub api_name: String,
    /// Trace index of that API.
    pub api_idx: usize,
    /// Peak bytes.
    pub bytes: u64,
    /// Objects live at the peak: `(label, size)`, largest first.
    pub objects: Vec<(String, u64)>,
}

/// How one pattern-detector family fared during analysis.
///
/// Detectors run isolated from each other: a panicking detector loses its
/// own findings but nothing else (the analyzer catches the unwind and
/// records it here). A report therefore always carries one status per
/// detector family, so consumers can tell "no findings" from "detector
/// died".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectorStatus {
    /// Detector family name (`"object_level"`, `"redundant"`, `"intra"`,
    /// `"unified"`).
    pub name: String,
    /// What happened.
    pub outcome: DetectorOutcome,
}

/// Outcome of one detector family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DetectorOutcome {
    /// Ran to completion.
    Ok {
        /// Number of raw findings it produced.
        findings: usize,
    },
    /// Panicked; its findings were dropped.
    Failed {
        /// Recovered panic message.
        message: String,
    },
    /// Not run, e.g. its input section was lost to trace salvage.
    Skipped {
        /// Why it was skipped.
        reason: String,
    },
    /// Exceeded its watchdog deadline and was cooperatively cancelled; its
    /// findings were dropped but all other detectors ran to completion.
    TimedOut {
        /// The deadline it exceeded, in milliseconds.
        deadline_ms: u64,
    },
}

impl DetectorStatus {
    /// `true` if the detector ran to completion.
    pub fn is_ok(&self) -> bool {
        matches!(self.outcome, DetectorOutcome::Ok { .. })
    }
}

/// One recorded loss of fidelity somewhere in the pipeline — degraded
/// collection after an allocation failure, data dropped by trace salvage,
/// a tolerated spurious API. The report stays honest about what it could
/// not see.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradationRecord {
    /// Pipeline stage that degraded (`"collector"`, `"trace-salvage"`,
    /// `"governor"`, …).
    pub stage: String,
    /// Human-readable description of what was lost or downgraded.
    pub detail: String,
    /// Milliseconds since session start when the degradation happened, if
    /// the stage tracks wall-clock time (the session governor does).
    pub at_ms: Option<u64>,
}

impl DegradationRecord {
    /// Convenience constructor (no timestamp).
    pub fn new(stage: impl Into<String>, detail: impl Into<String>) -> Self {
        DegradationRecord {
            stage: stage.into(),
            detail: detail.into(),
            at_ms: None,
        }
    }

    /// Constructor with a session-relative timestamp in milliseconds.
    pub fn at(stage: impl Into<String>, detail: impl Into<String>, at_ms: u64) -> Self {
        DegradationRecord {
            stage: stage.into(),
            detail: detail.into(),
            at_ms: Some(at_ms),
        }
    }
}

/// Aggregate run statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReportStats {
    /// GPU API invocations observed.
    pub gpu_apis: u64,
    /// Data objects observed.
    pub objects: u64,
    /// Peak device memory in use.
    pub peak_bytes: u64,
    /// Objects never freed.
    pub leaked_objects: u64,
    /// Total bytes never freed.
    pub leaked_bytes: u64,
}

/// The complete profiling report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Report {
    /// Platform name the run executed on.
    pub platform: String,
    /// Findings, highest priority first.
    pub findings: Vec<Finding>,
    /// Top memory peaks (paper default: 2).
    pub peaks: Vec<PeakSummary>,
    /// Aggregate statistics.
    pub stats: ReportStats,
    /// Per-detector execution status — one entry per detector family, even
    /// (especially) when a detector failed.
    pub detectors: Vec<DetectorStatus>,
    /// Fidelity losses recorded along the pipeline; empty for a clean run.
    pub degradations: Vec<DegradationRecord>,
}

impl Report {
    /// The set of distinct patterns found — one program's row of Table 1.
    pub fn patterns_present(&self) -> BTreeSet<PatternKind> {
        self.findings.iter().map(Finding::kind).collect()
    }

    /// `true` if anything along the pipeline degraded: a detector failed or
    /// was skipped, or a degradation was recorded.
    pub fn is_degraded(&self) -> bool {
        !self.degradations.is_empty() || self.detectors.iter().any(|d| !d.is_ok())
    }

    /// The status of the named detector family, if present.
    pub fn detector(&self, name: &str) -> Option<&DetectorStatus> {
        self.detectors.iter().find(|d| d.name == name)
    }

    /// Returns `true` if any finding has the given pattern.
    pub fn has_pattern(&self, kind: PatternKind) -> bool {
        self.findings.iter().any(|f| f.kind() == kind)
    }

    /// Findings on the object with the given label.
    pub fn findings_for(&self, label: &str) -> Vec<&Finding> {
        self.findings
            .iter()
            .filter(|f| f.object.label == label)
            .collect()
    }

    /// Renders the report as human-readable text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "DrGPUM report — platform {}", self.platform);
        let _ = writeln!(
            out,
            "  {} GPU APIs, {} data objects, peak memory {} bytes",
            self.stats.gpu_apis, self.stats.objects, self.stats.peak_bytes
        );
        if self.stats.leaked_objects > 0 {
            let _ = writeln!(
                out,
                "  {} leaked objects ({} bytes)",
                self.stats.leaked_objects, self.stats.leaked_bytes
            );
        }
        for d in &self.detectors {
            match &d.outcome {
                DetectorOutcome::Ok { .. } => {}
                DetectorOutcome::Failed { message } => {
                    let _ = writeln!(out, "  detector {} FAILED: {message}", d.name);
                }
                DetectorOutcome::Skipped { reason } => {
                    let _ = writeln!(out, "  detector {} skipped: {reason}", d.name);
                }
                DetectorOutcome::TimedOut { deadline_ms } => {
                    let _ = writeln!(
                        out,
                        "  detector {} TIMED OUT (exceeded the {deadline_ms}ms \
                         watchdog deadline; cancelled)",
                        d.name
                    );
                }
            }
        }
        for deg in &self.degradations {
            match deg.at_ms {
                Some(ms) => {
                    let _ = writeln!(out, "  degraded [{}] at {ms}ms: {}", deg.stage, deg.detail);
                }
                None => {
                    let _ = writeln!(out, "  degraded [{}]: {}", deg.stage, deg.detail);
                }
            }
        }
        for (i, peak) in self.peaks.iter().enumerate() {
            let _ = writeln!(
                out,
                "  peak #{}: {} bytes at {}",
                i + 1,
                peak.bytes,
                peak.api_name
            );
            for (label, size) in peak.objects.iter().take(5) {
                let _ = writeln!(out, "    - {label} ({size} bytes)");
            }
        }
        let _ = writeln!(out, "findings ({}):", self.findings.len());
        for f in &self.findings {
            let peak_mark = if f.at_peak { " [at peak]" } else { "" };
            let _ = writeln!(
                out,
                "  [{}] {} ({} bytes){}",
                f.kind().code(),
                f.object.label,
                f.object.size,
                peak_mark
            );
            let _ = writeln!(out, "      pattern: {}", f.kind());
            let _ = writeln!(out, "      suggestion: {}", f.suggestion);
            if let Some(site) = f.object.alloc_site() {
                let _ = writeln!(out, "      allocated at: {site}");
            }
            match &f.evidence {
                PatternEvidence::EarlyAllocation {
                    intervening,
                    distance,
                    first_access,
                } => {
                    let _ = writeln!(
                        out,
                        "      {intervening} GPU APIs before first touch {} \
                         (inefficiency distance {distance})",
                        first_access.name
                    );
                }
                PatternEvidence::LateDeallocation {
                    intervening,
                    distance,
                    last_access,
                } => {
                    let _ = writeln!(
                        out,
                        "      {intervening} GPU APIs after last touch {} \
                         (inefficiency distance {distance})",
                        last_access.name
                    );
                }
                PatternEvidence::Overallocation {
                    accessed_pct,
                    fragmentation_pct,
                    guidance,
                    wasted_bytes,
                } => {
                    let _ = writeln!(
                        out,
                        "      {accessed_pct:.3}% accessed, {fragmentation_pct:.3}% \
                         fragmentation, {wasted_bytes} wasted bytes — {guidance}"
                    );
                }
                PatternEvidence::NonUniformAccessFrequency {
                    cov_pct, at_api, ..
                } => {
                    let _ = writeln!(
                        out,
                        "      access-frequency variance {cov_pct:.1}% at {}",
                        at_api.name
                    );
                }
                PatternEvidence::TemporaryIdleness { spans } => {
                    for s in spans.iter().take(3) {
                        let _ = writeln!(
                            out,
                            "      idle for {} GPU APIs between {} and {}",
                            s.intervening, s.from.name, s.to.name
                        );
                    }
                }
                _ => {}
            }
        }
        out
    }
}

/// Builds the optimization suggestion for one finding, in the paper's voice.
pub fn suggestion_for(finding: &PatternFinding, object_label: &str) -> String {
    match &finding.evidence {
        PatternEvidence::EarlyAllocation { first_access, .. } => format!(
            "defer the allocation of {object_label} until just before {}",
            first_access.name
        ),
        PatternEvidence::LateDeallocation { last_access, .. } => format!(
            "free {object_label} immediately after its last-touch GPU API {}",
            last_access.name
        ),
        PatternEvidence::RedundantAllocation { reuse_label, .. } => {
            format!("reuse the memory of {reuse_label} instead of allocating {object_label}")
        }
        PatternEvidence::UnusedAllocation => format!(
            "{object_label} is never accessed by GPU APIs; remove or \
             conditionally bypass its allocation"
        ),
        PatternEvidence::MemoryLeak => {
            format!("{object_label} is never deallocated; pair its allocation with a free")
        }
        PatternEvidence::TemporaryIdleness { spans } => {
            match spans.iter().max_by_key(|s| s.intervening) {
                Some(longest) => format!(
                    "free or offload {object_label} to the CPU just before {} \
                     and bring it back just before {}",
                    longest.from.name, longest.to.name
                ),
                // Defensive: evidence should carry spans, but a salvaged
                // trace may have lost them.
                None => format!(
                    "free or offload {object_label} to the CPU during its \
                     idle phases"
                ),
            }
        }
        PatternEvidence::DeadWrite { first, second } => format!(
            "the write to {object_label} at {} is overwritten by {} without \
             an intervening read; remove the first write",
            first.name, second.name
        ),
        PatternEvidence::Overallocation { guidance, .. } => format!(
            "shrink the allocation of {object_label} to the accessed portion \
             ({})",
            guidance.advice()
        ),
        PatternEvidence::NonUniformAccessFrequency { cov_pct, .. } => format!(
            "place the hottest slices of {object_label} in shared memory \
             (access-frequency variance {cov_pct:.0}%)"
        ),
        PatternEvidence::PageThrashing {
            page_index,
            migrations,
        } => format!(
            "page {page_index} of {object_label} migrated {migrations} times \
             between host and device; batch same-side accesses or prefetch \
             with cudaMemPrefetchAsync"
        ),
        PatternEvidence::PageFalseSharing {
            page_index,
            migrations,
            host_bytes,
            device_bytes,
        } => format!(
            "page {page_index} of {object_label} thrashes ({migrations} \
             migrations) although the host ({host_bytes} B) and device \
             ({device_bytes} B) touch disjoint bytes — split or pad \
             {object_label} at page boundaries to end the false sharing"
        ),
        PatternEvidence::StructuredAccess {
            kernel,
            slices,
            max_slice_bytes,
        } => format!(
            "{object_label} is accessed as {slices} disjoint slices by the \
             instances of kernel {kernel}; allocate one {max_slice_bytes}-byte \
             slice and reuse it across instances"
        ),
    }
}

/// Estimated wasted bytes for prioritization.
pub fn wasted_bytes_estimate(finding: &PatternFinding, object_size: u64) -> u64 {
    match &finding.evidence {
        PatternEvidence::Overallocation { wasted_bytes, .. } => *wasted_bytes,
        PatternEvidence::UnusedAllocation
        | PatternEvidence::MemoryLeak
        | PatternEvidence::EarlyAllocation { .. }
        | PatternEvidence::LateDeallocation { .. }
        | PatternEvidence::TemporaryIdleness { .. }
        | PatternEvidence::RedundantAllocation { .. } => object_size,
        PatternEvidence::StructuredAccess {
            max_slice_bytes, ..
        } => object_size.saturating_sub(*max_slice_bytes),
        // Dead writes, NUAF, and page traffic waste time, not bytes.
        PatternEvidence::DeadWrite { .. }
        | PatternEvidence::NonUniformAccessFrequency { .. }
        | PatternEvidence::PageThrashing { .. }
        | PatternEvidence::PageFalseSharing { .. } => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::ApiRef;

    fn summary(label: &str) -> ObjectSummary {
        ObjectSummary {
            id: ObjectId(0),
            label: label.to_owned(),
            size: 1024,
            source: ObjectSource::Cuda,
            alloc_path: vec!["alloc_buffers @ app.rs:10".to_owned()],
        }
    }

    fn api(name: &str) -> ApiRef {
        ApiRef {
            idx: 0,
            ts: 0,
            name: name.to_owned(),
        }
    }

    #[test]
    fn suggestions_name_the_apis() {
        let f = PatternFinding {
            object: ObjectId(0),
            evidence: PatternEvidence::EarlyAllocation {
                intervening: 3,
                distance: 3,
                first_access: api("KERL(0, 1)"),
            },
        };
        let s = suggestion_for(&f, "d_data_out1");
        assert!(s.contains("d_data_out1"));
        assert!(s.contains("KERL(0, 1)"));
    }

    #[test]
    fn wasted_bytes_by_pattern() {
        let ua = PatternFinding {
            object: ObjectId(0),
            evidence: PatternEvidence::UnusedAllocation,
        };
        assert_eq!(wasted_bytes_estimate(&ua, 500), 500);
        let dw = PatternFinding {
            object: ObjectId(0),
            evidence: PatternEvidence::DeadWrite {
                first: api("CPY(0, 0)"),
                second: api("CPY(0, 1)"),
            },
        };
        assert_eq!(wasted_bytes_estimate(&dw, 500), 0);
    }

    #[test]
    fn report_queries() {
        let report = Report {
            platform: "rtx3090".to_owned(),
            findings: vec![Finding {
                object: summary("q_dx"),
                evidence: PatternEvidence::MemoryLeak,
                suggestion: "pair with a free".to_owned(),
                wasted_bytes: 1024,
                at_peak: true,
            }],
            peaks: vec![],
            stats: ReportStats::default(),
            detectors: vec![],
            degradations: vec![],
        };
        assert!(report.has_pattern(PatternKind::MemoryLeak));
        assert!(!report.has_pattern(PatternKind::DeadWrite));
        assert_eq!(report.findings_for("q_dx").len(), 1);
        assert_eq!(report.patterns_present().len(), 1);
    }

    #[test]
    fn render_text_mentions_pattern_and_suggestion() {
        let report = Report {
            platform: "a100".to_owned(),
            findings: vec![Finding {
                object: summary("backup"),
                evidence: PatternEvidence::UnusedAllocation,
                suggestion: "remove it".to_owned(),
                wasted_bytes: 1024,
                at_peak: false,
            }],
            peaks: vec![PeakSummary {
                api_name: "ALLOC(0, 3)".to_owned(),
                api_idx: 3,
                bytes: 4096,
                objects: vec![("backup".to_owned(), 1024)],
            }],
            stats: ReportStats {
                gpu_apis: 10,
                objects: 4,
                peak_bytes: 4096,
                leaked_objects: 0,
                leaked_bytes: 0,
            },
            detectors: vec![],
            degradations: vec![],
        };
        let text = report.render_text();
        assert!(text.contains("[UA] backup"));
        assert!(text.contains("remove it"));
        assert!(text.contains("peak #1: 4096 bytes"));
        assert!(text.contains("allocated at: alloc_buffers"));
    }

    #[test]
    fn priority_orders_peak_first() {
        let mk = |at_peak, wasted| Finding {
            object: summary("x"),
            evidence: PatternEvidence::UnusedAllocation,
            suggestion: String::new(),
            wasted_bytes: wasted,
            at_peak,
        };
        let small_at_peak = mk(true, 10);
        let big_off_peak = mk(false, 1000);
        assert!(small_at_peak.priority() > big_off_peak.priority());
    }
}
