//! Typed errors for the profiler pipeline.
//!
//! The profiler must keep producing *some* report even when the profiled
//! application misbehaves or a saved trace is damaged, so hot paths return
//! these errors (or degrade and record it) instead of panicking. The
//! taxonomy separates trace-format problems ([`TraceError`]) — which have a
//! salvage path — from analysis problems ([`ProfilerError`]), which are
//! isolated per detector.

use std::fmt;

/// Errors loading a saved trace (see [`crate::trace_io`]).
///
/// Every variant names the section it arose in, so a salvage pass can drop
/// exactly the damaged data and keep the rest.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// The input does not start with the trace header line.
    MissingHeader,
    /// The header declares a format version this build cannot read.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build writes and reads.
        supported: u32,
    },
    /// A section's framed payload extends past the end of the input.
    Truncated {
        /// Name of the truncated section.
        section: String,
        /// Bytes the frame header promised.
        expected: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A section's payload does not match its recorded checksum.
    ChecksumMismatch {
        /// Name of the damaged section.
        section: String,
        /// Checksum recorded in the frame header.
        expected: u32,
        /// Checksum of the payload as read.
        actual: u32,
    },
    /// A section frame or payload could not be parsed.
    Malformed {
        /// Name of the section (or `"frame"` for framing errors).
        section: String,
        /// What was wrong.
        reason: String,
    },
    /// A record points at an API index or object id that does not exist.
    BadReference {
        /// Name of the referencing section.
        section: String,
        /// What dangled, e.g. `"access #3 api_idx 17 >= 5 apis"`.
        reason: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::MissingHeader => {
                write!(f, "not a DrGPUM trace: missing header line")
            }
            TraceError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported trace format version {found} (this build reads \
                 version {supported})"
            ),
            TraceError::Truncated {
                section,
                expected,
                available,
            } => write!(
                f,
                "trace truncated in section `{section}`: frame promises \
                 {expected} bytes, {available} available"
            ),
            TraceError::ChecksumMismatch {
                section,
                expected,
                actual,
            } => write!(
                f,
                "checksum mismatch in section `{section}`: header says \
                 {expected:#010x}, payload hashes to {actual:#010x}"
            ),
            TraceError::Malformed { section, reason } => {
                write!(f, "malformed section `{section}`: {reason}")
            }
            TraceError::BadReference { section, reason } => {
                write!(f, "dangling reference in section `{section}`: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Top-level profiler failure taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProfilerError {
    /// Loading or validating a saved trace failed.
    Trace(TraceError),
    /// A pattern detector panicked; its findings were dropped but the rest
    /// of the report survived (see the report's detector statuses).
    DetectorFailed {
        /// Name of the detector family.
        detector: String,
        /// Panic message, if one could be recovered.
        message: String,
    },
    /// A pattern detector exceeded its watchdog deadline and was cancelled;
    /// its findings were dropped but the rest of the report survived.
    DetectorTimedOut {
        /// Name of the detector family.
        detector: String,
        /// The deadline it exceeded, in milliseconds.
        deadline_ms: u64,
    },
    /// A streaming-trace I/O operation failed (create, append, or fsync).
    Stream {
        /// What the writer was doing, e.g. `"creating /tmp/run.stream"`.
        context: String,
        /// The underlying OS error message.
        message: String,
    },
    /// A resource budget was exhausted with nothing left to shed: the
    /// degradation ladder is already at its lowest rung.
    BudgetExhausted {
        /// Which limit tripped, e.g. `"resident bytes"`.
        limit: String,
        /// Human-readable detail (current value vs. limit).
        detail: String,
    },
}

impl fmt::Display for ProfilerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfilerError::Trace(e) => write!(f, "trace error: {e}"),
            ProfilerError::DetectorFailed { detector, message } => {
                write!(f, "detector `{detector}` failed: {message}")
            }
            ProfilerError::DetectorTimedOut {
                detector,
                deadline_ms,
            } => write!(
                f,
                "detector `{detector}` exceeded its {deadline_ms}ms watchdog \
                 deadline and was cancelled"
            ),
            ProfilerError::Stream { context, message } => {
                write!(f, "streaming trace I/O failed while {context}: {message}")
            }
            ProfilerError::BudgetExhausted { limit, detail } => {
                write!(f, "resource budget exhausted ({limit}): {detail}")
            }
        }
    }
}

impl std::error::Error for ProfilerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProfilerError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for ProfilerError {
    fn from(e: TraceError) -> Self {
        ProfilerError::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = TraceError::UnsupportedVersion {
            found: 9,
            supported: 2,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('2'));
        let p = ProfilerError::from(e.clone());
        assert!(p.to_string().contains("unsupported"));
        assert_eq!(p, ProfilerError::Trace(e));
    }

    #[test]
    fn errors_are_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<TraceError>();
        check::<ProfilerError>();
    }
}
