//! Crash-consistent streaming trace writer.
//!
//! The batch serializer in [`crate::trace_io`] writes a complete trace at
//! process exit — which is exactly when a crashing run loses everything.
//! [`StreamingTraceWriter`] instead appends length-prefixed, CRC-framed
//! sections to disk *as the run progresses*, fsyncing after every frame:
//!
//! * one `delta` section per GPU API event (new trace rows, plus updated
//!   def/use sets when a kernel finishes);
//! * a periodic `checkpoint` section snapshotting the mutable state
//!   (intra-object access maps, unified-memory pages) that deltas cannot
//!   carry incrementally;
//! * a final checkpoint and a clean-finish `end` marker on graceful
//!   shutdown.
//!
//! After a `kill -9`, [`crate::trace_io::salvage`] recovers every API
//! event up to the last fsynced frame, and `drgpum run --resume <trace>`
//! re-analyzes the recovered prefix. The writer is driven by the
//! collector's [`StreamState`] at deterministic boundaries (end of each
//! API callback, kernel end), so the on-disk frame sequence is identical
//! across serial, sharded, and parallel-kernel collection modes.

use crate::collector::Collector;
use crate::error::ProfilerError;
use crate::trace_io;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Deltas between periodic checkpoints. Small enough that a crash loses
/// little map state; large enough that checkpoint snapshots (which scale
/// with live access-map size, not with the delta) stay off the hot path.
const CHECKPOINT_EVERY: u32 = 8;

/// An append-only, fsync-per-frame trace writer (see the module docs).
///
/// Create with [`StreamingTraceWriter::create`], then hand it to
/// [`crate::Profiler::attach_streaming`] (or wrap it in a [`StreamState`]
/// and pass it to [`Collector::start_stream`] directly).
#[derive(Debug)]
pub struct StreamingTraceWriter {
    file: File,
    path: PathBuf,
    bytes_written: u64,
}

impl StreamingTraceWriter {
    /// Creates (truncating) the trace file at `path` and writes the stream
    /// header plus the `meta` section, fsynced.
    ///
    /// # Errors
    ///
    /// Returns [`ProfilerError::Stream`] when the file cannot be created
    /// or the header cannot be written and synced.
    pub fn create(path: impl AsRef<Path>, platform: &str) -> Result<Self, ProfilerError> {
        let path = path.as_ref().to_path_buf();
        let stream_err = |what: &str, e: &std::io::Error| ProfilerError::Stream {
            context: format!("{what} {}", path.display()),
            message: e.to_string(),
        };
        let file = File::create(&path).map_err(|e| stream_err("creating", &e))?;
        let mut writer = StreamingTraceWriter {
            file,
            path,
            bytes_written: 0,
        };
        writer.append(&trace_io::stream_header(platform))?;
        Ok(writer)
    }

    /// Appends one already-framed section (or marker line) and fsyncs it.
    fn append(&mut self, text: &str) -> Result<(), ProfilerError> {
        let op = |what: &str, e: std::io::Error| ProfilerError::Stream {
            context: format!("{what} {}", self.path.display()),
            message: e.to_string(),
        };
        self.file
            .write_all(text.as_bytes())
            .map_err(|e| op("appending to", e))?;
        self.file.sync_data().map_err(|e| op("syncing", e))?;
        self.bytes_written += text.len() as u64;
        Ok(())
    }

    /// Total bytes written (and fsynced) so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// The trace file being written.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// The collector-side state of one streaming trace: the writer plus
/// high-water marks of what has already been emitted.
#[derive(Debug)]
pub struct StreamState {
    writer: StreamingTraceWriter,
    cursor: trace_io::StreamCursor,
    deltas_since_checkpoint: u32,
    stopped: bool,
}

impl StreamState {
    /// Wraps a freshly-created writer.
    pub fn new(writer: StreamingTraceWriter) -> Self {
        StreamState {
            writer,
            cursor: trace_io::StreamCursor::default(),
            deltas_since_checkpoint: 0,
            stopped: false,
        }
    }

    /// Whether streaming has stopped (clean finish, I/O failure, or trace
    /// budget trip).
    pub fn stopped(&self) -> bool {
        self.stopped
    }

    /// Stops appending. Idempotent; the file keeps whatever was fsynced.
    pub(crate) fn stop(&mut self) {
        self.stopped = true;
    }

    /// Total bytes written (and fsynced) so far.
    pub fn bytes_written(&self) -> u64 {
        self.writer.bytes_written()
    }

    /// Emits everything new since the last flush as one delta frame, plus
    /// a checkpoint frame every [`CHECKPOINT_EVERY`] deltas.
    pub(crate) fn flush(&mut self, collector: &Collector) -> Result<(), ProfilerError> {
        let Some(delta) = trace_io::delta_section(collector, &mut self.cursor) else {
            return Ok(());
        };
        self.writer.append(&delta)?;
        self.deltas_since_checkpoint += 1;
        if self.deltas_since_checkpoint >= CHECKPOINT_EVERY {
            self.writer
                .append(&trace_io::checkpoint_section(collector))?;
            self.deltas_since_checkpoint = 0;
        }
        Ok(())
    }

    /// Writes a checkpoint frame immediately (used right before streaming
    /// stops on a trace-budget trip, so `--resume` keeps the final maps).
    pub(crate) fn final_checkpoint(&mut self, collector: &Collector) -> Result<(), ProfilerError> {
        self.writer.append(&trace_io::checkpoint_section(collector))
    }

    /// Clean finish: flushes the last delta, writes a final checkpoint and
    /// the `end` marker, and stops.
    pub(crate) fn finish(&mut self, collector: &Collector) -> Result<(), ProfilerError> {
        if let Some(delta) = trace_io::delta_section(collector, &mut self.cursor) {
            self.writer.append(&delta)?;
        }
        self.writer
            .append(&trace_io::checkpoint_section(collector))?;
        self.writer.append("end\n")?;
        self.stopped = true;
        Ok(())
    }
}
