//! Profiler configuration: analysis level, thresholds, sampling.
//!
//! Every threshold is user-tunable with the paper's experimental defaults
//! (Sec. 3): redundant-allocation size window 10 %, temporary-idleness gap 2
//! GPU APIs, overallocation 80 % accessed / 80 % fragmentation,
//! non-uniform-access-frequency CoV 20 %, top-2 memory peaks.

use crate::governor::ResourceBudget;
use std::collections::HashSet;

/// Which of DrGPUM's two analyses to run (Sec. 1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AnalysisLevel {
    /// Macroscopic object-level analysis only: GPU APIs are intercepted and
    /// kernels are patched with cheap hit flags (Fig. 5).
    #[default]
    ObjectLevel,
    /// Object-level plus microscopic intra-object analysis: sampled kernels
    /// are fully patched and per-element access maps are maintained.
    IntraObject,
}

/// Detection thresholds (all user-tunable; defaults from the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct Thresholds {
    /// Redundant allocation: maximum size difference between reuse partners,
    /// as a percentage of the reused object's size (paper: 10 %).
    pub redundant_size_pct: f64,
    /// Temporary idleness: minimum number of intervening GPU APIs between
    /// two consecutive accesses (paper: 2).
    pub idleness_min_apis: u64,
    /// Overallocation: report objects with fewer than this percentage of
    /// bytes accessed (paper: 80 %).
    pub overalloc_accessed_pct: f64,
    /// Overallocation guidance: fragmentation below this percentage counts
    /// as "low" (paper: 80 %).
    pub overalloc_frag_pct: f64,
    /// Non-uniform access frequency: report when the coefficient of
    /// variation of element access counts exceeds this percentage
    /// (paper: 20 %).
    pub nuaf_cov_pct: f64,
    /// Structured access: minimum number of disjoint slices (at least two
    /// non-overlapping per-API footprints are needed for the pattern to be
    /// meaningful).
    pub structured_min_slices: usize,
    /// How many memory peaks the analyzer highlights (paper: top 2).
    pub top_peaks: usize,
    /// Unified-memory extension: minimum host↔device migrations of one page
    /// before it is reported as thrashing / false sharing.
    pub thrash_min_migrations: u64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            redundant_size_pct: 10.0,
            idleness_min_apis: 2,
            overalloc_accessed_pct: 80.0,
            overalloc_frag_pct: 80.0,
            nuaf_cov_pct: 20.0,
            structured_min_slices: 2,
            top_peaks: 2,
            thrash_min_migrations: 4,
        }
    }
}

/// Kernel sampling and whitelisting for intra-object analysis (Sec. 5.5).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SamplingPolicy {
    /// Fully patch one in `period` instances of each kernel; the paper's
    /// Figure 6 uses 100. A period of 0 or 1 patches every instance.
    pub period: u64,
    /// If set, only kernels with these names are ever fully patched.
    pub whitelist: Option<HashSet<String>>,
}

impl SamplingPolicy {
    /// Creates a policy that patches every instance of every kernel.
    pub fn every_instance() -> Self {
        SamplingPolicy {
            period: 1,
            whitelist: None,
        }
    }

    /// Creates a policy with a sampling period (the paper uses 100).
    pub fn with_period(period: u64) -> Self {
        SamplingPolicy {
            period,
            whitelist: None,
        }
    }

    /// Restricts full patching to the given kernel names (builder style).
    pub fn with_whitelist(mut self, kernels: impl IntoIterator<Item = String>) -> Self {
        self.whitelist = Some(kernels.into_iter().collect());
        self
    }

    /// Decides whether instance `instance` of kernel `name` is sampled for
    /// full patching.
    pub fn samples(&self, name: &str, instance: u64) -> bool {
        self.samples_scaled(name, instance, 1)
    }

    /// Like [`samples`](Self::samples), with the effective period multiplied
    /// by `scale`. The session governor uses this on the `Sampled` rung of
    /// the degradation ladder to thin collection without replacing the
    /// user's policy; `scale <= 1` is identical to `samples`.
    pub fn samples_scaled(&self, name: &str, instance: u64, scale: u64) -> bool {
        if let Some(wl) = &self.whitelist {
            if !wl.contains(name) {
                return false;
            }
        }
        let period = self.period.max(1).saturating_mul(scale.max(1));
        instance.is_multiple_of(period)
    }
}

/// Element width used by frequency maps, in bytes.
pub const DEFAULT_ELEM_SIZE: u32 = 4;

/// Complete profiler configuration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfilerOptions {
    /// Which analyses to run.
    pub analysis: AnalysisLevel,
    /// Detection thresholds.
    pub thresholds: Thresholds,
    /// Kernel sampling for intra-object analysis.
    pub sampling: SamplingPolicy,
    /// Track pool tensors as first-class data objects (Sec. 5.4). Forces
    /// full patching so accesses can be attributed to tensors rather than
    /// the backing slab.
    pub track_pool_tensors: bool,
    /// Element width for frequency maps, in bytes.
    pub elem_size: u32,
    /// Number of worker shards for per-kernel access-map aggregation.
    /// `0` or `1` keeps the serial path; higher values partition objects
    /// across scoped worker threads and merge the per-shard maps at kernel
    /// end. Reports are byte-identical across all values.
    ///
    /// Orthogonal to `gpu_sim::SimConfig::kernel_workers`, which
    /// parallelizes kernel *execution* under the same byte-identical
    /// contract; the two compose freely.
    pub collector_shards: usize,
    /// Merge contiguous same-kind accesses from one warp into a single
    /// record inside the simulated sanitizer before they reach the host —
    /// the paper's "merging memory accesses" (Sec. 5.5). Does not change
    /// any analysis result or simulated timestamp.
    pub coalesce_accesses: bool,
    /// Resource limits enforced by the session governor. The default is
    /// unlimited; any unset field may still be filled from the environment
    /// (`DRGPUM_MEM_BUDGET`, `DRGPUM_DETECTOR_DEADLINE_MS`) when the
    /// collector is created, so explicit settings always win. When no limit
    /// ever trips, the governor is inert and reports are byte-identical to
    /// a run without it.
    pub budget: ResourceBudget,
    /// Test/bench hook: route per-access resolution and aggregation through
    /// the pre-epoch-index slow path (descending `BTreeMap` walks, no resolve
    /// caches, per-record governor remetering). Byte-identical to the fast
    /// path by contract — determinism tests pin the fast path against a
    /// baseline collected with this flag, and the overhead bench uses it to
    /// measure the speedup it enforces. Not a user-facing option.
    #[doc(hidden)]
    pub slow_path: bool,
}

impl ProfilerOptions {
    /// Object-level analysis with paper defaults.
    pub fn object_level() -> Self {
        ProfilerOptions {
            analysis: AnalysisLevel::ObjectLevel,
            thresholds: Thresholds::default(),
            sampling: SamplingPolicy::default(),
            track_pool_tensors: false,
            elem_size: DEFAULT_ELEM_SIZE,
            collector_shards: 1,
            coalesce_accesses: false,
            budget: ResourceBudget::default(),
            slow_path: false,
        }
    }

    /// Intra-object analysis of every kernel instance, paper defaults.
    pub fn intra_object() -> Self {
        ProfilerOptions {
            analysis: AnalysisLevel::IntraObject,
            thresholds: Thresholds::default(),
            sampling: SamplingPolicy::every_instance(),
            track_pool_tensors: false,
            elem_size: DEFAULT_ELEM_SIZE,
            collector_shards: 1,
            coalesce_accesses: false,
            budget: ResourceBudget::default(),
            slow_path: false,
        }
    }

    /// Enables pool-tensor tracking (builder style).
    pub fn with_pool_tracking(mut self) -> Self {
        self.track_pool_tensors = true;
        self
    }

    /// Replaces the sampling policy (builder style).
    pub fn with_sampling(mut self, sampling: SamplingPolicy) -> Self {
        self.sampling = sampling;
        self
    }

    /// Replaces the thresholds (builder style).
    pub fn with_thresholds(mut self, thresholds: Thresholds) -> Self {
        self.thresholds = thresholds;
        self
    }

    /// Sets the number of aggregation shards (builder style). `0` and `1`
    /// both mean serial.
    pub fn with_collector_shards(mut self, shards: usize) -> Self {
        self.collector_shards = shards;
        self
    }

    /// Enables warp-level access coalescing in the sanitizer (builder
    /// style).
    pub fn with_coalescing(mut self) -> Self {
        self.coalesce_accesses = true;
        self
    }

    /// Replaces the resource budget (builder style).
    pub fn with_budget(mut self, budget: ResourceBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Routes collection through the pre-epoch-index slow path (builder
    /// style). See [`ProfilerOptions::slow_path`].
    #[doc(hidden)]
    pub fn with_slow_path(mut self) -> Self {
        self.slow_path = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let t = Thresholds::default();
        assert_eq!(t.redundant_size_pct, 10.0);
        assert_eq!(t.idleness_min_apis, 2);
        assert_eq!(t.overalloc_accessed_pct, 80.0);
        assert_eq!(t.overalloc_frag_pct, 80.0);
        assert_eq!(t.nuaf_cov_pct, 20.0);
        assert_eq!(t.top_peaks, 2);
    }

    #[test]
    fn sampling_period() {
        let p = SamplingPolicy::with_period(100);
        assert!(p.samples("k", 0));
        assert!(!p.samples("k", 1));
        assert!(!p.samples("k", 99));
        assert!(p.samples("k", 100));
    }

    #[test]
    fn sampling_zero_period_means_every_instance() {
        let p = SamplingPolicy::default();
        assert_eq!(p.period, 0);
        assert!(p.samples("k", 0));
        assert!(p.samples("k", 7));
    }

    #[test]
    fn whitelist_restricts_kernels() {
        let p = SamplingPolicy::every_instance().with_whitelist(["hot".to_owned()]);
        assert!(p.samples("hot", 3));
        assert!(!p.samples("cold", 0));
    }

    #[test]
    fn analysis_default_is_object_level() {
        assert_eq!(AnalysisLevel::default(), AnalysisLevel::ObjectLevel);
    }
}
