//! The online data collector (Sec. 4, Sec. 5.1, Sec. 5.2, Sec. 5.5).
//!
//! The collector registers with the Sanitizer-style instrumentation API and
//! builds, online:
//!
//! * the memory map `M` of data objects ([`crate::object::ObjectRegistry`]);
//! * the object-level memory access trace: which GPU API accessed which
//!   object, plus per-API read/write/free sets for the dependency graph;
//! * intra-object access maps (bitmaps, per-API range sets, frequency maps)
//!   for the objects touched by fully-patched kernels;
//! * the memory-usage curve behind peak analysis;
//! * the adaptive GPU-/CPU-side map-placement decisions of Sec. 5.5.
//!
//! All pattern detection itself happens offline in
//! [`crate::analyzer`], on the data gathered here.

use crate::accessmap::{AccessBitmap, FreqMap, RangeSet};
use crate::depgraph::VertexAccess;
use crate::error::ProfilerError;
use crate::governor::{CollectionRung, ResourceBudget, SessionGovernor};
use crate::object::{ObjectId, ObjectRegistry, ObjectSource, ResolveCache};
use crate::options::{AnalysisLevel, ProfilerOptions};
use crate::patterns::intra::IntraObjectData;
use crate::patterns::unified::UnifiedPageStats;
use crate::patterns::AccessVia;
use crate::peaks::UsageSample;
use crate::report::DegradationRecord;
use crate::trace_stream::StreamState;
use gpu_sim::kernel::KernelCounters;
use gpu_sim::pool::{PoolEvent, PoolObserver};
use gpu_sim::sanitizer::{
    CollectionHint, KernelInfo, MemAccessRecord, PatchMode, SanitizerHooks, TouchedObject,
};
use gpu_sim::unified::{PageMigration, Side};
use gpu_sim::{
    AccessKind, AddrRange, ApiEvent, ApiKind, CallPath, DevicePtr, FrameId, SimError, SourceLoc,
    StreamId,
};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Cumulative wall-clock time the collector spent in each hot-path phase.
///
/// `resolve` is address→object resolution (pass 1 of the serial fast path,
/// phase A of the sharded path), `aggregate` is per-object map updates
/// (pass 2 / phase B), `flush` is kernel-end finalization (scratch drain,
/// per-API range publication, frequency-peak comparison). Maintained with
/// two clock reads per flushed buffer plus one per kernel — far below
/// measurement noise — and surfaced by the overhead bench's per-phase
/// breakdown. Timings never feed reports or traces.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Nanoseconds resolving addresses against the memory map.
    pub resolve_ns: u64,
    /// Nanoseconds updating per-object aggregation state.
    pub aggregate_ns: u64,
    /// Nanoseconds finalizing kernels (drain/merge/publish).
    pub flush_ns: u64,
}

/// Per-kernel per-object flags, held in a dense table indexed by object id
/// (ids are allocated sequentially, so the table stays small and the hot
/// path never hashes). Cleared by walking the touched list, not the table.
mod kernel_flags {
    /// Object was touched by the current kernel (it is on the touched list).
    pub const SEEN: u8 = 1 << 0;
    /// At least one read reached the object this kernel.
    pub const READ: u8 = 1 << 1;
    /// At least one write reached the object this kernel.
    pub const WRITE: u8 = 1 << 2;
    /// Intra-object maps were updated for the object this kernel.
    pub const INTRA: u8 = 1 << 3;
}

/// One GPU API in the collector's trace (pattern-relevant kinds only).
#[derive(Debug, Clone)]
pub struct GpuApi {
    /// Display name, e.g. `"KERL(0, 1)"`.
    pub name: String,
    /// Detail: kernel name, object label, or byte count.
    pub detail: String,
    /// Mnemonic (`ALLOC`/`FREE`/`CPY`/`SET`/`KERL`).
    pub mnemonic: &'static str,
    /// Stream of the invocation.
    pub stream: StreamId,
    /// Host call path.
    pub call_path: CallPath,
    /// Object def/use/free sets for dependency construction.
    pub vertex: VertexAccess,
    /// Simulated start/end times (for the GUI timeline).
    pub start_ns: u64,
    /// Simulated end time.
    pub end_ns: u64,
}

/// One object access observed at one GPU API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawAccess {
    /// Trace index of the accessing API.
    pub api_idx: usize,
    /// The accessed object.
    pub object: ObjectId,
    /// The API read the object.
    pub read: bool,
    /// The API wrote the object.
    pub write: bool,
    /// Kind of API.
    pub via: AccessVia,
}

/// Where intra-object access maps were updated for one kernel (Sec. 5.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapSide {
    /// Maps fit on the device: update there, copy results back post-kernel.
    Gpu,
    /// Maps would exhaust device memory: stream records to the host.
    Cpu,
}

/// One adaptive placement decision.
#[derive(Debug, Clone)]
pub struct ModeDecision {
    /// Kernel name.
    pub kernel: String,
    /// Chosen side.
    pub side: MapSide,
    /// Total bytes of access maps at decision time.
    pub map_bytes: u64,
    /// Live data bytes at decision time.
    pub data_bytes: u64,
}

#[derive(Debug)]
struct IntraState {
    data: IntraObjectData,
    /// Ranges touched by the kernel currently executing.
    current_ranges: RangeSet,
    freq: Option<FreqMap>,
    /// Bytes this state last charged against the session governor's
    /// resident-memory budget (kept current by `Collector::remeter_intra`).
    charged: u64,
}

impl IntraState {
    fn new(object: ObjectId, size: u64) -> Self {
        IntraState {
            data: IntraObjectData::new(object, size),
            current_ranges: RangeSet::new(),
            freq: None,
            charged: 0,
        }
    }
}

/// Records the record-buffer cap the collector requests through the
/// sanitizer backpressure hint once it has degraded to coalesced-or-worse
/// collection: smaller buffers mean less staging memory between flushes.
const BACKPRESSURE_BUFFER_RECORDS: usize = 4096;

/// Per-kernel aggregation state for one object owned by one shard worker.
///
/// Each object hashes to exactly one shard, so one worker sees all of an
/// object's records in buffer order — per-object state is built in the same
/// sequence as the serial path, which is what makes the merged result
/// byte-identical.
#[derive(Debug)]
struct KernelScratch {
    read: bool,
    write: bool,
    intra: Option<ScratchIntra>,
}

#[derive(Debug)]
struct ScratchIntra {
    size: u64,
    bitmap: crate::accessmap::AccessBitmap,
    ranges: RangeSet,
    freq: FreqMap,
}

/// Which shard owns `object`. Plain modulo on the id keeps the assignment
/// deterministic across runs (no hasher seeds involved).
fn shard_of(object: ObjectId, shards: usize) -> usize {
    (object.0 % shards as u64) as usize
}

/// Slow-path resolution: the pre-epoch-index descending `BTreeMap` walk,
/// one per record, with no caching. Free function so shard workers can
/// share the registry without borrowing the whole collector. Only the
/// `slow_path` baseline hook routes through here; the fast path uses
/// [`ObjectRegistry::resolve_cached`].
fn resolve_in_slow(registry: &ObjectRegistry, addr: DevicePtr) -> Option<(ObjectId, u64)> {
    let id = registry.resolve_slow(addr)?;
    let base = registry.get(id)?.range.start;
    Some((id, addr.offset_from(base)))
}

/// Records per dynamically-claimed resolution chunk in the parallel phase.
const RESOLVE_CHUNK: usize = 1024;

/// Below this many records, threading overhead dwarfs the work: aggregate
/// on the calling thread (still through the shard scratch, so the merged
/// result is identical).
const PARALLEL_THRESHOLD: usize = 2048;

/// Memo table from a shared frame list to its rendered call path: the
/// frames are hash-consed `Arc<str>`s, so identical paths share every
/// rendered location by refcount.
type CallPathMemo = HashMap<Arc<[FrameId]>, Arc<[Arc<str>]>>;

/// The online data collector. Register it with
/// [`gpu_sim::Sanitizer::register`] (and, for pool workloads, with
/// [`gpu_sim::pool::CachingPool::register_observer`]); the
/// [`crate::profiler::Profiler`] facade does both.
#[derive(Debug)]
pub struct Collector {
    opts: ProfilerOptions,
    registry: ObjectRegistry,
    gpu_apis: Vec<GpuApi>,
    accesses: Vec<RawAccess>,
    usage: Vec<UsageSample>,
    in_use_bytes: u64,
    /// Intra-object state, dense by object id (`intra[id]`). Object ids are
    /// allocated sequentially by the registry, so indexing replaces hashing
    /// on the per-record hot path; iteration in index order is iteration in
    /// object-id order, which the reporting paths require anyway.
    intra: Vec<Option<IntraState>>,
    /// State of the kernel currently executing.
    current_mode: PatchMode,
    /// Per-object flags for the current kernel, dense by object id (see
    /// [`kernel_flags`]). Only entries named by `kernel_touched` are live;
    /// everything else is zero.
    kernel_flag_table: Vec<u8>,
    /// Objects touched by the current kernel, in first-touch order.
    kernel_touched: Vec<ObjectId>,
    mode_decisions: Vec<ModeDecision>,
    /// Last GPU-API trace index seen per stream (for event edges).
    last_api_on_stream: HashMap<u32, usize>,
    /// Event id → the GPU API it was recorded after.
    event_record_points: HashMap<u32, usize>,
    /// Stream → pending event-sync predecessors for its next GPU API.
    pending_sync: HashMap<u32, Vec<usize>>,
    /// Per-page unified-memory migration statistics (the Sec. 8 extension).
    unified_pages: HashMap<(ObjectId, u32), UnifiedPageStats>,
    /// Device memory capacity, for the Sec. 5.5 placement decision.
    device_capacity: u64,
    /// Downgrades taken to keep collecting through faults; copied into the
    /// final report.
    degradations: Vec<DegradationRecord>,
    /// After a device allocation failure, access maps are pinned to the CPU
    /// side regardless of the Sec. 5.5 capacity estimate — the estimate is
    /// unreliable once the device has refused memory.
    force_cpu_maps: bool,
    /// Per-shard aggregation scratch for the kernel currently executing
    /// (parallel mode only); drained into `intra`/`accesses` at kernel end.
    shard_scratch: Vec<HashMap<ObjectId, KernelScratch>>,
    /// The session governor: meters profiler-resident bytes against the
    /// configured [`ResourceBudget`] and walks the degradation ladder when
    /// a budget trips.
    governor: SessionGovernor,
    /// Mirror of the context-owned frame table (`FrameId.0` → rendered
    /// location), fed by [`SanitizerHooks::on_frame`]; lets the streaming
    /// writer resolve call paths without access to the [`gpu_sim::FrameTable`].
    /// Frames are hash-consed `Arc<str>`s: each location is rendered once
    /// and every resolved call path shares it by refcount.
    frame_mirror: Vec<Arc<str>>,
    /// Memoized call-path renderings keyed by the shared frame list:
    /// identical paths (the common case — most APIs are invoked from a
    /// handful of sites) are resolved once per session. Invalidated if a
    /// mirrored frame is ever re-rendered differently.
    call_path_memo: parking_lot::Mutex<CallPathMemo>,
    /// Crash-consistent streaming-trace state, when `--stream-trace` is on.
    stream: Option<StreamState>,
    /// Per-resolver-thread last-hit cache for the serial hot path (shard
    /// workers carry stack-local caches instead). Epoch-validated: any
    /// alloc/free since the fill forces a re-search.
    resolve_cache: ResolveCache,
    /// Reused scratch for the per-buffer resolve pass — one allocation per
    /// session instead of one per flushed buffer.
    resolved_scratch: Vec<Option<(ObjectId, u64)>>,
    /// Cumulative hot-path phase timings (resolve / aggregate / flush).
    phase: PhaseTimings,
}

impl Collector {
    /// Creates a collector with the given options. `device_capacity` is the
    /// platform's device memory size, used by the adaptive map-placement
    /// decision.
    pub fn new(opts: ProfilerOptions, device_capacity: u64) -> Self {
        let governor = SessionGovernor::new(opts.budget.clone().apply_env());
        Collector {
            opts,
            registry: ObjectRegistry::new(),
            gpu_apis: Vec::new(),
            accesses: Vec::new(),
            usage: Vec::new(),
            in_use_bytes: 0,
            intra: Vec::new(),
            current_mode: PatchMode::None,
            kernel_flag_table: Vec::new(),
            kernel_touched: Vec::new(),
            mode_decisions: Vec::new(),
            last_api_on_stream: HashMap::new(),
            event_record_points: HashMap::new(),
            pending_sync: HashMap::new(),
            unified_pages: HashMap::new(),
            device_capacity,
            degradations: Vec::new(),
            force_cpu_maps: false,
            shard_scratch: Vec::new(),
            governor,
            frame_mirror: Vec::new(),
            call_path_memo: parking_lot::Mutex::new(HashMap::new()),
            stream: None,
            resolve_cache: ResolveCache::new(),
            resolved_scratch: Vec::new(),
            phase: PhaseTimings::default(),
        }
    }

    /// The effective resource budget (options merged with the
    /// `DRGPUM_MEM_BUDGET` / `DRGPUM_DETECTOR_DEADLINE_MS` environment).
    pub fn budget(&self) -> &ResourceBudget {
        self.governor.budget()
    }

    /// The session governor (metered bytes, current collection rung).
    pub fn governor(&self) -> &SessionGovernor {
        &self.governor
    }

    /// The current rung on the adaptive degradation ladder.
    pub fn collection_rung(&self) -> CollectionRung {
        self.governor.rung()
    }

    /// Attaches a crash-consistent streaming-trace writer; every subsequent
    /// API event is flushed (fsynced) as a delta section.
    pub fn start_stream(&mut self, state: StreamState) {
        self.stream = Some(state);
    }

    /// Whether a streaming-trace writer is attached and still writing.
    pub fn is_streaming(&self) -> bool {
        self.stream.as_ref().is_some_and(|s| !s.stopped())
    }

    /// Writes the final checkpoint and the clean-finish marker to the
    /// streaming trace, if one is attached. Idempotent once finished.
    pub fn finish_stream(&mut self) -> Result<(), ProfilerError> {
        let Some(mut state) = self.stream.take() else {
            return Ok(());
        };
        if state.stopped() {
            return Ok(());
        }
        state.finish(self)
    }

    /// Resolves a call path against the frame mirror, innermost-first —
    /// the same rendering [`crate::trace_io::save`] produces from the
    /// context-owned frame table.
    ///
    /// Memoized on the shared frame list: most APIs are invoked from a
    /// handful of sites, so identical paths render once per session and
    /// every later resolution is one map hit returning shared `Arc`s.
    pub(crate) fn resolve_call_path(&self, path: &CallPath) -> Arc<[Arc<str>]> {
        if let Some(hit) = self.call_path_memo.lock().get(path.frames()) {
            return hit.clone();
        }
        let rendered: Arc<[Arc<str>]> = path
            .frames()
            .iter()
            .rev()
            .map(|id| {
                self.frame_mirror
                    .get(id.0 as usize)
                    .filter(|s| !s.is_empty())
                    .cloned()
                    .unwrap_or_else(|| Arc::from(format!("<unknown frame {}>", id.0)))
            })
            .collect();
        self.call_path_memo
            .lock()
            .insert(path.frames_shared(), rendered.clone());
        rendered
    }

    /// The options this collector runs with.
    pub fn options(&self) -> &ProfilerOptions {
        &self.opts
    }

    /// The memory map `M`.
    pub fn registry(&self) -> &ObjectRegistry {
        &self.registry
    }

    /// The GPU-API trace gathered so far.
    pub fn gpu_apis(&self) -> &[GpuApi] {
        &self.gpu_apis
    }

    /// All object accesses gathered so far.
    pub fn accesses(&self) -> &[RawAccess] {
        &self.accesses
    }

    /// The memory-usage curve (bytes in use after each GPU API).
    pub fn usage_curve(&self) -> &[UsageSample] {
        &self.usage
    }

    /// Intra-object data for every monitored object, in object-id order
    /// (the dense table's natural order).
    pub fn intra_data(&self) -> Vec<&IntraObjectData> {
        self.intra
            .iter()
            .filter_map(|s| s.as_ref().map(|st| &st.data))
            .collect()
    }

    /// Cumulative hot-path phase timings (resolve / aggregate / flush).
    pub fn phase_timings(&self) -> PhaseTimings {
        self.phase
    }

    /// Adaptive map-placement decisions (one per fully-patched kernel).
    pub fn mode_decisions(&self) -> &[ModeDecision] {
        &self.mode_decisions
    }

    /// Downgrades this collector took to survive faults in the profiled
    /// application (in observation order).
    pub fn degradations(&self) -> &[DegradationRecord] {
        &self.degradations
    }

    /// Whether any downgrade happened during collection.
    pub fn is_degraded(&self) -> bool {
        !self.degradations.is_empty()
    }

    /// Per-page unified-memory migration statistics, sorted by object and
    /// page (the Sec. 8 extension's detector input).
    pub fn unified_page_stats(&self) -> Vec<UnifiedPageStats> {
        let mut v: Vec<UnifiedPageStats> = self.unified_pages.values().cloned().collect();
        v.sort_by_key(|p| (p.object, p.page_index));
        v
    }

    fn record_usage(&mut self) {
        self.usage.push(UsageSample {
            api_idx: self.gpu_apis.len() - 1,
            bytes_in_use: self.in_use_bytes,
        });
        self.governor
            .charge(std::mem::size_of::<UsageSample>() as u64);
    }

    fn push_api(&mut self, event: &ApiEvent, detail: String, mut vertex: VertexAccess) -> usize {
        // Attach any event-synchronization predecessors waiting on this
        // stream (cudaStreamWaitEvent before this API).
        if let Some(preds) = self.pending_sync.remove(&event.stream.0) {
            vertex.after = preds;
        }
        self.last_api_on_stream
            .insert(event.stream.0, self.gpu_apis.len());
        self.gpu_apis.push(GpuApi {
            name: event.display_name(),
            detail,
            mnemonic: event.kind.mnemonic(),
            stream: event.stream,
            call_path: event.call_path.clone(),
            vertex,
            start_ns: event.start.as_ns(),
            end_ns: event.end.as_ns(),
        });
        let idx = self.gpu_apis.len() - 1;
        let a = &self.gpu_apis[idx];
        self.governor
            .charge(std::mem::size_of::<GpuApi>() as u64 + (a.name.len() + a.detail.len()) as u64);
        idx
    }

    fn note_access(
        &mut self,
        api_idx: usize,
        object: ObjectId,
        read: bool,
        write: bool,
        via: AccessVia,
    ) {
        // A faulting run can deliver kernel-end callbacks with no matching
        // trace entry; drop the attribution rather than panic.
        let Some(api) = self.gpu_apis.get_mut(api_idx) else {
            self.degradations.push(DegradationRecord::new(
                "collector",
                format!("dropped access to object {object:?}: no GPU API at index {api_idx}"),
            ));
            return;
        };
        self.accesses.push(RawAccess {
            api_idx,
            object,
            read,
            write,
            via,
        });
        self.governor
            .charge(std::mem::size_of::<RawAccess>() as u64);
        let v = &mut api.vertex;
        if read {
            v.reads.push(object);
        }
        if write {
            v.writes.push(object);
        }
    }

    /// Whether intra-object maps are maintained for `object`.
    fn monitors_intra(&self, object: ObjectId) -> bool {
        if self.opts.analysis != AnalysisLevel::IntraObject {
            return false;
        }
        self.registry
            .get(object)
            .map(|o| o.source.is_analyzable())
            .unwrap_or(false)
    }

    /// The dense intra-state slot for `object`, growing the table on first
    /// touch of a new id. Associated function over the field so callers can
    /// hold the slot alongside borrows of other collector fields.
    fn intra_slot_in(
        intra: &mut Vec<Option<IntraState>>,
        object: ObjectId,
    ) -> &mut Option<IntraState> {
        let idx = object.0 as usize;
        if intra.len() <= idx {
            intra.resize_with(idx + 1, || None);
        }
        &mut intra[idx]
    }

    fn intra_state(&mut self, object: ObjectId) -> Option<&mut IntraState> {
        if !self.monitors_intra(object) {
            return None;
        }
        let size = self.registry.get(object)?.size();
        Some(
            Self::intra_slot_in(&mut self.intra, object)
                .get_or_insert_with(|| IntraState::new(object, size)),
        )
    }

    /// Marks `object` as touched by the current kernel and ORs `flags` into
    /// its per-kernel flag byte, returning the previous flags.
    fn touch_kernel_flags(&mut self, object: ObjectId, flags: u8) -> u8 {
        let idx = object.0 as usize;
        if self.kernel_flag_table.len() <= idx {
            self.kernel_flag_table.resize(idx + 1, 0);
        }
        let prev = self.kernel_flag_table[idx];
        if prev & kernel_flags::SEEN == 0 {
            self.kernel_touched.push(object);
        }
        self.kernel_flag_table[idx] = prev | kernel_flags::SEEN | flags;
        prev
    }

    /// Resets per-kernel state by walking the touched list (the flag table
    /// itself is dense and stays allocated).
    fn clear_kernel_state(&mut self) {
        for obj in self.kernel_touched.drain(..) {
            self.kernel_flag_table[obj.0 as usize] = 0;
        }
    }

    /// Re-meters one intra-object state against the governor: charges (or
    /// credits) the delta between its current footprint and what it last
    /// charged. Associated function so callers can hold a `&mut` into
    /// `self.intra` alongside the governor borrow.
    fn remeter_intra(governor: &mut SessionGovernor, st: &mut IntraState) {
        let now = st.data.footprint_bytes()
            + st.freq.as_ref().map(FreqMap::footprint_bytes).unwrap_or(0)
            + st.current_ranges.footprint_bytes();
        if now >= st.charged {
            governor.charge(now - st.charged);
        } else {
            governor.credit(st.charged - now);
        }
        st.charged = now;
    }

    /// Applies a range access (from a memcpy/memset, whose accessed range
    /// the Sanitizer reports directly — paper footnote 4) to the object's
    /// intra maps, attributed to GPU API `api_idx`.
    fn intra_range_access(&mut self, api_idx: usize, object: ObjectId, offset: u64, len: u64) {
        let rung = self.governor.rung();
        if rung >= CollectionRung::CountersOnly {
            // Counters-only rung: no intra maps at all.
            return;
        }
        let elem_size = self.opts.elem_size.max(1);
        let size = self.registry.get(object).map(|o| o.size()).unwrap_or(0);
        if let Some(st) = self.intra_state(object) {
            st.data.bitmap.set_range(offset, offset + len);
            let mut rs = RangeSet::new();
            rs.insert(offset, offset + len);
            st.data.per_api.push((api_idx, rs));
            // Frequency analytics are the first thing the degradation
            // ladder sheds (coalesced-only rung and below).
            if rung < CollectionRung::CoalescedOnly {
                let lf = st
                    .data
                    .lifetime_freq
                    .get_or_insert_with(|| FreqMap::new(size, elem_size));
                // One bulk access counts once per touched element.
                lf.record(
                    offset,
                    u32::try_from(len.min(u64::from(u32::MAX))).unwrap_or(u32::MAX),
                );
            }
        }
        if let Some(st) = self
            .intra
            .get_mut(object.0 as usize)
            .and_then(Option::as_mut)
        {
            Self::remeter_intra(&mut self.governor, st);
        }
    }

    /// Attributes a byte-span access (memcpy/memset — the Sanitizer reports
    /// the accessed range directly, paper footnote 4) to every live object
    /// the span covers. A span crossing an object's end is split at the
    /// boundary, so accesses are never silently attributed past the first
    /// byte's object; bytes covered by no object stay unattributed, exactly
    /// as a fully-unresolved span always did.
    fn range_access(
        &mut self,
        api_idx: usize,
        start: DevicePtr,
        len: u64,
        read: bool,
        write: bool,
        via: AccessVia,
    ) {
        let segments = self.registry.resolve_span(start, len);
        // Around a nested pool tensor the enclosing slab contributes one
        // segment per side: attribute the object-level access once.
        let mut noted: Vec<ObjectId> = Vec::with_capacity(segments.len());
        for s in &segments {
            if !noted.contains(&s.object) {
                noted.push(s.object);
                self.note_access(api_idx, s.object, read, write, via);
            }
        }
        for s in &segments {
            self.intra_range_access(api_idx, s.object, s.offset, s.len);
        }
    }

    /// Parallel-mode record aggregation: resolves the buffer against the
    /// memory map, then partitions the per-object aggregation across shard
    /// workers. Each object belongs to exactly one shard, so per-object
    /// update order equals buffer order — the same order the serial path
    /// applies — and the merged result is byte-identical.
    fn sharded_buffer(&mut self, records: &[MemAccessRecord], shards: usize) {
        if self.shard_scratch.len() != shards {
            self.shard_scratch = (0..shards).map(|_| HashMap::new()).collect();
        }
        let elem_size = self.opts.elem_size.max(1);
        let monitor_intra = self.opts.analysis == AnalysisLevel::IntraObject;
        let slow = self.opts.slow_path;
        let mut resolved = std::mem::take(&mut self.resolved_scratch);
        let registry = &self.registry;
        let small = records.len() < PARALLEL_THRESHOLD;

        // Phase A: resolve every record to (object, offset). Workers claim
        // fixed-size chunks from a shared cursor (dynamic load balancing —
        // resolution cost varies with map depth) and scatter results back
        // under the output lock. Each worker carries its own last-hit cache:
        // the registry cannot change mid-buffer, so cache hits are pure.
        let t_resolve = Instant::now();
        resolved.clear();
        if small {
            let mut cache = ResolveCache::new();
            resolved.extend(records.iter().map(|r| {
                if slow {
                    resolve_in_slow(registry, r.addr)
                } else {
                    registry.resolve_cached(r.addr, &mut cache)
                }
            }));
        } else {
            resolved.resize(records.len(), None);
            let out = parking_lot::Mutex::new(std::mem::take(&mut resolved));
            let cursor = parking_lot::Mutex::new(0usize);
            std::thread::scope(|s| {
                for _ in 0..shards {
                    s.spawn(|| {
                        let mut cache = ResolveCache::new();
                        loop {
                            let start = {
                                let mut c = cursor.lock();
                                let claimed = *c;
                                *c = (claimed + RESOLVE_CHUNK).min(records.len());
                                claimed
                            };
                            if start >= records.len() {
                                break;
                            }
                            let end = (start + RESOLVE_CHUNK).min(records.len());
                            let local: Vec<Option<(ObjectId, u64)>> = records[start..end]
                                .iter()
                                .map(|r| {
                                    if slow {
                                        resolve_in_slow(registry, r.addr)
                                    } else {
                                        registry.resolve_cached(r.addr, &mut cache)
                                    }
                                })
                                .collect();
                            out.lock()[start..end].copy_from_slice(&local);
                        }
                    });
                }
            });
            resolved = out.into_inner();
        }
        self.phase.resolve_ns += t_resolve.elapsed().as_nanos() as u64;

        // Phase B: per-shard aggregation. Each worker owns its scratch map
        // exclusively (`iter_mut` hands out disjoint `&mut`), so no locking
        // is needed on the hot update path.
        let aggregate = |shard_id: usize, map: &mut HashMap<ObjectId, KernelScratch>| {
            for (r, res) in records.iter().zip(&resolved) {
                let Some((obj, off)) = *res else { continue };
                if shard_of(obj, shards) != shard_id {
                    continue;
                }
                let entry = map.entry(obj).or_insert(KernelScratch {
                    read: false,
                    write: false,
                    intra: None,
                });
                match r.kind {
                    AccessKind::Read => entry.read = true,
                    AccessKind::Write => entry.write = true,
                }
                if monitor_intra {
                    let Some(o) = registry.get(obj) else { continue };
                    if !o.source.is_analyzable() {
                        continue;
                    }
                    let size = o.size();
                    let si = entry.intra.get_or_insert_with(|| ScratchIntra {
                        size,
                        bitmap: AccessBitmap::new(size),
                        ranges: RangeSet::new(),
                        freq: FreqMap::new(size, elem_size),
                    });
                    si.bitmap.set_range(off, off + u64::from(r.size));
                    si.ranges.insert(off, off + u64::from(r.size));
                    si.freq.record(off, r.size);
                }
            }
        };
        let t_aggregate = Instant::now();
        if small {
            for (shard_id, map) in self.shard_scratch.iter_mut().enumerate() {
                aggregate(shard_id, map);
            }
        } else {
            let aggregate = &aggregate;
            std::thread::scope(|s| {
                for (shard_id, map) in self.shard_scratch.iter_mut().enumerate() {
                    s.spawn(move || aggregate(shard_id, map));
                }
            });
        }
        self.phase.aggregate_ns += t_aggregate.elapsed().as_nanos() as u64;
        self.resolved_scratch = resolved;
        self.resolved_scratch.clear();
    }

    /// The pre-overhaul serial hot path, preserved behind the `slow_path`
    /// hook: per-record `BTreeMap` resolution, per-record map updates, and
    /// per-record governor remetering. The determinism suite pins the fast
    /// path against baselines collected through here, and the overhead
    /// bench measures (and enforces) the speedup over it.
    fn serial_buffer_slow(&mut self, records: &[MemAccessRecord]) {
        let elem_size = self.opts.elem_size.max(1);
        // Frequency analytics are shed on the coalesced-only rung and below.
        let keep_freq = self.governor.rung() < CollectionRung::CoalescedOnly;
        let t0 = Instant::now();
        for r in records {
            let Some((obj, off)) = resolve_in_slow(&self.registry, r.addr) else {
                continue;
            };
            let kind_flag = match r.kind {
                AccessKind::Read => kernel_flags::READ,
                AccessKind::Write => kernel_flags::WRITE,
            };
            self.touch_kernel_flags(obj, kind_flag);
            if self.monitors_intra(obj) {
                let size = self.registry.get(obj).map(|o| o.size()).unwrap_or_default();
                let st = Self::intra_slot_in(&mut self.intra, obj)
                    .get_or_insert_with(|| IntraState::new(obj, size));
                st.data.bitmap.set_range(off, off + u64::from(r.size));
                st.current_ranges.insert(off, off + u64::from(r.size));
                if keep_freq {
                    // Frequency map is zeroed per GPU API (Sec. 5.2): lazily
                    // created at the kernel's first touch of the object.
                    let freq = st.freq.get_or_insert_with(|| FreqMap::new(size, elem_size));
                    freq.record(off, r.size);
                    st.data
                        .lifetime_freq
                        .get_or_insert_with(|| FreqMap::new(size, elem_size))
                        .record(off, r.size);
                }
                Self::remeter_intra(&mut self.governor, st);
                self.touch_kernel_flags(obj, kernel_flags::INTRA);
            }
        }
        self.phase.aggregate_ns += t0.elapsed().as_nanos() as u64;
    }

    /// The overhauled serial hot path: a resolve pass over the whole buffer
    /// through the epoch-snapshot index and per-thread last-hit cache, then
    /// an aggregate pass that batches runs of consecutive same-object
    /// records so dense-table lookups happen once per run, with governor
    /// remetering deferred to the end of the buffer. Byte-identical to
    /// [`Collector::serial_buffer_slow`]: per-object update order is buffer
    /// order in both, and the governor's metered footprint is only read at
    /// end-of-API / kernel-end boundaries, which always come after the
    /// flush that delivered these records.
    fn serial_buffer_fast(&mut self, records: &[MemAccessRecord]) {
        // Pass 1: resolve. The registry cannot change mid-buffer, so every
        // cache hit is exactly the search it elides.
        let t_resolve = Instant::now();
        let mut resolved = std::mem::take(&mut self.resolved_scratch);
        resolved.clear();
        resolved.reserve(records.len());
        let mut cache = self.resolve_cache;
        for r in records {
            resolved.push(self.registry.resolve_cached(r.addr, &mut cache));
        }
        self.resolve_cache = cache;
        self.phase.resolve_ns += t_resolve.elapsed().as_nanos() as u64;

        // Pass 2: aggregate.
        let t_aggregate = Instant::now();
        let elem_size = self.opts.elem_size.max(1);
        let keep_freq = self.governor.rung() < CollectionRung::CoalescedOnly;
        let monitor_intra = self.opts.analysis == AnalysisLevel::IntraObject;
        let len = records.len();
        let mut i = 0;
        while i < len {
            let Some((obj, _)) = resolved[i] else {
                i += 1;
                continue;
            };
            let mut j = i + 1;
            while j < len && matches!(resolved[j], Some((o, _)) if o == obj) {
                j += 1;
            }
            let mut flags = 0u8;
            for r in &records[i..j] {
                flags |= match r.kind {
                    AccessKind::Read => kernel_flags::READ,
                    AccessKind::Write => kernel_flags::WRITE,
                };
            }
            if monitor_intra {
                if let Some(o) = self.registry.get(obj) {
                    if o.source.is_analyzable() {
                        flags |= kernel_flags::INTRA;
                        let size = o.size();
                        let st = Self::intra_slot_in(&mut self.intra, obj)
                            .get_or_insert_with(|| IntraState::new(obj, size));
                        for (r, res) in records[i..j].iter().zip(&resolved[i..j]) {
                            let off = res.map(|(_, off)| off).unwrap_or_default();
                            let end = off + u64::from(r.size);
                            st.data.bitmap.set_range(off, end);
                            st.current_ranges.insert(off, end);
                            if keep_freq {
                                st.freq
                                    .get_or_insert_with(|| FreqMap::new(size, elem_size))
                                    .record(off, r.size);
                                st.data
                                    .lifetime_freq
                                    .get_or_insert_with(|| FreqMap::new(size, elem_size))
                                    .record(off, r.size);
                            }
                        }
                    }
                }
            }
            self.touch_kernel_flags(obj, flags);
            i = j;
        }
        // Deferred remetering: once per touched object per buffer instead
        // of once per record, settled before any enforcement boundary reads
        // the metered footprint.
        for k in 0..self.kernel_touched.len() {
            let obj = self.kernel_touched[k];
            if self.kernel_flag_table[obj.0 as usize] & kernel_flags::INTRA != 0 {
                if let Some(st) = self.intra.get_mut(obj.0 as usize).and_then(Option::as_mut) {
                    Self::remeter_intra(&mut self.governor, st);
                }
            }
        }
        self.phase.aggregate_ns += t_aggregate.elapsed().as_nanos() as u64;
        self.resolved_scratch = resolved;
    }

    /// Drains the per-shard scratch into the persistent per-object state,
    /// in ascending object-id order (the same order the serial path
    /// attributes accesses in).
    fn finish_kernel_sharded(&mut self, api_idx: usize) {
        let mut merged: Vec<(ObjectId, KernelScratch)> = self
            .shard_scratch
            .iter_mut()
            .flat_map(|m| m.drain())
            .collect();
        merged.sort_by_key(|(id, _)| *id);
        let elem_size = self.opts.elem_size.max(1);
        // On the coalesced-only rung and below, the per-shard scratch still
        // builds transient frequency maps, but nothing frequency-derived is
        // persisted — the same observable outcome as the serial gating.
        let keep_freq = self.governor.rung() < CollectionRung::CoalescedOnly;
        for (obj, scratch) in merged {
            self.note_access(api_idx, obj, scratch.read, scratch.write, AccessVia::Kernel);
            let Some(si) = scratch.intra else { continue };
            let st = Self::intra_slot_in(&mut self.intra, obj)
                .get_or_insert_with(|| IntraState::new(obj, si.size));
            if let Err(e) = st.data.bitmap.merge(&si.bitmap) {
                // The object was re-registered with a different size
                // mid-kernel — impossible through the API, but never
                // silently truncate if it happens.
                self.degradations.push(DegradationRecord::new(
                    "collector",
                    format!("dropped intra maps for {obj}: {e}"),
                ));
                continue;
            }
            if !si.ranges.is_empty() {
                st.data.per_api.push((api_idx, si.ranges));
            }
            if keep_freq {
                let cov = si.freq.coefficient_of_variation_pct();
                let better = st
                    .data
                    .nuaf_peak
                    .as_ref()
                    .map(|(_, best, _)| cov > *best)
                    .unwrap_or(true);
                if better && cov > 0.0 {
                    st.data.nuaf_peak = Some((api_idx, cov, si.freq.histogram()));
                }
                let lf = st
                    .data
                    .lifetime_freq
                    .get_or_insert_with(|| FreqMap::new(si.size, elem_size));
                if let Err(e) = lf.merge(&si.freq) {
                    self.degradations.push(DegradationRecord::new(
                        "collector",
                        format!("dropped lifetime frequencies for {obj}: {e}"),
                    ));
                }
            }
            Self::remeter_intra(&mut self.governor, st);
        }
    }

    /// Finishes the currently-executing kernel: attributes object accesses
    /// to the kernel's trace entry and finalizes intra-object maps.
    fn finish_kernel(&mut self, touched: &[TouchedObject]) {
        let api_idx = self.gpu_apis.len().saturating_sub(1);
        // Object-level attribution: prefer the per-record set (needed for
        // pool tensors) when fully patched; otherwise the hit-flag summary.
        if self.current_mode == PatchMode::Full {
            if self.opts.collector_shards.max(1) > 1 {
                self.finish_kernel_sharded(api_idx);
            } else {
                let mut objs: Vec<ObjectId> = self.kernel_touched.clone();
                objs.sort();
                for obj in objs {
                    let f = self.kernel_flag_table[obj.0 as usize];
                    self.note_access(
                        api_idx,
                        obj,
                        f & kernel_flags::READ != 0,
                        f & kernel_flags::WRITE != 0,
                        AccessVia::Kernel,
                    );
                }
            }
        } else {
            for t in touched {
                if let Some(obj) = self.registry.resolve(t.base) {
                    self.note_access(api_idx, obj, t.read, t.written, AccessVia::Kernel);
                }
            }
        }
        // Intra-object finalization for this kernel, in object-id order.
        let mut sorted: Vec<ObjectId> = self
            .kernel_touched
            .iter()
            .copied()
            .filter(|obj| self.kernel_flag_table[obj.0 as usize] & kernel_flags::INTRA != 0)
            .collect();
        sorted.sort();
        for obj in sorted {
            if let Some(st) = self.intra.get_mut(obj.0 as usize).and_then(Option::as_mut) {
                let ranges = std::mem::take(&mut st.current_ranges);
                if !ranges.is_empty() {
                    st.data.per_api.push((api_idx, ranges));
                }
                if let Some(freq) = &st.freq {
                    let cov = freq.coefficient_of_variation_pct();
                    let better = st
                        .data
                        .nuaf_peak
                        .as_ref()
                        .map(|(_, best, _)| cov > *best)
                        .unwrap_or(true);
                    if better && cov > 0.0 {
                        st.data.nuaf_peak = Some((api_idx, cov, freq.histogram()));
                    }
                }
                st.freq = None;
                Self::remeter_intra(&mut self.governor, st);
            }
        }
        self.clear_kernel_state();
        self.current_mode = PatchMode::None;
    }

    /// Budget enforcement at a deterministic boundary (end of a GPU API,
    /// kernel end): while the metered footprint exceeds the resident budget,
    /// walk the degradation ladder one rung at a time, shedding state to
    /// match, until the footprint fits or the ladder bottoms out.
    fn enforce_budget(&mut self) {
        while self.governor.over_resident_budget() {
            match self.governor.demote("resident budget exceeded") {
                Some((rung, record)) => {
                    self.degradations.push(record);
                    match rung {
                        CollectionRung::CoalescedOnly => self.shed_frequency_maps(),
                        CollectionRung::CountersOnly => self.shed_intra_maps(),
                        // `Sampled` sheds nothing retroactively: it thins
                        // *future* kernel patching via the scaled sampling
                        // period.
                        _ => {}
                    }
                }
                None => {
                    if let Some(rec) = self.governor.exhaustion_record() {
                        self.degradations.push(rec);
                    }
                    break;
                }
            }
        }
    }

    /// Coalesced-only rung: drops per-object frequency maps (both the
    /// per-kernel scratch and the lifetime accumulation), crediting their
    /// footprint back to the governor. Bitmaps and range sets survive.
    fn shed_frequency_maps(&mut self) {
        for st in self.intra.iter_mut().filter_map(Option::as_mut) {
            st.freq = None;
            st.data.lifetime_freq = None;
            Self::remeter_intra(&mut self.governor, st);
        }
    }

    /// Counters-only rung: drops all intra-object state, crediting every
    /// charged byte back to the governor. Future kernels are patched with
    /// hit flags only (see `on_kernel_begin`).
    fn shed_intra_maps(&mut self) {
        for slot in &mut self.intra {
            if let Some(st) = slot.take() {
                self.governor.credit(st.charged);
            }
        }
        for &obj in &self.kernel_touched {
            self.kernel_flag_table[obj.0 as usize] &= !kernel_flags::INTRA;
        }
    }

    /// Flushes pending state to the streaming trace, if one is attached and
    /// still writing. A write/sync failure stops the stream (recorded as a
    /// degradation) but never aborts profiling; tripping the trace-bytes
    /// budget writes a final checkpoint and then stops.
    fn stream_flush(&mut self) {
        let Some(mut state) = self.stream.take() else {
            return;
        };
        if !state.stopped() {
            if let Err(e) = state.flush(&*self) {
                state.stop();
                self.degradations.push(DegradationRecord::at(
                    "stream",
                    format!("streaming trace stopped: {e}"),
                    self.governor.elapsed_ms(),
                ));
            } else if let Some(rec) = self.governor.note_trace_bytes(state.bytes_written()) {
                // Over the trace budget: one final checkpoint so `--resume`
                // can still replay analysis state, then stop appending.
                let _ = state.final_checkpoint(&*self);
                state.stop();
                self.degradations.push(rec);
            }
        }
        self.stream = Some(state);
    }
}

impl SanitizerHooks for Collector {
    fn on_api(&mut self, event: &ApiEvent) {
        match &event.kind {
            ApiKind::Malloc { ptr, size, label } => {
                let api_idx = self.gpu_apis.len();
                let obj = self.registry.on_alloc(
                    label.clone(),
                    AddrRange::new(*ptr, *size),
                    ObjectSource::Cuda,
                    api_idx,
                    true,
                    event.call_path.clone(),
                );
                self.push_api(
                    event,
                    label.clone(),
                    VertexAccess {
                        stream: event.stream,
                        writes: vec![obj],
                        ..Default::default()
                    },
                );
                self.in_use_bytes += size;
                self.record_usage();
            }
            ApiKind::Free { ptr, size, label } => {
                let api_idx = self.gpu_apis.len();
                let freed = self.registry.on_free(*ptr, api_idx);
                // A FREE of a pointer with no live object (spurious or
                // double free) must not corrupt the usage curve.
                if freed.is_none() {
                    self.degradations.push(DegradationRecord::new(
                        "collector",
                        format!("FREE of unknown pointer ({label}) ignored in usage accounting"),
                    ));
                }
                self.push_api(
                    event,
                    label.clone(),
                    VertexAccess {
                        stream: event.stream,
                        frees: freed.into_iter().collect(),
                        ..Default::default()
                    },
                );
                if freed.is_some() {
                    self.in_use_bytes = self.in_use_bytes.saturating_sub(*size);
                }
                self.record_usage();
            }
            ApiKind::MemcpyH2D { dst, size } => {
                let api_idx = self.push_api(
                    event,
                    format!("{size}B H2D"),
                    VertexAccess {
                        stream: event.stream,
                        ..Default::default()
                    },
                );
                self.range_access(api_idx, *dst, *size, false, true, AccessVia::Memcpy);
                self.record_usage();
            }
            ApiKind::MemcpyD2H { src, size } => {
                let api_idx = self.push_api(
                    event,
                    format!("{size}B D2H"),
                    VertexAccess {
                        stream: event.stream,
                        ..Default::default()
                    },
                );
                self.range_access(api_idx, *src, *size, true, false, AccessVia::Memcpy);
                self.record_usage();
            }
            ApiKind::MemcpyD2D { dst, src, size } => {
                let api_idx = self.push_api(
                    event,
                    format!("{size}B D2D"),
                    VertexAccess {
                        stream: event.stream,
                        ..Default::default()
                    },
                );
                self.range_access(api_idx, *src, *size, true, false, AccessVia::Memcpy);
                self.range_access(api_idx, *dst, *size, false, true, AccessVia::Memcpy);
                self.record_usage();
            }
            ApiKind::Memset { dst, size, .. } => {
                let api_idx = self.push_api(
                    event,
                    format!("{size}B set"),
                    VertexAccess {
                        stream: event.stream,
                        ..Default::default()
                    },
                );
                self.range_access(api_idx, *dst, *size, false, true, AccessVia::Memset);
                self.record_usage();
            }
            ApiKind::KernelLaunch { name, .. } => {
                self.push_api(
                    event,
                    name.to_string(),
                    VertexAccess {
                        stream: event.stream,
                        ..Default::default()
                    },
                );
                self.record_usage();
            }
            // Event APIs are not GPU APIs in the paper's sense, but they
            // order GPU APIs across streams: record where each event was
            // recorded, and queue an edge for the waiting stream's next API.
            ApiKind::EventRecord { event: ev } => {
                if let Some(&idx) = self.last_api_on_stream.get(&event.stream.0) {
                    self.event_record_points.insert(ev.0, idx);
                }
            }
            ApiKind::EventWait { event: ev } => {
                if let Some(&idx) = self.event_record_points.get(&ev.0) {
                    self.pending_sync
                        .entry(event.stream.0)
                        .or_default()
                        .push(idx);
                }
            }
            // Remaining sync/stream-management APIs carry no pattern
            // information.
            _ => {}
        }
        // Deterministic governance boundary: every hook sees the same API
        // sequence regardless of sharding or kernel workers, so budget
        // trips (and stream deltas) land identically across modes.
        self.enforce_budget();
        self.stream_flush();
    }

    fn on_kernel_begin(&mut self, info: &KernelInfo) -> PatchMode {
        // Counters-only rung: hit flags regardless of the analysis level.
        if self.governor.rung() >= CollectionRung::CountersOnly {
            self.current_mode = PatchMode::HitFlags;
            self.clear_kernel_state();
            return PatchMode::HitFlags;
        }
        let mut mode = match self.opts.analysis {
            AnalysisLevel::ObjectLevel => PatchMode::HitFlags,
            AnalysisLevel::IntraObject => {
                // On the `Sampled` rung the period is stretched by the
                // governor's demotion scale.
                if self.opts.sampling.samples_scaled(
                    &info.name,
                    info.instance,
                    self.governor.sampling_scale(),
                ) {
                    PatchMode::Full
                } else {
                    PatchMode::HitFlags
                }
            }
        };
        // Pool tensors are invisible to the hit-flag summary (it reports the
        // backing slab); attribute per record instead.
        if self.opts.track_pool_tensors
            && self
                .registry
                .live_objects()
                .any(|o| o.source == ObjectSource::PoolTensor)
        {
            mode = PatchMode::Full;
        }
        if mode == PatchMode::Full {
            // Sec. 5.5: place access maps on the GPU iff maps + live data
            // fit in device memory; otherwise stream records to the CPU.
            let map_bytes: u64 = self
                .intra
                .iter()
                .filter_map(Option::as_ref)
                .map(|s| {
                    s.data.bitmap.footprint_bytes()
                        + s.freq.as_ref().map(FreqMap::footprint_bytes).unwrap_or(0)
                })
                .sum();
            let data_bytes = self.in_use_bytes;
            let side = if !self.force_cpu_maps && map_bytes + data_bytes <= self.device_capacity {
                MapSide::Gpu
            } else {
                MapSide::Cpu
            };
            self.mode_decisions.push(ModeDecision {
                kernel: info.name.to_string(),
                side,
                map_bytes,
                data_bytes,
            });
        }
        self.current_mode = mode;
        self.clear_kernel_state();
        mode
    }

    fn on_mem_access_buffer(&mut self, _info: &KernelInfo, records: &[MemAccessRecord]) {
        if self.current_mode != PatchMode::Full {
            return;
        }
        let shards = self.opts.collector_shards.max(1);
        if shards > 1 {
            self.sharded_buffer(records, shards);
        } else if self.opts.slow_path {
            self.serial_buffer_slow(records);
        } else {
            self.serial_buffer_fast(records);
        }
    }

    fn on_kernel_end(
        &mut self,
        _info: &KernelInfo,
        touched: &[TouchedObject],
        _counters: &KernelCounters,
    ) {
        let t_flush = Instant::now();
        self.finish_kernel(touched);
        self.phase.flush_ns += t_flush.elapsed().as_nanos() as u64;
        // The kernel's accesses were attributed to its (already-emitted)
        // KernelLaunch trace row: re-check the budget and flush the updated
        // row to the stream before the next API.
        self.enforce_budget();
        self.stream_flush();
    }

    fn on_frame(&mut self, id: FrameId, loc: &SourceLoc) {
        let idx = id.0 as usize;
        if self.frame_mirror.len() <= idx {
            self.frame_mirror.resize(idx + 1, Arc::from(""));
        }
        let rendered = loc.to_string();
        if self.frame_mirror[idx].as_ref() != rendered.as_str() {
            // Frames are interned once per location, so a non-empty slot
            // never changes in practice — but if one ever did, every
            // memoized rendering mentioning it would be stale.
            if !self.frame_mirror[idx].is_empty() {
                self.call_path_memo.lock().clear();
            }
            self.frame_mirror[idx] = Arc::from(rendered);
        }
    }

    fn collection_hint(&self) -> CollectionHint {
        if self.governor.rung() >= CollectionRung::CoalescedOnly {
            // Backpressure: once degraded, ask the sanitizer to coalesce
            // warp accesses and to flush smaller record buffers, shrinking
            // both the record stream and the staging memory between flushes.
            CollectionHint {
                coalesce: true,
                buffer_capacity: Some(BACKPRESSURE_BUFFER_RECORDS),
            }
        } else {
            CollectionHint::default()
        }
    }

    fn on_alloc_failure(&mut self, requested: u64, label: &str, error: &SimError) {
        // Degraded mode (tied to Sec. 5.5): once the device refuses memory,
        // keep profiling but pin all future access maps to CPU-side storage
        // so the profiler itself never competes for exhausted device memory.
        if !self.force_cpu_maps {
            self.force_cpu_maps = true;
            self.degradations.push(DegradationRecord::new(
                "collector",
                format!(
                    "device allocation of {requested} bytes ({label}) failed ({error}); \
                     access maps pinned to CPU-side storage for the rest of the run"
                ),
            ));
        }
    }

    fn on_page_migration(&mut self, migration: &PageMigration) {
        let Some(object) = self.registry.resolve(migration.region_base) else {
            return;
        };
        let Some(base) = self.registry.get(object).map(|o| o.range.start) else {
            return;
        };
        let stats = self
            .unified_pages
            .entry((object, migration.page_index))
            .or_insert_with(|| UnifiedPageStats::new(object, migration.page_index));
        stats.migrations += 1;
        let off = migration.cause_addr.offset_from(base);
        let end = off + u64::from(migration.cause_size);
        match migration.to {
            Side::Host => stats.host_ranges.insert(off, end),
            Side::Device => stats.device_ranges.insert(off, end),
        }
    }
}

impl PoolObserver for Collector {
    fn on_pool_event(&mut self, event: &PoolEvent) {
        if !self.opts.track_pool_tensors {
            return;
        }
        match event {
            PoolEvent::Alloc {
                ptr,
                size,
                label,
                call_path,
            } => {
                // The enclosing cudaMalloc allocation is a pool slab: its
                // memory is analyzed through the tensors, not as one object.
                if let Some(slab) = self.registry.resolve(*ptr) {
                    if self.registry.get(slab).map(|o| o.source) == Some(ObjectSource::Cuda) {
                        self.registry.reclassify(slab, ObjectSource::PoolSlab);
                    }
                }
                let anchor = self.gpu_apis.len();
                self.registry.on_alloc(
                    label.clone(),
                    AddrRange::new(*ptr, *size),
                    ObjectSource::PoolTensor,
                    anchor,
                    false,
                    call_path.clone(),
                );
            }
            PoolEvent::Free { ptr, .. } => {
                let anchor = self.gpu_apis.len();
                self.registry.on_pool_free(*ptr, anchor);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceContext, LaunchConfig};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn attach(ctx: &mut DeviceContext, opts: ProfilerOptions) -> Arc<Mutex<Collector>> {
        let c = Arc::new(Mutex::new(Collector::new(
            opts,
            ctx.config().device_memory_bytes,
        )));
        ctx.sanitizer_mut().register(c.clone());
        c
    }

    #[test]
    fn collects_gpu_apis_and_usage_curve() {
        let mut ctx = DeviceContext::new_default();
        let c = attach(&mut ctx, ProfilerOptions::object_level());
        let a = ctx.malloc(1000, "a").unwrap();
        let b = ctx.malloc(2000, "b").unwrap();
        ctx.free(a).unwrap();
        ctx.free(b).unwrap();
        let col = c.lock();
        assert_eq!(col.gpu_apis().len(), 4);
        let usage: Vec<u64> = col.usage_curve().iter().map(|s| s.bytes_in_use).collect();
        assert_eq!(usage, vec![1000, 3000, 2000, 0]);
        assert_eq!(col.registry().len(), 2);
        assert_eq!(col.registry().live_count(), 0);
    }

    #[test]
    fn memcpy_and_memset_accesses_are_attributed() {
        let mut ctx = DeviceContext::new_default();
        let c = attach(&mut ctx, ProfilerOptions::object_level());
        let a = ctx.malloc(64, "a").unwrap();
        ctx.memset(a, 0, 64).unwrap();
        ctx.memcpy_h2d(a, &[1u8; 64]).unwrap();
        let mut out = [0u8; 64];
        ctx.memcpy_d2h(&mut out, a).unwrap();
        let col = c.lock();
        let acc = col.accesses();
        assert_eq!(acc.len(), 3);
        assert!(acc[0].write && !acc[0].read);
        assert_eq!(acc[0].via, AccessVia::Memset);
        assert!(acc[1].write && !acc[1].read);
        assert!(acc[2].read && !acc[2].write);
    }

    #[test]
    fn kernel_hit_flags_attribute_object_accesses() {
        let mut ctx = DeviceContext::new_default();
        let c = attach(&mut ctx, ProfilerOptions::object_level());
        let a = ctx.malloc(64, "a").unwrap();
        let b = ctx.malloc(64, "b").unwrap();
        ctx.memset(a, 1, 64).unwrap();
        ctx.launch(
            "copy",
            LaunchConfig::cover(16, 16).unwrap(),
            StreamId::DEFAULT,
            |t| {
                let i = t.global_x();
                if i < 16 {
                    let v = t.load_f32(a + i * 4);
                    t.store_f32(b + i * 4, v);
                }
            },
        )
        .unwrap();
        let col = c.lock();
        let kernel_accesses: Vec<&RawAccess> = col
            .accesses()
            .iter()
            .filter(|x| x.via == AccessVia::Kernel)
            .collect();
        assert_eq!(kernel_accesses.len(), 2);
        let obj_a = col.registry().iter().find(|o| o.label == "a").unwrap().id;
        let a_acc = kernel_accesses.iter().find(|x| x.object == obj_a).unwrap();
        assert!(a_acc.read && !a_acc.write);
    }

    #[test]
    fn intra_mode_builds_bitmaps() {
        let mut ctx = DeviceContext::new_default();
        let c = attach(&mut ctx, ProfilerOptions::intra_object());
        let a = ctx.malloc(1000, "a").unwrap();
        // Kernel touches only the first 100 bytes (25 f32 elements).
        ctx.launch(
            "partial",
            LaunchConfig::cover(25, 32).unwrap(),
            StreamId::DEFAULT,
            |t| {
                let i = t.global_x();
                if i < 25 {
                    t.store_f32(a + i * 4, 1.0);
                }
            },
        )
        .unwrap();
        let col = c.lock();
        let intra = col.intra_data();
        assert_eq!(intra.len(), 1);
        assert_eq!(intra[0].bitmap.count_set(), 100);
        assert_eq!(intra[0].per_api.len(), 1);
        let (_, ranges) = &intra[0].per_api[0];
        assert_eq!(ranges.ranges(), &[(0, 100)]);
    }

    #[test]
    fn sampling_skips_unsampled_instances() {
        let mut ctx = DeviceContext::new_default();
        let opts = ProfilerOptions::intra_object()
            .with_sampling(crate::options::SamplingPolicy::with_period(2));
        let c = attach(&mut ctx, opts);
        let a = ctx.malloc(64, "a").unwrap();
        for _ in 0..4 {
            ctx.launch(
                "k",
                LaunchConfig::cover(16, 16).unwrap(),
                StreamId::DEFAULT,
                |t| {
                    let i = t.global_x();
                    if i < 16 {
                        t.store_f32(a + i * 4, 2.0);
                    }
                },
            )
            .unwrap();
        }
        let col = c.lock();
        // Instances 0 and 2 are sampled: two per-API entries.
        assert_eq!(col.intra_data()[0].per_api.len(), 2);
        // Object-level attribution still sees all four kernels (hit flags).
        let kernel_accesses = col
            .accesses()
            .iter()
            .filter(|x| x.via == AccessVia::Kernel)
            .count();
        assert_eq!(kernel_accesses, 4);
        assert_eq!(col.mode_decisions().len(), 2);
    }

    #[test]
    fn event_sync_orders_independent_streams() {
        use crate::analyzer::build_trace_view;
        // Producer on stream 1 and consumer on stream 2 touch *different*
        // objects; only an event orders them. Without the event-sync edge
        // the two kernels would share a topological wave.
        let mut ctx = DeviceContext::new_default();
        let c = attach(&mut ctx, ProfilerOptions::object_level());
        let s1 = ctx.create_stream();
        let s2 = ctx.create_stream();
        let a = ctx.malloc(64, "a").unwrap();
        let b = ctx.malloc(64, "b").unwrap();
        ctx.launch(
            "produce",
            LaunchConfig::cover(4, 4).unwrap(),
            s1,
            move |t| {
                let i = t.global_x();
                if i < 16 {
                    t.store_f32(a + i * 4, 1.0);
                }
            },
        )
        .unwrap();
        let ev = ctx.create_event();
        ctx.record_event(ev, s1).unwrap();
        ctx.wait_event(s2, ev).unwrap();
        ctx.launch(
            "consume",
            LaunchConfig::cover(4, 4).unwrap(),
            s2,
            move |t| {
                let i = t.global_x();
                if i < 16 {
                    t.store_f32(b + i * 4, 2.0);
                }
            },
        )
        .unwrap();
        let col = c.lock();
        let tv = build_trace_view(&col);
        // Trace: ALLOC a (0), ALLOC b (1), KERL produce (2), KERL consume (3).
        assert!(
            tv.api_ts[3] > tv.api_ts[2],
            "the event must order consume after produce: {:?}",
            tv.api_ts
        );
    }

    #[test]
    fn pool_tensors_become_objects_when_tracked() {
        use gpu_sim::pool::CachingPool;
        let mut ctx = DeviceContext::new_default();
        let c = Arc::new(Mutex::new(Collector::new(
            ProfilerOptions::intra_object().with_pool_tracking(),
            ctx.config().device_memory_bytes,
        )));
        ctx.sanitizer_mut().register(c.clone());
        let mut pool = CachingPool::reserve(&mut ctx, 1 << 16).unwrap();
        pool.register_observer(c.clone());
        let t = pool.alloc(&mut ctx, 256, "tensor").unwrap();
        ctx.launch(
            "use",
            LaunchConfig::cover(4, 4).unwrap(),
            StreamId::DEFAULT,
            move |tc| {
                let i = tc.global_x();
                if i < 4 {
                    tc.store_f32(t + i * 4, 1.0);
                }
            },
        )
        .unwrap();
        pool.free(t).unwrap();
        let col = c.lock();
        let tensor = col
            .registry()
            .iter()
            .find(|o| o.label == "tensor")
            .expect("tensor registered");
        assert_eq!(tensor.source, ObjectSource::PoolTensor);
        assert!(tensor.free_api.is_some());
        assert!(!tensor.free_is_api);
        // The kernel access attributed to the tensor, not the slab.
        let acc = col
            .accesses()
            .iter()
            .find(|a| a.object == tensor.id)
            .expect("tensor access");
        assert!(acc.write);
    }

    #[test]
    fn memcpy_spanning_two_pool_tensors_attributes_both() {
        // Regression: the collector used to resolve only a memcpy's first
        // byte and attribute the whole transfer to that object, so a copy
        // spanning two adjacent pool tensors silently credited every byte
        // to the first tensor. The span must split at the boundary.
        use gpu_sim::pool::{CachingPool, POOL_ALIGN};
        let mut ctx = DeviceContext::new_default();
        let c = Arc::new(Mutex::new(Collector::new(
            ProfilerOptions::intra_object().with_pool_tracking(),
            ctx.config().device_memory_bytes,
        )));
        ctx.sanitizer_mut().register(c.clone());
        let mut pool = CachingPool::reserve(&mut ctx, 1 << 16).unwrap();
        pool.register_observer(c.clone());
        // Exactly one pool block each, so t2 starts where t1 ends.
        let t1 = pool.alloc(&mut ctx, POOL_ALIGN, "t1").unwrap();
        let t2 = pool.alloc(&mut ctx, POOL_ALIGN, "t2").unwrap();
        assert_eq!(t2, t1 + POOL_ALIGN);
        // One h2d copy covering all of t1 and the first 128 bytes of t2.
        let payload = vec![7u8; POOL_ALIGN as usize + 128];
        ctx.memcpy_h2d(t1, &payload).unwrap();
        let col = c.lock();
        let id_of = |label: &str| col.registry().iter().find(|o| o.label == label).unwrap().id;
        let (o1, o2) = (id_of("t1"), id_of("t2"));
        // Both tensors see the write (tensors are innermost, so no slab
        // segment appears inside the copied span).
        for id in [o1, o2] {
            let acc = col
                .accesses()
                .iter()
                .find(|a| a.object == id && a.via == AccessVia::Memcpy)
                .expect("memcpy access attributed");
            assert!(acc.write && !acc.read);
        }
        // Intra coverage splits exactly at the tensor boundary: t1 gets its
        // full 512 bytes (not the whole 640-byte transfer), t2 gets 128
        // bytes starting at offset 0.
        let intra = col.intra_data();
        let of = |id| intra.iter().find(|d| d.object == id).unwrap();
        assert_eq!(of(o1).bitmap.count_set(), POOL_ALIGN);
        assert_eq!(of(o1).per_api[0].1.ranges(), &[(0, POOL_ALIGN)]);
        assert_eq!(of(o2).bitmap.count_set(), 128);
        assert_eq!(of(o2).per_api[0].1.ranges(), &[(0, 128)]);
    }

    #[test]
    fn memcpy_crossing_object_end_is_clipped() {
        // Regression companion: a copy overrunning a tensor's end into
        // untracked pool space must clip the tensor's attribution at its
        // boundary instead of crediting the overhang to it.
        use gpu_sim::pool::CachingPool;
        let mut ctx = DeviceContext::new_default();
        let c = Arc::new(Mutex::new(Collector::new(
            ProfilerOptions::intra_object().with_pool_tracking(),
            ctx.config().device_memory_bytes,
        )));
        ctx.sanitizer_mut().register(c.clone());
        let mut pool = CachingPool::reserve(&mut ctx, 1 << 16).unwrap();
        pool.register_observer(c.clone());
        let t = pool.alloc(&mut ctx, 256, "t").unwrap();
        // 256-byte tensor in a 512-byte pool block: the copy spills 128
        // bytes past the tensor's end into slab-only territory.
        ctx.memcpy_h2d(t, &[1u8; 384]).unwrap();
        let col = c.lock();
        let tensor = col.registry().iter().find(|o| o.label == "t").unwrap();
        let intra = col.intra_data();
        let d = intra.iter().find(|d| d.object == tensor.id).unwrap();
        assert_eq!(d.bitmap.count_set(), 256);
        assert_eq!(d.per_api[0].1.ranges(), &[(0, 256)]);
    }

    #[test]
    fn sharded_collection_matches_serial() {
        // Same program observed twice: serial collector vs 4-shard
        // collector (with the parallel threshold far exceeded by a 64 KiB
        // footprint), asserting identical aggregation state.
        let run = |shards: usize| {
            let mut ctx = DeviceContext::new_default();
            ctx.sanitizer_mut().set_buffer_capacity(512); // force many flushes
            let c = attach(
                &mut ctx,
                ProfilerOptions::intra_object().with_collector_shards(shards),
            );
            let n = 4096u64;
            let a = ctx.malloc(n * 4, "a").unwrap();
            let b = ctx.malloc(n * 4, "b").unwrap();
            ctx.memset(a, 1, n * 4).unwrap();
            ctx.launch(
                "skewed",
                LaunchConfig::cover(n, 128).unwrap(),
                StreamId::DEFAULT,
                |t| {
                    let i = t.global_x();
                    if i < n {
                        let v = t.load_f32(a + i * 4);
                        // Non-uniform: every thread also re-reads element 0.
                        let w = t.load_f32(a);
                        t.store_f32(b + (i / 2) * 4, v + w);
                    }
                },
            )
            .unwrap();
            ctx.free(a).unwrap();
            c
        };
        let serial = run(1);
        let sharded = run(4);
        let (s, p) = (serial.lock(), sharded.lock());
        assert_eq!(s.accesses(), p.accesses());
        let (si, pi) = (s.intra_data(), p.intra_data());
        assert_eq!(si.len(), pi.len());
        for (a, b) in si.iter().zip(&pi) {
            assert_eq!(a.object, b.object);
            assert_eq!(a.bitmap.count_set(), b.bitmap.count_set());
            assert_eq!(a.per_api.len(), b.per_api.len());
            for ((ia, ra), (ib, rb)) in a.per_api.iter().zip(&b.per_api) {
                assert_eq!(ia, ib);
                assert_eq!(ra.ranges(), rb.ranges());
            }
            let (na, nb) = (&a.nuaf_peak, &b.nuaf_peak);
            assert_eq!(na.is_some(), nb.is_some());
            if let (Some((ia, ca, ha)), Some((ib, cb, hb))) = (na, nb) {
                assert_eq!(ia, ib);
                assert_eq!(ca.to_bits(), cb.to_bits(), "CoV must match exactly");
                assert_eq!(ha, hb);
            }
            assert_eq!(
                a.lifetime_freq.as_ref().map(|f| f.counts()),
                b.lifetime_freq.as_ref().map(|f| f.counts())
            );
        }
        assert!(p.degradations().is_empty(), "{:?}", p.degradations());
    }

    #[test]
    fn untracked_pools_are_ignored() {
        use gpu_sim::pool::CachingPool;
        let mut ctx = DeviceContext::new_default();
        let c = attach(&mut ctx, ProfilerOptions::object_level());
        let mut pool = CachingPool::reserve(&mut ctx, 1 << 16).unwrap();
        pool.register_observer(c.clone());
        let t = pool.alloc(&mut ctx, 256, "tensor").unwrap();
        pool.free(t).unwrap();
        let col = c.lock();
        assert_eq!(col.registry().len(), 1, "only the slab is an object");
    }
}
