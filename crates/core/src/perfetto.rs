//! Perfetto/Chrome-trace export — the feed for DrGPUM's web GUI (Sec. 4,
//! Fig. 7).
//!
//! The paper's GUI is built atop Perfetto UI and shows three panes: the
//! topological order of GPU APIs in a timeline, the lifetimes of the data
//! objects involved in the top memory peaks, and per-API details (call
//! paths, patterns, inefficiency distances, suggestions). This module emits
//! a `liveness.json` in the Chrome trace-event format that Perfetto renders
//! with the same structure:
//!
//! * process 1 — "GPU APIs": one track per stream, one slice per GPU API;
//! * process 2 — "Data objects": one track per object, a lifetime slice
//!   from allocation to deallocation plus an instant event per access;
//! * slice `args` carry call paths, detected patterns, and suggestions.

use crate::analyzer::build_trace_view;
use crate::collector::Collector;
use crate::report::Report;
use gpu_sim::FrameTable;
use serde_json::{json, Value};

/// Builds the Chrome-trace JSON for a profiled run.
///
/// Load the result in [Perfetto UI](https://ui.perfetto.dev) via
/// *Open trace file* — the workflow in the paper's artifact appendix.
pub fn trace_json(collector: &Collector, frames: &FrameTable, report: &Report) -> Value {
    let mut events = Vec::new();
    let tv = build_trace_view(collector);

    // Process metadata.
    events.push(json!({
        "name": "process_name", "ph": "M", "pid": 1,
        "args": {"name": "GPU APIs (topological order)"}
    }));
    events.push(json!({
        "name": "process_name", "ph": "M", "pid": 2,
        "args": {"name": "Data objects"}
    }));

    // --- Pane 1: GPU APIs, one track per stream. -------------------------
    let mut streams_seen = std::collections::BTreeSet::new();
    for (idx, api) in collector.gpu_apis().iter().enumerate() {
        let tid = u64::from(api.stream.0) + 1;
        if streams_seen.insert(api.stream.0) {
            events.push(json!({
                "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                "args": {"name": format!("stream {}", api.stream.0)}
            }));
        }
        let dur = (api.end_ns.saturating_sub(api.start_ns)).max(1) as f64 / 1000.0;
        events.push(json!({
            "name": api.name,
            "cat": api.mnemonic,
            "ph": "X",
            "ts": api.start_ns as f64 / 1000.0,
            "dur": dur,
            "pid": 1,
            "tid": tid,
            "args": {
                "detail": api.detail,
                "topological_ts": tv.api_ts[idx],
                "call_path": frames.render(&api.call_path),
            }
        }));
    }

    // --- Pane 2: data objects of the top peaks (plus their accesses). ----
    let peak_labels: std::collections::HashSet<&str> = report
        .peaks
        .iter()
        .flat_map(|p| p.objects.iter().map(|(l, _)| l.as_str()))
        .collect();
    let end_of_trace_ns = collector
        .gpu_apis()
        .iter()
        .map(|a| a.end_ns)
        .max()
        .unwrap_or(0);

    for obj in &tv.objects {
        // Like the paper's GUI we focus the object pane on the data objects
        // involved in the top memory peaks (Sec. 4).
        if !peak_labels.contains(obj.label.as_str()) {
            continue;
        }
        let tid = obj.id.0 + 1;
        events.push(json!({
            "name": "thread_name", "ph": "M", "pid": 2, "tid": tid,
            "args": {"name": format!("{} ({} B)", obj.label, obj.size)}
        }));
        let start_ns = obj
            .alloc
            .as_ref()
            .map(|a| collector.gpu_apis()[a.idx].start_ns)
            .unwrap_or(0);
        let end_ns = obj
            .free
            .as_ref()
            .map(|f| collector.gpu_apis()[f.idx].end_ns)
            .unwrap_or(end_of_trace_ns)
            .max(start_ns + 1);
        let findings: Vec<Value> = report
            .findings_for(&obj.label)
            .iter()
            .map(|f| {
                json!({
                    "pattern": f.kind().name(),
                    "code": f.kind().code(),
                    "suggestion": f.suggestion,
                    "wasted_bytes": f.wasted_bytes,
                })
            })
            .collect();
        events.push(json!({
            "name": format!("lifetime of {}", obj.label),
            "cat": "object",
            "ph": "X",
            "ts": start_ns as f64 / 1000.0,
            "dur": (end_ns - start_ns) as f64 / 1000.0,
            "pid": 2,
            "tid": tid,
            "args": {
                "size_bytes": obj.size,
                "inefficiency_patterns": findings,
            }
        }));
        for acc in &obj.accesses {
            let api = &collector.gpu_apis()[acc.api.idx];
            let rw = match (acc.read, acc.write) {
                (true, true) => "read+write",
                (true, false) => "read",
                _ => "write",
            };
            events.push(json!({
                "name": format!("{} {}", api.name, rw),
                "cat": "access",
                "ph": "i",
                "s": "t",
                "ts": api.start_ns as f64 / 1000.0,
                "pid": 2,
                "tid": tid,
                "args": {"topological_ts": acc.api.ts}
            }));
        }
    }

    json!({
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "tool": "DrGPUM (Rust reproduction)",
            "platform": report.platform,
            "peak_bytes": report.stats.peak_bytes,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;
    use crate::options::ProfilerOptions;
    use gpu_sim::DeviceContext;
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[test]
    fn trace_json_structure() {
        let mut ctx = DeviceContext::new_default();
        let c = Arc::new(Mutex::new(Collector::new(
            ProfilerOptions::object_level(),
            ctx.config().device_memory_bytes,
        )));
        ctx.sanitizer_mut().register(c.clone());
        let s1 = ctx.create_stream();
        let a = ctx.malloc(4096, "d_data_in1").unwrap();
        ctx.memset(a, 0, 4096).unwrap();
        ctx.memcpy_h2d_on(a, &[1u8; 4096], s1).unwrap();
        ctx.sync_device();
        ctx.free(a).unwrap();

        let col = c.lock();
        let report = analyze(&col, ctx.call_stack().table(), "rtx3090");
        let v = trace_json(&col, ctx.call_stack().table(), &report);

        let events = v["traceEvents"].as_array().unwrap();
        assert!(!events.is_empty());
        // Every GPU API appears as a complete ("X") slice under pid 1.
        let api_slices: Vec<&Value> = events
            .iter()
            .filter(|e| e["ph"] == "X" && e["pid"] == 1)
            .collect();
        assert_eq!(api_slices.len(), col.gpu_apis().len());
        // Stream 1's copy runs on its own track.
        assert!(api_slices.iter().any(|e| e["tid"] == 2));
        // The peak object gets a lifetime slice with patterns attached.
        let lifetime = events
            .iter()
            .find(|e| e["pid"] == 2 && e["cat"] == "object")
            .expect("object lifetime slice");
        assert!(lifetime["args"]["size_bytes"] == 4096);
        // JSON round-trips.
        let s = serde_json::to_string(&v).unwrap();
        let _parsed: Value = serde_json::from_str(&s).unwrap();
    }
}
