//! Intra-object access maps: bitmaps, range sets, and frequency maps
//! (Sec. 5.2, Sec. 5.5).
//!
//! * [`AccessBitmap`] — one bit per byte of a data object, backing the
//!   *overallocation* detector and the fragmentation metric (Eq. 1);
//! * [`RangeSet`] — merged half-open intervals, the compact per-GPU-API
//!   footprint used by the *structured access* detector;
//! * [`FreqMap`] — per-element access counters, backing the *non-uniform
//!   access frequency* detector's coefficient-of-variation test.

use std::fmt;

/// A bitmap with one bit per byte of a data object.
///
/// # Examples
///
/// ```
/// use drgpum_core::accessmap::AccessBitmap;
///
/// let mut bm = AccessBitmap::new(100);
/// bm.set_range(10, 20);
/// assert_eq!(bm.count_set(), 10);
/// assert!(bm.is_set(15));
/// assert!(!bm.is_set(20));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct AccessBitmap {
    words: Vec<u64>,
    len: u64,
}

impl fmt::Debug for AccessBitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AccessBitmap")
            .field("len", &self.len)
            .field("set", &self.count_set())
            .finish()
    }
}

impl AccessBitmap {
    /// Creates an all-clear bitmap covering `len` bytes.
    pub fn new(len: u64) -> Self {
        let words = vec![0u64; (len as usize).div_ceil(64)];
        AccessBitmap { words, len }
    }

    /// Number of bytes covered.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Returns `true` if the bitmap covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Marks the half-open byte range `[start, end)` as accessed. Ranges are
    /// clamped to the bitmap length.
    pub fn set_range(&mut self, start: u64, end: u64) {
        let end = end.min(self.len);
        if start >= end {
            return;
        }
        let (first_word, first_bit) = ((start / 64) as usize, start % 64);
        let (last_word, last_bit) = (((end - 1) / 64) as usize, (end - 1) % 64);
        if first_word == last_word {
            let mask = (u64::MAX << first_bit) & (u64::MAX >> (63 - last_bit));
            self.words[first_word] |= mask;
            return;
        }
        self.words[first_word] |= u64::MAX << first_bit;
        for w in &mut self.words[first_word + 1..last_word] {
            *w = u64::MAX;
        }
        self.words[last_word] |= u64::MAX >> (63 - last_bit);
    }

    /// Returns `true` if byte `i` is marked accessed.
    pub fn is_set(&self, i: u64) -> bool {
        if i >= self.len {
            return false;
        }
        self.words[(i / 64) as usize] & (1u64 << (i % 64)) != 0
    }

    /// Number of accessed bytes.
    pub fn count_set(&self) -> u64 {
        let mut total: u64 = self.words.iter().map(|w| u64::from(w.count_ones())).sum();
        // Bits beyond `len` are never set by `set_range`, but be defensive.
        let tail_bits = (self.words.len() as u64 * 64).saturating_sub(self.len);
        debug_assert!(tail_bits < 64 || self.words.is_empty());
        if tail_bits > 0 && !self.words.is_empty() {
            let last = *self.words.last().expect("non-empty");
            let valid = 64 - tail_bits;
            let invalid_mask = if valid == 0 {
                u64::MAX
            } else {
                u64::MAX << valid
            };
            total -= u64::from((last & invalid_mask).count_ones());
        }
        total
    }

    /// Number of unaccessed bytes.
    pub fn count_clear(&self) -> u64 {
        self.len - self.count_set()
    }

    /// Fraction of bytes accessed, in `[0, 1]`. An empty bitmap reports 1.0
    /// (nothing allocated, nothing wasted).
    pub fn accessed_fraction(&self) -> f64 {
        if self.len == 0 {
            return 1.0;
        }
        self.count_set() as f64 / self.len as f64
    }

    /// Length of the longest run of unaccessed bytes.
    pub fn largest_clear_run(&self) -> u64 {
        let mut best = 0u64;
        let mut cur = 0u64;
        for i in 0..self.len {
            if self.is_set(i) {
                best = best.max(cur);
                cur = 0;
            } else {
                cur += 1;
            }
        }
        best.max(cur)
    }

    /// The unaccessed byte ranges, merged, as `(start, end)` pairs.
    pub fn clear_ranges(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut run_start: Option<u64> = None;
        for i in 0..self.len {
            match (self.is_set(i), run_start) {
                (false, None) => run_start = Some(i),
                (true, Some(s)) => {
                    out.push((s, i));
                    run_start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = run_start {
            out.push((s, self.len));
        }
        out
    }

    /// Clears all bits.
    pub fn reset(&mut self) {
        self.words.fill(0);
    }

    /// Bytes of host memory this bitmap occupies — the quantity DrGPUM's
    /// adaptive mode selection sums before each kernel launch (Sec. 5.5).
    pub fn footprint_bytes(&self) -> u64 {
        self.words.len() as u64 * 8
    }
}

/// A set of half-open byte intervals, kept merged and sorted.
///
/// The per-GPU-API footprint representation for the *structured access*
/// detector: GramSchmidt's `R_gpu` slices become one interval per kernel
/// instance.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RangeSet {
    /// Sorted, non-overlapping, non-adjacent `(start, end)` intervals.
    ranges: Vec<(u64, u64)>,
}

impl RangeSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        RangeSet::default()
    }

    /// Inserts `[start, end)`, merging with existing intervals.
    pub fn insert(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        // Find the insertion window of intervals that touch [start, end).
        let mut new_start = start;
        let mut new_end = end;
        let mut i = 0;
        let mut remove_from = None;
        let mut remove_to = 0;
        while i < self.ranges.len() {
            let (s, e) = self.ranges[i];
            if e < new_start {
                i += 1;
                continue;
            }
            if s > new_end {
                break;
            }
            // Touching or overlapping: absorb.
            new_start = new_start.min(s);
            new_end = new_end.max(e);
            if remove_from.is_none() {
                remove_from = Some(i);
            }
            remove_to = i + 1;
            i += 1;
        }
        match remove_from {
            Some(from) => {
                self.ranges.drain(from..remove_to);
                self.ranges.insert(from, (new_start, new_end));
            }
            None => {
                let pos = self.ranges.partition_point(|&(s, _)| s < new_start);
                self.ranges.insert(pos, (new_start, new_end));
            }
        }
    }

    /// The merged intervals, sorted.
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }

    /// Total bytes covered.
    pub fn covered(&self) -> u64 {
        self.ranges.iter().map(|(s, e)| e - s).sum()
    }

    /// Returns `true` if no bytes are covered.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Returns `true` if the two sets share at least one byte.
    pub fn intersects(&self, other: &RangeSet) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.ranges.len() && j < other.ranges.len() {
            let (s1, e1) = self.ranges[i];
            let (s2, e2) = other.ranges[j];
            if s1 < e2 && s2 < e1 {
                return true;
            }
            if e1 <= e2 {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }

    /// The smallest interval containing every covered byte, if any.
    pub fn span(&self) -> Option<(u64, u64)> {
        match (self.ranges.first(), self.ranges.last()) {
            (Some(&(s, _)), Some(&(_, e))) => Some((s, e)),
            _ => None,
        }
    }
}

impl FromIterator<(u64, u64)> for RangeSet {
    fn from_iter<T: IntoIterator<Item = (u64, u64)>>(iter: T) -> Self {
        let mut set = RangeSet::new();
        for (s, e) in iter {
            set.insert(s, e);
        }
        set
    }
}

/// Per-element access counters for one data object at one GPU API.
///
/// Elements are fixed-width slots (`elem_size` bytes); an access of `size`
/// bytes at `offset` increments every slot it touches, as the paper's
/// per-element hashmap does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreqMap {
    counts: Vec<u32>,
    elem_size: u32,
}

impl FreqMap {
    /// Creates a zeroed frequency map for an object of `object_bytes` bytes
    /// with `elem_size`-byte elements.
    ///
    /// # Panics
    ///
    /// Panics if `elem_size` is zero.
    pub fn new(object_bytes: u64, elem_size: u32) -> Self {
        assert!(elem_size > 0, "element size must be positive");
        let n = (object_bytes as usize).div_ceil(elem_size as usize);
        FreqMap {
            counts: vec![0; n],
            elem_size,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Element width in bytes.
    pub fn elem_size(&self) -> u32 {
        self.elem_size
    }

    /// Returns `true` if the object has no elements.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Records an access of `size` bytes at byte `offset`.
    pub fn record(&mut self, offset: u64, size: u32) {
        if self.counts.is_empty() || size == 0 {
            return;
        }
        let first = (offset / u64::from(self.elem_size)) as usize;
        let last = ((offset + u64::from(size) - 1) / u64::from(self.elem_size)) as usize;
        for i in first..=last.min(self.counts.len() - 1) {
            self.counts[i] = self.counts[i].saturating_add(1);
        }
    }

    /// Per-element counts.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Resets all counters to zero (done at each GPU API, Sec. 5.2).
    pub fn reset(&mut self) {
        self.counts.fill(0);
    }

    /// Coefficient of variation (stddev / mean) of the access counts of
    /// *accessed* elements, as a percentage. Returns 0 when fewer than two
    /// elements were accessed.
    pub fn coefficient_of_variation_pct(&self) -> f64 {
        crate::metrics::coefficient_of_variation_pct(
            self.counts
                .iter()
                .filter(|&&c| c > 0)
                .map(|&c| f64::from(c)),
        )
    }

    /// Histogram of counts (count value → number of elements), for the GUI.
    pub fn histogram(&self) -> Vec<(u32, usize)> {
        let mut map = std::collections::BTreeMap::new();
        for &c in &self.counts {
            if c > 0 {
                *map.entry(c).or_insert(0usize) += 1;
            }
        }
        map.into_iter().collect()
    }

    /// Host-memory footprint, for the adaptive mode planner.
    pub fn footprint_bytes(&self) -> u64 {
        self.counts.len() as u64 * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_set_and_count() {
        let mut bm = AccessBitmap::new(200);
        bm.set_range(0, 64);
        bm.set_range(60, 70);
        bm.set_range(199, 200);
        assert_eq!(bm.count_set(), 71);
        assert_eq!(bm.count_clear(), 129);
        assert!(bm.is_set(0));
        assert!(bm.is_set(69));
        assert!(!bm.is_set(70));
        assert!(bm.is_set(199));
        assert!(!bm.is_set(200), "out of range reads as clear");
    }

    #[test]
    fn bitmap_clamps_out_of_range() {
        let mut bm = AccessBitmap::new(10);
        bm.set_range(5, 1000);
        assert_eq!(bm.count_set(), 5);
    }

    #[test]
    fn bitmap_word_boundary_edges() {
        let mut bm = AccessBitmap::new(130);
        bm.set_range(63, 65);
        assert_eq!(bm.count_set(), 2);
        assert!(bm.is_set(63) && bm.is_set(64) && !bm.is_set(65));
        bm.set_range(127, 130);
        assert_eq!(bm.count_set(), 5);
    }

    #[test]
    fn bitmap_largest_clear_run() {
        let mut bm = AccessBitmap::new(100);
        assert_eq!(bm.largest_clear_run(), 100);
        bm.set_range(10, 11);
        bm.set_range(40, 42);
        // Runs: [0,10)=10, [11,40)=29, [42,100)=58.
        assert_eq!(bm.largest_clear_run(), 58);
        assert_eq!(bm.clear_ranges(), vec![(0, 10), (11, 40), (42, 100)]);
    }

    #[test]
    fn bitmap_fully_set_has_no_clear_run() {
        let mut bm = AccessBitmap::new(64);
        bm.set_range(0, 64);
        assert_eq!(bm.largest_clear_run(), 0);
        assert!(bm.clear_ranges().is_empty());
        assert_eq!(bm.accessed_fraction(), 1.0);
    }

    #[test]
    fn rangeset_merges_overlaps_and_adjacency() {
        let mut rs = RangeSet::new();
        rs.insert(10, 20);
        rs.insert(30, 40);
        rs.insert(20, 30); // bridges the gap
        assert_eq!(rs.ranges(), &[(10, 40)]);
        rs.insert(5, 12);
        assert_eq!(rs.ranges(), &[(5, 40)]);
        assert_eq!(rs.covered(), 35);
    }

    #[test]
    fn rangeset_keeps_disjoint_ranges_sorted() {
        let rs: RangeSet = [(50, 60), (10, 20), (30, 40)].into_iter().collect();
        assert_eq!(rs.ranges(), &[(10, 20), (30, 40), (50, 60)]);
        assert_eq!(rs.span(), Some((10, 60)));
    }

    #[test]
    fn rangeset_intersection() {
        let a: RangeSet = [(0, 10), (20, 30)].into_iter().collect();
        let b: RangeSet = [(10, 20)].into_iter().collect();
        let c: RangeSet = [(25, 26)].into_iter().collect();
        assert!(!a.intersects(&b), "touching is not overlapping");
        assert!(a.intersects(&c));
        assert!(!RangeSet::new().intersects(&a));
    }

    #[test]
    fn rangeset_empty_insert_ignored() {
        let mut rs = RangeSet::new();
        rs.insert(5, 5);
        assert!(rs.is_empty());
        assert_eq!(rs.span(), None);
    }

    #[test]
    fn freqmap_records_per_element() {
        let mut fm = FreqMap::new(16, 4); // 4 elements
        fm.record(0, 4);
        fm.record(0, 4);
        fm.record(4, 8); // touches elements 1 and 2
        assert_eq!(fm.counts(), &[2, 1, 1, 0]);
    }

    #[test]
    fn freqmap_uniform_has_zero_cov() {
        let mut fm = FreqMap::new(16, 4);
        for i in 0..4 {
            fm.record(i * 4, 4);
        }
        assert_eq!(fm.coefficient_of_variation_pct(), 0.0);
    }

    #[test]
    fn freqmap_skew_has_high_cov() {
        let mut fm = FreqMap::new(16, 4);
        for _ in 0..100 {
            fm.record(0, 4);
        }
        fm.record(4, 4);
        assert!(fm.coefficient_of_variation_pct() > 20.0);
    }

    #[test]
    fn freqmap_reset_zeroes() {
        let mut fm = FreqMap::new(8, 4);
        fm.record(0, 8);
        fm.reset();
        assert_eq!(fm.counts(), &[0, 0]);
    }

    #[test]
    fn freqmap_clamps_trailing_partial_element() {
        let mut fm = FreqMap::new(10, 4); // 3 elements (last covers 2 bytes)
        fm.record(8, 4);
        assert_eq!(fm.counts(), &[0, 0, 1]);
    }
}
