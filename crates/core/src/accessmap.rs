//! Intra-object access maps: bitmaps, range sets, and frequency maps
//! (Sec. 5.2, Sec. 5.5).
//!
//! * [`AccessBitmap`] — one bit per byte of a data object, backing the
//!   *overallocation* detector and the fragmentation metric (Eq. 1);
//! * [`RangeSet`] — merged half-open intervals, the compact per-GPU-API
//!   footprint used by the *structured access* detector;
//! * [`FreqMap`] — per-element access counters, backing the *non-uniform
//!   access frequency* detector's coefficient-of-variation test.

use std::fmt;

/// Rejected merge of two access maps covering different extents.
///
/// Returned by [`AccessBitmap::merge`] and [`FreqMap::merge`] when the two
/// maps do not describe the same data object: silently truncating to the
/// shorter map would drop accesses and corrupt the overallocation and
/// frequency analyses, so mismatches are surfaced to the caller (the
/// sharded collector records them as degradations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LengthMismatch {
    /// Extent of the map being merged into.
    pub left: u64,
    /// Extent of the map being merged from.
    pub right: u64,
}

impl fmt::Display for LengthMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot merge access maps of different extents ({} vs {})",
            self.left, self.right
        )
    }
}

impl std::error::Error for LengthMismatch {}

/// A bitmap with one bit per byte of a data object.
///
/// # Examples
///
/// ```
/// use drgpum_core::accessmap::AccessBitmap;
///
/// let mut bm = AccessBitmap::new(100);
/// bm.set_range(10, 20);
/// assert_eq!(bm.count_set(), 10);
/// assert!(bm.is_set(15));
/// assert!(!bm.is_set(20));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct AccessBitmap {
    words: Vec<u64>,
    len: u64,
}

impl fmt::Debug for AccessBitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AccessBitmap")
            .field("len", &self.len)
            .field("set", &self.count_set())
            .finish()
    }
}

impl AccessBitmap {
    /// Creates an all-clear bitmap covering `len` bytes.
    pub fn new(len: u64) -> Self {
        let words = vec![0u64; (len as usize).div_ceil(64)];
        AccessBitmap { words, len }
    }

    /// Number of bytes covered.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Returns `true` if the bitmap covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Marks the half-open byte range `[start, end)` as accessed. Ranges are
    /// clamped to the bitmap length; empty, inverted, and fully out-of-range
    /// requests (including `start == end == len` and any range on a
    /// zero-length bitmap) are no-ops.
    pub fn set_range(&mut self, start: u64, end: u64) {
        let end = end.min(self.len);
        // Covers `len == 0` (empty `words`), `start == end == len`, and
        // inverted ranges: nothing to set, and no word may be indexed.
        if start >= end || self.words.is_empty() {
            return;
        }
        let (first_word, first_bit) = ((start / 64) as usize, (start % 64) as u32);
        let (last_word, last_bit) = (((end - 1) / 64) as usize, ((end - 1) % 64) as u32);
        // Build the tail mask from the low side (`(1 << (b+1)) - 1`) rather
        // than the old `u64::MAX >> (63 - b)` form: the subtraction shape
        // underflows the shift when a future edit lets `b` escape 0..=63,
        // while this form degrades to an explicit, tested branch.
        let tail_mask = if last_bit >= 63 {
            u64::MAX
        } else {
            (1u64 << (last_bit + 1)) - 1
        };
        let head_mask = u64::MAX << first_bit;
        if first_word == last_word {
            self.words[first_word] |= head_mask & tail_mask;
            return;
        }
        self.words[first_word] |= head_mask;
        for w in &mut self.words[first_word + 1..last_word] {
            *w = u64::MAX;
        }
        self.words[last_word] |= tail_mask;
    }

    /// Bitwise-ORs `other` into `self`.
    ///
    /// Both bitmaps must cover the same number of bytes; merging maps of
    /// different extents is rejected (never silently truncated) because it
    /// means the two sides disagree about the object being described.
    pub fn merge(&mut self, other: &AccessBitmap) -> Result<(), LengthMismatch> {
        if self.len != other.len {
            return Err(LengthMismatch {
                left: self.len,
                right: other.len,
            });
        }
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
        Ok(())
    }

    /// Returns `true` if byte `i` is marked accessed.
    pub fn is_set(&self, i: u64) -> bool {
        if i >= self.len {
            return false;
        }
        self.words[(i / 64) as usize] & (1u64 << (i % 64)) != 0
    }

    /// Number of accessed bytes.
    pub fn count_set(&self) -> u64 {
        let mut total: u64 = self.words.iter().map(|w| u64::from(w.count_ones())).sum();
        // Bits beyond `len` are never set by `set_range`, but be defensive.
        let tail_bits = (self.words.len() as u64 * 64).saturating_sub(self.len);
        debug_assert!(tail_bits < 64 || self.words.is_empty());
        if tail_bits > 0 {
            if let Some(&last) = self.words.last() {
                // `tail_bits` is in 1..=63 here, so the shift is in range.
                let invalid_mask = u64::MAX << (64 - tail_bits);
                total -= u64::from((last & invalid_mask).count_ones());
            }
        }
        total
    }

    /// Number of unaccessed bytes.
    pub fn count_clear(&self) -> u64 {
        self.len - self.count_set()
    }

    /// Fraction of bytes accessed, in `[0, 1]`. An empty bitmap reports 1.0
    /// (nothing allocated, nothing wasted).
    pub fn accessed_fraction(&self) -> f64 {
        if self.len == 0 {
            return 1.0;
        }
        self.count_set() as f64 / self.len as f64
    }

    /// Length of the longest run of unaccessed bytes.
    pub fn largest_clear_run(&self) -> u64 {
        self.clear_ranges()
            .iter()
            .map(|(s, e)| e - s)
            .max()
            .unwrap_or(0)
    }

    /// The unaccessed byte ranges, merged, as `(start, end)` pairs.
    ///
    /// Scans a word (64 bytes) at a time, skipping all-set and all-clear
    /// words in one step — the per-bit version dominated trace export and
    /// fragmentation scoring for multi-megabyte objects.
    pub fn clear_ranges(&self) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = Vec::new();
        let mut run_start: Option<u64> = None;
        let close_run = |run_start: &mut Option<u64>, end: u64, out: &mut Vec<(u64, u64)>| {
            if let Some(s) = run_start.take() {
                out.push((s, end));
            }
        };
        for (wi, &word) in self.words.iter().enumerate() {
            let base = wi as u64 * 64;
            let valid = (self.len - base).min(64) as u32;
            // Bits at `valid..64` lie beyond `len`; treat them as set so
            // they never extend a clear run.
            let masked = if valid == 64 {
                word
            } else {
                word | (u64::MAX << valid)
            };
            if masked == 0 {
                // Whole word clear.
                run_start.get_or_insert(base);
                continue;
            }
            if masked == u64::MAX {
                close_run(&mut run_start, base, &mut out);
                continue;
            }
            let mut bit = 0u32;
            while bit < valid {
                if masked & (1u64 << bit) == 0 {
                    run_start.get_or_insert(base + u64::from(bit));
                    // Jump to the next set bit at or above `bit`.
                    let rest = masked >> bit;
                    bit += rest.trailing_zeros();
                } else {
                    close_run(&mut run_start, base + u64::from(bit), &mut out);
                    // Jump to the next clear bit at or above `bit`.
                    let rest = !masked >> bit;
                    bit += if rest == 0 { 64 } else { rest.trailing_zeros() };
                }
            }
        }
        close_run(&mut run_start, self.len, &mut out);
        out
    }

    /// The accessed byte ranges, merged, as `(start, end)` pairs — the
    /// complement of [`clear_ranges`](Self::clear_ranges), used by the trace
    /// writer's run-length encoding.
    pub fn accessed_ranges(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cursor = 0u64;
        for (s, e) in self.clear_ranges() {
            if cursor < s {
                out.push((cursor, s));
            }
            cursor = e;
        }
        if cursor < self.len {
            out.push((cursor, self.len));
        }
        out
    }

    /// Clears all bits.
    pub fn reset(&mut self) {
        self.words.fill(0);
    }

    /// Bytes of host memory this bitmap occupies — the quantity DrGPUM's
    /// adaptive mode selection sums before each kernel launch (Sec. 5.5).
    pub fn footprint_bytes(&self) -> u64 {
        self.words.len() as u64 * 8
    }
}

/// A set of half-open byte intervals, kept merged and sorted.
///
/// The per-GPU-API footprint representation for the *structured access*
/// detector: GramSchmidt's `R_gpu` slices become one interval per kernel
/// instance.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RangeSet {
    /// Sorted, non-overlapping, non-adjacent `(start, end)` intervals.
    ranges: Vec<(u64, u64)>,
}

impl RangeSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        RangeSet::default()
    }

    /// Bytes of host memory the interval list occupies (16 bytes per
    /// stored interval) — metered by the session governor.
    pub fn footprint_bytes(&self) -> u64 {
        self.ranges.len() as u64 * 16
    }

    /// Inserts `[start, end)`, merging with existing intervals.
    pub fn insert(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        // Access streams arrive overwhelmingly in ascending offset order,
        // so the common case touches at most the last stored interval —
        // O(1), no shifting.
        match self.ranges.last_mut() {
            None => {
                self.ranges.push((start, end));
                return;
            }
            Some(&mut (last_s, ref mut last_e)) if start >= last_s => {
                if start > *last_e {
                    self.ranges.push((start, end));
                } else if end > *last_e {
                    *last_e = end;
                }
                return;
            }
            _ => {}
        }
        // General case: binary-search the first interval whose end reaches
        // `start`, then absorb everything touching `[start, end)`.
        let first = self.ranges.partition_point(|&(_, e)| e < start);
        let mut new_start = start;
        let mut new_end = end;
        let mut to = first;
        while to < self.ranges.len() {
            let (s, e) = self.ranges[to];
            if s > new_end {
                break;
            }
            new_start = new_start.min(s);
            new_end = new_end.max(e);
            to += 1;
        }
        if to == first {
            self.ranges.insert(first, (new_start, new_end));
        } else {
            self.ranges[first] = (new_start, new_end);
            self.ranges.drain(first + 1..to);
        }
    }

    /// Merges every interval of `other` into `self`.
    ///
    /// Range sets carry no fixed extent, so unlike the bitmap and frequency
    /// maps this merge cannot mismatch. The result is canonical (sorted,
    /// non-overlapping, non-adjacent) regardless of merge order, which is
    /// what makes the sharded collector's output order-independent.
    ///
    /// A single two-pointer sweep over both sorted lists — O(n + m) where
    /// per-interval `insert` was O(n·m) with a `Vec::drain` per overlap.
    pub fn merge(&mut self, other: &RangeSet) {
        if other.ranges.is_empty() {
            return;
        }
        if self.ranges.is_empty() {
            self.ranges.clone_from(&other.ranges);
            return;
        }
        let mut out = Vec::with_capacity(self.ranges.len() + other.ranges.len());
        let (mut i, mut j) = (0, 0);
        let mut cur: Option<(u64, u64)> = None;
        while i < self.ranges.len() || j < other.ranges.len() {
            let take_self = j >= other.ranges.len()
                || (i < self.ranges.len() && self.ranges[i].0 <= other.ranges[j].0);
            let (s, e) = if take_self {
                i += 1;
                self.ranges[i - 1]
            } else {
                j += 1;
                other.ranges[j - 1]
            };
            match &mut cur {
                // Touching or overlapping the open interval: absorb.
                Some((_, ce)) if s <= *ce => *ce = (*ce).max(e),
                _ => {
                    if let Some(done) = cur.take() {
                        out.push(done);
                    }
                    cur = Some((s, e));
                }
            }
        }
        if let Some(done) = cur {
            out.push(done);
        }
        self.ranges = out;
    }

    /// The merged intervals, sorted.
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }

    /// Total bytes covered.
    pub fn covered(&self) -> u64 {
        self.ranges.iter().map(|(s, e)| e - s).sum()
    }

    /// Returns `true` if no bytes are covered.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Returns `true` if the two sets share at least one byte.
    pub fn intersects(&self, other: &RangeSet) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.ranges.len() && j < other.ranges.len() {
            let (s1, e1) = self.ranges[i];
            let (s2, e2) = other.ranges[j];
            if s1 < e2 && s2 < e1 {
                return true;
            }
            if e1 <= e2 {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }

    /// The smallest interval containing every covered byte, if any.
    pub fn span(&self) -> Option<(u64, u64)> {
        match (self.ranges.first(), self.ranges.last()) {
            (Some(&(s, _)), Some(&(_, e))) => Some((s, e)),
            _ => None,
        }
    }
}

impl FromIterator<(u64, u64)> for RangeSet {
    fn from_iter<T: IntoIterator<Item = (u64, u64)>>(iter: T) -> Self {
        let mut set = RangeSet::new();
        for (s, e) in iter {
            set.insert(s, e);
        }
        set
    }
}

/// Per-element access counters for one data object at one GPU API.
///
/// Elements are fixed-width slots (`elem_size` bytes); an access of `size`
/// bytes at `offset` increments every slot it touches, as the paper's
/// per-element hashmap does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreqMap {
    counts: Vec<u32>,
    elem_size: u32,
}

impl FreqMap {
    /// Creates a zeroed frequency map for an object of `object_bytes` bytes
    /// with `elem_size`-byte elements.
    ///
    /// # Panics
    ///
    /// Panics if `elem_size` is zero.
    pub fn new(object_bytes: u64, elem_size: u32) -> Self {
        assert!(elem_size > 0, "element size must be positive");
        let n = (object_bytes as usize).div_ceil(elem_size as usize);
        FreqMap {
            counts: vec![0; n],
            elem_size,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Element width in bytes.
    pub fn elem_size(&self) -> u32 {
        self.elem_size
    }

    /// Returns `true` if the object has no elements.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Records an access of `size` bytes at byte `offset`.
    pub fn record(&mut self, offset: u64, size: u32) {
        if self.counts.is_empty() || size == 0 {
            return;
        }
        let first = (offset / u64::from(self.elem_size)) as usize;
        if first >= self.counts.len() {
            return;
        }
        let last = (((offset + u64::from(size) - 1) / u64::from(self.elem_size)) as usize)
            .min(self.counts.len() - 1);
        // Slice iteration instead of per-index bounds checks: coalesced
        // records can span thousands of elements, making this the inner
        // loop of frequency collection.
        for c in &mut self.counts[first..=last] {
            *c = c.saturating_add(1);
        }
    }

    /// Adds `other`'s per-element counts into `self`, saturating.
    ///
    /// Both maps must have the same element count and width: a mismatch
    /// means they describe different objects (or the same object at
    /// different granularities) and is rejected rather than truncated.
    pub fn merge(&mut self, other: &FreqMap) -> Result<(), LengthMismatch> {
        if self.counts.len() != other.counts.len() || self.elem_size != other.elem_size {
            return Err(LengthMismatch {
                left: self.counts.len() as u64,
                right: other.counts.len() as u64,
            });
        }
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c = c.saturating_add(*o);
        }
        Ok(())
    }

    /// Per-element counts.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Resets all counters to zero (done at each GPU API, Sec. 5.2).
    pub fn reset(&mut self) {
        self.counts.fill(0);
    }

    /// Coefficient of variation (stddev / mean) of the access counts of
    /// *accessed* elements, as a percentage. Returns 0 when fewer than two
    /// elements were accessed.
    pub fn coefficient_of_variation_pct(&self) -> f64 {
        crate::metrics::coefficient_of_variation_pct(
            self.counts
                .iter()
                .filter(|&&c| c > 0)
                .map(|&c| f64::from(c)),
        )
    }

    /// Histogram of counts (count value → number of elements), for the GUI.
    pub fn histogram(&self) -> Vec<(u32, usize)> {
        let mut map = std::collections::BTreeMap::new();
        for &c in &self.counts {
            if c > 0 {
                *map.entry(c).or_insert(0usize) += 1;
            }
        }
        map.into_iter().collect()
    }

    /// Host-memory footprint, for the adaptive mode planner.
    pub fn footprint_bytes(&self) -> u64 {
        self.counts.len() as u64 * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_set_and_count() {
        let mut bm = AccessBitmap::new(200);
        bm.set_range(0, 64);
        bm.set_range(60, 70);
        bm.set_range(199, 200);
        assert_eq!(bm.count_set(), 71);
        assert_eq!(bm.count_clear(), 129);
        assert!(bm.is_set(0));
        assert!(bm.is_set(69));
        assert!(!bm.is_set(70));
        assert!(bm.is_set(199));
        assert!(!bm.is_set(200), "out of range reads as clear");
    }

    #[test]
    fn bitmap_clamps_out_of_range() {
        let mut bm = AccessBitmap::new(10);
        bm.set_range(5, 1000);
        assert_eq!(bm.count_set(), 5);
    }

    #[test]
    fn bitmap_word_boundary_edges() {
        let mut bm = AccessBitmap::new(130);
        bm.set_range(63, 65);
        assert_eq!(bm.count_set(), 2);
        assert!(bm.is_set(63) && bm.is_set(64) && !bm.is_set(65));
        bm.set_range(127, 130);
        assert_eq!(bm.count_set(), 5);
    }

    #[test]
    fn bitmap_largest_clear_run() {
        let mut bm = AccessBitmap::new(100);
        assert_eq!(bm.largest_clear_run(), 100);
        bm.set_range(10, 11);
        bm.set_range(40, 42);
        // Runs: [0,10)=10, [11,40)=29, [42,100)=58.
        assert_eq!(bm.largest_clear_run(), 58);
        assert_eq!(bm.clear_ranges(), vec![(0, 10), (11, 40), (42, 100)]);
    }

    #[test]
    fn bitmap_fully_set_has_no_clear_run() {
        let mut bm = AccessBitmap::new(64);
        bm.set_range(0, 64);
        assert_eq!(bm.largest_clear_run(), 0);
        assert!(bm.clear_ranges().is_empty());
        assert_eq!(bm.accessed_fraction(), 1.0);
    }

    #[test]
    fn rangeset_merges_overlaps_and_adjacency() {
        let mut rs = RangeSet::new();
        rs.insert(10, 20);
        rs.insert(30, 40);
        rs.insert(20, 30); // bridges the gap
        assert_eq!(rs.ranges(), &[(10, 40)]);
        rs.insert(5, 12);
        assert_eq!(rs.ranges(), &[(5, 40)]);
        assert_eq!(rs.covered(), 35);
    }

    #[test]
    fn rangeset_keeps_disjoint_ranges_sorted() {
        let rs: RangeSet = [(50, 60), (10, 20), (30, 40)].into_iter().collect();
        assert_eq!(rs.ranges(), &[(10, 20), (30, 40), (50, 60)]);
        assert_eq!(rs.span(), Some((10, 60)));
    }

    #[test]
    fn rangeset_intersection() {
        let a: RangeSet = [(0, 10), (20, 30)].into_iter().collect();
        let b: RangeSet = [(10, 20)].into_iter().collect();
        let c: RangeSet = [(25, 26)].into_iter().collect();
        assert!(!a.intersects(&b), "touching is not overlapping");
        assert!(a.intersects(&c));
        assert!(!RangeSet::new().intersects(&a));
    }

    #[test]
    fn rangeset_empty_insert_ignored() {
        let mut rs = RangeSet::new();
        rs.insert(5, 5);
        assert!(rs.is_empty());
        assert_eq!(rs.span(), None);
    }

    #[test]
    fn freqmap_records_per_element() {
        let mut fm = FreqMap::new(16, 4); // 4 elements
        fm.record(0, 4);
        fm.record(0, 4);
        fm.record(4, 8); // touches elements 1 and 2
        assert_eq!(fm.counts(), &[2, 1, 1, 0]);
    }

    #[test]
    fn freqmap_uniform_has_zero_cov() {
        let mut fm = FreqMap::new(16, 4);
        for i in 0..4 {
            fm.record(i * 4, 4);
        }
        assert_eq!(fm.coefficient_of_variation_pct(), 0.0);
    }

    #[test]
    fn freqmap_skew_has_high_cov() {
        let mut fm = FreqMap::new(16, 4);
        for _ in 0..100 {
            fm.record(0, 4);
        }
        fm.record(4, 4);
        assert!(fm.coefficient_of_variation_pct() > 20.0);
    }

    #[test]
    fn freqmap_reset_zeroes() {
        let mut fm = FreqMap::new(8, 4);
        fm.record(0, 8);
        fm.reset();
        assert_eq!(fm.counts(), &[0, 0]);
    }

    #[test]
    fn freqmap_cov_is_zero_not_nan_for_degenerate_maps() {
        // Empty map, single-element map, and untouched map must all report
        // 0.0 — a NaN here poisons the non-uniform-access-frequency
        // detector's `cov > threshold` compare (always false).
        let empty = FreqMap::new(0, 4);
        assert_eq!(empty.coefficient_of_variation_pct(), 0.0);
        let mut single = FreqMap::new(4, 4);
        single.record(0, 4);
        let cov = single.coefficient_of_variation_pct();
        assert!(!cov.is_nan());
        assert_eq!(cov, 0.0);
        let untouched = FreqMap::new(100, 4);
        assert_eq!(untouched.coefficient_of_variation_pct(), 0.0);
    }

    #[test]
    fn freqmap_clamps_trailing_partial_element() {
        let mut fm = FreqMap::new(10, 4); // 3 elements (last covers 2 bytes)
        fm.record(8, 4);
        assert_eq!(fm.counts(), &[0, 0, 1]);
    }

    #[test]
    fn bitmap_zero_length_edges() {
        let mut bm = AccessBitmap::new(0);
        bm.set_range(0, 0);
        bm.set_range(0, 100);
        assert_eq!(bm.count_set(), 0);
        assert_eq!(bm.count_clear(), 0);
        assert!(bm.clear_ranges().is_empty());
        assert!(bm.accessed_ranges().is_empty());
        assert_eq!(bm.largest_clear_run(), 0);
    }

    #[test]
    fn bitmap_start_equals_end_equals_len_is_noop() {
        for len in [1u64, 63, 64, 65, 127, 128] {
            let mut bm = AccessBitmap::new(len);
            bm.set_range(len, len);
            assert_eq!(bm.count_set(), 0, "len {len}");
            bm.set_range(len - 1, len);
            assert_eq!(bm.count_set(), 1, "len {len}");
        }
    }

    #[test]
    fn bitmap_merge_is_bitwise_or() {
        let mut a = AccessBitmap::new(200);
        let mut b = AccessBitmap::new(200);
        a.set_range(0, 50);
        b.set_range(40, 130);
        b.set_range(190, 200);
        a.merge(&b).expect("same length");
        assert_eq!(a.count_set(), 140);
        assert_eq!(a.accessed_ranges(), vec![(0, 130), (190, 200)]);
    }

    #[test]
    fn bitmap_merge_rejects_mismatched_lengths() {
        let mut a = AccessBitmap::new(100);
        let b = AccessBitmap::new(101);
        let err = a.merge(&b).expect_err("mismatch");
        assert_eq!(
            err,
            LengthMismatch {
                left: 100,
                right: 101
            }
        );
        // The failed merge must not have partially applied.
        assert_eq!(a.count_set(), 0);
    }

    #[test]
    fn rangeset_merge_matches_sequential_inserts() {
        let a: RangeSet = [(0, 10), (20, 30)].into_iter().collect();
        let b: RangeSet = [(5, 22), (40, 50)].into_iter().collect();
        let mut merged = a.clone();
        merged.merge(&b);
        let mut expected = RangeSet::new();
        for &(s, e) in a.ranges().iter().chain(b.ranges()) {
            expected.insert(s, e);
        }
        assert_eq!(merged, expected);
        assert_eq!(merged.ranges(), &[(0, 30), (40, 50)]);
    }

    #[test]
    fn freqmap_merge_adds_counts_saturating() {
        let mut a = FreqMap::new(12, 4);
        let mut b = FreqMap::new(12, 4);
        a.record(0, 4);
        b.record(0, 8);
        b.record(8, 4);
        a.merge(&b).expect("same shape");
        assert_eq!(a.counts(), &[2, 1, 1]);

        // Doubling via self-merge must saturate at u32::MAX, not wrap.
        let mut sat = FreqMap::new(4, 4);
        sat.record(0, 4);
        for _ in 0..40 {
            let snapshot = sat.clone();
            sat.merge(&snapshot).expect("same shape");
        }
        assert_eq!(sat.counts(), &[u32::MAX]);
    }

    #[test]
    fn freqmap_merge_rejects_mismatched_shapes() {
        let mut a = FreqMap::new(16, 4);
        let b = FreqMap::new(20, 4); // different element count
        assert!(a.merge(&b).is_err());
        let c = FreqMap::new(16, 8); // same byte size, different granularity
        assert!(a.merge(&c).is_err());
    }

    /// Property tests: `set_range` / `count_set` / `merge` / `clear_ranges`
    /// against a naive `Vec<bool>` model, driven by the in-tree SplitMix64.
    mod properties {
        use super::*;
        use gpu_sim::SplitMix64;

        struct Model {
            bytes: Vec<bool>,
        }

        impl Model {
            fn new(len: u64) -> Self {
                Model {
                    bytes: vec![false; len as usize],
                }
            }

            fn set_range(&mut self, start: u64, end: u64) {
                let end = (end as usize).min(self.bytes.len());
                for i in (start as usize)..end {
                    self.bytes[i] = true;
                }
            }

            fn merge(&mut self, other: &Model) {
                for (b, o) in self.bytes.iter_mut().zip(&other.bytes) {
                    *b |= o;
                }
            }

            fn count_set(&self) -> u64 {
                self.bytes.iter().filter(|&&b| b).count() as u64
            }

            fn clear_ranges(&self) -> Vec<(u64, u64)> {
                let mut out = Vec::new();
                let mut run: Option<u64> = None;
                for (i, &b) in self.bytes.iter().enumerate() {
                    match (b, run) {
                        (false, None) => run = Some(i as u64),
                        (true, Some(s)) => {
                            out.push((s, i as u64));
                            run = None;
                        }
                        _ => {}
                    }
                }
                if let Some(s) = run {
                    out.push((s, self.bytes.len() as u64));
                }
                out
            }
        }

        fn check_against_model(bm: &AccessBitmap, model: &Model, case: &str) {
            assert_eq!(bm.count_set(), model.count_set(), "{case}: count_set");
            assert_eq!(
                bm.clear_ranges(),
                model.clear_ranges(),
                "{case}: clear_ranges"
            );
            assert_eq!(
                bm.largest_clear_run(),
                model
                    .clear_ranges()
                    .iter()
                    .map(|(s, e)| e - s)
                    .max()
                    .unwrap_or(0),
                "{case}: largest_clear_run"
            );
            for (s, e) in bm.accessed_ranges() {
                for i in s..e {
                    assert!(model.bytes[i as usize], "{case}: accessed_ranges at {i}");
                }
            }
        }

        #[test]
        fn bitmap_matches_vec_bool_model() {
            let mut rng = SplitMix64::new(0x000A_CCE5_5B17);
            for trial in 0..200 {
                // Lengths biased to word boundaries and their neighbours.
                let len = match trial % 5 {
                    0 => rng.next_below(3), // 0..3: degenerate sizes
                    1 => 64 * (1 + rng.next_below(4)),
                    2 => 64 * (1 + rng.next_below(4)) - 1,
                    3 => 64 * (1 + rng.next_below(4)) + 1,
                    _ => 1 + rng.next_below(700),
                };
                let mut bm = AccessBitmap::new(len);
                let mut model = Model::new(len);
                for op in 0..24 {
                    // Starts/ends may exceed `len` to exercise clamping.
                    let start = rng.next_below(len + 10);
                    let end = start + rng.next_below(80);
                    bm.set_range(start, end);
                    model.set_range(start, end);
                    if op % 8 == 7 {
                        check_against_model(&bm, &model, &format!("trial {trial} op {op}"));
                    }
                }
                // Merge a second randomly-filled bitmap of the same length.
                let mut other = AccessBitmap::new(len);
                let mut other_model = Model::new(len);
                for _ in 0..8 {
                    let start = rng.next_below(len + 10);
                    let end = start + rng.next_below(200);
                    other.set_range(start, end);
                    other_model.set_range(start, end);
                }
                bm.merge(&other).expect("same length");
                model.merge(&other_model);
                check_against_model(&bm, &model, &format!("trial {trial} after merge"));
            }
        }

        #[test]
        fn freqmap_merge_matches_sequential_records() {
            let mut rng = SplitMix64::new(0xF4E9);
            for trial in 0..100 {
                let bytes = 1 + rng.next_below(300);
                let elem = 1 + rng.next_below(8) as u32;
                let mut split_a = FreqMap::new(bytes, elem);
                let mut split_b = FreqMap::new(bytes, elem);
                let mut sequential = FreqMap::new(bytes, elem);
                for i in 0..20 {
                    let off = rng.next_below(bytes);
                    let size = 1 + rng.next_below(16) as u32;
                    sequential.record(off, size);
                    // Alternate records across the two shards.
                    if i % 2 == 0 {
                        split_a.record(off, size);
                    } else {
                        split_b.record(off, size);
                    }
                }
                split_a.merge(&split_b).expect("same shape");
                assert_eq!(
                    split_a.counts(),
                    sequential.counts(),
                    "trial {trial}: sharded merge must equal sequential aggregation"
                );
            }
        }

        #[test]
        fn rangeset_two_pointer_merge_matches_sequential_inserts() {
            let mut rng = SplitMix64::new(0x2B01_57E9);
            for trial in 0..100 {
                let mut a = RangeSet::new();
                let mut b = RangeSet::new();
                for _ in 0..rng.next_below(20) {
                    let s = rng.next_below(400);
                    a.insert(s, s + 1 + rng.next_below(50));
                }
                for _ in 0..rng.next_below(20) {
                    let s = rng.next_below(400);
                    b.insert(s, s + 1 + rng.next_below(50));
                }
                let mut merged = a.clone();
                merged.merge(&b);
                let mut expected = a.clone();
                for &(s, e) in b.ranges() {
                    expected.insert(s, e);
                }
                assert_eq!(merged, expected, "trial {trial}");
            }
        }

        #[test]
        fn rangeset_insert_order_is_irrelevant() {
            let mut rng = SplitMix64::new(0x5E7);
            for trial in 0..100 {
                let mut ranges = Vec::new();
                for _ in 0..12 {
                    let s = rng.next_below(500);
                    ranges.push((s, s + 1 + rng.next_below(60)));
                }
                let forward: RangeSet = ranges.iter().copied().collect();
                let backward: RangeSet = ranges.iter().rev().copied().collect();
                assert_eq!(forward, backward, "trial {trial}");
                // Covered bytes must equal the model's union size.
                let max = ranges.iter().map(|&(_, e)| e).max().unwrap_or(0);
                let mut model = vec![false; max as usize];
                for &(s, e) in &ranges {
                    for b in model.iter_mut().take(e as usize).skip(s as usize) {
                        *b = true;
                    }
                }
                let covered = model.iter().filter(|&&b| b).count() as u64;
                assert_eq!(forward.covered(), covered, "trial {trial}: covered");
            }
        }
    }
}
