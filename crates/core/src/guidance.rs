//! Optimization guidance for overallocations — the paper's Table 2.
//!
//! Two metrics classify an overallocated object: the percentage of accessed
//! elements and the fragmentation of the unaccessed memory (Eq. 1). Only
//! objects *low* on both are worth optimization effort.

use std::fmt;

/// The four quadrants of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OverallocGuidance {
    /// Low accessed %, low fragmentation: easy to optimize with nontrivial
    /// memory savings.
    EasyWin,
    /// High accessed %, low fragmentation: shrinking yields little benefit.
    LittleBenefit,
    /// Low accessed %, high fragmentation: waste is scattered; difficult.
    DifficultScattered,
    /// High accessed %, high fragmentation: no action.
    NoAction,
}

impl OverallocGuidance {
    /// Classifies per Table 2 against the given thresholds (paper default:
    /// both 80 %).
    pub fn classify(
        accessed_pct: f64,
        fragmentation_pct: f64,
        accessed_threshold: f64,
        frag_threshold: f64,
    ) -> Self {
        let low_access = accessed_pct < accessed_threshold;
        let low_frag = fragmentation_pct < frag_threshold;
        match (low_access, low_frag) {
            (true, true) => OverallocGuidance::EasyWin,
            (false, true) => OverallocGuidance::LittleBenefit,
            (true, false) => OverallocGuidance::DifficultScattered,
            (false, false) => OverallocGuidance::NoAction,
        }
    }

    /// The guidance sentence, paraphrasing Table 2.
    pub fn advice(self) -> &'static str {
        match self {
            OverallocGuidance::EasyWin => {
                "easy to optimize: shrinking/freeing unaccessed memory yields \
                 nontrivial memory savings"
            }
            OverallocGuidance::LittleBenefit => {
                "shrinking/freeing unaccessed memory yields little benefit"
            }
            OverallocGuidance::DifficultScattered => {
                "difficult to optimize: unaccessed elements are scattered all \
                 over the data object"
            }
            OverallocGuidance::NoAction => "no action on memory saving",
        }
    }

    /// Whether the paper recommends investigating this object (Sec. 3.2:
    /// "we investigate a data object iff both percentages are less than
    /// 80 %").
    pub fn worth_investigating(self) -> bool {
        self == OverallocGuidance::EasyWin
    }
}

impl fmt::Display for OverallocGuidance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.advice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadrants_match_table2() {
        let c = |a, f| OverallocGuidance::classify(a, f, 80.0, 80.0);
        assert_eq!(c(5.0, 5.0), OverallocGuidance::EasyWin);
        assert_eq!(c(95.0, 5.0), OverallocGuidance::LittleBenefit);
        assert_eq!(c(5.0, 95.0), OverallocGuidance::DifficultScattered);
        assert_eq!(c(95.0, 95.0), OverallocGuidance::NoAction);
    }

    #[test]
    fn boundary_is_exclusive() {
        // Exactly at the threshold counts as "high".
        let g = OverallocGuidance::classify(80.0, 0.0, 80.0, 80.0);
        assert_eq!(g, OverallocGuidance::LittleBenefit);
    }

    #[test]
    fn only_easy_wins_worth_investigating() {
        assert!(OverallocGuidance::EasyWin.worth_investigating());
        assert!(!OverallocGuidance::DifficultScattered.worth_investigating());
        assert!(!OverallocGuidance::LittleBenefit.worth_investigating());
        assert!(!OverallocGuidance::NoAction.worth_investigating());
    }

    #[test]
    fn advice_is_nonempty() {
        for g in [
            OverallocGuidance::EasyWin,
            OverallocGuidance::LittleBenefit,
            OverallocGuidance::DifficultScattered,
            OverallocGuidance::NoAction,
        ] {
            assert!(!g.advice().is_empty());
            assert!(!g.to_string().is_empty());
        }
    }
}
