//! Object-level pattern detectors: early allocation, late deallocation,
//! unused allocation, memory leak, temporary idleness, dead write
//! (Sec. 5.1, "Automating pattern detection").
//!
//! Each detector walks a data object's slice of the timestamp-augmented
//! memory access trace from allocation to deallocation and applies the
//! paper's rule verbatim. Redundant allocation has its own one-pass
//! algorithm in [`crate::patterns::redundant`].

use super::{AccessVia, IdleSpan, ObjectView, PatternEvidence, PatternFinding, TraceView};
use crate::governor::CancelToken;
use crate::options::Thresholds;

/// Runs all six rule-based object-level detectors over every analyzable
/// object in the trace.
pub fn detect_all(trace: &TraceView, thresholds: &Thresholds) -> Vec<PatternFinding> {
    detect_all_cancellable(trace, thresholds, &CancelToken::new())
        .expect("fresh token is never cancelled")
}

/// Like [`detect_all`], polling `cancel` between objects; returns `None`
/// (dropping partial findings) once cancellation is observed.
pub fn detect_all_cancellable(
    trace: &TraceView,
    thresholds: &Thresholds,
    cancel: &CancelToken,
) -> Option<Vec<PatternFinding>> {
    let mut findings = Vec::new();
    for obj in trace.objects.iter().filter(|o| o.analyzable) {
        if cancel.is_cancelled() {
            return None;
        }
        findings.extend(detect_early_allocation(trace, obj));
        findings.extend(detect_late_deallocation(trace, obj));
        findings.extend(detect_unused_allocation(obj));
        findings.extend(detect_memory_leak(obj));
        findings.extend(detect_temporary_idleness(
            trace,
            obj,
            thresholds.idleness_min_apis,
        ));
        findings.extend(detect_dead_writes(obj));
    }
    Some(findings)
}

/// Early allocation (Def. 3.1): GPU API invocations exist between the
/// allocation and the first API that accesses the object.
pub fn detect_early_allocation(trace: &TraceView, obj: &ObjectView) -> Option<PatternFinding> {
    let first = obj.first_access()?;
    let (intervening, distance) = match &obj.alloc {
        Some(alloc) => (
            trace.apis_strictly_between(alloc.ts, first.api.ts),
            first.api.ts.saturating_sub(alloc.ts),
        ),
        // Pool tensor: count trace positions between the anchor and the
        // first access (single-stream pools; index order == timestamp order).
        None => {
            let n = trace.apis_in_index_range(obj.alloc_anchor, first.api.idx);
            (n, n)
        }
    };
    if intervening == 0 {
        return None;
    }
    Some(PatternFinding {
        object: obj.id,
        evidence: PatternEvidence::EarlyAllocation {
            intervening,
            distance,
            first_access: first.api.clone(),
        },
    })
}

/// Late deallocation (Def. 3.2): GPU API invocations exist between the last
/// API that accesses the object and its deallocation.
pub fn detect_late_deallocation(trace: &TraceView, obj: &ObjectView) -> Option<PatternFinding> {
    let last = obj.last_access()?;
    let (intervening, distance) = match (&obj.free, obj.free_anchor) {
        (Some(free), _) => (
            trace.non_dealloc_apis_strictly_between(last.api.ts, free.ts),
            free.ts.saturating_sub(last.api.ts),
        ),
        (None, Some(anchor)) => {
            let n = trace.non_dealloc_apis_in_index_range(last.api.idx + 1, anchor);
            (n, n)
        }
        // Never freed: that is the memory-leak pattern, not late dealloc.
        (None, None) => return None,
    };
    if intervening == 0 {
        return None;
    }
    Some(PatternFinding {
        object: obj.id,
        evidence: PatternEvidence::LateDeallocation {
            intervening,
            distance,
            last_access: last.api.clone(),
        },
    })
}

/// Unused allocation (Def. 3.4): no GPU API ever accesses the object.
pub fn detect_unused_allocation(obj: &ObjectView) -> Option<PatternFinding> {
    if !obj.accesses.is_empty() {
        return None;
    }
    Some(PatternFinding {
        object: obj.id,
        evidence: PatternEvidence::UnusedAllocation,
    })
}

/// Memory leak (Def. 3.5): no deallocation by the end of execution.
pub fn detect_memory_leak(obj: &ObjectView) -> Option<PatternFinding> {
    if !obj.leaked() {
        return None;
    }
    Some(PatternFinding {
        object: obj.id,
        evidence: PatternEvidence::MemoryLeak,
    })
}

/// Temporary idleness (Def. 3.6): at least `min_apis` GPU APIs execute
/// between two consecutive accesses of the object.
pub fn detect_temporary_idleness(
    trace: &TraceView,
    obj: &ObjectView,
    min_apis: u64,
) -> Option<PatternFinding> {
    let mut spans = Vec::new();
    for pair in obj.accesses.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        let intervening = trace.apis_strictly_between(a.api.ts, b.api.ts);
        if intervening >= min_apis {
            spans.push(IdleSpan {
                from: a.api.clone(),
                to: b.api.clone(),
                intervening,
            });
        }
    }
    if spans.is_empty() {
        return None;
    }
    Some(PatternFinding {
        object: obj.id,
        evidence: PatternEvidence::TemporaryIdleness { spans },
    })
}

/// Dead write (Def. 3.7): two consecutive accesses are both pure writes via
/// memory copy or memory set — the first write is never consumed.
pub fn detect_dead_writes(obj: &ObjectView) -> Vec<PatternFinding> {
    let mut findings = Vec::new();
    for pair in obj.accesses.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        let a_copy_set_write =
            matches!(a.via, AccessVia::Memcpy | AccessVia::Memset) && a.write && !a.read;
        let b_copy_set_write =
            matches!(b.via, AccessVia::Memcpy | AccessVia::Memset) && b.write && !b.read;
        if a_copy_set_write && b_copy_set_write {
            findings.push(PatternFinding {
                object: obj.id,
                evidence: PatternEvidence::DeadWrite {
                    first: a.api.clone(),
                    second: b.api.clone(),
                },
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectId;
    use crate::patterns::{ApiRef, ObjectAccess, PatternKind};

    /// Builds a trace with `n` GPU APIs at timestamps `0..n`.
    fn trace(n: usize) -> TraceView {
        TraceView::synthetic(n)
    }

    fn api(trace: &TraceView, idx: usize) -> ApiRef {
        trace.api_ref(idx)
    }

    fn access(
        trace: &TraceView,
        idx: usize,
        read: bool,
        write: bool,
        via: AccessVia,
    ) -> ObjectAccess {
        ObjectAccess {
            api: api(trace, idx),
            read,
            write,
            via,
        }
    }

    fn object(trace: &TraceView, alloc_idx: usize, free_idx: Option<usize>) -> ObjectView {
        ObjectView {
            id: ObjectId(0),
            label: "obj".to_owned(),
            size: 1024,
            alloc: Some(api(trace, alloc_idx)),
            alloc_anchor: alloc_idx,
            free: free_idx.map(|i| api(trace, i)),
            free_anchor: None,
            accesses: vec![],
            analyzable: true,
        }
    }

    /// Reproduces the paper's Figure 2: object B is allocated at T=2, first
    /// accessed at T=7, last accessed at T=9, freed at T=12 → early
    /// allocation (4 intervening APIs) and late deallocation (2 intervening).
    #[test]
    fn figure2_object_b() {
        let tv = trace(13);
        let mut b = object(&tv, 2, Some(12));
        b.accesses = vec![
            access(&tv, 7, true, false, AccessVia::Kernel),
            access(&tv, 9, true, false, AccessVia::Kernel),
        ];
        let ea = detect_early_allocation(&tv, &b).expect("EA fires");
        match ea.evidence {
            PatternEvidence::EarlyAllocation {
                intervening,
                distance,
                ..
            } => {
                assert_eq!(intervening, 4, "APIs at T=3,4,5,6");
                assert_eq!(distance, 5, "T=7 - T=2");
            }
            other => panic!("unexpected {other:?}"),
        }
        let ld = detect_late_deallocation(&tv, &b).expect("LD fires");
        match ld.evidence {
            PatternEvidence::LateDeallocation {
                intervening,
                distance,
                ..
            } => {
                assert_eq!(intervening, 2, "APIs at T=10,11");
                assert_eq!(distance, 3, "T=12 - T=9");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Figure 2's object C: never freed and with a long access gap →
    /// memory leak + temporary idleness.
    #[test]
    fn figure2_object_c() {
        let tv = trace(13);
        let mut c = object(&tv, 0, None);
        c.accesses = vec![
            access(&tv, 1, true, true, AccessVia::Kernel),
            access(&tv, 8, true, false, AccessVia::Kernel),
        ];
        assert_eq!(
            detect_memory_leak(&c).expect("ML").kind(),
            PatternKind::MemoryLeak
        );
        let ti = detect_temporary_idleness(&tv, &c, 2).expect("TI fires");
        match ti.evidence {
            PatternEvidence::TemporaryIdleness { spans } => {
                assert_eq!(spans.len(), 1);
                assert_eq!(spans[0].intervening, 6, "APIs at T=2..=7");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tight_lifetime_has_no_findings() {
        let tv = trace(4);
        let mut o = object(&tv, 0, Some(2));
        o.accesses = vec![access(&tv, 1, true, true, AccessVia::Kernel)];
        assert!(detect_early_allocation(&tv, &o).is_none());
        assert!(detect_late_deallocation(&tv, &o).is_none());
        assert!(detect_unused_allocation(&o).is_none());
        assert!(detect_memory_leak(&o).is_none());
        assert!(detect_temporary_idleness(&tv, &o, 2).is_none());
        assert!(detect_dead_writes(&o).is_empty());
    }

    #[test]
    fn unused_allocation_fires_without_accesses() {
        let tv = trace(3);
        let o = object(&tv, 0, Some(2));
        assert_eq!(
            detect_unused_allocation(&o).expect("UA").kind(),
            PatternKind::UnusedAllocation
        );
    }

    #[test]
    fn unused_object_is_not_late_deallocated() {
        // LD requires a last access; an unused object reports UA only.
        let tv = trace(10);
        let o = object(&tv, 0, Some(9));
        assert!(detect_late_deallocation(&tv, &o).is_none());
    }

    #[test]
    fn leaked_object_is_not_late_deallocated() {
        let tv = trace(10);
        let mut o = object(&tv, 0, None);
        o.accesses = vec![access(&tv, 1, true, false, AccessVia::Kernel)];
        assert!(detect_late_deallocation(&tv, &o).is_none());
        assert!(detect_memory_leak(&o).is_some());
    }

    /// The Darknet scenario (Sec. 7.2): two host→device copies write
    /// `l.weights_gpu` with no intervening read — a dead write.
    #[test]
    fn darknet_style_dead_write() {
        let tv = trace(5);
        let mut o = object(&tv, 0, Some(4));
        o.accesses = vec![
            access(&tv, 1, false, true, AccessVia::Memcpy),
            access(&tv, 2, false, true, AccessVia::Memcpy),
            access(&tv, 3, true, false, AccessVia::Kernel),
        ];
        let dw = detect_dead_writes(&o);
        assert_eq!(dw.len(), 1);
        match &dw[0].evidence {
            PatternEvidence::DeadWrite { first, second } => {
                assert_eq!(first.idx, 1);
                assert_eq!(second.idx, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn kernel_write_then_copy_is_not_dead() {
        // A kernel write followed by a copy write is not the pattern: the
        // definition requires both writes to be memory copies or sets.
        let tv = trace(4);
        let mut o = object(&tv, 0, Some(3));
        o.accesses = vec![
            access(&tv, 1, false, true, AccessVia::Kernel),
            access(&tv, 2, false, true, AccessVia::Memcpy),
        ];
        assert!(detect_dead_writes(&o).is_empty());
    }

    #[test]
    fn intervening_read_kills_dead_write() {
        let tv = trace(5);
        let mut o = object(&tv, 0, Some(4));
        o.accesses = vec![
            access(&tv, 1, false, true, AccessVia::Memcpy),
            access(&tv, 2, true, false, AccessVia::Kernel),
            access(&tv, 3, false, true, AccessVia::Memcpy),
        ];
        assert!(detect_dead_writes(&o).is_empty());
    }

    #[test]
    fn memset_then_memcpy_is_dead_write() {
        // Def. 3.7 covers set→copy and copy→set combinations too.
        let tv = trace(4);
        let mut o = object(&tv, 0, Some(3));
        o.accesses = vec![
            access(&tv, 1, false, true, AccessVia::Memset),
            access(&tv, 2, false, true, AccessVia::Memcpy),
        ];
        assert_eq!(detect_dead_writes(&o).len(), 1);
    }

    #[test]
    fn pool_tensor_anchors_use_index_counting() {
        let tv = trace(10);
        let mut o = object(&tv, 0, None);
        o.alloc = None;
        o.alloc_anchor = 2; // allocated just before API 2
        o.free = None;
        o.free_anchor = Some(9); // freed just before API 9
        o.accesses = vec![
            access(&tv, 5, true, false, AccessVia::Kernel),
            access(&tv, 6, true, false, AccessVia::Kernel),
        ];
        let ea = detect_early_allocation(&tv, &o).expect("EA");
        match ea.evidence {
            PatternEvidence::EarlyAllocation { intervening, .. } => {
                assert_eq!(intervening, 3, "APIs 2,3,4 run before first touch")
            }
            other => panic!("unexpected {other:?}"),
        }
        let ld = detect_late_deallocation(&tv, &o).expect("LD");
        match ld.evidence {
            PatternEvidence::LateDeallocation { intervening, .. } => {
                assert_eq!(intervening, 2, "APIs 7,8 run after last touch")
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(
            detect_memory_leak(&o).is_none(),
            "pool tensor with a free anchor is not leaked"
        );
    }

    #[test]
    fn detect_all_skips_non_analyzable_objects() {
        let tv0 = trace(3);
        let mut o = object(&tv0, 0, None);
        o.analyzable = false;
        let tv = TraceView {
            objects: vec![o],
            ..tv0
        };
        assert!(detect_all(&tv, &Thresholds::default()).is_empty());
    }

    #[test]
    fn idleness_threshold_is_inclusive() {
        let tv = trace(5);
        let mut o = object(&tv, 0, None);
        o.accesses = vec![
            access(&tv, 1, true, false, AccessVia::Kernel),
            access(&tv, 4, true, false, AccessVia::Kernel),
        ];
        // Exactly 2 intervening APIs (T=2,3): fires at threshold 2.
        assert!(detect_temporary_idleness(&tv, &o, 2).is_some());
        assert!(detect_temporary_idleness(&tv, &o, 3).is_none());
    }
}
