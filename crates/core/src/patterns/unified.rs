//! Unified-memory (CPU-GPU interaction) pattern detectors — the paper's
//! future-work extension (Sec. 8): page thrashing and page-level false
//! sharing in unified memory.
//!
//! The collector accumulates per-page migration statistics from the
//! simulator's [`gpu_sim::PageMigration`] events; these detectors classify
//! pages that bounce between host and device:
//!
//! * **page thrashing** — the page migrated at least
//!   [`crate::options::Thresholds::thrash_min_migrations`] times;
//! * **page-level false sharing** — a thrashing page where the byte ranges
//!   the host touches and the byte ranges the device touches are *disjoint*:
//!   the two processors never share data, only the page. The fix is to
//!   split or pad the allocation at page boundaries.

use super::{PatternEvidence, PatternFinding};
use crate::accessmap::RangeSet;
use crate::object::ObjectId;
use crate::options::Thresholds;

/// Per-page migration statistics for one managed allocation's page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnifiedPageStats {
    /// The managed data object.
    pub object: ObjectId,
    /// Page index within the object.
    pub page_index: u32,
    /// Total host↔device migrations of this page.
    pub migrations: u64,
    /// Byte ranges within the object the *host* accesses touched.
    pub host_ranges: RangeSet,
    /// Byte ranges within the object the *device* accesses touched.
    pub device_ranges: RangeSet,
}

impl UnifiedPageStats {
    /// Creates an empty record.
    pub fn new(object: ObjectId, page_index: u32) -> Self {
        UnifiedPageStats {
            object,
            page_index,
            migrations: 0,
            host_ranges: RangeSet::new(),
            device_ranges: RangeSet::new(),
        }
    }
}

/// Classifies every thrashing page.
pub fn detect_all(pages: &[UnifiedPageStats], thresholds: &Thresholds) -> Vec<PatternFinding> {
    detect_all_cancellable(pages, thresholds, &crate::governor::CancelToken::new())
        .expect("fresh token is never cancelled")
}

/// Like [`detect_all`], polling `cancel` between pages; returns `None`
/// (dropping partial findings) once cancellation is observed.
pub fn detect_all_cancellable(
    pages: &[UnifiedPageStats],
    thresholds: &Thresholds,
    cancel: &crate::governor::CancelToken,
) -> Option<Vec<PatternFinding>> {
    let mut findings = Vec::new();
    for p in pages {
        if cancel.is_cancelled() {
            return None;
        }
        if p.migrations < thresholds.thrash_min_migrations {
            continue;
        }
        let false_sharing = !p.host_ranges.is_empty()
            && !p.device_ranges.is_empty()
            && !p.host_ranges.intersects(&p.device_ranges);
        let evidence = if false_sharing {
            PatternEvidence::PageFalseSharing {
                page_index: p.page_index,
                migrations: p.migrations,
                host_bytes: p.host_ranges.covered(),
                device_bytes: p.device_ranges.covered(),
            }
        } else {
            PatternEvidence::PageThrashing {
                page_index: p.page_index,
                migrations: p.migrations,
            }
        };
        findings.push(PatternFinding {
            object: p.object,
            evidence,
        });
    }
    Some(findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::PatternKind;

    fn stats(migrations: u64, host: &[(u64, u64)], device: &[(u64, u64)]) -> UnifiedPageStats {
        UnifiedPageStats {
            object: ObjectId(0),
            page_index: 0,
            migrations,
            host_ranges: host.iter().copied().collect(),
            device_ranges: device.iter().copied().collect(),
        }
    }

    #[test]
    fn quiet_pages_are_silent() {
        let p = stats(2, &[(0, 8)], &[(8, 16)]);
        assert!(detect_all(&[p], &Thresholds::default()).is_empty());
    }

    #[test]
    fn overlapping_touches_are_plain_thrashing() {
        let p = stats(10, &[(0, 64)], &[(32, 128)]);
        let f = detect_all(&[p], &Thresholds::default());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind(), PatternKind::PageThrashing);
    }

    #[test]
    fn disjoint_touches_are_false_sharing() {
        // CPU updates the first half of the page, GPU reads the second —
        // the classic false-sharing layout.
        let p = stats(10, &[(0, 2048)], &[(2048, 4096)]);
        let f = detect_all(&[p], &Thresholds::default());
        assert_eq!(f.len(), 1);
        match &f[0].evidence {
            PatternEvidence::PageFalseSharing {
                migrations,
                host_bytes,
                device_bytes,
                ..
            } => {
                assert_eq!(*migrations, 10);
                assert_eq!(*host_bytes, 2048);
                assert_eq!(*device_bytes, 2048);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn one_sided_traffic_is_thrashing_not_false_sharing() {
        // Only the device ever touches the page (e.g. repeated kernel use
        // after one host init): disjointness needs both sides.
        let p = stats(10, &[], &[(0, 128)]);
        let f = detect_all(&[p], &Thresholds::default());
        assert_eq!(f[0].kind(), PatternKind::PageThrashing);
    }

    #[test]
    fn extension_patterns_are_not_paper_patterns() {
        assert!(!PatternKind::PageThrashing.is_paper_pattern());
        assert!(!PatternKind::PageFalseSharing.is_paper_pattern());
        assert!(PatternKind::DeadWrite.is_paper_pattern());
    }
}
