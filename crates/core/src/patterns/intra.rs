//! Intra-object pattern detectors: overallocation, structured access,
//! non-uniform access frequency (Sec. 5.2).

use super::{NuafScope, PatternEvidence, PatternFinding, TraceView};
use crate::accessmap::{AccessBitmap, FreqMap, RangeSet};
use crate::guidance::OverallocGuidance;
use crate::metrics;
use crate::object::ObjectId;
use crate::options::Thresholds;
use std::collections::HashMap;

/// One observed non-uniform-access-frequency peak:
/// `(trace index, CoV %, histogram)`.
pub type NuafObservation = (usize, f64, Vec<(u32, usize)>);

/// Everything the collector gathered about one monitored object's elements.
#[derive(Debug, Clone)]
pub struct IntraObjectData {
    /// The monitored object.
    pub object: ObjectId,
    /// Cumulative one-bit-per-byte access map.
    pub bitmap: AccessBitmap,
    /// Per-GPU-API footprints: `(trace index, byte ranges touched)`.
    pub per_api: Vec<(usize, RangeSet)>,
    /// The strongest per-API non-uniform-access-frequency observation seen
    /// online.
    pub nuaf_peak: Option<NuafObservation>,
    /// Lifetime frequency map: never zeroed, accumulated at the configured
    /// element granularity. Captures cross-API skew like GramSchmidt's
    /// per-slice variance (Sec. 7.3).
    pub lifetime_freq: Option<FreqMap>,
}

impl IntraObjectData {
    /// Creates an empty record for an object of `size` bytes.
    pub fn new(object: ObjectId, size: u64) -> Self {
        IntraObjectData {
            object,
            bitmap: AccessBitmap::new(size),
            per_api: Vec::new(),
            nuaf_peak: None,
            lifetime_freq: None,
        }
    }

    /// Approximate bytes of host memory this record occupies — the
    /// quantity the session governor meters against the resident budget.
    pub fn footprint_bytes(&self) -> u64 {
        self.bitmap.footprint_bytes()
            + self
                .per_api
                .iter()
                .map(|(_, rs)| 16 + rs.footprint_bytes())
                .sum::<u64>()
            + self
                .lifetime_freq
                .as_ref()
                .map(FreqMap::footprint_bytes)
                .unwrap_or(0)
    }
}

/// Overallocation (Def. 3.8): fewer than `overalloc_accessed_pct` percent of
/// the object's bytes were ever accessed. The finding carries the Eq. 1
/// fragmentation and the Table 2 guidance quadrant.
pub fn detect_overallocation(
    data: &IntraObjectData,
    thresholds: &Thresholds,
) -> Option<PatternFinding> {
    // Objects never observed by a fully-patched API have an all-clear
    // bitmap; without positive evidence of element-level behaviour we stay
    // silent (no false positives, Sec. 5.6).
    if data.per_api.is_empty() {
        return None;
    }
    let accessed = metrics::accessed_pct(&data.bitmap);
    if accessed >= thresholds.overalloc_accessed_pct {
        return None;
    }
    let frag = metrics::fragmentation_pct(&data.bitmap);
    Some(PatternFinding {
        object: data.object,
        evidence: PatternEvidence::Overallocation {
            accessed_pct: accessed,
            fragmentation_pct: frag,
            guidance: OverallocGuidance::classify(
                accessed,
                frag,
                thresholds.overalloc_accessed_pct,
                thresholds.overalloc_frag_pct,
            ),
            wasted_bytes: data.bitmap.count_clear(),
        },
    })
}

/// Structured access (Def. 3.10): across the instances of one kernel, each
/// instance accesses a non-empty slice of the object and no two slices
/// overlap. The paper reports the pattern per kernel ("R_gpu matches the
/// structured access pattern at GPU kernel gramschmidt_kernel3", Sec. 7.3),
/// so footprints are grouped by kernel name.
pub fn detect_structured_access(
    data: &IntraObjectData,
    trace: &TraceView,
    thresholds: &Thresholds,
) -> Option<PatternFinding> {
    let mut per_kernel: HashMap<&str, Vec<&RangeSet>> = HashMap::new();
    for (api_idx, rs) in &data.per_api {
        if rs.is_empty() {
            continue;
        }
        if let Some(Some(kernel)) = trace.api_kernels.get(*api_idx) {
            per_kernel.entry(kernel.as_str()).or_default().push(rs);
        }
    }
    // Among qualifying kernels, report the one slicing the most bytes of
    // the object — GramSchmidt's kernel3 (half the matrix) wins over
    // kernel1 (one diagonal element per instance).
    let mut best: Option<(u64, usize, &str, u64)> = None;
    'kernels: for (kernel, slices) in &per_kernel {
        if slices.len() < thresholds.structured_min_slices {
            continue;
        }
        for i in 0..slices.len() {
            for j in i + 1..slices.len() {
                if slices[i].intersects(slices[j]) {
                    continue 'kernels;
                }
            }
        }
        // The memory-saving fix replaces the object with per-slice
        // allocations "whose lifetimes do not overlap" (Def. 3.10), so the
        // slices must also be *temporally* disjoint: considering every GPU
        // API that touches the object (copies, other kernels), each
        // slice's first-to-last-touch interval must not overlap another
        // slice's. GramSchmidt's `R` rows qualify; its `A` columns do not
        // (every iteration reads many columns) and neither does a `Q`
        // copied out wholesale at the end.
        let mut lifetimes: Vec<(u64, u64)> = Vec::with_capacity(slices.len());
        for slice in slices {
            let mut lo = u64::MAX;
            let mut hi = 0u64;
            for (api_idx, rs) in &data.per_api {
                if rs.intersects(slice) {
                    let ts = trace.api_ts.get(*api_idx).copied().unwrap_or(0);
                    lo = lo.min(ts);
                    hi = hi.max(ts);
                }
            }
            lifetimes.push((lo, hi));
        }
        lifetimes.sort_unstable();
        for w in lifetimes.windows(2) {
            if w[1].0 <= w[0].1 {
                continue 'kernels;
            }
        }
        let covered: u64 = slices.iter().map(|rs| rs.covered()).sum();
        let max_slice = slices.iter().map(|rs| rs.covered()).max().unwrap_or(0);
        let better = best.map(|(c, _, _, _)| covered > c).unwrap_or(true);
        if better {
            best = Some((covered, slices.len(), kernel, max_slice));
        }
    }
    let (_, slices, kernel, max_slice_bytes) = best?;
    Some(PatternFinding {
        object: data.object,
        evidence: PatternEvidence::StructuredAccess {
            kernel: kernel.to_owned(),
            slices,
            max_slice_bytes,
        },
    })
}

/// Non-uniform access frequency (Def. 3.9): the coefficient of variation of
/// per-element access counts exceeds `nuaf_cov_pct`, either within one GPU
/// API (the per-API map, zeroed at each API) or accumulated over the
/// object's lifetime at the configured element granularity.
pub fn detect_nuaf(
    data: &IntraObjectData,
    trace: &TraceView,
    thresholds: &Thresholds,
) -> Option<PatternFinding> {
    // Prefer the per-API observation (the paper's Def. 3.9); fall back to
    // the lifetime aggregation.
    let per_api = data
        .nuaf_peak
        .as_ref()
        .filter(|(_, cov, _)| *cov > thresholds.nuaf_cov_pct);
    if let Some((api_idx, cov, histogram)) = per_api {
        return Some(PatternFinding {
            object: data.object,
            evidence: PatternEvidence::NonUniformAccessFrequency {
                cov_pct: *cov,
                at_api: trace.api_ref(*api_idx),
                histogram: histogram.clone(),
                scope: NuafScope::PerApi,
            },
        });
    }
    let lifetime = data.lifetime_freq.as_ref()?;
    // The lifetime aggregation is only meaningful at a user-chosen coarse
    // slice granularity (GramSchmidt's per-row analysis); at the default
    // per-element width every partially-reused buffer would trip it.
    if lifetime.elem_size() <= crate::options::DEFAULT_ELEM_SIZE {
        return None;
    }
    let cov = lifetime.coefficient_of_variation_pct();
    if cov <= thresholds.nuaf_cov_pct {
        return None;
    }
    let last_api = data.per_api.last().map(|(idx, _)| *idx)?;
    Some(PatternFinding {
        object: data.object,
        evidence: PatternEvidence::NonUniformAccessFrequency {
            cov_pct: cov,
            at_api: trace.api_ref(last_api),
            histogram: lifetime.histogram(),
            scope: NuafScope::Lifetime,
        },
    })
}

/// Runs all three intra-object detectors over every monitored object.
pub fn detect_all(
    intra: &[IntraObjectData],
    trace: &TraceView,
    thresholds: &Thresholds,
) -> Vec<PatternFinding> {
    detect_all_cancellable(
        intra,
        trace,
        thresholds,
        &crate::governor::CancelToken::new(),
    )
    .expect("fresh token is never cancelled")
}

/// Like [`detect_all`], polling `cancel` between objects; returns `None`
/// (dropping partial findings) once cancellation is observed.
pub fn detect_all_cancellable(
    intra: &[IntraObjectData],
    trace: &TraceView,
    thresholds: &Thresholds,
    cancel: &crate::governor::CancelToken,
) -> Option<Vec<PatternFinding>> {
    let mut findings = Vec::new();
    for data in intra {
        if cancel.is_cancelled() {
            return None;
        }
        findings.extend(detect_overallocation(data, thresholds));
        findings.extend(detect_structured_access(data, trace, thresholds));
        findings.extend(detect_nuaf(data, trace, thresholds));
    }
    Some(findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::PatternKind;

    fn trace(n: usize) -> TraceView {
        TraceView::synthetic(n)
    }

    /// A synthetic trace where every API is an instance of kernel `k`.
    fn kernel_trace(n: usize) -> TraceView {
        let mut tv = TraceView::synthetic(n);
        tv.api_kernels = vec![Some("k".to_owned()); n];
        tv
    }

    fn data_with_accesses(size: u64, ranges: &[(usize, u64, u64)]) -> IntraObjectData {
        let mut d = IntraObjectData::new(ObjectId(0), size);
        for &(api, s, e) in ranges {
            d.bitmap.set_range(s, e);
            let mut rs = RangeSet::new();
            rs.insert(s, e);
            d.per_api.push((api, rs));
        }
        d
    }

    #[test]
    fn minimdock_style_overallocation() {
        // A huge object with a tiny accessed prefix: OA fires, EasyWin.
        let d = data_with_accesses(1_000_000, &[(0, 0, 100)]);
        let f = detect_overallocation(&d, &Thresholds::default()).expect("OA");
        match f.evidence {
            PatternEvidence::Overallocation {
                accessed_pct,
                fragmentation_pct,
                guidance,
                wasted_bytes,
            } => {
                assert!(accessed_pct < 0.011);
                assert!(fragmentation_pct < 0.01);
                assert_eq!(guidance, OverallocGuidance::EasyWin);
                assert_eq!(wasted_bytes, 999_900);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn well_used_object_is_not_overallocated() {
        let d = data_with_accesses(1000, &[(0, 0, 900)]);
        assert!(detect_overallocation(&d, &Thresholds::default()).is_none());
    }

    #[test]
    fn unmonitored_object_is_silent() {
        let tv = kernel_trace(2);
        let d = IntraObjectData::new(ObjectId(0), 1000);
        assert!(detect_overallocation(&d, &Thresholds::default()).is_none());
        assert!(detect_structured_access(&d, &tv, &Thresholds::default()).is_none());
    }

    /// The GramSchmidt scenario (Fig. 8): each kernel instance accesses one
    /// disjoint slice of `R_gpu`.
    #[test]
    fn gramschmidt_style_structured_access() {
        let slices: Vec<(usize, u64, u64)> = (0..8)
            .map(|i| (i, i as u64 * 128, (i as u64 + 1) * 128))
            .collect();
        let d = data_with_accesses(1024, &slices);
        let tv = kernel_trace(8);
        let f = detect_structured_access(&d, &tv, &Thresholds::default()).expect("SA");
        match f.evidence {
            PatternEvidence::StructuredAccess {
                kernel,
                slices,
                max_slice_bytes,
            } => {
                assert_eq!(kernel, "k");
                assert_eq!(slices, 8);
                assert_eq!(max_slice_bytes, 128);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn slices_of_different_kernels_do_not_mix() {
        // Two kernels, each with one slice: neither alone reaches the
        // two-slice minimum, so SA must not fire even though the slices are
        // disjoint across kernels.
        let d = data_with_accesses(1024, &[(0, 0, 128), (1, 128, 256)]);
        let mut tv = TraceView::synthetic(2);
        tv.api_kernels = vec![Some("k1".to_owned()), Some("k2".to_owned())];
        assert!(detect_structured_access(&d, &tv, &Thresholds::default()).is_none());
    }

    #[test]
    fn copies_do_not_count_as_slices_but_extend_lifetimes() {
        // A copy touching only the first slice before its kernel instance:
        // not an instance itself (grouping ignores it), and slice lifetimes
        // stay disjoint, so SA fires.
        let mut d = data_with_accesses(1024, &[(1, 0, 512), (2, 512, 1024)]);
        let mut partial = RangeSet::new();
        partial.insert(0, 128);
        d.per_api.push((0, partial));
        let mut tv = TraceView::synthetic(3);
        tv.api_kernels = vec![None, Some("k".to_owned()), Some("k".to_owned())];
        assert!(detect_structured_access(&d, &tv, &Thresholds::default()).is_some());
    }

    #[test]
    fn whole_object_copy_breaks_slice_lifetimes() {
        // A full-object init copy makes every slice live at the same time:
        // the Def. 3.10 fix (per-slice allocations with non-overlapping
        // lifetimes) no longer applies, so SA stays silent.
        let mut d = data_with_accesses(1024, &[(1, 0, 512), (2, 512, 1024)]);
        let mut full = RangeSet::new();
        full.insert(0, 1024);
        d.per_api.push((0, full));
        d.bitmap.set_range(0, 1024);
        let mut tv = TraceView::synthetic(3);
        tv.api_kernels = vec![None, Some("k".to_owned()), Some("k".to_owned())];
        assert!(detect_structured_access(&d, &tv, &Thresholds::default()).is_none());
    }

    #[test]
    fn overlapping_slices_are_not_structured() {
        let d = data_with_accesses(1024, &[(0, 0, 200), (1, 100, 300)]);
        let tv = kernel_trace(2);
        assert!(detect_structured_access(&d, &tv, &Thresholds::default()).is_none());
    }

    #[test]
    fn single_api_is_not_structured() {
        let d = data_with_accesses(1024, &[(0, 0, 128)]);
        let tv = kernel_trace(1);
        assert!(detect_structured_access(&d, &tv, &Thresholds::default()).is_none());
    }

    #[test]
    fn structured_access_can_coexist_with_overallocation() {
        // Disjoint slices covering only 20% of the object: both OA and SA.
        let d = data_with_accesses(10_000, &[(0, 0, 1000), (1, 1000, 2000)]);
        let tv = kernel_trace(4);
        let all = detect_all(&[d], &tv, &Thresholds::default());
        let kinds: Vec<PatternKind> = all.iter().map(|f| f.kind()).collect();
        assert!(kinds.contains(&PatternKind::Overallocation));
        assert!(kinds.contains(&PatternKind::StructuredAccess));
    }

    #[test]
    fn nuaf_respects_threshold() {
        let tv = trace(3);
        let mut d = IntraObjectData::new(ObjectId(0), 64);
        d.nuaf_peak = Some((1, 58.0, vec![(1, 10), (5, 2)]));
        let f = detect_nuaf(&d, &tv, &Thresholds::default()).expect("NUAF");
        match f.evidence {
            PatternEvidence::NonUniformAccessFrequency {
                cov_pct, at_api, ..
            } => {
                assert_eq!(cov_pct, 58.0);
                assert_eq!(at_api.idx, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        d.nuaf_peak = Some((1, 19.0, vec![]));
        assert!(detect_nuaf(&d, &tv, &Thresholds::default()).is_none());
    }

    #[test]
    fn nuaf_without_observation_is_silent() {
        let tv = trace(1);
        let d = IntraObjectData::new(ObjectId(0), 64);
        assert!(detect_nuaf(&d, &tv, &Thresholds::default()).is_none());
    }

    #[test]
    fn lifetime_nuaf_catches_cross_api_skew() {
        use crate::patterns::NuafScope;
        let tv = trace(4);
        let mut d = IntraObjectData::new(ObjectId(0), 64);
        // per-API observation uniform (CoV 0), but lifetime counts at a
        // coarse 16-byte slice granularity are skewed: slice 0 accessed 100
        // times, the others once.
        let mut lf = FreqMap::new(64, 16);
        for _ in 0..100 {
            lf.record(0, 4);
        }
        for i in 1..4 {
            lf.record(i * 16, 4);
        }
        d.lifetime_freq = Some(lf);
        let mut rs = RangeSet::new();
        rs.insert(0, 64);
        d.per_api.push((2, rs));
        let f = detect_nuaf(&d, &tv, &Thresholds::default()).expect("lifetime NUAF");
        match f.evidence {
            PatternEvidence::NonUniformAccessFrequency { scope, cov_pct, .. } => {
                assert_eq!(scope, NuafScope::Lifetime);
                assert!(cov_pct > 20.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
