//! The ten patterns of GPU memory inefficiency (Sec. 3) and their detectors.
//!
//! Object-level patterns (Sec. 3.1) are detected on the timestamp-augmented
//! object-level access trace; intra-object patterns (Sec. 3.2) on per-element
//! access maps. Every detector is *sound by construction*: it only reports
//! conditions that definitionally hold on the observed trace, so DrGPUM
//! "does not incur false positives" (Sec. 5.6).

pub mod intra;
pub mod object_level;
pub mod redundant;
pub mod unified;

use crate::guidance::OverallocGuidance;
use crate::object::ObjectId;
use std::fmt;

/// The ten inefficiency patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PatternKind {
    /// Allocated well before first use (Def. 3.1).
    EarlyAllocation,
    /// Freed well after last use (Def. 3.2).
    LateDeallocation,
    /// Could have reused a dead object of similar size (Def. 3.3).
    RedundantAllocation,
    /// Never accessed by any GPU API (Def. 3.4).
    UnusedAllocation,
    /// Never deallocated (Def. 3.5).
    MemoryLeak,
    /// Long gaps between consecutive accesses (Def. 3.6).
    TemporaryIdleness,
    /// A copy/set overwritten by another copy/set with no use between
    /// (Def. 3.7).
    DeadWrite,
    /// Few elements ever accessed (Def. 3.8).
    Overallocation,
    /// Highly skewed per-element access counts (Def. 3.9).
    NonUniformAccessFrequency,
    /// Disjoint per-API slices (Def. 3.10).
    StructuredAccess,
    /// *Extension* (the paper's future work, Sec. 8): a unified-memory page
    /// migrating back and forth between host and device.
    PageThrashing,
    /// *Extension* (Sec. 8): page thrashing where the host and device touch
    /// *disjoint* bytes of the page — page-level false sharing.
    PageFalseSharing,
}

impl PatternKind {
    /// All ten patterns, object-level first — the row order of Table 5.
    pub const ALL: [PatternKind; 10] = [
        PatternKind::EarlyAllocation,
        PatternKind::LateDeallocation,
        PatternKind::RedundantAllocation,
        PatternKind::UnusedAllocation,
        PatternKind::MemoryLeak,
        PatternKind::TemporaryIdleness,
        PatternKind::DeadWrite,
        PatternKind::Overallocation,
        PatternKind::NonUniformAccessFrequency,
        PatternKind::StructuredAccess,
    ];

    /// The paper's Table 4 abbreviation (`EA`, `LD`, …).
    pub fn code(self) -> &'static str {
        match self {
            PatternKind::EarlyAllocation => "EA",
            PatternKind::LateDeallocation => "LD",
            PatternKind::RedundantAllocation => "RA",
            PatternKind::UnusedAllocation => "UA",
            PatternKind::MemoryLeak => "ML",
            PatternKind::TemporaryIdleness => "TI",
            PatternKind::DeadWrite => "DW",
            PatternKind::Overallocation => "OA",
            PatternKind::NonUniformAccessFrequency => "NUAF",
            PatternKind::StructuredAccess => "SA",
            PatternKind::PageThrashing => "PT",
            PatternKind::PageFalseSharing => "PFS",
        }
    }

    /// Human-readable pattern name.
    pub fn name(self) -> &'static str {
        match self {
            PatternKind::EarlyAllocation => "early allocation",
            PatternKind::LateDeallocation => "late deallocation",
            PatternKind::RedundantAllocation => "redundant allocation",
            PatternKind::UnusedAllocation => "unused allocation",
            PatternKind::MemoryLeak => "memory leak",
            PatternKind::TemporaryIdleness => "temporary idleness",
            PatternKind::DeadWrite => "dead write",
            PatternKind::Overallocation => "overallocation",
            PatternKind::NonUniformAccessFrequency => "non-uniform access frequency",
            PatternKind::StructuredAccess => "structured access",
            PatternKind::PageThrashing => "page thrashing (unified memory)",
            PatternKind::PageFalseSharing => "page-level false sharing (unified memory)",
        }
    }

    /// Whether this is an object-level (vs intra-object) pattern. The
    /// unified-memory extension patterns are neither; they describe
    /// CPU-GPU interactions.
    pub fn is_object_level(self) -> bool {
        !matches!(
            self,
            PatternKind::Overallocation
                | PatternKind::NonUniformAccessFrequency
                | PatternKind::StructuredAccess
                | PatternKind::PageThrashing
                | PatternKind::PageFalseSharing
        )
    }

    /// Whether this pattern is one of the paper's original ten (vs the
    /// unified-memory extension from the paper's future-work section).
    pub fn is_paper_pattern(self) -> bool {
        PatternKind::ALL.contains(&self)
    }
}

impl fmt::Display for PatternKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a GPU API touched an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessVia {
    /// A host→device / device→device copy destination or a device→host /
    /// device→device copy source.
    Memcpy,
    /// A `cudaMemset`.
    Memset,
    /// A kernel load/store.
    Kernel,
}

/// A reference to one GPU API invocation in the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiRef {
    /// Index into the GPU-API trace (host invocation order).
    pub idx: usize,
    /// Topological timestamp (Sec. 5.3).
    pub ts: u64,
    /// Display name, e.g. `"KERL(0, 1)"`.
    pub name: String,
}

/// One access of a data object by a GPU API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectAccess {
    /// The accessing API.
    pub api: ApiRef,
    /// The API read the object.
    pub read: bool,
    /// The API wrote the object.
    pub write: bool,
    /// Kind of API that performed the access.
    pub via: AccessVia,
}

/// One data object's view of the trace, the input to object-level detectors.
#[derive(Debug, Clone)]
pub struct ObjectView {
    /// Object identity.
    pub id: ObjectId,
    /// Program label.
    pub label: String,
    /// Requested size in bytes.
    pub size: u64,
    /// The allocation: `Some` for `cudaMalloc` objects (a trace API), `None`
    /// for pool tensors (whose allocation is not a GPU API).
    pub alloc: Option<ApiRef>,
    /// For pool tensors: the trace index before which the allocation
    /// happened.
    pub alloc_anchor: usize,
    /// The deallocation, if the object was ever freed via a GPU API.
    pub free: Option<ApiRef>,
    /// For pool tensors: the trace index before which the free happened, if
    /// freed.
    pub free_anchor: Option<usize>,
    /// Accesses in timestamp order.
    pub accesses: Vec<ObjectAccess>,
    /// Whether this object participates in pattern detection.
    pub analyzable: bool,
}

impl ObjectView {
    /// First access, if any.
    pub fn first_access(&self) -> Option<&ObjectAccess> {
        self.accesses.first()
    }

    /// Last access, if any.
    pub fn last_access(&self) -> Option<&ObjectAccess> {
        self.accesses.last()
    }

    /// Returns `true` if the object was never freed (the *memory leak*
    /// pattern precondition).
    pub fn leaked(&self) -> bool {
        self.free.is_none() && self.free_anchor.is_none()
    }
}

/// The whole trace, as consumed by detectors.
#[derive(Debug, Clone, Default)]
pub struct TraceView {
    /// Topological timestamp of every GPU API, indexed by trace position.
    pub api_ts: Vec<u64>,
    /// Display names of every GPU API (`ALLOC(0, 2)` …).
    pub api_names: Vec<String>,
    /// Kernel name for launch APIs, `None` for other GPU APIs. Used by the
    /// structured-access detector, which compares footprints across the
    /// instances of one kernel (the paper reports the pattern "at GPU
    /// kernel gramschmidt_kernel3", Sec. 7.3).
    pub api_kernels: Vec<Option<String>>,
    /// `true` for deallocation APIs (`cudaFree`). The late-deallocation
    /// rule skips these when counting intervening APIs: a deallocation
    /// neither accesses data objects (paper footnote 2) nor keeps the
    /// program holding memory, so a *batch* of frees directly after an
    /// object's last use is not itself a late deallocation.
    pub api_is_dealloc: Vec<bool>,
    /// Per-object views.
    pub objects: Vec<ObjectView>,
}

impl TraceView {
    /// A synthetic trace of `n` generic GPU APIs at timestamps `0..n`, for
    /// tests.
    pub fn synthetic(n: usize) -> Self {
        TraceView {
            api_ts: (0..n as u64).collect(),
            api_names: (0..n).map(|i| format!("API({i})")).collect(),
            api_kernels: vec![None; n],
            api_is_dealloc: vec![false; n],
            objects: vec![],
        }
    }
    /// Number of GPU APIs with a timestamp strictly between `a` and `b`.
    ///
    /// This is the paper's "GPU API invocations between" test used by the
    /// early-allocation, late-deallocation, and temporary-idleness rules.
    pub fn apis_strictly_between(&self, a: u64, b: u64) -> u64 {
        if b <= a {
            return 0;
        }
        self.api_ts.iter().filter(|&&t| t > a && t < b).count() as u64
    }

    /// Number of GPU APIs at trace positions `[from_idx, to_idx)` — the
    /// index-based between test used for pool-tensor anchors.
    pub fn apis_in_index_range(&self, from_idx: usize, to_idx: usize) -> u64 {
        to_idx.saturating_sub(from_idx) as u64
    }

    /// Like [`TraceView::apis_strictly_between`], but skipping deallocation
    /// APIs — the late-deallocation rule's counting (batch frees after the
    /// last use are fine; work holding memory open is not).
    pub fn non_dealloc_apis_strictly_between(&self, a: u64, b: u64) -> u64 {
        if b <= a {
            return 0;
        }
        self.api_ts
            .iter()
            .zip(&self.api_is_dealloc)
            .filter(|(&t, &dealloc)| t > a && t < b && !dealloc)
            .count() as u64
    }

    /// Index-range variant of the non-dealloc count, for pool anchors.
    pub fn non_dealloc_apis_in_index_range(&self, from_idx: usize, to_idx: usize) -> u64 {
        (from_idx..to_idx.min(self.api_is_dealloc.len()))
            .filter(|&i| !self.api_is_dealloc[i])
            .count() as u64
    }

    /// An [`ApiRef`] for trace position `idx`.
    pub fn api_ref(&self, idx: usize) -> ApiRef {
        ApiRef {
            idx,
            ts: self.api_ts[idx],
            name: self.api_names[idx].clone(),
        }
    }
}

/// One span of temporary idleness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdleSpan {
    /// Access before the gap.
    pub from: ApiRef,
    /// Access after the gap.
    pub to: ApiRef,
    /// Number of GPU APIs executed in between.
    pub intervening: u64,
}

/// Pattern-specific evidence attached to a finding.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternEvidence {
    /// Early allocation: the gap between allocation and first touch.
    EarlyAllocation {
        /// GPU APIs executed between allocation and first touch.
        intervening: u64,
        /// Inefficiency distance (timestamp difference).
        distance: u64,
        /// The first-touch API.
        first_access: ApiRef,
    },
    /// Late deallocation: the gap between last touch and the free.
    LateDeallocation {
        /// GPU APIs executed between last touch and the free.
        intervening: u64,
        /// Inefficiency distance (timestamp difference).
        distance: u64,
        /// The last-touch API.
        last_access: ApiRef,
    },
    /// Redundant allocation: this object could reuse another's memory.
    RedundantAllocation {
        /// The object whose memory could be reused.
        reuse_of: ObjectId,
        /// Label of the reusable object.
        reuse_label: String,
        /// Size difference as a percentage of the reused object's size.
        size_diff_pct: f64,
    },
    /// Unused allocation: no accesses at all.
    UnusedAllocation,
    /// Memory leak: never freed.
    MemoryLeak,
    /// Temporary idleness: long gaps between accesses.
    TemporaryIdleness {
        /// All idle spans exceeding the threshold.
        spans: Vec<IdleSpan>,
    },
    /// Dead write: consecutive copy/set writes with no use between.
    DeadWrite {
        /// The overwritten (dead) write.
        first: ApiRef,
        /// The overwriting write.
        second: ApiRef,
    },
    /// Overallocation: few bytes ever accessed.
    Overallocation {
        /// Percentage of bytes accessed.
        accessed_pct: f64,
        /// Fragmentation of the unaccessed bytes (Eq. 1).
        fragmentation_pct: f64,
        /// Table 2 guidance quadrant.
        guidance: OverallocGuidance,
        /// Unaccessed bytes.
        wasted_bytes: u64,
    },
    /// Non-uniform access frequency at one GPU API.
    NonUniformAccessFrequency {
        /// Coefficient of variation of per-element counts, in percent.
        cov_pct: f64,
        /// The API exhibiting the skew (for [`NuafScope::PerApi`]) or the
        /// last contributing API (for [`NuafScope::Lifetime`]).
        at_api: ApiRef,
        /// Histogram (access count → number of elements), for the GUI.
        histogram: Vec<(u32, usize)>,
        /// Whether the skew was observed within one API or accumulated over
        /// the object's lifetime (GramSchmidt's per-slice skew, Sec. 7.3).
        scope: NuafScope,
    },
    /// Page thrashing in unified memory (extension).
    PageThrashing {
        /// Page index within the managed allocation.
        page_index: u32,
        /// Number of host↔device migrations of that page.
        migrations: u64,
    },
    /// Page-level false sharing in unified memory (extension).
    PageFalseSharing {
        /// Page index within the managed allocation.
        page_index: u32,
        /// Number of host↔device migrations of that page.
        migrations: u64,
        /// Bytes of the page touched by the host.
        host_bytes: u64,
        /// Bytes of the page touched by the device.
        device_bytes: u64,
    },
    /// Structured access: disjoint per-kernel-instance slices.
    StructuredAccess {
        /// The kernel whose instances slice the object (the paper's
        /// `gramschmidt_kernel3`).
        kernel: String,
        /// Number of disjoint slices.
        slices: usize,
        /// Size of the largest slice in bytes.
        max_slice_bytes: u64,
    },
}

/// Aggregation scope of a non-uniform-access-frequency observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NuafScope {
    /// The per-API frequency map of Def. 3.9 (zeroed at each GPU API).
    PerApi,
    /// Frequencies accumulated over the whole execution at the configured
    /// element granularity — how the paper's 58 % per-slice variance on
    /// GramSchmidt's `R_gpu` manifests.
    Lifetime,
}

impl PatternEvidence {
    /// The pattern this evidence belongs to.
    pub fn kind(&self) -> PatternKind {
        match self {
            PatternEvidence::EarlyAllocation { .. } => PatternKind::EarlyAllocation,
            PatternEvidence::LateDeallocation { .. } => PatternKind::LateDeallocation,
            PatternEvidence::RedundantAllocation { .. } => PatternKind::RedundantAllocation,
            PatternEvidence::UnusedAllocation => PatternKind::UnusedAllocation,
            PatternEvidence::MemoryLeak => PatternKind::MemoryLeak,
            PatternEvidence::TemporaryIdleness { .. } => PatternKind::TemporaryIdleness,
            PatternEvidence::DeadWrite { .. } => PatternKind::DeadWrite,
            PatternEvidence::Overallocation { .. } => PatternKind::Overallocation,
            PatternEvidence::NonUniformAccessFrequency { .. } => {
                PatternKind::NonUniformAccessFrequency
            }
            PatternEvidence::StructuredAccess { .. } => PatternKind::StructuredAccess,
            PatternEvidence::PageThrashing { .. } => PatternKind::PageThrashing,
            PatternEvidence::PageFalseSharing { .. } => PatternKind::PageFalseSharing,
        }
    }
}

/// A detected inefficiency: one pattern on one data object.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternFinding {
    /// The affected object.
    pub object: ObjectId,
    /// The evidence (which also identifies the pattern).
    pub evidence: PatternEvidence,
}

impl PatternFinding {
    /// The pattern kind.
    pub fn kind(&self) -> PatternKind {
        self.evidence.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_table4_legend() {
        let codes: Vec<&str> = PatternKind::ALL.iter().map(|p| p.code()).collect();
        assert_eq!(
            codes,
            ["EA", "LD", "RA", "UA", "ML", "TI", "DW", "OA", "NUAF", "SA"]
        );
    }

    #[test]
    fn object_level_split_matches_section3() {
        let object_level: Vec<PatternKind> = PatternKind::ALL
            .into_iter()
            .filter(|p| p.is_object_level())
            .collect();
        assert_eq!(object_level.len(), 7);
        let intra: Vec<PatternKind> = PatternKind::ALL
            .into_iter()
            .filter(|p| !p.is_object_level())
            .collect();
        assert_eq!(intra.len(), 3);
    }

    #[test]
    fn between_counting() {
        let tv = TraceView::synthetic(6);
        assert_eq!(tv.apis_strictly_between(0, 5), 4);
        assert_eq!(tv.apis_strictly_between(2, 3), 0);
        assert_eq!(tv.apis_strictly_between(4, 4), 0);
        assert_eq!(tv.apis_strictly_between(5, 0), 0);
    }

    #[test]
    fn evidence_reports_its_kind() {
        let e = PatternEvidence::UnusedAllocation;
        assert_eq!(e.kind(), PatternKind::UnusedAllocation);
        assert_eq!(e.kind().code(), "UA");
    }
}
